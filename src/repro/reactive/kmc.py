"""Gillespie kinetic Monte Carlo of hydrogen production at LiAl surfaces.

The rate-determining chemistry the paper's QMD identifies, cast as a
site-level stochastic model:

* **Water dissociation** at a Lewis acid-base (Li, Al) surface pair:
  H₂O + site → OH⁻(site) + H*(site), activation 0.068 eV at LiAl pairs
  (the paper's Arrhenius fit, Fig. 9(a)); ≈ 0.4 eV on pure Al (why pure Al
  particles are orders of magnitude slower, ref. 47).
* **H₂ recombination**: two adsorbed H* on neighboring sites → H₂(g).
  Fast (small barrier) — dissociation stays rate-limiting.
* **Li dissolution**: surface Li → Li⁺(aq), raising the solution pH
  (the experimentally observed pH increase).
* **Oxide passivation**: an oxidized site becomes inert; its rate is
  *suppressed* by the basic solution — the yield mechanism ("corrosive
  basic solution inhibits the formation of a reaction-stopping oxide
  layer").  Bridging Li-O-Al oxygens additionally *catalyze* dissociation
  at neighboring sites (the autocatalytic effect), implemented as a mild
  rate enhancement per oxidized neighbor.

Because the barrier enters as exp(-E_a/kT), measuring the H₂ production
rate at several temperatures and fitting Arrhenius recovers E_a with
stochastic error bars — exactly Fig. 9(a) — and running particles of
different sizes with sites taken from the *real* carved geometries gives
Fig. 9(b)'s N_surf scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import KB_EV
from repro.reactive.sites import SiteCensus, site_census
from repro.systems.configuration import Configuration

# Site states
PRISTINE = 0
H_ADSORBED = 1
PASSIVATED = 2


@dataclass
class KMCOptions:
    """Rate parameters (eV, s⁻¹) and run controls."""

    temperature: float = 300.0
    #: water-dissociation barrier at a LiAl Lewis pair (the paper's value)
    ea_dissociation: float = 0.068
    #: dissociation barrier on a pure-Al site (ref. 47 baseline)
    ea_dissociation_pure_al: float = 0.40
    #: H* + H* recombination barrier
    ea_recombination: float = 0.02
    #: Li dissolution barrier
    ea_dissolution: float = 0.25
    #: oxide passivation barrier at neutral pH
    ea_passivation: float = 0.35
    #: attempt-frequency scale of the dissolution channel (slow vs ν)
    dissolution_scale: float = 0.05
    #: attempt-frequency scale of the passivation channel
    passivation_scale: float = 0.02
    #: attempt frequency (calibrated so k(300 K) ≈ 1.04·10⁹ s⁻¹ per pair)
    attempt_frequency: float = 1.45e10
    #: pH suppression of passivation: rate × exp(-κ (pH - 7))
    ph_suppression: float = 1.2
    #: autocatalytic enhancement per oxidized neighbor site
    autocatalysis: float = 0.35
    #: pH rise per dissolved Li (effective, volume-lumped)
    ph_per_li: float = 0.1
    #: stop after this simulated time (s)
    max_time: float = 1e-6
    #: or after this many events
    max_events: int = 200_000
    #: treat the particle as pure Al (no Li): the baseline chemistry
    pure_al: bool = False
    seed: int = 0


@dataclass
class KMCResult:
    """Trajectory-level observables."""

    times: np.ndarray
    h2_counts: np.ndarray
    ph_history: np.ndarray
    n_sites: int
    n_surface: int
    n_pairs: int
    total_h2: int
    dissolved_li: int
    passivated_sites: int
    final_time: float
    events: dict[str, int] = field(default_factory=dict)

    def production_rate(self) -> float:
        """H₂ molecules per second over the run."""
        if self.final_time <= 0:
            return 0.0
        return self.total_h2 / self.final_time

    def rate_per_pair(self) -> float:
        """The paper's Fig. 9(a) normalization (per LiAl pair)."""
        return self.production_rate() / max(self.n_pairs, 1)

    def rate_per_surface_atom(self) -> float:
        """The paper's Fig. 9(b) normalization (per surface atom)."""
        return self.production_rate() / max(self.n_surface, 1)


def _site_graph(census: SiteCensus, positions: np.ndarray, cell: np.ndarray,
                cutoff: float = 7.0) -> list[list[int]]:
    """Neighbor lists between Lewis-pair sites (midpoint distance based)."""
    mids = []
    for li, al in census.lewis_pairs:
        d = positions[al] - positions[li]
        d -= cell * np.round(d / cell)
        mids.append(positions[li] + 0.5 * d)
    mids = np.array(mids) if mids else np.zeros((0, 3))
    n = len(mids)
    neighbors: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        d = mids - mids[i]
        d -= cell * np.round(d / cell)
        r = np.linalg.norm(d, axis=1)
        close = np.flatnonzero((r > 1e-9) & (r < cutoff))
        neighbors[i] = [int(j) for j in close]
    return neighbors


def run_kmc(
    particle: Configuration,
    options: KMCOptions | None = None,
    census: SiteCensus | None = None,
) -> KMCResult:
    """Run the Gillespie simulation on an explicit particle geometry."""
    opts = options or KMCOptions()
    rng = np.random.default_rng(opts.seed)
    if census is None:
        census = site_census(particle)

    if opts.pure_al:
        # pure Al: every adjacent surface Al-Al bond is a (slow) site
        sites = max(census.n_surface, 1)
        neighbors = [[(i + 1) % sites, (i - 1) % sites] for i in range(sites)]
        ea_diss = opts.ea_dissociation_pure_al
        n_li_surface = 0
    else:
        sites = census.n_pairs
        neighbors = _site_graph(
            census, particle.wrapped_positions(), particle.cell
        )
        ea_diss = opts.ea_dissociation
        n_li_surface = sum(
            1 for i in census.surface_indices if particle.symbols[i] == "Li"
        )

    if sites == 0:
        return KMCResult(
            np.zeros(1), np.zeros(1, dtype=int), np.full(1, 7.0),
            0, census.n_surface, census.n_pairs, 0, 0, 0, 0.0,
        )

    kt = KB_EV * opts.temperature
    nu = opts.attempt_frequency
    k_diss0 = nu * np.exp(-ea_diss / kt)
    k_rec = nu * np.exp(-opts.ea_recombination / kt)
    k_li = nu * np.exp(-opts.ea_dissolution / kt) * opts.dissolution_scale
    k_pass0 = nu * np.exp(-opts.ea_passivation / kt) * opts.passivation_scale

    state = np.full(sites, PRISTINE, dtype=int)
    oxidized = np.zeros(sites, dtype=bool)  # carries a bridging O (Li-O-Al)
    ph = 7.0
    t = 0.0
    h2 = 0
    dissolved = 0
    remaining_li = n_li_surface
    times = [0.0]
    h2_hist = [0]
    ph_hist = [ph]
    event_counts = {"dissociation": 0, "recombination": 0,
                    "dissolution": 0, "passivation": 0}

    for _ in range(opts.max_events):
        # --- build the rate table --------------------------------------
        rates = []
        actions = []
        active = state != PASSIVATED
        for i in np.flatnonzero(active & (state == PRISTINE)):
            boost = 1.0 + opts.autocatalysis * sum(
                1 for j in neighbors[i] if oxidized[j]
            )
            rates.append(k_diss0 * boost)
            actions.append(("dissociation", i))
        h_sites = np.flatnonzero(state == H_ADSORBED)
        for i in h_sites:
            partners = [j for j in neighbors[i] if state[j] == H_ADSORBED]
            if partners:
                rates.append(k_rec * len(partners))
                actions.append(("recombination", i))
        if remaining_li > 0 and not opts.pure_al:
            rates.append(k_li * remaining_li)
            actions.append(("dissolution", -1))
        n_pristine = int(np.sum(state == PRISTINE))
        if n_pristine:
            k_pass = k_pass0 * np.exp(-opts.ph_suppression * max(ph - 7.0, 0.0))
            rates.append(k_pass * n_pristine)
            actions.append(("passivation", -1))

        if not rates:
            break
        rates = np.asarray(rates)
        total = rates.sum()
        t += rng.exponential(1.0 / total)
        if t > opts.max_time:
            t = opts.max_time
            break
        choice = rng.choice(len(rates), p=rates / total)
        kind, target = actions[choice]
        event_counts[kind] += 1

        if kind == "dissociation":
            state[target] = H_ADSORBED
            oxidized[target] = True  # the OH stays as a bridging oxygen
        elif kind == "recombination":
            partners = [j for j in neighbors[target] if state[j] == H_ADSORBED]
            j = partners[int(rng.integers(len(partners)))]
            state[target] = PRISTINE
            state[j] = PRISTINE
            h2 += 1
        elif kind == "dissolution":
            dissolved += 1
            remaining_li -= 1
            ph += opts.ph_per_li
        elif kind == "passivation":
            pristine = np.flatnonzero(state == PRISTINE)
            state[pristine[int(rng.integers(len(pristine)))]] = PASSIVATED

        times.append(t)
        h2_hist.append(h2)
        ph_hist.append(ph)

    return KMCResult(
        times=np.asarray(times),
        h2_counts=np.asarray(h2_hist, dtype=int),
        ph_history=np.asarray(ph_hist),
        n_sites=sites,
        n_surface=census.n_surface,
        n_pairs=census.n_pairs,
        total_h2=h2,
        dissolved_li=dissolved,
        passivated_sites=int(np.sum(state == PASSIVATED)),
        final_time=float(t),
        events=event_counts,
    )
