"""Reactive surrogate for the hydrogen-on-demand science application (Sec. 6).

The paper's production QMD (16,661 atoms × 21,140 steps of ab initio
dynamics) is far beyond a NumPy prototype, so this package substitutes a
surrogate with the *same observables* (DESIGN.md §2):

* :mod:`repro.reactive.potential` — a Morse/bond-order reactive force field
  for Li/Al/O/H (water stays bonded, Al-O/Li-O oxidize, H-H recombines).
* :mod:`repro.reactive.bonds` — bond-graph analysis (networkx): H₂ / OH⁻ /
  H₃O⁺ detection, dissolved-Li census — the paper's trajectory analytics.
* :mod:`repro.reactive.sites` — surface-atom and Lewis acid-base pair
  census on nanoparticle geometries (the key nanostructural design).
* :mod:`repro.reactive.kmc` — Gillespie kinetic Monte Carlo over surface
  sites with the paper's activation energies (water dissociation at a
  Li-Al pair: 0.068 eV; pure Al: ≈ 0.4 eV), Li dissolution → pH rise →
  oxide-passivation inhibition (the autocatalytic yield mechanism).
* :mod:`repro.reactive.analysis` — Arrhenius fits, rates with error bars,
  pH proxy.
"""

from repro.reactive.potential import ReactiveForceField
from repro.reactive.bonds import BondGraph, count_h2, molecule_census
from repro.reactive.sites import surface_atoms, lewis_pairs, SiteCensus
from repro.reactive.kmc import KMCOptions, KMCResult, run_kmc
from repro.reactive.analysis import arrhenius_fit, ph_from_hydroxide, production_rate
from repro.reactive.charges import ChargeResult, equilibrate_charges, superanion_metric
from repro.reactive.events import EventDetector, EventLog, ReactionEvent

__all__ = [
    "ReactiveForceField",
    "BondGraph",
    "count_h2",
    "molecule_census",
    "surface_atoms",
    "lewis_pairs",
    "SiteCensus",
    "KMCOptions",
    "KMCResult",
    "run_kmc",
    "arrhenius_fit",
    "ph_from_hydroxide",
    "production_rate",
    "ChargeResult",
    "equilibrate_charges",
    "superanion_metric",
    "EventDetector",
    "EventLog",
    "ReactionEvent",
]
