"""A Morse-pair reactive force field for the Li/Al/O/H system.

Bonds can break and form (no fixed topology): every pair interacts through
a species-pair Morse potential

    E(r) = D_e [(1 - e^{-a (r - r₀)})² - 1]   (r < cutoff, smoothly switched)

whose well depths encode the chemistry the paper's QMD reveals: strong O-H
(water), strong Al-O / Li-O (oxidation), H-H (molecular hydrogen), weaker
metal-metal and metal-hydride bonds.  The parameters are *designed* (not
fitted to ab initio data — see DESIGN.md §2): quantitative rates come from
the KMC layer; this force field supplies realistic geometry/dynamics for
the bond-graph analytics and MD validation path at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import EV_TO_HARTREE, ANGSTROM_TO_BOHR
from repro.md.neighbors import NeighborList
from repro.systems.configuration import Configuration


@dataclass(frozen=True)
class MorseParams:
    """Pair parameters: well depth (Hartree), stiffness (1/Bohr), r₀ (Bohr)."""

    depth: float
    stiffness: float
    r0: float


def _mp(depth_ev: float, stiffness_ang: float, r0_ang: float) -> MorseParams:
    """Build params from chemist-friendly units (eV, 1/Å, Å)."""
    return MorseParams(
        depth_ev * EV_TO_HARTREE,
        stiffness_ang / ANGSTROM_TO_BOHR,
        r0_ang * ANGSTROM_TO_BOHR,
    )


#: Designed pair table.  Keys are frozensets of symbols.
DEFAULT_PAIRS: dict[frozenset, MorseParams] = {
    # Stiffnesses are deliberately high (narrow wells): a pure pair
    # potential has no angular terms, so the H-H well must not reach the
    # 1.5 Å H...H distance inside a water molecule.
    frozenset(["O", "H"]): _mp(4.8, 3.2, 0.96),   # water O-H
    frozenset(["H"]): _mp(4.5, 4.0, 0.74),          # H2
    frozenset(["O"]): _mp(2.0, 2.3, 1.35),          # peroxide-ish, weak
    frozenset(["Al", "O"]): _mp(5.2, 1.8, 1.75),   # alumina bond
    frozenset(["Li", "O"]): _mp(3.5, 1.9, 1.70),   # lithia bond
    frozenset(["Al", "H"]): _mp(1.6, 1.6, 1.65),   # alane / hydride
    frozenset(["Li", "H"]): _mp(1.4, 1.5, 1.70),   # lithium hydride
    frozenset(["Al"]): _mp(1.1, 1.2, 2.70),          # metallic Al-Al
    frozenset(["Li"]): _mp(0.6, 1.1, 2.90),          # metallic Li-Li
    frozenset(["Al", "Li"]): _mp(0.9, 1.2, 2.75),  # Zintl Li-Al
}


#: H-O-H equilibrium angle (radians) for the angular term
HOH_ANGLE0 = np.deg2rad(104.52)

#: O-H distance below which an H counts as bonded to an O (Bohr)
OH_BOND_CUT = 2.6


class ReactiveForceField:
    """Smoothly truncated Morse pair potential + H-O-H angular term.

    The angular term (harmonic in cos θ, acting on every H pair bonded to
    the same O) is what keeps water bent: a pure pair potential would let
    the intramolecular H···H attraction fold the molecule.  This is the
    minimal bond-order-like ingredient of real reactive force fields.
    """

    def __init__(
        self,
        pairs: dict[frozenset, MorseParams] | None = None,
        cutoff: float = 9.0,
        switch_width: float = 1.5,
        angle_k: float = 0.15,
    ) -> None:
        if cutoff <= 0 or switch_width <= 0 or switch_width >= cutoff:
            raise ValueError("need 0 < switch_width < cutoff")
        self.pairs = dict(DEFAULT_PAIRS if pairs is None else pairs)
        self.cutoff = float(cutoff)
        self.switch_width = float(switch_width)
        self.angle_k = float(angle_k)
        self._nl = NeighborList(cutoff)

    def pair_params(self, sym_a: str, sym_b: str) -> MorseParams:
        key = frozenset([sym_a, sym_b])
        params = self.pairs.get(key)
        if params is None:
            # unknown pairs: purely repulsive soft wall
            params = MorseParams(0.02, 1.0, 5.0)
        return params

    # -- energetics -----------------------------------------------------------

    def _switch(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """C¹ switching function s(r): 1 below cutoff-width, 0 at cutoff."""
        lo = self.cutoff - self.switch_width
        x = np.clip((r - lo) / self.switch_width, 0.0, 1.0)
        s = 1.0 - x * x * (3.0 - 2.0 * x)
        ds = -6.0 * x * (1.0 - x) / self.switch_width
        return s, ds

    def energy_forces(self, config: Configuration) -> tuple[float, np.ndarray]:
        """Total energy (Hartree) and per-atom forces (Hartree/Bohr)."""
        pairs, disp, dist = self._nl.build(config)
        forces = np.zeros((config.natoms, 3))
        if len(pairs) == 0:
            return 0.0, forces
        symbols = config.symbols
        # group pairs by species pair for vectorized evaluation
        keys = {}
        for p, (i, j) in enumerate(pairs):
            keys.setdefault(frozenset([symbols[i], symbols[j]]), []).append(p)
        energy = 0.0
        for key, idx_list in keys.items():
            idx = np.asarray(idx_list)
            params = self.pair_params(*list(key) * 2 if len(key) == 1 else list(key))
            r = dist[idx]
            e_morse, de_dr = _morse(r, params)
            s, ds = self._switch(r)
            energy += float(np.sum(e_morse * s))
            dtotal = de_dr * s + e_morse * ds
            # force on j along +disp, on i along -disp (disp = r_j - r_i)
            fvec = -(dtotal / r)[:, None] * disp[idx]
            np.add.at(forces, pairs[idx, 1], fvec)
            np.add.at(forces, pairs[idx, 0], -fvec)
        if self.angle_k > 0:
            e_ang = self._angle_terms(config, pairs, dist, forces)
            energy += e_ang
        return energy, forces

    def _angle_terms(
        self,
        config: Configuration,
        pairs: np.ndarray,
        dist: np.ndarray,
        forces: np.ndarray,
    ) -> float:
        """H-O-H angle energy E = K (cosθ - cosθ₀)², with forces in place."""
        symbols = config.symbols
        # collect H neighbors per O from the already-built pair list
        h_of_o: dict[int, list[int]] = {}
        for (i, j), r in zip(pairs, dist):
            if r > OH_BOND_CUT:
                continue
            si, sj = symbols[i], symbols[j]
            if si == "O" and sj == "H":
                h_of_o.setdefault(int(i), []).append(int(j))
            elif si == "H" and sj == "O":
                h_of_o.setdefault(int(j), []).append(int(i))
        c0 = np.cos(HOH_ANGLE0)
        k = self.angle_k
        energy = 0.0
        for o, hs in h_of_o.items():
            for a in range(len(hs)):
                for b in range(a + 1, len(hs)):
                    h1, h2 = hs[a], hs[b]
                    u = config.minimum_image(config.positions[h1] - config.positions[o])
                    v = config.minimum_image(config.positions[h2] - config.positions[o])
                    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
                    cos = float(u @ v) / (nu * nv)
                    energy += k * (cos - c0) ** 2
                    dedcos = 2.0 * k * (cos - c0)
                    dcos_du = v / (nu * nv) - cos * u / nu**2
                    dcos_dv = u / (nu * nv) - cos * v / nv**2
                    forces[h1] -= dedcos * dcos_du
                    forces[h2] -= dedcos * dcos_dv
                    forces[o] += dedcos * (dcos_du + dcos_dv)
        return energy

    def energy(self, config: Configuration) -> float:
        return self.energy_forces(config)[0]

    def as_md_engine(self):
        """Adapter with the integrator's ``(forces, energy)`` convention."""

        def forces_fn(config: Configuration):
            e, f = self.energy_forces(config)
            return f, e

        return forces_fn


def _morse(r: np.ndarray, p: MorseParams) -> tuple[np.ndarray, np.ndarray]:
    """Morse energy and dE/dr."""
    ex = np.exp(-p.stiffness * (r - p.r0))
    e = p.depth * ((1.0 - ex) ** 2 - 1.0)
    de = 2.0 * p.depth * p.stiffness * ex * (1.0 - ex)
    return e, de
