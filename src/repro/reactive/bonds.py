"""Bond-graph analytics over configurations (the paper's trajectory analysis).

A bond exists when the interatomic distance is below
``bond_scale × (r_cov,i + r_cov,j)``; molecules are connected components of
the bond graph (networkx).  From the graph we extract the paper's
observables: produced H₂ molecules, hydroxide/hydronium census (the pH
change accompanying H₂ production), intact waters, and dissolved Li.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.constants import get_species
from repro.md.neighbors import NeighborList
from repro.systems.configuration import Configuration

#: default multiplier on the covalent-radius sum
BOND_SCALE = 1.25


class BondGraph:
    """The bond graph of one configuration."""

    def __init__(self, config: Configuration, bond_scale: float = BOND_SCALE) -> None:
        self.config = config
        self.bond_scale = float(bond_scale)
        radii = np.array([get_species(s).covalent_radius for s in config.symbols])
        max_cut = self.bond_scale * 2.0 * radii.max() if len(radii) else 1.0
        nl = NeighborList(max_cut)
        pairs, _, dist = nl.build(config)
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(config.natoms))
        for (i, j), r in zip(pairs, dist):
            if r <= self.bond_scale * (radii[i] + radii[j]):
                self.graph.add_edge(int(i), int(j), distance=float(r))

    def molecules(self) -> list[list[int]]:
        """Connected components, as sorted atom-index lists."""
        return [sorted(c) for c in nx.connected_components(self.graph)]

    def formula(self, component) -> str:
        """Hill-ish formula string for a component ("H2", "OH", "H2O"...)."""
        counts = Counter(self.config.symbols[i] for i in component)
        return "".join(
            f"{sym}{counts[sym] if counts[sym] > 1 else ''}"
            for sym in sorted(counts)
        )

    def coordination(self, i: int) -> int:
        return self.graph.degree[i]


@dataclass
class MoleculeCensus:
    """Counts of the species the paper tracks."""

    h2: int = 0
    water: int = 0
    hydroxide: int = 0
    hydronium: int = 0
    dissolved_li: int = 0
    other: dict[str, int] = field(default_factory=dict)


def molecule_census(config: Configuration, bond_scale: float = BOND_SCALE) -> MoleculeCensus:
    """Classify every molecule in the configuration."""
    bg = BondGraph(config, bond_scale)
    census = MoleculeCensus()
    for comp in bg.molecules():
        formula = bg.formula(comp)
        if formula == "H2":
            census.h2 += 1
        elif formula == "H2O":
            census.water += 1
        elif formula == "HO":
            census.hydroxide += 1
        elif formula == "H3O":
            census.hydronium += 1
        elif formula == "Li":
            census.dissolved_li += 1
        else:
            census.other[formula] = census.other.get(formula, 0) + 1
    return census


def count_h2(config: Configuration, bond_scale: float = BOND_SCALE) -> int:
    """Number of free H₂ molecules — the quantity-of-interest of Sec. 5.5."""
    return molecule_census(config, bond_scale).h2
