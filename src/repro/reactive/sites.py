"""Surface-site census on Li_nAl_n nanoparticles.

The paper's key nanostructural finding is the abundance of *neighboring
Lewis acid-base pairs* at the particle surface, where water dissociation is
nearly barrierless.  This module extracts from an explicit particle
geometry:

* **surface atoms** — metal atoms with sub-bulk coordination (Fig. 9(b)'s
  normalization N_surf);
* **Lewis pairs** — adjacent (Li, Al) surface pairs (the reactive sites
  that feed the KMC engine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.neighbors import NeighborList
from repro.systems.configuration import Configuration

#: metal-metal neighbor cutoff (Bohr) — covers only the B32 first shell
#: (8 neighbors at a·√3/4 ≈ 5.2 Bohr)
METAL_CUTOFF = 5.7

#: B32 bulk coordination is 8 (4+4); below this an atom is "surface"
SURFACE_COORDINATION = 8


@dataclass
class SiteCensus:
    """Surface census of one particle."""

    n_metal: int
    n_surface: int
    surface_indices: np.ndarray
    lewis_pairs: list[tuple[int, int]]

    @property
    def n_pairs(self) -> int:
        return len(self.lewis_pairs)


def _metal_indices(config: Configuration) -> np.ndarray:
    return np.array(
        [i for i, s in enumerate(config.symbols) if s in ("Li", "Al")], dtype=int
    )


def metal_coordination(
    config: Configuration, cutoff: float = METAL_CUTOFF
) -> dict[int, int]:
    """Metal-metal coordination numbers (only Li/Al neighbors count)."""
    metals = _metal_indices(config)
    metal_set = set(int(i) for i in metals)
    nl = NeighborList(cutoff)
    pairs, _, _ = nl.build(config)
    coord = {int(i): 0 for i in metals}
    for i, j in pairs:
        if int(i) in metal_set and int(j) in metal_set:
            coord[int(i)] += 1
            coord[int(j)] += 1
    return coord


def surface_atoms(
    config: Configuration,
    cutoff: float = METAL_CUTOFF,
    bulk_coordination: int = SURFACE_COORDINATION,
) -> np.ndarray:
    """Indices of under-coordinated (surface) metal atoms."""
    coord = metal_coordination(config, cutoff)
    return np.array(
        sorted(i for i, c in coord.items() if c < bulk_coordination), dtype=int
    )


def lewis_pairs(
    config: Configuration,
    cutoff: float = METAL_CUTOFF,
    bulk_coordination: int = SURFACE_COORDINATION,
) -> list[tuple[int, int]]:
    """Adjacent (Li, Al) pairs with both atoms at the surface.

    Each surface Li-Al bond is one Lewis acid-base site; an atom may belong
    to several pairs (as in the real particle).
    """
    surf = set(int(i) for i in surface_atoms(config, cutoff, bulk_coordination))
    nl = NeighborList(cutoff)
    pairs, _, _ = nl.build(config)
    out = []
    for i, j in pairs:
        i, j = int(i), int(j)
        if i in surf and j in surf:
            si, sj = config.symbols[i], config.symbols[j]
            if {si, sj} == {"Li", "Al"}:
                out.append((i, j) if si == "Li" else (j, i))
    return sorted(out)


def site_census(config: Configuration, cutoff: float = METAL_CUTOFF) -> SiteCensus:
    """Full census for one configuration."""
    metals = _metal_indices(config)
    surf = surface_atoms(config, cutoff)
    return SiteCensus(
        n_metal=len(metals),
        n_surface=len(surf),
        surface_indices=surf,
        lewis_pairs=lewis_pairs(config, cutoff),
    )
