"""Reaction-event detection from trajectories.

Diffs the bond graphs of consecutive snapshots and classifies the changes —
the trajectory-mining step behind the paper's mechanism analysis (water
dissociation at Lewis pairs, Al-O bond formation assisted by bridging
oxygens, H₂ release).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reactive.bonds import BOND_SCALE, BondGraph
from repro.systems.configuration import Configuration


@dataclass
class ReactionEvent:
    """One bond-topology change between consecutive frames."""

    frame: int
    kind: str  # "bond_formed" | "bond_broken"
    atoms: tuple[int, int]
    species: tuple[str, str]

    def involves(self, symbol: str) -> bool:
        return symbol in self.species


@dataclass
class EventLog:
    """Accumulated events with simple census helpers."""

    events: list[ReactionEvent] = field(default_factory=list)

    def count(self, kind: str | None = None, species: set[str] | None = None) -> int:
        out = 0
        for e in self.events:
            if kind is not None and e.kind != kind:
                continue
            if species is not None and set(e.species) != species:
                continue
            out += 1
        return out

    def water_dissociations(self) -> int:
        """O-H bond-breaking events."""
        return self.count("bond_broken", {"O", "H"})

    def h2_formations(self) -> int:
        """H-H bond-forming events."""
        return self.count("bond_formed", {"H"})

    def metal_oxidations(self) -> int:
        """Al-O / Li-O bond-forming events."""
        return self.count("bond_formed", {"Al", "O"}) + self.count(
            "bond_formed", {"Li", "O"}
        )


class EventDetector:
    """Stateful detector: feed snapshots, get the event log."""

    def __init__(self, bond_scale: float = BOND_SCALE) -> None:
        self.bond_scale = bond_scale
        self.log = EventLog()
        self._prev_edges: set[tuple[int, int]] | None = None
        self._frame = -1

    def update(self, config: Configuration) -> list[ReactionEvent]:
        """Process one snapshot; returns this frame's new events."""
        self._frame += 1
        edges = {
            tuple(sorted(e)) for e in BondGraph(config, self.bond_scale).graph.edges
        }
        new_events: list[ReactionEvent] = []
        if self._prev_edges is not None:
            for e in sorted(edges - self._prev_edges):
                new_events.append(self._event("bond_formed", e, config))
            for e in sorted(self._prev_edges - edges):
                new_events.append(self._event("bond_broken", e, config))
        self._prev_edges = edges
        self.log.events.extend(new_events)
        return new_events

    def _event(self, kind, edge, config) -> ReactionEvent:
        i, j = edge
        return ReactionEvent(
            frame=self._frame,
            kind=kind,
            atoms=(i, j),
            species=(config.symbols[i], config.symbols[j]),
        )
