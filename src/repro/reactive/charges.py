"""Electronegativity-equalization (QEq) charges.

Sec. 6 reports that "wide charge pathways across Al atoms ... collectively
act as a 'superanion'" and that dissolved Li turns the solution basic.  A
charge-equilibration model reproduces these *electrostatic* observations
cheaply: atomic charges minimize

    E(q) = Σ_i (χ_i q_i + ½ η_i q_i²) + ½ Σ_{i≠j} q_i q_j erf(r_ij/γ)/r_ij

subject to Σ q_i = Q_total, where χ is the electronegativity, η the atomic
hardness, and the screened Coulomb kernel regularizes short distances.
This is a single symmetric linear solve (KKT system).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf

from repro.constants import get_species
from repro.systems.configuration import Configuration

#: atomic hardness per species (Hartree/e²) — tighter for small/hard atoms
DEFAULT_HARDNESS: dict[str, float] = {
    "H": 0.65,
    "Li": 0.25,
    "C": 0.50,
    "O": 0.60,
    "Al": 0.30,
    "Si": 0.40,
    "Cd": 0.30,
    "Se": 0.45,
}

#: Coulomb screening length (Bohr)
DEFAULT_GAMMA = 1.5


@dataclass
class ChargeResult:
    """QEq output: per-atom charges and the electrostatic energy."""

    charges: np.ndarray
    energy: float
    chemical_potential: float

    def net_charge(self, indices) -> float:
        """Total charge of a group of atoms (e.g. the metal particle)."""
        return float(np.sum(self.charges[np.asarray(indices, dtype=int)]))


def equilibrate_charges(
    config: Configuration,
    total_charge: float = 0.0,
    gamma: float = DEFAULT_GAMMA,
    hardness: dict[str, float] | None = None,
) -> ChargeResult:
    """Solve the QEq KKT system for the minimum-energy charges.

    O(N²) dense solve — adequate for the reproduction-scale systems; the
    production analogue would use the same tree codes as the Hartree solve.
    """
    n = config.natoms
    if n == 0:
        raise ValueError("empty configuration")
    hard = dict(DEFAULT_HARDNESS)
    if hardness:
        hard.update(hardness)
    chi = np.array(
        [0.2 * get_species(s).electronegativity for s in config.symbols]
    )
    eta = np.array([hard.get(s, 0.4) for s in config.symbols])

    # screened Coulomb kernel with the minimum-image convention
    pos = config.wrapped_positions()
    diff = pos[None, :, :] - pos[:, None, :]
    diff -= config.cell * np.round(diff / config.cell)
    r = np.linalg.norm(diff, axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        j = np.where(r > 1e-9, erf(r / gamma) / r, 2.0 / (np.sqrt(np.pi) * gamma))
    np.fill_diagonal(j, 0.0)

    # KKT: [H + J, 1; 1^T, 0] [q; λ] = [-χ; Q]
    a = np.zeros((n + 1, n + 1))
    a[:n, :n] = j
    a[:n, :n][np.diag_indices(n)] = eta + np.diag(j)
    a[:n, n] = 1.0
    a[n, :n] = 1.0
    rhs = np.concatenate([-chi, [total_charge]])
    sol = np.linalg.solve(a, rhs)
    q = sol[:n]
    lam = sol[n]
    energy = float(chi @ q + 0.5 * q @ ((eta * q) + j @ q))
    return ChargeResult(charges=q, energy=energy, chemical_potential=float(-lam))


def superanion_metric(config: Configuration, result: ChargeResult) -> float:
    """Net charge of the **Al framework**.

    The paper's "superanion" observation: the Al atoms collectively carry
    negative charge (electron density donated by the electropositive Li, as
    in the Zintl phase) and act as one wide charge pathway — so this metric
    is negative for LiAl particles, while the Li subsystem is positive.
    """
    al = [i for i, s in enumerate(config.symbols) if s == "Al"]
    if not al:
        raise ValueError("no Al atoms present")
    return result.net_charge(al)


def charge_pathways(
    config: Configuration,
    result: ChargeResult,
    cutoff: float = 6.0,
    threshold: float = -0.05,
) -> list[list[int]]:
    """Connected clusters of negatively charged Al atoms — the "wide charge
    pathways" of Sec. 6, extracted as graph components (networkx)."""
    import networkx as nx

    from repro.md.neighbors import NeighborList

    carriers = [
        i
        for i, s in enumerate(config.symbols)
        if s == "Al" and result.charges[i] < threshold
    ]
    carrier_set = set(carriers)
    g = nx.Graph()
    g.add_nodes_from(carriers)
    pairs, _, _ = NeighborList(cutoff).build(config)
    for i, j in pairs:
        if int(i) in carrier_set and int(j) in carrier_set:
            g.add_edge(int(i), int(j))
    return [sorted(c) for c in nx.connected_components(g)]
