"""Kinetic analysis: Arrhenius fits, rates with error bars, and the pH proxy."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import AVOGADRO, BOHR_TO_METER, KB_EV


@dataclass
class ArrheniusFit:
    """k(T) = A exp(-E_a / k_B T)."""

    activation_ev: float
    prefactor: float
    r_squared: float

    def rate(self, temperature: float) -> float:
        return self.prefactor * np.exp(
            -self.activation_ev / (KB_EV * temperature)
        )


def arrhenius_fit(temperatures, rates) -> ArrheniusFit:
    """Fit ln k vs 1/T; the slope is -E_a/k_B (Fig. 9(a)'s blue line)."""
    temperatures = np.asarray(temperatures, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if temperatures.size < 2:
        raise ValueError("need at least two temperatures")
    if np.any(rates <= 0) or np.any(temperatures <= 0):
        raise ValueError("rates and temperatures must be positive")
    x = 1.0 / temperatures
    y = np.log(rates)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ArrheniusFit(
        activation_ev=float(-slope * KB_EV),
        prefactor=float(np.exp(intercept)),
        r_squared=r2,
    )


def production_rate(times: np.ndarray, counts: np.ndarray) -> tuple[float, float]:
    """Least-squares slope of the H₂ count vs time, with its standard error.

    More robust than total/time when there is an induction transient.
    """
    times = np.asarray(times, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if times.size < 2 or times[-1] <= times[0]:
        return 0.0, 0.0
    a = np.vstack([times, np.ones_like(times)]).T
    coef, res, *_ = np.linalg.lstsq(a, counts, rcond=None)
    slope = float(coef[0])
    n = times.size
    if n > 2 and res.size:
        sigma2 = float(res[0]) / (n - 2)
        sxx = float(np.sum((times - times.mean()) ** 2))
        err = np.sqrt(sigma2 / sxx) if sxx > 0 else 0.0
    else:
        err = 0.0
    return slope, err


def rate_with_error(results) -> tuple[float, float]:
    """Mean ± standard error of production rates over replica KMC runs."""
    rates = np.array([r.production_rate() for r in results], dtype=float)
    if rates.size == 0:
        return 0.0, 0.0
    err = rates.std(ddof=1) / np.sqrt(rates.size) if rates.size > 1 else 0.0
    return float(rates.mean()), float(err)


def ph_from_hydroxide(n_hydroxide: int, volume_bohr3: float) -> float:
    """pH proxy from an explicit OH⁻ count in a given volume.

    Converts to mol/L and uses pOH = -log₁₀[OH⁻]; returns 7 for zero count
    (neutral water autoionization dominates).
    """
    if volume_bohr3 <= 0:
        raise ValueError("volume must be positive")
    if n_hydroxide <= 0:
        return 7.0
    liters = volume_bohr3 * BOHR_TO_METER**3 * 1e3
    moles = n_hydroxide / AVOGADRO
    conc = moles / liters
    return float(14.0 + np.log10(conc)) if conc < 1.0 else 14.0
