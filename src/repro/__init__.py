"""repro — reproduction of "Metascalable Quantum Molecular Dynamics
Simulations of Hydrogen-on-Demand" (Nomura et al., SC14).

Subpackages:

* :mod:`repro.core` — LDC-DFT (the paper's contribution) + DCR extensions.
* :mod:`repro.dft` — plane-wave Kohn–Sham substrate (O(N³) baseline).
* :mod:`repro.multigrid` — real-space Poisson solver (GSLF global half).
* :mod:`repro.parallel` — the virtual parallel machine (simulated MPI +
  Blue Gene/Q cost models).
* :mod:`repro.perfmodel` — FLOP/threading/scaling models for the paper's
  tables and figures.
* :mod:`repro.md` — molecular dynamics and the QMD driver.
* :mod:`repro.reactive` — the hydrogen-on-demand science surrogate.
* :mod:`repro.compression` — space-filling-curve trajectory compression.
* :mod:`repro.systems` — workload builders (SiC, CdSe, LiAl-water).

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"
