"""Physical constants, unit conversions, and the toy pseudopotential table.

Everything inside :mod:`repro` works in **Hartree atomic units**
(ħ = m_e = e = 4πε₀ = 1): lengths in Bohr, energies in Hartree, time in
atomic time units.  The constants below convert to the units the paper
quotes (eV, femtoseconds, Kelvin).

The per-species pseudopotential parameters are *toy* parameters: smooth
Gaussian-screened local potentials plus a single Kleinman–Bylander s-channel
projector.  They are chosen so small plane-wave cutoffs converge, which is
what a laptop-scale reproduction needs; they are not chemically accurate
(see DESIGN.md §2 for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Unit conversions
# ---------------------------------------------------------------------------

HARTREE_TO_EV = 27.211386245988
"""One Hartree in electron-volts."""

EV_TO_HARTREE = 1.0 / HARTREE_TO_EV

BOHR_TO_ANGSTROM = 0.529177210903
"""One Bohr radius in Ångström."""

ANGSTROM_TO_BOHR = 1.0 / BOHR_TO_ANGSTROM

ATU_TO_FS = 2.4188843265857e-2
"""One atomic time unit in femtoseconds."""

FS_TO_ATU = 1.0 / ATU_TO_FS

KELVIN_TO_HARTREE = 3.1668115634556e-6
"""Boltzmann constant in Hartree per Kelvin (k_B in atomic units)."""

HARTREE_TO_KELVIN = 1.0 / KELVIN_TO_HARTREE

KB_EV = 8.617333262e-5
"""Boltzmann constant in eV per Kelvin."""

AVOGADRO = 6.02214076e23
"""Avogadro's number (exact, 2019 SI) — converts particle counts to moles."""

BOHR_TO_METER = BOHR_TO_ANGSTROM * 1e-10
"""One Bohr radius in metres (for macroscopic unit conversions)."""

# The paper's production QMD time step (Sec. 6): 0.242 fs.
PAPER_TIMESTEP_FS = 0.242
PAPER_TIMESTEP_ATU = PAPER_TIMESTEP_FS * FS_TO_ATU


# ---------------------------------------------------------------------------
# Toy pseudopotential / species table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Species:
    """Parameters describing one atomic species in the toy DFT engine.

    Attributes
    ----------
    symbol:
        Chemical symbol.
    zval:
        Valence charge (number of valence electrons contributed; the
        ionic point charge seen by Ewald and the local pseudopotential).
    rc_loc:
        Gaussian screening radius (Bohr) of the local pseudopotential
        ``v_loc(r) = -zval * erf(r / (sqrt(2) rc_loc)) / r``.
    mass:
        Atomic mass in atomic mass units (for MD).
    nl_strength:
        Kleinman–Bylander nonlocal coefficient D (Hartree).  Zero disables
        the nonlocal channel for this species.
    nl_radius:
        Gaussian radius (Bohr) of the s-channel projector.
    electronegativity:
        Pauling-like electronegativity used by the reactive charge model.
    covalent_radius:
        Covalent radius (Bohr) used by bond detection / neighbor analysis.
    """

    symbol: str
    zval: float
    rc_loc: float
    mass: float
    nl_strength: float = 0.0
    nl_radius: float = 1.0
    electronegativity: float = 2.0
    covalent_radius: float = 1.5


#: Registry of toy species.  ``zval`` counts valence electrons only.
SPECIES: dict[str, Species] = {
    "H": Species("H", 1.0, 0.50, 1.008, 0.0, 1.0, 2.20, 0.59),
    "Li": Species("Li", 1.0, 1.10, 6.941, 0.2, 1.2, 0.98, 2.42),
    "C": Species("C", 4.0, 0.65, 12.011, 0.5, 0.8, 2.55, 1.44),
    "O": Species("O", 6.0, 0.60, 15.999, 0.6, 0.7, 3.44, 1.25),
    "Al": Species("Al", 3.0, 1.15, 26.982, 0.4, 1.1, 1.61, 2.29),
    "Si": Species("Si", 4.0, 1.05, 28.086, 0.5, 1.0, 1.90, 2.10),
    "Cd": Species("Cd", 2.0, 1.30, 112.414, 0.3, 1.3, 1.69, 2.72),
    "Se": Species("Se", 6.0, 0.95, 78.971, 0.5, 0.9, 2.55, 2.27),
}


def get_species(symbol: str) -> Species:
    """Look up a species by symbol, raising a clear error if unknown."""
    try:
        return SPECIES[symbol]
    except KeyError as exc:  # pragma: no cover - defensive
        raise KeyError(
            f"unknown species {symbol!r}; known: {sorted(SPECIES)}"
        ) from exc


def valence_electrons(symbols) -> float:
    """Total number of valence electrons for an iterable of symbols."""
    return float(sum(get_species(s).zval for s in symbols))
