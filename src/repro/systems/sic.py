"""3C-SiC (zincblende) crystal builders.

SiC is the paper's weak-scaling and FLOP/s workload: "64P-atom SiC system on
P cores" (Fig. 5), 512-atom SiC for Table 1, up to 50,331,648 atoms for the
headline run.  The zincblende conventional cubic cell holds 8 atoms
(4 Si + 4 C), so an ``nx × ny × nz`` supercell has ``8·nx·ny·nz`` atoms.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR
from repro.systems.configuration import Configuration

#: Experimental 3C-SiC lattice constant, 4.3596 Å, in Bohr.
SIC_LATTICE_CONSTANT = 4.3596 * ANGSTROM_TO_BOHR

# Zincblende basis in fractional coordinates: Si on the fcc sites, C offset
# by (1/4, 1/4, 1/4).
_FCC = np.array(
    [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]]
)
_BASIS_SI = _FCC
_BASIS_C = _FCC + 0.25


def sic_crystal(
    repeats: tuple[int, int, int] = (1, 1, 1),
    lattice_constant: float = SIC_LATTICE_CONSTANT,
) -> Configuration:
    """Build a 3C-SiC supercell.

    Parameters
    ----------
    repeats:
        Number of conventional cells along each axis.
    lattice_constant:
        Cubic lattice constant in Bohr.
    """
    nx, ny, nz = repeats
    if min(nx, ny, nz) < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    offsets = np.array(
        [(i, j, k) for i in range(nx) for j in range(ny) for k in range(nz)],
        dtype=float,
    )
    si = (offsets[:, None, :] + _BASIS_SI[None, :, :]).reshape(-1, 3)
    c = (offsets[:, None, :] + _BASIS_C[None, :, :]).reshape(-1, 3)
    frac = np.vstack([si, c])
    symbols = ["Si"] * len(si) + ["C"] * len(c)
    cell = np.array([nx, ny, nz], dtype=float) * lattice_constant
    positions = frac * lattice_constant
    return Configuration(symbols, np.mod(positions, cell), cell)


def sic_for_cores(cores: int, atoms_per_core: int = 64) -> Configuration:
    """The Fig. 5 weak-scaling workload: ``atoms_per_core · cores`` SiC atoms.

    The atom count is rounded down to the nearest number realizable with a
    cubic-ish supercell of 8-atom conventional cells.  For the paper's
    granularity (64 atoms/core) the workload is exactly 8 cells per core.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    target_cells = max(1, (cores * atoms_per_core) // 8)
    # Factor target_cells into nx*ny*nz as close to cubic as possible.
    nx = int(round(target_cells ** (1.0 / 3.0)))
    nx = max(1, nx)
    while target_cells % nx:
        nx -= 1
    rest = target_cells // nx
    ny = int(round(rest ** 0.5))
    ny = max(1, ny)
    while rest % ny:
        ny -= 1
    nz = rest // ny
    return sic_crystal((nx, ny, nz))
