"""Li_nAl_n nanoparticle builders — the hydrogen-on-demand workload (Sec. 6).

The paper simulates Li₃₀Al₃₀ (606 atoms with 182 H₂O), Li₁₃₅Al₁₃₅ (4,836
atoms total), and Li₄₄₁Al₄₄₁ (16,611 atoms total) particles in water, plus a
77,889-atom Li₂₁₃₆Al₂₁₃₆ + 24,539 H₂O system for strong scaling (Fig. 6).

Particles are carved as spheres from a B32 (Zintl, NaTl-type) LiAl lattice —
the equilibrium LiAl phase — keeping equal Li and Al counts, which is the
composition the paper identifies as maximally reactive.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR
from repro.systems.configuration import Configuration
from repro.systems.water import water_box

#: B32 LiAl lattice constant, 6.37 Å, in Bohr.
LIAL_LATTICE_CONSTANT = 6.37 * ANGSTROM_TO_BOHR

# NaTl (B32) structure: two interpenetrating diamond sublattices.
_DIAMOND = np.array(
    [
        [0.00, 0.00, 0.00],
        [0.00, 0.50, 0.50],
        [0.50, 0.00, 0.50],
        [0.50, 0.50, 0.00],
        [0.25, 0.25, 0.25],
        [0.25, 0.75, 0.75],
        [0.75, 0.25, 0.75],
        [0.75, 0.75, 0.25],
    ]
)
_BASIS_LI = _DIAMOND
_BASIS_AL = np.mod(_DIAMOND + np.array([0.5, 0.5, 0.5]), 1.0)


def lial_nanoparticle(
    n_pairs: int,
    cell: np.ndarray | None = None,
    lattice_constant: float = LIAL_LATTICE_CONSTANT,
) -> Configuration:
    """A spherical Li_nAl_n particle with exactly ``n_pairs`` of each species.

    The sphere is carved from a B32 lattice centered on a lattice point;
    Li and Al candidates are ranked by distance from the center and the
    closest ``n_pairs`` of each are kept, producing a compact quasi-spherical
    particle with exactly equal composition.

    Parameters
    ----------
    n_pairs:
        Number of Li (and Al) atoms; the paper uses 30, 135, 441, 2136.
    cell:
        Periodic box to embed the particle in (centered).  Defaults to a cube
        with ~14 Bohr of vacuum padding around the particle.
    """
    if n_pairs < 1:
        raise ValueError("n_pairs must be >= 1")
    # Enough lattice cells to cover the needed sphere: each cell has 8 Li + 8 Al.
    reps = 1
    while 8 * reps**3 < 4 * n_pairs:
        reps += 1
    reps = reps + 2  # margin so the sphere never touches the slab edge
    offsets = np.array(
        [(i, j, k)
         for i in range(-reps, reps)
         for j in range(-reps, reps)
         for k in range(-reps, reps)],
        dtype=float,
    )
    li = (offsets[:, None, :] + _BASIS_LI[None, :, :]).reshape(-1, 3) * lattice_constant
    al = (offsets[:, None, :] + _BASIS_AL[None, :, :]).reshape(-1, 3) * lattice_constant

    li = li[np.argsort(np.linalg.norm(li, axis=1), kind="stable")][:n_pairs]
    al = al[np.argsort(np.linalg.norm(al, axis=1), kind="stable")][:n_pairs]
    positions = np.vstack([li, al])
    symbols = ["Li"] * n_pairs + ["Al"] * n_pairs

    radius = np.max(np.linalg.norm(positions, axis=1))
    if cell is None:
        edge = 2.0 * radius + 28.0
        cell = np.array([edge, edge, edge])
    else:
        cell = np.asarray(cell, dtype=float)
    center = cell / 2.0
    return Configuration(symbols, positions + center, cell)


def particle_radius(particle: Configuration) -> float:
    """Radius of the particle: max distance of an atom from the centroid."""
    centroid = particle.positions.mean(axis=0)
    return float(np.max(np.linalg.norm(particle.positions - centroid, axis=1)))


def lial_in_water(
    n_pairs: int,
    n_water: int | None = None,
    seed: int = 0,
    density_factor: float = 1.0,
) -> Configuration:
    """A Li_nAl_n particle immersed in water — the Sec. 6 production system.

    Parameters
    ----------
    n_pairs:
        LiAl pairs; the paper's systems use (n_pairs, n_water) =
        (30, 182), (135, ~1522), (441, ~4910), (2136, 24539).
    n_water:
        Water molecule count.  Default: enough to fill the box at liquid
        density outside the particle.
    """
    particle = lial_nanoparticle(n_pairs)
    radius = particle_radius(particle)
    cell = particle.cell
    if n_water is None:
        shell_volume = particle.volume - 4.0 / 3.0 * np.pi * (radius + 4.0) ** 3
        n_water = max(1, int(4.95e-3 * density_factor * shell_volume))
    water = water_box(
        n_water,
        density_factor=density_factor,
        seed=seed,
        exclusion_centers=cell / 2.0,
        exclusion_radius=radius + 4.0,
        cell=cell,
    )
    return particle.extend(water)
