"""Water molecule and water-box builders (the solvent substrate of Sec. 6)."""

from __future__ import annotations

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR
from repro.systems.configuration import Configuration

#: O-H bond length of an isolated water molecule (0.9572 Å) in Bohr.
OH_BOND = 0.9572 * ANGSTROM_TO_BOHR

#: H-O-H angle in radians.
HOH_ANGLE = np.deg2rad(104.52)


def water_molecule(center=(0.0, 0.0, 0.0), cell=(20.0, 20.0, 20.0)) -> Configuration:
    """A single water molecule centered at ``center`` (O at the center)."""
    c = np.asarray(center, dtype=float)
    half = HOH_ANGLE / 2.0
    h1 = c + OH_BOND * np.array([np.sin(half), np.cos(half), 0.0])
    h2 = c + OH_BOND * np.array([-np.sin(half), np.cos(half), 0.0])
    return Configuration(["O", "H", "H"], np.array([c, h1, h2]), np.asarray(cell, float))


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix, sign-fixed)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def water_box(
    n_molecules: int,
    density_factor: float = 1.0,
    seed: int = 0,
    exclusion_centers: np.ndarray | None = None,
    exclusion_radius: float = 0.0,
    cell: np.ndarray | None = None,
) -> Configuration:
    """Fill a periodic box with randomly oriented water molecules on a jittered
    lattice.

    Parameters
    ----------
    n_molecules:
        Number of H₂O molecules.
    density_factor:
        1.0 gives roughly liquid-water number density
        (0.0334 molecules/Å³ ≈ 4.95e-3 molecules/Bohr³).
    seed:
        RNG seed.
    exclusion_centers, exclusion_radius:
        Optional spherical exclusion zones (e.g. around a nanoparticle):
        lattice sites within ``exclusion_radius`` of any center are skipped.
    cell:
        Explicit box; if omitted, a cube sized from the density is used.
    """
    if n_molecules < 1:
        raise ValueError("n_molecules must be >= 1")
    rng = np.random.default_rng(seed)
    number_density = 4.95e-3 * density_factor  # molecules per Bohr^3
    if cell is None:
        volume = n_molecules / number_density
        edge = volume ** (1.0 / 3.0)
        cell = np.array([edge, edge, edge])
    else:
        cell = np.asarray(cell, dtype=float)

    # Jittered-lattice placement: enough sites for n_molecules + exclusions.
    grid = 1
    while True:
        sites = _lattice_sites(grid, cell)
        if exclusion_centers is not None and exclusion_radius > 0:
            keep = np.ones(len(sites), dtype=bool)
            for c in np.atleast_2d(exclusion_centers):
                diff = sites - c
                diff -= cell * np.round(diff / cell)
                keep &= np.linalg.norm(diff, axis=1) > exclusion_radius
            sites = sites[keep]
        if len(sites) >= n_molecules:
            break
        grid += 1
        if grid > 64:
            raise ValueError("cannot place requested molecules in the box")

    chosen = sites[rng.choice(len(sites), size=n_molecules, replace=False)]
    spacing = np.min(cell) / grid
    jitter = 0.1 * spacing

    symbols: list[str] = []
    positions: list[np.ndarray] = []
    template = np.array(
        [
            [0.0, 0.0, 0.0],
            OH_BOND * np.array([np.sin(HOH_ANGLE / 2), np.cos(HOH_ANGLE / 2), 0.0]),
            OH_BOND * np.array([-np.sin(HOH_ANGLE / 2), np.cos(HOH_ANGLE / 2), 0.0]),
        ]
    )
    for site in chosen:
        rot = _random_rotation(rng)
        mol = template @ rot.T + site + rng.uniform(-jitter, jitter, size=3)
        symbols.extend(["O", "H", "H"])
        positions.append(mol)
    config = Configuration(symbols, np.vstack(positions), cell)
    config.wrap()
    return config


def _lattice_sites(grid: int, cell: np.ndarray) -> np.ndarray:
    """Simple-cubic lattice of ``grid**3`` sites centered in their voxels."""
    fracs = (np.arange(grid) + 0.5) / grid
    pts = np.array(
        [(x, y, z) for x in fracs for y in fracs for z in fracs], dtype=float
    )
    return pts * cell
