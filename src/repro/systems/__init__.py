"""Atomic structures and the workload builders used by the paper's benchmarks.

The evaluation section exercises four families of systems:

* **SiC crystals** — weak scaling (Fig. 5), FLOP/s measurements (Tables 1-2),
  portability (Sec. 5.4).
* **Amorphous CdSe** — buffer-thickness convergence (Fig. 7).
* **LiAl nanoparticles immersed in water** — strong scaling (Fig. 6) and the
  hydrogen-on-demand science application (Figs. 8-9).
* **Water boxes** — the solvent substrate.
"""

from repro.systems.configuration import Configuration
from repro.systems.sic import sic_crystal, sic_for_cores
from repro.systems.cdse import amorphous_cdse
from repro.systems.water import water_box, water_molecule
from repro.systems.lialloy import lial_nanoparticle, lial_in_water
from repro.systems.toys import (
    dimer,
    random_gas,
    simple_cubic_crystal,
)

__all__ = [
    "Configuration",
    "sic_crystal",
    "sic_for_cores",
    "amorphous_cdse",
    "water_box",
    "water_molecule",
    "lial_nanoparticle",
    "lial_in_water",
    "dimer",
    "random_gas",
    "simple_cubic_crystal",
]
