"""Amorphous CdSe builder — the Fig. 7 buffer-convergence workload.

The paper studies energy convergence vs buffer thickness on "an amorphous
cadmium selenide (CdSe) system containing 512 atoms in a cubic simulation box
of length 45.664 atomic units", with cubic DC domains of side 11.416 a.u.
(= L/4, i.e. a 4×4×4 domain grid).

We generate amorphous structures by randomly displacing a zincblende CdSe
lattice and then enforcing a minimum interatomic separation — a standard
cheap surrogate for a melt-quench.
"""

from __future__ import annotations

import numpy as np

from repro.systems.configuration import Configuration

#: Box length used in Fig. 7 (atomic units), for the 512-atom system.
CDSE_FIG7_BOX = 45.664

#: Domain edge used in Fig. 7 (atomic units): the box split 4×4×4.
CDSE_FIG7_DOMAIN = 11.416


def amorphous_cdse(
    repeats: tuple[int, int, int] = (4, 4, 4),
    box_length: float | None = None,
    displacement: float = 0.35,
    min_separation: float = 3.0,
    seed: int = 0,
) -> Configuration:
    """Build an amorphous CdSe configuration.

    Parameters
    ----------
    repeats:
        Zincblende conventional cells per axis (8 atoms each); the paper's
        512-atom system is ``(4, 4, 4)``.
    box_length:
        Cubic box edge in Bohr.  Defaults to ``CDSE_FIG7_BOX`` scaled by
        ``repeats/4`` so densities match the paper's system.
    displacement:
        RMS random displacement as a fraction of the nearest-neighbor
        distance (0 gives the perfect crystal).
    min_separation:
        Hard floor on interatomic distances (Bohr); displacements which
        violate it are re-drawn.
    seed:
        RNG seed; structures are deterministic given the seed.
    """
    nx, ny, nz = repeats
    if box_length is None:
        box_length = CDSE_FIG7_BOX * max(nx, ny, nz) / 4.0
    a = box_length / max(nx, ny, nz)
    fcc = np.array(
        [[0.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5], [0.5, 0.5, 0.0]]
    )
    offsets = np.array(
        [(i, j, k) for i in range(nx) for j in range(ny) for k in range(nz)],
        dtype=float,
    )
    cd = (offsets[:, None, :] + fcc[None, :, :]).reshape(-1, 3) * a
    se = (offsets[:, None, :] + (fcc + 0.25)[None, :, :]).reshape(-1, 3) * a
    positions = np.vstack([cd, se])
    symbols = ["Cd"] * len(cd) + ["Se"] * len(se)
    cell = np.array([nx, ny, nz], dtype=float) * a

    rng = np.random.default_rng(seed)
    nn = a * np.sqrt(3.0) / 4.0  # zincblende nearest-neighbor distance
    sigma = displacement * nn
    config = Configuration(symbols, positions.copy(), cell)
    if sigma > 0:
        config.positions = _displace_with_floor(
            config, sigma, min_separation, rng
        )
        config.wrap()
    return config


def _displace_with_floor(
    config: Configuration, sigma: float, min_sep: float, rng: np.random.Generator
) -> np.ndarray:
    """Random Gaussian displacements with per-atom rejection of overlaps."""
    positions = config.positions.copy()
    cell = config.cell
    n = len(positions)
    for i in range(n):
        for _attempt in range(25):
            trial = positions[i] + rng.normal(0.0, sigma, size=3)
            diff = positions - trial
            diff -= cell * np.round(diff / cell)
            d = np.linalg.norm(diff, axis=1)
            d[i] = np.inf
            if d.min() >= min_sep:
                positions[i] = trial
                break
        # if all attempts failed, keep the lattice position (still valid)
    return positions
