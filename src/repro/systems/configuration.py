"""The :class:`Configuration` container — atoms in a periodic orthorhombic cell.

A deliberately small, NumPy-first structure type (an ASE-like ``Atoms`` would
be overkill): symbols, positions, cell lengths, optional velocities.  All
geometry helpers respect periodic boundary conditions with the minimum-image
convention, which every substrate (DFT, MD, reactive) shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import get_species, valence_electrons


@dataclass
class Configuration:
    """Atoms in a periodic orthorhombic box.

    Attributes
    ----------
    symbols:
        Length-``natom`` list of chemical symbols.
    positions:
        ``(natom, 3)`` Cartesian coordinates in Bohr.
    cell:
        Length-3 array of orthorhombic box edge lengths in Bohr.
    velocities:
        Optional ``(natom, 3)`` velocities in atomic units.
    """

    symbols: list[str]
    positions: np.ndarray
    cell: np.ndarray
    velocities: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=float))
        self.cell = np.asarray(self.cell, dtype=float).reshape(3)
        if self.positions.shape != (len(self.symbols), 3):
            raise ValueError(
                f"positions shape {self.positions.shape} inconsistent with "
                f"{len(self.symbols)} symbols"
            )
        if np.any(self.cell <= 0):
            raise ValueError(f"cell lengths must be positive, got {self.cell}")
        if self.velocities is not None:
            self.velocities = np.asarray(self.velocities, dtype=float)
            if self.velocities.shape != self.positions.shape:
                raise ValueError("velocities shape must match positions")

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.symbols)

    @property
    def natoms(self) -> int:
        return len(self.symbols)

    @property
    def volume(self) -> float:
        return float(np.prod(self.cell))

    @property
    def masses(self) -> np.ndarray:
        """Atomic masses in electron-mass units (a.u. of mass for dynamics)."""
        amu_to_me = 1822.888486209
        return np.array([get_species(s).mass * amu_to_me for s in self.symbols])

    @property
    def zvals(self) -> np.ndarray:
        return np.array([get_species(s).zval for s in self.symbols])

    def n_electrons(self) -> float:
        """Total valence electron count."""
        return valence_electrons(self.symbols)

    def species_set(self) -> list[str]:
        """Distinct species, sorted, preserving a deterministic order."""
        return sorted(set(self.symbols))

    # -- geometry -----------------------------------------------------------

    def wrapped_positions(self) -> np.ndarray:
        """Positions folded into [0, L) along each axis."""
        return np.mod(self.positions, self.cell)

    def wrap(self) -> None:
        """Fold positions into the primary cell in place."""
        self.positions = self.wrapped_positions()

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        dr = np.asarray(dr, dtype=float)
        return dr - self.cell * np.round(dr / self.cell)

    def distance(self, i: int, j: int) -> float:
        """Minimum-image distance between atoms ``i`` and ``j``."""
        dr = self.minimum_image(self.positions[j] - self.positions[i])
        return float(np.linalg.norm(dr))

    def distance_matrix(self) -> np.ndarray:
        """All-pairs minimum-image distances; O(N²), for small systems only."""
        diff = self.positions[None, :, :] - self.positions[:, None, :]
        diff = diff - self.cell * np.round(diff / self.cell)
        return np.linalg.norm(diff, axis=-1)

    # -- editing ------------------------------------------------------------

    def copy(self) -> "Configuration":
        return Configuration(
            list(self.symbols),
            self.positions.copy(),
            self.cell.copy(),
            None if self.velocities is None else self.velocities.copy(),
        )

    def translated(self, shift: np.ndarray) -> "Configuration":
        """A copy rigidly translated by ``shift`` (periodically wrapped)."""
        out = self.copy()
        out.positions = np.mod(out.positions + np.asarray(shift, float), out.cell)
        return out

    def select(self, indices) -> "Configuration":
        """Sub-configuration with the given atom indices (velocities kept)."""
        indices = np.asarray(indices, dtype=int)
        return Configuration(
            [self.symbols[i] for i in indices],
            self.positions[indices],
            self.cell.copy(),
            None if self.velocities is None else self.velocities[indices],
        )

    def extend(self, other: "Configuration") -> "Configuration":
        """Concatenate two configurations sharing the same cell."""
        if not np.allclose(self.cell, other.cell):
            raise ValueError("cannot extend configurations with different cells")
        vel = None
        if self.velocities is not None or other.velocities is not None:
            a = self.velocities if self.velocities is not None else np.zeros_like(self.positions)
            b = other.velocities if other.velocities is not None else np.zeros_like(other.positions)
            vel = np.vstack([a, b])
        return Configuration(
            self.symbols + other.symbols,
            np.vstack([self.positions, other.positions]),
            self.cell.copy(),
            vel,
        )

    def counts(self) -> dict[str, int]:
        """Per-species atom counts."""
        out: dict[str, int] = {}
        for s in self.symbols:
            out[s] = out.get(s, 0) + 1
        return out
