"""Tiny synthetic systems used throughout the test-suite and examples."""

from __future__ import annotations

import numpy as np

from repro.systems.configuration import Configuration


def dimer(
    symbol_a: str, symbol_b: str, separation: float, cell_edge: float = 16.0
) -> Configuration:
    """Two atoms separated along x, centered in a cubic box."""
    if separation <= 0:
        raise ValueError("separation must be positive")
    cell = np.array([cell_edge] * 3)
    center = cell / 2.0
    half = np.array([separation / 2.0, 0.0, 0.0])
    return Configuration(
        [symbol_a, symbol_b], np.array([center - half, center + half]), cell
    )


def simple_cubic_crystal(
    symbol: str, repeats: tuple[int, int, int], lattice_constant: float
) -> Configuration:
    """Single-species simple-cubic crystal."""
    nx, ny, nz = repeats
    pts = np.array(
        [(i, j, k) for i in range(nx) for j in range(ny) for k in range(nz)],
        dtype=float,
    ) * lattice_constant
    cell = np.array([nx, ny, nz], dtype=float) * lattice_constant
    return Configuration([symbol] * len(pts), pts, cell)


def random_gas(
    symbols: list[str],
    cell_edge: float,
    min_separation: float = 2.5,
    seed: int = 0,
) -> Configuration:
    """Random non-overlapping placement of the given atoms in a cubic box."""
    rng = np.random.default_rng(seed)
    cell = np.array([cell_edge] * 3)
    positions: list[np.ndarray] = []
    for _symbol in symbols:
        for _attempt in range(2000):
            trial = rng.uniform(0.0, cell_edge, size=3)
            ok = True
            for p in positions:
                d = trial - p
                d -= cell * np.round(d / cell)
                if np.linalg.norm(d) < min_separation:
                    ok = False
                    break
            if ok:
                positions.append(trial)
                break
        else:
            raise ValueError("could not place atoms without overlap")
    return Configuration(list(symbols), np.array(positions), cell)
