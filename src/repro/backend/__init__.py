"""Pluggable array-module backend for the domain-batched BLAS3 kernels.

The batched shape-class kernels of :mod:`repro.core.batched` (stacked
FFT-backed ``Hamiltonian.apply``, batched nonlocal projections, batched
subspace diagonalisation) never call ``numpy`` directly — they fetch an
array namespace from this module::

    from repro import backend
    xp = backend.get()          # numpy today
    hpsi = xp.matmul(b_stack, overlaps)

``get()`` resolves, in order: the explicit ``name`` argument, the process
default set by :func:`set_default`, the ``REPRO_BACKEND`` environment
variable, and finally ``"auto"`` (scipy-accelerated transforms over the
NumPy namespace when SciPy is present, plain NumPy otherwise).  The returned object is an
*array-module namespace*: anything exposing the NumPy-compatible subset in
:data:`REQUIRED_ATTRS` qualifies.  That is the whole seam — a CuPy or
array-api-compatible torch namespace drops in without touching the kernel
code, which is why the batched refactor is the prerequisite for a GPU
path (cf. GPAW's ``gpu/`` + ``cuda.py`` layering).

Backends register a zero-argument *loader* so that optional dependencies
are imported lazily and absence degrades to a clear error instead of an
import-time crash.  ``"cupy"`` is pre-registered behind such a gate; a
torch backend would register an adapter namespace here once
``torch.compat`` exposes the required subset (documented, not shipped —
this container has no GPU stack and nothing may be pip-installed).

The seam is enforced statically: analysis rule RP009 flags any direct
``numpy`` call inside a module that adopts this backend contract.
"""

from __future__ import annotations

import os
from typing import Any, Callable

#: The NumPy-compatible subset the batched kernels rely on.  A namespace
#: advertising these attributes (with ``fft.fftn``/``fft.ifftn`` and
#: ``linalg.eigh`` on the nested namespaces) is a valid backend.
REQUIRED_ATTRS: tuple[str, ...] = (
    "asarray",
    "empty",
    "zeros",
    "stack",
    "matmul",
    "einsum",
    "conjugate",
    "absolute",
    "maximum",
    "reshape",
    "fft",
    "linalg",
)

#: Environment variable naming the default backend for a process.
ENV_VAR = "REPRO_BACKEND"

_LOADERS: dict[str, Callable[[], Any]] = {}
_CACHE: dict[str, Any] = {}
_DEFAULT: str | None = None


class BackendError(RuntimeError):
    """Unknown backend name, failed optional import, or contract violation."""


def register_backend(
    name: str, loader: Callable[[], Any], replace: bool = False
) -> None:
    """Register ``loader`` (→ array namespace) under ``name``.

    ``loader`` runs at most once per process (the namespace is cached).
    Re-registration requires ``replace=True`` so a test double cannot
    silently shadow a real backend.
    """
    key = name.lower()
    if key in _LOADERS and not replace:
        raise BackendError(f"backend {name!r} is already registered")
    _LOADERS[key] = loader
    _CACHE.pop(key, None)


def available() -> list[str]:
    """Registered backend names (loadability is checked on first use)."""
    return sorted(_LOADERS)


def set_default(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    global _DEFAULT
    if name is not None and name.lower() not in _LOADERS:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(available())}"
        )
    _DEFAULT = None if name is None else name.lower()


def validate_namespace(xp: Any) -> list[str]:
    """Names from :data:`REQUIRED_ATTRS` that ``xp`` is missing."""
    missing = [a for a in REQUIRED_ATTRS if not hasattr(xp, a)]
    for nested, attrs in (("fft", ("fftn", "ifftn")), ("linalg", ("eigh",))):
        sub = getattr(xp, nested, None)
        missing.extend(
            f"{nested}.{a}" for a in attrs
            if sub is None or not hasattr(sub, a)
        )
    return missing


def get(name: str | None = None) -> Any:
    """The active array-module namespace (NumPy-compatible).

    Resolution order: explicit ``name`` → :func:`set_default` →
    ``$REPRO_BACKEND`` → ``"auto"`` (the fastest CPU namespace available:
    NumPy with ``scipy.fft`` transforms when SciPy is importable — same
    pocketfft algorithm, faster C++ build plus a ``workers=`` thread pool
    that only large stacked transforms can amortize — plain NumPy
    otherwise).
    """
    key = (
        name
        or _DEFAULT
        or os.environ.get(ENV_VAR, "").strip()
        or "auto"
    ).lower()
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    loader = _LOADERS.get(key)
    if loader is None:
        raise BackendError(
            f"unknown backend {key!r}; available: {', '.join(available())}"
        )
    xp = loader()
    missing = validate_namespace(xp)
    if missing:
        raise BackendError(
            f"backend {key!r} does not satisfy the array-module contract; "
            f"missing: {', '.join(missing)}"
        )
    _CACHE[key] = xp
    return xp


def resolved_name(name: str | None = None) -> str:
    """The backend name :func:`get` would resolve to, without loading it.

    Provenance stamping (the run ledger's manifest) wants the *name* of the
    active backend even when no kernel has touched it yet; ``"auto"`` is
    reported as-is since its concrete choice depends on importability at
    first use.
    """
    return (
        name
        or _DEFAULT
        or os.environ.get(ENV_VAR, "").strip()
        or "auto"
    ).lower()


def _load_numpy() -> Any:
    import numpy

    return numpy


class _ThreadedFFT:
    """``fftn``/``ifftn`` through ``scipy.fft`` with a fixed worker count.

    SciPy's pocketfft releases the GIL and splits the *batch* dimension
    across threads — each individual transform is computed by the same
    serial kernel, so values are independent of ``workers``.  The thread
    pool only pays off on large stacked inputs, which is exactly what the
    domain-batched kernels produce.
    """

    def __init__(self, scipy_fft: Any, workers: int) -> None:
        self._fft = scipy_fft
        self.workers = workers

    def fftn(self, a: Any, axes: Any = None) -> Any:
        return self._fft.fftn(a, axes=axes, workers=self.workers)

    def ifftn(self, a: Any, axes: Any = None) -> Any:
        return self._fft.ifftn(a, axes=axes, workers=self.workers)


class _ScipyFFTNamespace:
    """NumPy namespace with the transforms swapped for ``scipy.fft``."""

    def __init__(self, numpy_mod: Any, fft: _ThreadedFFT) -> None:
        self._np = numpy_mod
        self.fft = fft

    def __getattr__(self, name: str) -> Any:
        return getattr(self._np, name)


def _load_scipy() -> Any:
    try:
        import scipy.fft
    except ImportError as exc:
        raise BackendError(
            "backend 'scipy' requested but scipy is not installed; "
            "use the plain 'numpy' backend"
        ) from exc
    import numpy

    workers = max(int(os.cpu_count() or 1), 1)
    return _ScipyFFTNamespace(numpy, _ThreadedFFT(scipy.fft, workers))


def _load_auto() -> Any:
    try:
        return get("scipy")
    except BackendError:
        return get("numpy")


def _load_cupy() -> Any:  # pragma: no cover - optional dependency
    try:
        import cupy
    except ImportError as exc:
        raise BackendError(
            "backend 'cupy' requested but cupy is not installed; "
            "the batched kernels fall back to numpy (unset REPRO_BACKEND)"
        ) from exc
    return cupy


register_backend("numpy", _load_numpy)
register_backend("scipy", _load_scipy)
register_backend("auto", _load_auto)
register_backend("cupy", _load_cupy)

__all__ = [
    "BackendError",
    "ENV_VAR",
    "REQUIRED_ATTRS",
    "available",
    "get",
    "register_backend",
    "resolved_name",
    "set_default",
    "validate_namespace",
]
