"""Finite-difference Laplacian stencils on periodic grids.

Second-order 7-point stencil, fully vectorized via :func:`numpy.roll`
(periodic wrap-around is exactly the boundary condition we need).
"""

from __future__ import annotations

import numpy as np


def laplacian_periodic(field: np.ndarray, spacing) -> np.ndarray:
    """7-point periodic Laplacian of ``field`` with per-axis spacings."""
    spacing = np.asarray(spacing, dtype=float).reshape(3)
    out = np.zeros_like(field, dtype=float)
    for axis in range(3):
        h2 = spacing[axis] ** 2
        out += (
            np.roll(field, 1, axis=axis)
            + np.roll(field, -1, axis=axis)
            - 2.0 * field
        ) / h2
    return out


def laplacian_stencil_apply(field: np.ndarray, spacing) -> np.ndarray:
    """Alias kept for API symmetry with higher-order stencils."""
    return laplacian_periodic(field, spacing)


def laplacian_diagonal(spacing) -> float:
    """The diagonal coefficient of the 7-point Laplacian."""
    spacing = np.asarray(spacing, dtype=float).reshape(3)
    return float(-2.0 * np.sum(1.0 / spacing**2))


def jacobi_smooth(
    field: np.ndarray,
    rhs: np.ndarray,
    spacing,
    sweeps: int = 2,
    omega: float = 0.8,
) -> np.ndarray:
    """Damped-Jacobi smoothing for ``∇²u = rhs``."""
    diag = laplacian_diagonal(spacing)
    u = field
    for _ in range(sweeps):
        resid = rhs - laplacian_periodic(u, spacing)
        u = u + omega * resid / diag
    return u


def redblack_gauss_seidel(
    field: np.ndarray,
    rhs: np.ndarray,
    spacing,
    sweeps: int = 2,
) -> np.ndarray:
    """Red-black Gauss–Seidel smoothing (vectorized via parity masks)."""
    spacing = np.asarray(spacing, dtype=float).reshape(3)
    inv_h2 = 1.0 / spacing**2
    diag = -2.0 * np.sum(inv_h2)
    n0, n1, n2 = field.shape
    i, j, k = np.indices(field.shape)
    parity = (i + j + k) % 2
    u = field.copy()
    for _ in range(sweeps):
        for color in (0, 1):
            neigh = np.zeros_like(u)
            for axis in range(3):
                neigh += inv_h2[axis] * (
                    np.roll(u, 1, axis=axis) + np.roll(u, -1, axis=axis)
                )
            mask = parity == color
            u[mask] = (rhs[mask] - neigh[mask]) / diag
    return u


def residual(field: np.ndarray, rhs: np.ndarray, spacing) -> np.ndarray:
    """r = rhs - ∇²u."""
    return rhs - laplacian_periodic(field, spacing)
