"""Full Multigrid (FMG): nested iteration from the coarsest level up.

FMG solves the Poisson problem to discretization accuracy in O(N) work with
*no* initial guess: the problem is first solved on the coarsest grid, the
solution prolongated and refined by one or two V-cycles per level.  This is
the textbook complement to the plain V-cycle driver of
:mod:`repro.multigrid.poisson` — and the natural cold-start companion to
its warm-started QMD usage.
"""

from __future__ import annotations

import numpy as np

from repro.dft.grid import RealSpaceGrid
from repro.multigrid.poisson import MultigridPoisson
from repro.multigrid.transfer import full_weighting_restrict, trilinear_prolong


def fmg_solve(
    grid: RealSpaceGrid,
    rho: np.ndarray,
    vcycles_per_level: int = 1,
    pre_sweeps: int = 2,
    post_sweeps: int = 2,
    min_size: int = 4,
) -> np.ndarray:
    """Solve ∇²V = -4πρ by full multigrid; returns a zero-mean potential."""
    solver = MultigridPoisson(grid, pre_sweeps, post_sweeps, min_size)
    hier = solver.hierarchy
    rhs = -4.0 * np.pi * (rho - float(np.mean(rho)))

    # restrict the right-hand side down the hierarchy
    rhs_levels = [rhs]
    for _ in range(hier.nlevels - 1):
        coarse = full_weighting_restrict(rhs_levels[-1])
        coarse -= float(np.mean(coarse))
        rhs_levels.append(coarse)

    # coarsest solve, then prolong + refine level by level
    u = solver._coarse_solve(rhs_levels[-1], hier.nlevels - 1)
    for level in range(hier.nlevels - 2, -1, -1):
        u = trilinear_prolong(u)
        for _ in range(vcycles_per_level):
            u = solver._vcycle(u, rhs_levels[level], level)
    u -= float(np.mean(u))
    return u


def fmg_then_polish(
    grid: RealSpaceGrid,
    rho: np.ndarray,
    tol: float = 1e-8,
    max_cycles: int = 20,
) -> np.ndarray:
    """FMG initialization followed by V-cycles to a requested tolerance."""
    solver = MultigridPoisson(grid)
    u0 = fmg_solve(grid, rho)
    return solver.solve(rho, v0=u0, tol=tol, max_cycles=max_cycles)
