"""Inter-grid transfer operators: full-weighting restriction and trilinear
prolongation on periodic grids with even sizes.
"""

from __future__ import annotations

import numpy as np


def full_weighting_restrict(fine: np.ndarray) -> np.ndarray:
    """Restrict a fine field to the coarse grid (half the points per axis).

    Full weighting: the coarse value is the 27-point average with trilinear
    weights (separable [1/4, 1/2, 1/4] per axis), implemented as three 1-D
    periodic convolutions followed by decimation.
    """
    if any(n % 2 for n in fine.shape):
        raise ValueError(f"fine grid must have even shape, got {fine.shape}")
    out = fine
    for axis in range(3):
        out = (
            0.25 * np.roll(out, 1, axis=axis)
            + 0.5 * out
            + 0.25 * np.roll(out, -1, axis=axis)
        )
    return out[::2, ::2, ::2].copy()


def trilinear_prolong(coarse: np.ndarray) -> np.ndarray:
    """Prolongate a coarse field to the doubled grid by trilinear interpolation.

    The adjoint (up to scaling) of :func:`full_weighting_restrict`:
    coarse points inject, midpoints average their periodic neighbors.
    """
    shape = tuple(2 * n for n in coarse.shape)
    out = np.zeros(shape, dtype=coarse.dtype)
    out[::2, ::2, ::2] = coarse
    # interpolate along each axis in turn
    for axis in range(3):
        odd = [slice(None)] * 3
        even = [slice(None)] * 3
        odd[axis] = slice(1, None, 2)
        even[axis] = slice(0, None, 2)
        shifted = np.roll(out[tuple(even)], -1, axis=axis)
        out[tuple(odd)] = 0.5 * (out[tuple(even)] + shifted)
    return out
