"""Geometric multigrid solver for the periodic Poisson problem
``∇²V = -4πρ`` (the Hartree potential of Sec. 3.2).

The periodic problem is singular (the mean of V is free; solvability
requires a zero-mean source).  We therefore project the source to zero mean
— physically the neutralizing background — and return a zero-mean potential,
matching the reciprocal-space convention ``V_H(G=0) = 0`` used everywhere
else in the package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft.grid import RealSpaceGrid
from repro.multigrid.hierarchy import GridHierarchy
from repro.multigrid.stencils import (
    redblack_gauss_seidel,
    residual,
)
from repro.multigrid.transfer import full_weighting_restrict, trilinear_prolong


def fft_poisson(grid: RealSpaceGrid, rho: np.ndarray) -> np.ndarray:
    """Spectral reference solution of ∇²V = -4πρ (zero-mean, exact)."""
    rho_g = grid.fft(rho)
    g2 = grid.g2()
    vg = np.zeros_like(rho_g)
    nz = g2 > 0
    vg[nz] = 4.0 * np.pi * rho_g[nz] / g2[nz]
    return grid.ifft(vg).real


@dataclass
class MGStats:
    """Convergence record of one solve."""

    cycles: int
    residual_norms: list[float]
    converged: bool


class MultigridPoisson:
    """V-cycle multigrid for the periodic Poisson equation.

    Parameters
    ----------
    grid:
        The finest :class:`RealSpaceGrid`.
    pre_sweeps, post_sweeps:
        Red-black Gauss–Seidel smoothing sweeps per level.
    min_size:
        Coarsest-level size per axis; solved directly by FFT.
    """

    def __init__(
        self,
        grid: RealSpaceGrid,
        pre_sweeps: int = 2,
        post_sweeps: int = 2,
        min_size: int = 4,
        instrumentation=None,
        sanitize=None,
    ) -> None:
        self.grid = grid
        self.hierarchy = GridHierarchy(grid.lengths, grid.shape, min_size)
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps
        self.last_stats: MGStats | None = None
        #: optional Instrumentation facade; records ``poisson.*`` telemetry
        self.instrumentation = instrumentation
        #: optional :class:`repro.sanitize.Sanitizers` bundle; the numerics
        #: slot checks each solve's source and solution for NaN/Inf
        self.sanitize = sanitize

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        rho: np.ndarray,
        v0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_cycles: int = 30,
    ) -> np.ndarray:
        """Solve ∇²V = -4πρ to relative residual ``tol``.

        ``v0`` (e.g. the previous SCF iteration's potential) warm-starts the
        cycle — the standard QMD trick for O(1) cycles per step.
        """
        ins = self.instrumentation
        san = self.sanitize
        if san is not None and san.numerics is not None:
            san.numerics.check("rho", rho, where="poisson.solve")
        if ins is not None:
            t0 = ins.tracer.now()
        rhs = -4.0 * np.pi * (rho - float(np.mean(rho)))
        u = np.zeros_like(rhs) if v0 is None else v0 - float(np.mean(v0))
        rhs_norm = float(np.linalg.norm(rhs)) or 1.0
        norms: list[float] = []
        converged = False
        cycles = 0
        for cycles in range(1, max_cycles + 1):
            u = self._vcycle(u, rhs, 0)
            u -= float(np.mean(u))
            r = residual(u, rhs, self.hierarchy.spacing(0))
            rel = float(np.linalg.norm(r)) / rhs_norm
            norms.append(rel)
            if rel < tol:
                converged = True
                break
        self.last_stats = MGStats(cycles, norms, converged)
        if ins is not None:
            ins.counter("poisson.vcycles").inc(cycles)
            ins.counter("poisson.solves").inc()
            ins.series("poisson.residual").extend(norms)
            ins.gauge("poisson.warm_start").set(0.0 if v0 is None else 1.0)
            ins.tracer.record_complete(
                "poisson.solve", ins.tracer.now() - t0, category="poisson",
                cycles=cycles, converged=converged,
                warm_start=v0 is not None,
                grid_points=int(np.prod(self.grid.shape)),
                sweeps=self.pre_sweeps + self.post_sweeps,
            )
            ins.log.debug(
                "multigrid solve",
                extra={"cycles": cycles, "converged": converged,
                       "final_residual": norms[-1] if norms else None},
            )
            if ins.health is not None:
                ins.health.observe(
                    "solver.convergence", solver="poisson.multigrid",
                    converged=converged, iterations=cycles,
                    residual=norms[-1] if norms else None,
                )
        if san is not None and san.numerics is not None:
            san.numerics.check("v_hartree", u, where="poisson.solve")
        return u

    # -- internals --------------------------------------------------------------

    def _vcycle(self, u: np.ndarray, rhs: np.ndarray, level: int) -> np.ndarray:
        spacing = self.hierarchy.spacing(level)
        if level == self.hierarchy.nlevels - 1:
            return self._coarse_solve(rhs, level)
        u = redblack_gauss_seidel(u, rhs, spacing, self.pre_sweeps)
        r = residual(u, rhs, spacing)
        r_coarse = full_weighting_restrict(r)
        r_coarse -= float(np.mean(r_coarse))
        e_coarse = self._vcycle(np.zeros_like(r_coarse), r_coarse, level + 1)
        u = u + trilinear_prolong(e_coarse)
        u = redblack_gauss_seidel(u, rhs, spacing, self.post_sweeps)
        return u

    def _coarse_solve(self, rhs: np.ndarray, level: int) -> np.ndarray:
        """Exact periodic solve on the coarsest level via FFT of the stencil."""
        shape = rhs.shape
        spacing = self.hierarchy.spacing(level)
        # Eigenvalues of the 7-point periodic Laplacian.
        eig = np.zeros(shape, dtype=float)
        for axis in range(3):
            k = np.fft.fftfreq(shape[axis]) * 2.0 * np.pi
            lam = (2.0 * np.cos(k) - 2.0) / spacing[axis] ** 2
            sl = [None, None, None]
            sl[axis] = slice(None)
            eig = eig + lam[tuple(sl)]
        rhs_hat = np.fft.fftn(rhs - float(np.mean(rhs)))
        u_hat = np.zeros_like(rhs_hat)
        nz = np.abs(eig) > 1e-14
        u_hat[nz] = rhs_hat[nz] / eig[nz]
        return np.fft.ifftn(u_hat).real


def hartree_potential_multigrid(
    grid: RealSpaceGrid,
    rho: np.ndarray,
    v0: np.ndarray | None = None,
    tol: float = 1e-8,
) -> np.ndarray:
    """Drop-in multigrid replacement for
    :func:`repro.dft.hartree.hartree_potential`.

    Note: the spectral and finite-difference Laplacians differ at O(h²), so
    this agrees with the FFT Hartree potential to discretization error, not
    machine precision — exactly the trade the paper's GSLF design makes.
    """
    solver = MultigridPoisson(grid)
    return solver.solve(rho, v0=v0, tol=tol)
