"""The multigrid level hierarchy — the octree abstraction of Fig. 1(a).

Each level halves the grid per axis.  The hierarchy also exposes the
per-level data volumes, which the parallel cost model uses to charge the
tree-topology communication of the inter-domain (global) solve: volume
decays by 8× per level, so the total up-tree traffic is geometrically
bounded — the paper's metascalability condition.
"""

from __future__ import annotations

import numpy as np


class GridHierarchy:
    """Shapes and spacings of a periodic multigrid hierarchy."""

    def __init__(self, lengths, finest_shape, min_size: int = 4) -> None:
        self.lengths = np.asarray(lengths, dtype=float).reshape(3)
        shape = tuple(int(n) for n in np.asarray(finest_shape).reshape(3))
        if any(n < min_size for n in shape):
            raise ValueError(f"finest grid {shape} below min size {min_size}")
        self.shapes: list[tuple[int, int, int]] = [shape]
        while all(n % 2 == 0 and n // 2 >= min_size for n in self.shapes[-1]):
            self.shapes.append(tuple(n // 2 for n in self.shapes[-1]))

    @property
    def nlevels(self) -> int:
        return len(self.shapes)

    def spacing(self, level: int) -> np.ndarray:
        return self.lengths / np.array(self.shapes[level], dtype=float)

    def points(self, level: int) -> int:
        return int(np.prod(self.shapes[level]))

    def level_volumes(self) -> list[int]:
        """Grid-point counts per level (finest first)."""
        return [self.points(lv) for lv in range(self.nlevels)]

    def total_work(self) -> int:
        """Σ points over levels — bounded by 8/7 of the finest level."""
        return sum(self.level_volumes())
