"""Real-space multigrid Poisson solver — the globally scalable half of the
GSLF electronic-structure solver (Sec. 3.2).

Solves ``∇²V_H = -4πρ`` on a periodic grid with a geometric multigrid
V-cycle: red-black Gauss–Seidel (or damped-Jacobi) smoothing, full-weighting
restriction, trilinear prolongation, and an FFT coarse solve.  The grid
hierarchy is the locality-preserving octree of Fig. 1(a)/Fig. 3: each level
halves the resolution, and communication volume shrinks geometrically going
up — the property the paper's metascalability argument rests on.
"""

from repro.multigrid.poisson import MultigridPoisson, fft_poisson
from repro.multigrid.stencils import laplacian_periodic, laplacian_stencil_apply
from repro.multigrid.transfer import full_weighting_restrict, trilinear_prolong
from repro.multigrid.hierarchy import GridHierarchy
from repro.multigrid.fmg import fmg_solve, fmg_then_polish

__all__ = [
    "MultigridPoisson",
    "fft_poisson",
    "laplacian_periodic",
    "laplacian_stencil_apply",
    "full_weighting_restrict",
    "trilinear_prolong",
    "GridHierarchy",
    "fmg_solve",
    "fmg_then_polish",
]
