"""Trajectory observables: radial distribution, mean-square displacement,
velocity autocorrelation, and diffusion constants.

These are the standard QMD analysis tools behind the paper's structural
claims (bond formation around Al, Li dissolution into the solvent shell).
"""

from __future__ import annotations

import numpy as np

from repro.systems.configuration import Configuration


def radial_distribution(
    config: Configuration,
    species_a: str | None = None,
    species_b: str | None = None,
    r_max: float | None = None,
    nbins: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """g(r) between two species (or all atoms); returns (r_centers, g).

    Normalized so g → 1 for an ideal gas at the same partial density.
    """
    if r_max is None:
        r_max = float(np.min(config.cell) / 2.0)
    if r_max <= 0 or nbins < 2:
        raise ValueError("need positive r_max and nbins >= 2")
    idx_a = np.array(
        [i for i, s in enumerate(config.symbols) if species_a in (None, s)]
    )
    idx_b = np.array(
        [i for i, s in enumerate(config.symbols) if species_b in (None, s)]
    )
    if len(idx_a) == 0 or len(idx_b) == 0:
        raise ValueError("empty species selection")
    pos = config.wrapped_positions()
    diff = pos[idx_b][None, :, :] - pos[idx_a][:, None, :]
    diff -= config.cell * np.round(diff / config.cell)
    r = np.linalg.norm(diff, axis=-1).ravel()
    r = r[(r > 1e-9) & (r < r_max)]

    edges = np.linspace(0.0, r_max, nbins + 1)
    counts, _ = np.histogram(r, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    pair_density = len(idx_a) * len(idx_b) / config.volume
    if species_a == species_b or (species_a is None and species_b is None):
        pair_density -= len(idx_a) / config.volume  # exclude self pairs
    expected = shell_volumes * pair_density
    g = np.where(expected > 0, counts / expected, 0.0)
    return centers, g


def mean_square_displacement(
    position_frames: list[np.ndarray], cell: np.ndarray
) -> np.ndarray:
    """MSD(t) relative to the first frame, with unwrapped trajectories.

    Frames must be closely spaced (per-step displacement < half the cell)
    so minimum-image unwrapping is unambiguous.
    """
    if len(position_frames) < 2:
        raise ValueError("need at least two frames")
    cell = np.asarray(cell, dtype=float).reshape(3)
    unwrapped = [np.asarray(position_frames[0], dtype=float)]
    for frame in position_frames[1:]:
        step = frame - (unwrapped[-1] % cell)
        step -= cell * np.round(step / cell)
        unwrapped.append(unwrapped[-1] + step)
    ref = unwrapped[0]
    return np.array(
        [float(np.mean(np.sum((u - ref) ** 2, axis=1))) for u in unwrapped]
    )


def diffusion_constant(msd: np.ndarray, timestep: float, skip: int = 0) -> float:
    """Einstein relation: D = slope(MSD)/6 from a linear fit."""
    if len(msd) - skip < 2:
        raise ValueError("not enough MSD points after skip")
    t = np.arange(len(msd)) * timestep
    slope, _ = np.polyfit(t[skip:], msd[skip:], 1)
    return float(slope / 6.0)


def velocity_autocorrelation(velocity_frames: list[np.ndarray]) -> np.ndarray:
    """Normalized VACF(t) = <v(0)·v(t)> / <v(0)·v(0)>."""
    if len(velocity_frames) < 1:
        raise ValueError("need at least one frame")
    v0 = np.asarray(velocity_frames[0], dtype=float)
    norm = float(np.mean(np.sum(v0 * v0, axis=1)))
    if norm <= 0:
        raise ValueError("zero initial velocities")
    return np.array(
        [float(np.mean(np.sum(v0 * np.asarray(v), axis=1))) / norm
         for v in velocity_frames]
    )


def coordination_number(
    config: Configuration, center_species: str, neighbor_species: str, cutoff: float
) -> float:
    """Average number of ``neighbor_species`` atoms within ``cutoff`` of a
    ``center_species`` atom (e.g. O around Al — the oxide-shell growth)."""
    centers = [i for i, s in enumerate(config.symbols) if s == center_species]
    neighbors = [i for i, s in enumerate(config.symbols) if s == neighbor_species]
    if not centers or not neighbors:
        return 0.0
    pos = config.wrapped_positions()
    diff = pos[neighbors][None, :, :] - pos[centers][:, None, :]
    diff -= config.cell * np.round(diff / config.cell)
    r = np.linalg.norm(diff, axis=-1)
    count = np.sum((r > 1e-9) & (r <= cutoff))
    return float(count) / len(centers)
