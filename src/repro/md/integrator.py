"""Velocity-Verlet integration and kinetic diagnostics (atomic units)."""

from __future__ import annotations

import numpy as np

from repro.constants import KELVIN_TO_HARTREE
from repro.systems.configuration import Configuration


def kinetic_energy(config: Configuration) -> float:
    """Σ ½ m v² (Hartree)."""
    if config.velocities is None:
        return 0.0
    return float(0.5 * np.sum(config.masses[:, None] * config.velocities**2))


def temperature(config: Configuration) -> float:
    """Instantaneous temperature in Kelvin: (2/3) E_kin / (N k_B)."""
    n = config.natoms
    if n == 0 or config.velocities is None:
        return 0.0
    ekin = kinetic_energy(config)
    return float(2.0 * ekin / (3.0 * n * KELVIN_TO_HARTREE))


def initialize_velocities(
    config: Configuration, target_kelvin: float, seed: int = 0
) -> None:
    """Maxwell–Boltzmann velocities at the target temperature, zero total
    momentum, rescaled to hit the target exactly."""
    rng = np.random.default_rng(seed)
    kt = target_kelvin * KELVIN_TO_HARTREE
    sigma = np.sqrt(kt / config.masses)[:, None]
    v = rng.normal(size=(config.natoms, 3)) * sigma
    # remove center-of-mass drift
    p = (config.masses[:, None] * v).sum(axis=0)
    v -= p / config.masses.sum()
    config.velocities = v
    t_now = temperature(config)
    if t_now > 0:
        config.velocities *= np.sqrt(target_kelvin / t_now)


class VelocityVerlet:
    """The standard symplectic integrator.

    ``forces_fn(config) -> (forces, potential_energy)``; the integrator owns
    the half-kick / drift / half-kick sequence and wraps positions.
    """

    def __init__(self, forces_fn, timestep: float) -> None:
        if timestep <= 0:
            raise ValueError("timestep must be positive")
        self.forces_fn = forces_fn
        self.dt = float(timestep)
        self._cached_forces: np.ndarray | None = None
        self.potential_energy: float = np.nan

    def step(self, config: Configuration) -> None:
        """Advance the configuration by one timestep in place."""
        if config.velocities is None:
            config.velocities = np.zeros_like(config.positions)
        m = config.masses[:, None]
        if self._cached_forces is None:
            self._cached_forces, self.potential_energy = self.forces_fn(config)
        f0 = self._cached_forces
        config.velocities = config.velocities + 0.5 * self.dt * f0 / m
        config.positions = np.mod(
            config.positions + self.dt * config.velocities, config.cell
        )
        f1, self.potential_energy = self.forces_fn(config)
        config.velocities = config.velocities + 0.5 * self.dt * f1 / m
        self._cached_forces = f1

    def total_energy(self, config: Configuration) -> float:
        return kinetic_energy(config) + self.potential_energy

    def invalidate_cache(self) -> None:
        """Call after externally modifying positions (forces recomputed)."""
        self._cached_forces = None
