"""Trajectory I/O: extended-XYZ text frames and the compressed binary format.

The production pipeline of Sec. 4.2 writes atomic coordinates through the
collective-I/O layer with the space-filling-curve compressor; this module
provides the serializer pair (human-readable XYZ for small runs, compressed
frames for production) and round-trip readers.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from repro.compression.codec import CompressedFrame, compress_frame, decompress_frame
from repro.systems.configuration import Configuration


# ---------------------------------------------------------------------------
# extended XYZ
# ---------------------------------------------------------------------------

def write_xyz_frame(config: Configuration, comment: str = "") -> str:
    """One extended-XYZ frame (with the cell in the comment line)."""
    lines = [str(config.natoms)]
    cell = " ".join(f"{x:.10f}" for x in config.cell)
    comment = comment.replace("\n", " ")
    lines.append(f'Lattice="{cell}" {comment}'.rstrip())
    for sym, pos in zip(config.symbols, config.positions):
        lines.append(
            f"{sym} {pos[0]:.10f} {pos[1]:.10f} {pos[2]:.10f}"
        )
    return "\n".join(lines) + "\n"


def read_xyz_frame(text: str) -> Configuration:
    """Parse one frame produced by :func:`write_xyz_frame`."""
    stream = io.StringIO(text)
    natoms = int(stream.readline())
    header = stream.readline()
    if 'Lattice="' not in header:
        raise ValueError("missing Lattice specification")
    cell_str = header.split('Lattice="')[1].split('"')[0]
    cell = np.array([float(x) for x in cell_str.split()])
    symbols, positions = [], []
    for _ in range(natoms):
        parts = stream.readline().split()
        if len(parts) < 4:
            raise ValueError("truncated XYZ frame")
        symbols.append(parts[0])
        positions.append([float(x) for x in parts[1:4]])
    return Configuration(symbols, np.array(positions), cell)


class XYZTrajectoryWriter:
    """Appends frames to an (in-memory or on-disk) XYZ trajectory."""

    def __init__(self, path: str | pathlib.Path | None = None) -> None:
        self.path = pathlib.Path(path) if path else None
        self._frames: list[str] = []

    def write(self, config: Configuration, comment: str = "") -> None:
        frame = write_xyz_frame(config, comment)
        self._frames.append(frame)
        if self.path is not None:
            with open(self.path, "a") as fh:
                fh.write(frame)

    @property
    def nframes(self) -> int:
        return len(self._frames)

    def text(self) -> str:
        return "".join(self._frames)


def read_xyz_trajectory(text: str) -> list[Configuration]:
    """Split a multi-frame XYZ file into configurations."""
    lines = text.splitlines()
    out: list[Configuration] = []
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        natoms = int(lines[i])
        chunk = "\n".join(lines[i : i + natoms + 2]) + "\n"
        out.append(read_xyz_frame(chunk))
        i += natoms + 2
    return out


# ---------------------------------------------------------------------------
# compressed trajectories
# ---------------------------------------------------------------------------

class CompressedTrajectory:
    """A sequence of SFC-compressed coordinate frames with fixed topology."""

    def __init__(
        self, symbols: list[str], cell: np.ndarray, bits: int = 12,
        curve: str = "hilbert",
    ) -> None:
        self.symbols = list(symbols)
        self.cell = np.asarray(cell, dtype=float).reshape(3)
        self.bits = bits
        self.curve = curve
        self.frames: list[CompressedFrame] = []

    def append(self, positions: np.ndarray) -> None:
        if len(positions) != len(self.symbols):
            raise ValueError("atom count changed between frames")
        self.frames.append(
            compress_frame(positions, self.cell, self.bits, self.curve)
        )

    def __len__(self) -> int:
        return len(self.frames)

    def configuration(self, index: int) -> Configuration:
        pos = decompress_frame(self.frames[index])
        return Configuration(self.symbols, pos, self.cell)

    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.frames)

    def compression_ratio(self) -> float:
        raw = len(self.frames) * len(self.symbols) * 24
        return raw / max(self.nbytes(), 1)
