"""The QMD driver: MD with quantum-mechanical (or surrogate) forces.

This is the production loop of Sec. 6: at every MD step the electronic
structure is re-solved (warm-started from the previous step's density and
converged orbitals — the LDC engine keeps a persistent
:class:`~repro.core.workspace.LDCWorkspace` for the structural reuse) and
Hellmann–Feynman forces drive velocity Verlet, with an optional thermostat.
Engines are pluggable:

* :class:`LDCEngine` — the O(N) LDC-DFT solver (the paper's engine);
* :class:`SCFEngine` — the conventional O(N³) solver (the verification
  baseline of Sec. 5.5);
* any object with ``forces(config) -> (forces, energy, scf_iterations)``.

The driver records the per-step SCF iteration counts, so the paper's
time-to-solution accounting (atoms × SCF iterations / second) can be
reproduced on real runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ATU_TO_FS
from repro.md.integrator import VelocityVerlet, kinetic_energy, temperature
from repro.systems.configuration import Configuration


@dataclass
class QMDFrame:
    """One recorded MD step."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float
    scf_iterations: int
    positions: np.ndarray | None = None

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


class LDCEngine:
    """Force engine backed by :func:`repro.core.ldc.run_ldc`.

    ``instrumentation`` (optional) is threaded into every ``run_ldc`` call;
    the engine also records warm-start telemetry — whether each solve was
    seeded cold, from the previous step's density, or from the previous
    step's converged orbitals, the QMD tricks the paper's time-to-solution
    numbers depend on.

    ``use_workspace`` (default on) gives the engine a persistent
    :class:`~repro.core.workspace.LDCWorkspace`: the grid, decomposition,
    partition of unity, per-domain bases, and Ewald structure are built once
    per cell, and each step's domain solves warm-start from the previous
    step's converged ψ.  A cell change between ``forces()`` calls resets the
    workspace and the cached density (cold start, never a stale-shape crash).
    """

    def __init__(
        self, options=None, instrumentation=None, use_workspace: bool = True,
        sanitize=None,
    ) -> None:
        from repro.core.ldc import LDCOptions
        from repro.core.workspace import LDCWorkspace

        self.options = options or LDCOptions()
        self.instrumentation = instrumentation
        #: optional :class:`repro.sanitize.Sanitizers` bundle threaded into
        #: every solve (None defers to REPRO_SANITIZE)
        self.sanitize = sanitize
        self.workspace = LDCWorkspace() if use_workspace else None
        self._rho = None
        self._cell = None

    def forces(self, config: Configuration):
        from repro.core.ldc import run_ldc

        self._guard_cell(config)
        ins = self.instrumentation
        if ins is not None:
            if self.workspace is not None and self.workspace.has_orbitals:
                start = "orbital"
            elif self._rho is not None:
                start = "density"
            else:
                start = "cold"
            _record_warm_start(ins, "ldc", start)
        result = run_ldc(
            config, self.options, compute_forces=True, rho0=self._rho,
            instrumentation=ins, workspace=self.workspace,
            sanitize=self.sanitize,
        )
        self._rho = result.density
        return result.forces, result.energy, result.iterations

    def _guard_cell(self, config: Configuration) -> None:
        cell = np.asarray(config.cell, dtype=float).reshape(3)
        if self._cell is not None and not np.array_equal(self._cell, cell):
            self._rho = None  # previous density lives on a stale grid
            if self.workspace is not None:
                self.workspace.reset()
        self._cell = cell.copy()


class SCFEngine:
    """Force engine backed by the conventional O(N³) SCF.

    Warm-starts each step from the previous step's density *and* converged
    orbitals (``use_orbital_warm_start=False`` disables the latter); a cell
    change between ``forces()`` calls drops both caches instead of feeding
    a stale-shaped array into ``run_scf``.
    """

    def __init__(
        self, options=None, instrumentation=None,
        use_orbital_warm_start: bool = True, sanitize=None,
    ) -> None:
        from repro.dft.scf import SCFOptions

        self.options = options or SCFOptions()
        self.instrumentation = instrumentation
        #: optional :class:`repro.sanitize.Sanitizers` bundle threaded into
        #: every solve (None defers to REPRO_SANITIZE)
        self.sanitize = sanitize
        self.use_orbital_warm_start = use_orbital_warm_start
        self._rho = None
        self._psi = None
        self._cell = None

    def forces(self, config: Configuration):
        from repro.dft.forces import forces_from_scf
        from repro.dft.scf import run_scf

        self._guard_cell(config)
        ins = self.instrumentation
        if ins is not None:
            if self._psi is not None:
                start = "orbital"
            elif self._rho is not None:
                start = "density"
            else:
                start = "cold"
            _record_warm_start(ins, "pw", start)
        result = run_scf(
            config, self.options, rho0=self._rho, instrumentation=ins,
            psi0=self._psi, sanitize=self.sanitize,
        )
        self._rho = result.density
        if self.use_orbital_warm_start:
            self._psi = result.orbitals
        f = forces_from_scf(config, result)
        return f, result.energy, result.iterations

    def _guard_cell(self, config: Configuration) -> None:
        cell = np.asarray(config.cell, dtype=float).reshape(3)
        if self._cell is not None and not np.array_equal(self._cell, cell):
            self._rho = None  # previous density lives on a stale grid
            self._psi = None  # previous orbitals live on a stale basis
        self._cell = cell.copy()


def _record_warm_start(ins, engine: str, start: str) -> None:
    """Count electronic solves by warm-start tier.

    ``start`` is ``"cold"`` (random ψ, model density), ``"density"``
    (previous step's ρ only), or ``"orbital"`` (previous step's converged
    ψ — implies the density warm start too).
    """
    ins.counter("qmd.solves", engine=engine, start=start).inc()


class QMDDriver:
    """Couples an engine, the integrator, and an optional thermostat."""

    def __init__(
        self,
        engine,
        timestep: float,
        thermostat=None,
        record_positions: bool = False,
        instrumentation=None,
    ) -> None:
        self.engine = engine
        self.thermostat = thermostat
        self.record_positions = record_positions
        #: optional Instrumentation facade; records a ``qmd.step`` span and
        #: per-step SCF-iteration/temperature/energy series.  If the engine
        #: has no instrumentation of its own, the driver's is shared so the
        #: whole stack writes one timeline.
        self.instrumentation = instrumentation
        if (
            instrumentation is not None
            and getattr(engine, "instrumentation", None) is None
            and hasattr(engine, "instrumentation")
        ):
            engine.instrumentation = instrumentation
        self._scf_iters_last = 0
        self.timestep = timestep
        self.integrator = VelocityVerlet(self._forces_wrapper, timestep)
        self.frames: list[QMDFrame] = []

    def _forces_wrapper(self, config: Configuration):
        f, e, iters = self.engine.forces(config)
        self._scf_iters_last += iters
        return f, e

    def run(self, config: Configuration, nsteps: int) -> list[QMDFrame]:
        """Advance ``nsteps``; returns (and accumulates) the recorded frames."""
        ins = self.instrumentation
        if ins is not None and ins.recorder is not None:
            ins.recorder.record_invocation(
                "qmd.run",
                getattr(self.engine, "options", None),
                engine=type(self.engine).__name__,
                timestep=self.timestep,
                nsteps=nsteps,
                natoms=config.natoms,
            )
            try:
                return self._run(config, nsteps, ins)
            except Exception as exc:
                ins.recorder.record_failure(exc)
                raise
        return self._run(config, nsteps, ins)

    def _run(self, config: Configuration, nsteps: int, ins) -> list[QMDFrame]:
        for step in range(nsteps):
            self._scf_iters_last = 0
            if ins is None:
                self._advance(config)
                self.frames.append(self._frame(config))
                continue
            # the per-step telemetry (series, health verdicts) fires while
            # the qmd.step span is still open, so a health FAIL dumps with
            # the failing step on the flight recorder's open-span stack
            with ins.span(
                "qmd.step", category="qmd", step=len(self.frames)
            ) as span:
                self._advance(config)
                span.attrs["scf_iterations"] = self._scf_iters_last
                frame = self._frame(config)
                self.frames.append(frame)
                ins.series("qmd.scf_iterations").append(frame.scf_iterations)
                ins.series("qmd.temperature").append(frame.temperature)
                ins.series("qmd.total_energy").append(frame.total_energy)
                ins.counter("qmd.steps").inc()
                ins.log.debug(
                    "qmd step",
                    extra={"step": frame.step,
                           "scf_iterations": frame.scf_iterations,
                           "temperature": frame.temperature,
                           "total_energy": frame.total_energy},
                )
                if ins.health is not None:
                    ins.health.observe(
                        "qmd.step",
                        step=frame.step,
                        total_energy=frame.total_energy,
                        elapsed_fs=frame.step * self.timestep * ATU_TO_FS,
                        natoms=config.natoms,
                        temperature=frame.temperature,
                        nve=self.thermostat is None,
                        target_kelvin=getattr(self.thermostat, "target", None),
                    )
        return self.frames

    def _frame(self, config: Configuration) -> QMDFrame:
        return QMDFrame(
            step=len(self.frames),
            potential_energy=self.integrator.potential_energy,
            kinetic_energy=kinetic_energy(config),
            temperature=temperature(config),
            scf_iterations=self._scf_iters_last,
            positions=config.positions.copy()
            if self.record_positions
            else None,
        )

    def _advance(self, config: Configuration) -> None:
        self.integrator.step(config)
        if self.thermostat is not None:
            self.thermostat.apply(config)

    def total_scf_iterations(self) -> int:
        """Total SCF iterations over the trajectory — the paper's 129,208 for
        the 21,140-step production run."""
        return int(sum(f.scf_iterations for f in self.frames))

    def energy_drift(self) -> float:
        """|E_total(last) - E_total(first)| per atom-step (NVE diagnostic)."""
        if len(self.frames) < 2:
            return 0.0
        return abs(self.frames[-1].total_energy - self.frames[0].total_energy) / len(
            self.frames
        )
