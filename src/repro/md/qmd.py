"""The QMD driver: MD with quantum-mechanical (or surrogate) forces.

This is the production loop of Sec. 6: at every MD step the electronic
structure is re-solved (warm-started from the previous step's density and
converged orbitals — the LDC engine keeps a persistent
:class:`~repro.core.workspace.LDCWorkspace` for the structural reuse) and
Hellmann–Feynman forces drive velocity Verlet, with an optional thermostat.
Engines are pluggable:

* :class:`LDCEngine` — the O(N) LDC-DFT solver (the paper's engine);
* :class:`SCFEngine` — the conventional O(N³) solver (the verification
  baseline of Sec. 5.5);
* any object with ``forces(config) -> (forces, energy, scf_iterations)``.

The driver records the per-step SCF iteration counts, so the paper's
time-to-solution accounting (atoms × SCF iterations / second) can be
reproduced on real runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.constants import ATU_TO_FS
from repro.md.extrapolate import DomainHistory, subspace_residual
from repro.md.integrator import VelocityVerlet, kinetic_energy, temperature
from repro.systems.configuration import Configuration

if TYPE_CHECKING:
    from repro.core.advisor import BufferController, BufferControllerOptions


@dataclass
class QMDOptions:
    """MD-level solver-acceleration knobs, engine-agnostic.

    Both engines accept one of these via ``qmd_options=``; every field
    has an environment fallback so CI legs and production scripts can
    flip the accelerations without touching code.
    """

    #: ASPC history depth K: 1 = last-state warm start (the default),
    #: K >= 2 = time-reversible K-point extrapolation of ψ/ρ
    #: (:mod:`repro.md.extrapolate`).  ``None`` defers to
    #: ``$REPRO_ASPC_DEPTH``, then to the engine's options.
    history_depth: int | None = None
    #: run the Eq.-1 :class:`~repro.core.advisor.BufferController` loop
    #: (LDC engine only).  ``None`` defers to ``$REPRO_ADAPTIVE_BUFFER``.
    adaptive_buffer: bool | None = None
    #: thresholds for the controller; ``None`` = its defaults
    controller: BufferControllerOptions | None = None


def _resolve_history_depth(qmd_options: QMDOptions | None) -> int | None:
    """Explicit ``QMDOptions.history_depth`` beats ``$REPRO_ASPC_DEPTH``;
    ``None`` means "leave the engine options alone"."""
    if qmd_options is not None and qmd_options.history_depth is not None:
        return int(qmd_options.history_depth)
    env = os.environ.get("REPRO_ASPC_DEPTH", "").strip()
    if env:
        return int(env)  # a malformed value should fail loudly
    return None


def _resolve_adaptive_buffer(qmd_options: QMDOptions | None) -> bool:
    """Explicit ``QMDOptions.adaptive_buffer`` beats the env flag."""
    if qmd_options is not None and qmd_options.adaptive_buffer is not None:
        return bool(qmd_options.adaptive_buffer)
    return os.environ.get("REPRO_ADAPTIVE_BUFFER", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


@dataclass
class QMDFrame:
    """One recorded MD step."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float
    scf_iterations: int
    positions: np.ndarray | None = None

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


class LDCEngine:
    """Force engine backed by :func:`repro.core.ldc.run_ldc`.

    ``instrumentation`` (optional) is threaded into every ``run_ldc`` call;
    the engine also records warm-start telemetry — whether each solve was
    seeded cold, from the previous step's density, or from the previous
    step's converged orbitals, the QMD tricks the paper's time-to-solution
    numbers depend on.

    ``use_workspace`` (default on) gives the engine a persistent
    :class:`~repro.core.workspace.LDCWorkspace`: the grid, decomposition,
    partition of unity, per-domain bases, and Ewald structure are built once
    per cell, and each step's domain solves warm-start from the ASPC
    prediction over each domain's history window
    (``LDCOptions.history_depth``; depth 1 = the previous step's converged
    ψ).  A cell change between ``forces()`` calls resets the workspace and
    the cached density (cold start, never a stale-shape crash).

    ``qmd_options`` (:class:`QMDOptions`) layers the MD-level
    accelerations on top: a history depth override
    (``$REPRO_ASPC_DEPTH``) and the Eq.-1 adaptive-buffer loop
    (``$REPRO_ADAPTIVE_BUFFER``) — a
    :class:`~repro.core.advisor.BufferController` that watches the live
    boundary-error telemetry each step and re-tunes ``options.buffer``
    (the workspace detects the option change and rebuilds; the global
    density cache survives, so the restart is density-warm).
    """

    def __init__(
        self, options=None, instrumentation=None, use_workspace: bool = True,
        sanitize=None, qmd_options: QMDOptions | None = None,
    ) -> None:
        from repro.core.ldc import LDCOptions
        from repro.core.workspace import LDCWorkspace

        self.options = options or LDCOptions()
        depth = _resolve_history_depth(qmd_options)
        if depth is not None and depth != self.options.history_depth:
            self.options = replace(self.options, history_depth=depth)
        self.controller: BufferController | None = None
        if _resolve_adaptive_buffer(qmd_options):
            from repro.core.advisor import BufferController

            ctl = qmd_options.controller if qmd_options is not None else None
            self.controller = (
                BufferController(ctl) if ctl is not None
                else BufferController()
            )
        self.instrumentation = instrumentation
        #: optional :class:`repro.sanitize.Sanitizers` bundle threaded into
        #: every solve (None defers to REPRO_SANITIZE)
        self.sanitize = sanitize
        self.workspace = LDCWorkspace() if use_workspace else None
        self._rho = None
        #: newest-first window of converged global densities; at
        #: ``history_depth >= 2`` each step's ``rho0`` is the ASPC
        #: extrapolation over it (fewer density-mixing passes), at depth 1
        #: it degrades to the last-state reuse ``self._rho`` already gives
        self._rho_hist: list[np.ndarray] = []
        self._cell = None
        #: the first (cold) step's eigensolver-iteration count — the
        #: reference the per-step ``qmd.eig_iters_saved`` series is
        #: measured against
        self._cold_eig_iters: int | None = None

    def forces(self, config: Configuration):
        from repro.core.ldc import run_ldc

        self._guard_cell(config)
        ins = self.instrumentation
        if ins is not None:
            if self.workspace is not None and self.workspace.has_orbitals:
                start = "orbital"
            elif self._rho is not None:
                start = "density"
            else:
                start = "cold"
            _record_warm_start(ins, "ldc", start)
        result = run_ldc(
            config, self.options, compute_forces=True,
            rho0=self._predict_rho(), instrumentation=ins,
            workspace=self.workspace, sanitize=self.sanitize,
        )
        self._rho = result.density
        self._push_rho(result.density)
        if ins is not None:
            self._record_solver_cost(ins, result)
        if self.controller is not None:
            self._adapt_buffer(ins, result)
        return result.forces, result.energy, result.iterations

    def _predict_rho(self):
        """The global-density seed for the next solve.

        Depth 1 (or a too-short window): the last converged density —
        PR 4's warm start, bit-for-bit.  Depth ≥ 2: the ASPC field
        extrapolation over the window (clipped nonnegative; the mixer
        renormalizes the electron count).
        """
        depth = self.options.history_depth
        if depth <= 1 or len(self._rho_hist) < 2:
            return self._rho
        from repro.md.extrapolate import extrapolate_fields

        return extrapolate_fields(
            self._rho_hist[:depth], nonnegative=True
        )

    def _push_rho(self, rho) -> None:
        depth = self.options.history_depth
        if depth <= 1:
            self._rho_hist.clear()
            return
        if self._rho_hist and self._rho_hist[0].shape != rho.shape:
            self._rho_hist.clear()  # grid changed (e.g. buffer re-tune)
        self._rho_hist.insert(0, rho)
        del self._rho_hist[depth:]

    def _record_solver_cost(self, ins, result) -> None:
        """Per-step predictor/cost series for the run ledger: eigensolver
        iterations, iterations saved vs. the cold first step, and the
        (b, l*) the step ran at."""
        from repro.core.complexity import optimal_core_length

        ins.series("qmd.eig_iterations", engine="ldc").append(
            result.eig_iterations
        )
        if self._cold_eig_iters is None:
            self._cold_eig_iters = int(result.eig_iterations)
        else:
            ins.series("qmd.eig_iters_saved", engine="ldc").append(
                self._cold_eig_iters - int(result.eig_iterations)
            )
        nu = (
            self.controller.options.nu
            if self.controller is not None
            else 2.0
        )
        ins.series("ldc.buffer_b").append(self.options.buffer)
        ins.series("ldc.core_l").append(
            optimal_core_length(self.options.buffer, nu)
        )

    def _adapt_buffer(self, ins, result) -> None:
        """One Eq.-1 controller step on the live boundary-error telemetry.

        A changed decision re-binds ``self.options`` with the new buffer;
        the workspace notices the option-signature change on the next
        ``prepare`` and rebuilds (the density cache stays valid — the
        global grid does not depend on the buffer)."""
        if not result.boundary_errors:
            return
        assert self.controller is not None
        self.controller.observe(
            self.options.buffer, result.boundary_errors[-1]
        )
        decision = self.controller.propose(
            self.options.buffer, spacings=result.grid.spacing
        )
        if not decision.changed:
            return
        if ins is not None:
            ins.counter("ldc.buffer_adjustments").inc()
            ins.log.info(
                "adaptive buffer",
                extra={"engine": "ldc", "reason": decision.reason,
                       "buffer": decision.buffer,
                       "core_length": decision.core_length},
            )
        self.options = replace(self.options, buffer=decision.buffer)

    def _guard_cell(self, config: Configuration) -> None:
        cell = np.asarray(config.cell, dtype=float).reshape(3)
        if self._cell is not None and not np.array_equal(self._cell, cell):
            self._rho = None  # previous density lives on a stale grid
            self._rho_hist.clear()
            if self.workspace is not None:
                self.workspace.reset()
        self._cell = cell.copy()


class SCFEngine:
    """Force engine backed by the conventional O(N³) SCF.

    Warm-starts each step from the previous step's density *and* converged
    orbitals (``use_orbital_warm_start=False`` disables the latter); with
    ``qmd_options.history_depth >= 2`` (or ``$REPRO_ASPC_DEPTH``) it keeps
    a bounded :class:`~repro.md.extrapolate.DomainHistory` of converged
    (ψ, ρ) and seeds each solve from the ASPC prediction instead.  A cell
    change between ``forces()`` calls drops every cache, and the previous
    cell is also handed to ``run_scf(warm_cell=)`` so the solver applies
    the same deterministic fallback for any caller.
    """

    def __init__(
        self, options=None, instrumentation=None,
        use_orbital_warm_start: bool = True, sanitize=None,
        qmd_options: QMDOptions | None = None,
    ) -> None:
        from repro.dft.scf import SCFOptions

        self.options = options or SCFOptions()
        self.instrumentation = instrumentation
        #: optional :class:`repro.sanitize.Sanitizers` bundle threaded into
        #: every solve (None defers to REPRO_SANITIZE)
        self.sanitize = sanitize
        self.use_orbital_warm_start = use_orbital_warm_start
        self.history_depth = _resolve_history_depth(qmd_options) or 1
        #: ASPC window of converged (ψ, ρ) — only consulted at depth >= 2
        self._history = DomainHistory(depth=self.history_depth)
        self._rho = None
        self._psi = None
        self._cell = None
        self._cold_eig_iters: int | None = None

    def forces(self, config: Configuration):
        from repro.dft.forces import forces_from_scf
        from repro.dft.scf import run_scf

        prev_cell = self._cell
        self._guard_cell(config)
        ins = self.instrumentation
        if ins is not None:
            if self._psi is not None:
                start = "orbital"
            elif self._rho is not None:
                start = "density"
            else:
                start = "cold"
            _record_warm_start(ins, "pw", start)
        psi0, rho0 = self._psi, self._rho
        if self.history_depth > 1 and len(self._history):
            predicted = self._history.predict(
                self._history.key, depth=self.history_depth
            )
            if predicted is not None:
                psi0 = predicted[0]
                if predicted[2] is not None:
                    rho0 = predicted[2]
        result = run_scf(
            config, self.options, rho0=rho0, instrumentation=ins,
            psi0=psi0, sanitize=self.sanitize, warm_cell=prev_cell,
        )
        self._rho = result.density
        if self.use_orbital_warm_start:
            self._psi = result.orbitals
            if self.history_depth > 1:
                if ins is not None and (
                    self._history.last_prediction is not None
                ):
                    res = subspace_residual(
                        self._history.last_prediction, result.orbitals
                    )
                    if np.isfinite(res):
                        ins.series("scf.predictor_residual").append(res)
                self._history.last_prediction = None
                self._history.push(
                    (result.orbitals.shape,), result.orbitals, None,
                    result.density,
                )
        if ins is not None:
            ins.series("qmd.eig_iterations", engine="pw").append(
                result.eig_iterations
            )
            if self._cold_eig_iters is None:
                self._cold_eig_iters = int(result.eig_iterations)
            else:
                ins.series("qmd.eig_iters_saved", engine="pw").append(
                    self._cold_eig_iters - int(result.eig_iterations)
                )
        f = forces_from_scf(config, result)
        return f, result.energy, result.iterations

    def _guard_cell(self, config: Configuration) -> None:
        cell = np.asarray(config.cell, dtype=float).reshape(3)
        if self._cell is not None and not np.array_equal(self._cell, cell):
            self._rho = None  # previous density lives on a stale grid
            self._psi = None  # previous orbitals live on a stale basis
            self._history.clear()  # ASPC window spans the old cell
        self._cell = cell.copy()


def _record_warm_start(ins, engine: str, start: str) -> None:
    """Count electronic solves by warm-start tier.

    ``start`` is ``"cold"`` (random ψ, model density), ``"density"``
    (previous step's ρ only), or ``"orbital"`` (previous step's converged
    ψ — implies the density warm start too).
    """
    ins.counter("qmd.solves", engine=engine, start=start).inc()


class QMDDriver:
    """Couples an engine, the integrator, and an optional thermostat."""

    def __init__(
        self,
        engine,
        timestep: float,
        thermostat=None,
        record_positions: bool = False,
        instrumentation=None,
    ) -> None:
        self.engine = engine
        self.thermostat = thermostat
        self.record_positions = record_positions
        #: optional Instrumentation facade; records a ``qmd.step`` span and
        #: per-step SCF-iteration/temperature/energy series.  If the engine
        #: has no instrumentation of its own, the driver's is shared so the
        #: whole stack writes one timeline.
        self.instrumentation = instrumentation
        if (
            instrumentation is not None
            and getattr(engine, "instrumentation", None) is None
            and hasattr(engine, "instrumentation")
        ):
            engine.instrumentation = instrumentation
        self._scf_iters_last = 0
        self.timestep = timestep
        self.integrator = VelocityVerlet(self._forces_wrapper, timestep)
        self.frames: list[QMDFrame] = []

    def _forces_wrapper(self, config: Configuration):
        f, e, iters = self.engine.forces(config)
        self._scf_iters_last += iters
        return f, e

    def run(self, config: Configuration, nsteps: int) -> list[QMDFrame]:
        """Advance ``nsteps``; returns (and accumulates) the recorded frames."""
        ins = self.instrumentation
        if ins is not None and ins.recorder is not None:
            ins.recorder.record_invocation(
                "qmd.run",
                getattr(self.engine, "options", None),
                engine=type(self.engine).__name__,
                timestep=self.timestep,
                nsteps=nsteps,
                natoms=config.natoms,
            )
            try:
                return self._run(config, nsteps, ins)
            except Exception as exc:
                ins.recorder.record_failure(exc)
                raise
        return self._run(config, nsteps, ins)

    def _run(self, config: Configuration, nsteps: int, ins) -> list[QMDFrame]:
        for step in range(nsteps):
            self._scf_iters_last = 0
            if ins is None:
                self._advance(config)
                self.frames.append(self._frame(config))
                continue
            # the per-step telemetry (series, health verdicts) fires while
            # the qmd.step span is still open, so a health FAIL dumps with
            # the failing step on the flight recorder's open-span stack
            with ins.span(
                "qmd.step", category="qmd", step=len(self.frames)
            ) as span:
                self._advance(config)
                span.attrs["scf_iterations"] = self._scf_iters_last
                frame = self._frame(config)
                self.frames.append(frame)
                ins.series("qmd.scf_iterations").append(frame.scf_iterations)
                ins.series("qmd.temperature").append(frame.temperature)
                ins.series("qmd.total_energy").append(frame.total_energy)
                ins.counter("qmd.steps").inc()
                ins.log.debug(
                    "qmd step",
                    extra={"step": frame.step,
                           "scf_iterations": frame.scf_iterations,
                           "temperature": frame.temperature,
                           "total_energy": frame.total_energy},
                )
                if ins.health is not None:
                    ins.health.observe(
                        "qmd.step",
                        step=frame.step,
                        total_energy=frame.total_energy,
                        elapsed_fs=frame.step * self.timestep * ATU_TO_FS,
                        natoms=config.natoms,
                        temperature=frame.temperature,
                        nve=self.thermostat is None,
                        target_kelvin=getattr(self.thermostat, "target", None),
                    )
        return self.frames

    def _frame(self, config: Configuration) -> QMDFrame:
        return QMDFrame(
            step=len(self.frames),
            potential_energy=self.integrator.potential_energy,
            kinetic_energy=kinetic_energy(config),
            temperature=temperature(config),
            scf_iterations=self._scf_iters_last,
            positions=config.positions.copy()
            if self.record_positions
            else None,
        )

    def _advance(self, config: Configuration) -> None:
        self.integrator.step(config)
        if self.thermostat is not None:
            self.thermostat.apply(config)

    def total_scf_iterations(self) -> int:
        """Total SCF iterations over the trajectory — the paper's 129,208 for
        the 21,140-step production run."""
        return int(sum(f.scf_iterations for f in self.frames))

    def energy_drift(self) -> float:
        """|E_total(last) - E_total(first)| per atom-step (NVE diagnostic)."""
        if len(self.frames) < 2:
            return 0.0
        return abs(self.frames[-1].total_energy - self.frames[0].total_energy) / len(
            self.frames
        )
