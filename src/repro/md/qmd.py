"""The QMD driver: MD with quantum-mechanical (or surrogate) forces.

This is the production loop of Sec. 6: at every MD step the electronic
structure is re-solved (warm-started from the previous step's density) and
Hellmann–Feynman forces drive velocity Verlet, with an optional thermostat.
Engines are pluggable:

* :class:`LDCEngine` — the O(N) LDC-DFT solver (the paper's engine);
* :class:`SCFEngine` — the conventional O(N³) solver (the verification
  baseline of Sec. 5.5);
* any object with ``forces(config) -> (forces, energy, scf_iterations)``.

The driver records the per-step SCF iteration counts, so the paper's
time-to-solution accounting (atoms × SCF iterations / second) can be
reproduced on real runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ATU_TO_FS
from repro.md.integrator import VelocityVerlet, kinetic_energy, temperature
from repro.systems.configuration import Configuration


@dataclass
class QMDFrame:
    """One recorded MD step."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float
    scf_iterations: int
    positions: np.ndarray | None = None

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


class LDCEngine:
    """Force engine backed by :func:`repro.core.ldc.run_ldc`.

    ``instrumentation`` (optional) is threaded into every ``run_ldc`` call;
    the engine also records warm-start telemetry — whether each solve was
    seeded with the previous step's density, the QMD trick the paper's
    time-to-solution numbers depend on.
    """

    def __init__(self, options=None, instrumentation=None) -> None:
        from repro.core.ldc import LDCOptions

        self.options = options or LDCOptions()
        self.instrumentation = instrumentation
        self._rho = None

    def forces(self, config: Configuration):
        from repro.core.ldc import run_ldc

        ins = self.instrumentation
        if ins is not None:
            _record_warm_start(ins, "ldc", self._rho is not None)
        result = run_ldc(
            config, self.options, compute_forces=True, rho0=self._rho,
            instrumentation=ins,
        )
        self._rho = result.density
        return result.forces, result.energy, result.iterations


class SCFEngine:
    """Force engine backed by the conventional O(N³) SCF."""

    def __init__(self, options=None, instrumentation=None) -> None:
        from repro.dft.scf import SCFOptions

        self.options = options or SCFOptions()
        self.instrumentation = instrumentation
        self._rho = None

    def forces(self, config: Configuration):
        from repro.dft.forces import forces_from_scf
        from repro.dft.scf import run_scf

        ins = self.instrumentation
        if ins is not None:
            _record_warm_start(ins, "pw", self._rho is not None)
        result = run_scf(
            config, self.options, rho0=self._rho, instrumentation=ins
        )
        self._rho = result.density
        f = forces_from_scf(config, result)
        return f, result.energy, result.iterations


def _record_warm_start(ins, engine: str, warm: bool) -> None:
    """Count cold vs density-warm-started electronic solves."""
    ins.counter(
        "qmd.solves", engine=engine, start="warm" if warm else "cold"
    ).inc()


class QMDDriver:
    """Couples an engine, the integrator, and an optional thermostat."""

    def __init__(
        self,
        engine,
        timestep: float,
        thermostat=None,
        record_positions: bool = False,
        instrumentation=None,
    ) -> None:
        self.engine = engine
        self.thermostat = thermostat
        self.record_positions = record_positions
        #: optional Instrumentation facade; records a ``qmd.step`` span and
        #: per-step SCF-iteration/temperature/energy series.  If the engine
        #: has no instrumentation of its own, the driver's is shared so the
        #: whole stack writes one timeline.
        self.instrumentation = instrumentation
        if (
            instrumentation is not None
            and getattr(engine, "instrumentation", None) is None
            and hasattr(engine, "instrumentation")
        ):
            engine.instrumentation = instrumentation
        self._scf_iters_last = 0
        self.timestep = timestep
        self.integrator = VelocityVerlet(self._forces_wrapper, timestep)
        self.frames: list[QMDFrame] = []

    def _forces_wrapper(self, config: Configuration):
        f, e, iters = self.engine.forces(config)
        self._scf_iters_last += iters
        return f, e

    def run(self, config: Configuration, nsteps: int) -> list[QMDFrame]:
        """Advance ``nsteps``; returns (and accumulates) the recorded frames."""
        ins = self.instrumentation
        for step in range(nsteps):
            self._scf_iters_last = 0
            if ins is None:
                self._advance(config)
            else:
                with ins.span(
                    "qmd.step", category="qmd", step=len(self.frames)
                ) as span:
                    self._advance(config)
                    span.attrs["scf_iterations"] = self._scf_iters_last
            frame = QMDFrame(
                step=len(self.frames),
                potential_energy=self.integrator.potential_energy,
                kinetic_energy=kinetic_energy(config),
                temperature=temperature(config),
                scf_iterations=self._scf_iters_last,
                positions=config.positions.copy()
                if self.record_positions
                else None,
            )
            self.frames.append(frame)
            if ins is not None:
                ins.series("qmd.scf_iterations").append(frame.scf_iterations)
                ins.series("qmd.temperature").append(frame.temperature)
                ins.series("qmd.total_energy").append(frame.total_energy)
                ins.counter("qmd.steps").inc()
                ins.log.debug(
                    "qmd step",
                    extra={"step": frame.step,
                           "scf_iterations": frame.scf_iterations,
                           "temperature": frame.temperature,
                           "total_energy": frame.total_energy},
                )
                if ins.health is not None:
                    ins.health.observe(
                        "qmd.step",
                        step=frame.step,
                        total_energy=frame.total_energy,
                        elapsed_fs=frame.step * self.timestep * ATU_TO_FS,
                        natoms=config.natoms,
                        temperature=frame.temperature,
                        nve=self.thermostat is None,
                        target_kelvin=getattr(self.thermostat, "target", None),
                    )
        return self.frames

    def _advance(self, config: Configuration) -> None:
        self.integrator.step(config)
        if self.thermostat is not None:
            self.thermostat.apply(config)

    def total_scf_iterations(self) -> int:
        """Total SCF iterations over the trajectory — the paper's 129,208 for
        the 21,140-step production run."""
        return int(sum(f.scf_iterations for f in self.frames))

    def energy_drift(self) -> float:
        """|E_total(last) - E_total(first)| per atom-step (NVE diagnostic)."""
        if len(self.frames) < 2:
            return 0.0
        return abs(self.frames[-1].total_energy - self.frames[0].total_energy) / len(
            self.frames
        )
