"""The QMD driver: MD with quantum-mechanical (or surrogate) forces.

This is the production loop of Sec. 6: at every MD step the electronic
structure is re-solved (warm-started from the previous step's density) and
Hellmann–Feynman forces drive velocity Verlet, with an optional thermostat.
Engines are pluggable:

* :class:`LDCEngine` — the O(N) LDC-DFT solver (the paper's engine);
* :class:`SCFEngine` — the conventional O(N³) solver (the verification
  baseline of Sec. 5.5);
* any object with ``forces(config) -> (forces, energy, scf_iterations)``.

The driver records the per-step SCF iteration counts, so the paper's
time-to-solution accounting (atoms × SCF iterations / second) can be
reproduced on real runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.integrator import VelocityVerlet, kinetic_energy, temperature
from repro.systems.configuration import Configuration


@dataclass
class QMDFrame:
    """One recorded MD step."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float
    scf_iterations: int
    positions: np.ndarray | None = None

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


class LDCEngine:
    """Force engine backed by :func:`repro.core.ldc.run_ldc`."""

    def __init__(self, options=None) -> None:
        from repro.core.ldc import LDCOptions

        self.options = options or LDCOptions()
        self._rho = None

    def forces(self, config: Configuration):
        from repro.core.ldc import run_ldc

        result = run_ldc(
            config, self.options, compute_forces=True, rho0=self._rho
        )
        self._rho = result.density
        return result.forces, result.energy, result.iterations


class SCFEngine:
    """Force engine backed by the conventional O(N³) SCF."""

    def __init__(self, options=None) -> None:
        from repro.dft.scf import SCFOptions

        self.options = options or SCFOptions()
        self._rho = None

    def forces(self, config: Configuration):
        from repro.dft.forces import forces_from_scf
        from repro.dft.scf import run_scf

        result = run_scf(config, self.options, rho0=self._rho)
        self._rho = result.density
        f = forces_from_scf(config, result)
        return f, result.energy, result.iterations


class QMDDriver:
    """Couples an engine, the integrator, and an optional thermostat."""

    def __init__(
        self,
        engine,
        timestep: float,
        thermostat=None,
        record_positions: bool = False,
    ) -> None:
        self.engine = engine
        self.thermostat = thermostat
        self.record_positions = record_positions
        self._scf_iters_last = 0
        self.integrator = VelocityVerlet(self._forces_wrapper, timestep)
        self.frames: list[QMDFrame] = []

    def _forces_wrapper(self, config: Configuration):
        f, e, iters = self.engine.forces(config)
        self._scf_iters_last += iters
        return f, e

    def run(self, config: Configuration, nsteps: int) -> list[QMDFrame]:
        """Advance ``nsteps``; returns (and accumulates) the recorded frames."""
        for step in range(nsteps):
            self._scf_iters_last = 0
            self.integrator.step(config)
            if self.thermostat is not None:
                self.thermostat.apply(config)
            self.frames.append(
                QMDFrame(
                    step=len(self.frames),
                    potential_energy=self.integrator.potential_energy,
                    kinetic_energy=kinetic_energy(config),
                    temperature=temperature(config),
                    scf_iterations=self._scf_iters_last,
                    positions=config.positions.copy()
                    if self.record_positions
                    else None,
                )
            )
        return self.frames

    def total_scf_iterations(self) -> int:
        """Total SCF iterations over the trajectory — the paper's 129,208 for
        the 21,140-step production run."""
        return int(sum(f.scf_iterations for f in self.frames))

    def energy_drift(self) -> float:
        """|E_total(last) - E_total(first)| per atom-step (NVE diagnostic)."""
        if len(self.frames) < 2:
            return 0.0
        return abs(self.frames[-1].total_energy - self.frames[0].total_energy) / len(
            self.frames
        )
