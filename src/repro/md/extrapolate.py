"""Time-reversible ASPC extrapolation of orbitals and densities across
MD steps.

PR 4's warm start reuses only the *last* converged per-domain state; the
MD literature (Kolafa's always-stable predictor-corrector, ASPC; cf. the
low-cost orbital-based linear-scaling AIMD line of work in PAPERS.md) does
better: predict step ``t+1`` from a bounded history window

    ψ_pred(t+1) = Σ_{j=1..k} B_j ψ(t+1-j),
    B_j = (-1)^{j+1} j C(2k, k-j) / C(2k-2, k-1),

whose coefficients sum to 1 (consistency) and reproduce any history that
is *linear in time* exactly for k ≥ 2 — the property behind ASPC's
time-reversibility: running the window forwards or backwards through a
linear segment predicts the same continuation, so the predictor adds no
secular bias to NVE dynamics (the energy-drift parity test pins this).

Orbitals need two extra ingredients the plain formula lacks:

* **Subspace alignment.**  Each SCF solve returns ψ in an arbitrary band
  gauge (degenerate subspaces rotate freely between steps), so combining
  raw histories mixes gauges and cancels signal.  Every older block is
  first aligned to the newest by the orthogonal Procrustes rotation
  ``W = UV†`` from ``SVD(ψ_old† ψ_new)`` — the closest unitary map of the
  old block onto the new gauge.
* **Re-orthonormalization.**  The linear combination leaves the predicted
  block only approximately orthonormal; a Löwdin (symmetric) step
  ``ψ (ψ†ψ)^{-1/2}`` restores it while moving each band the least.

:class:`DomainHistory` packages the window for one LDC domain (or one
global SCF trajectory): converged (ψ, v_bc, ρ) snapshots keyed by the
domain's identity ``(npw, nband, atom indices)``.  Any key change — atom
migration across domain boundaries, a band-count change, a basis rebuild —
clears the window, so the caller falls back to the same deterministic cold
start the fresh-build path uses.  A depth-1 window degrades exactly to the
PR 4 last-state warm start (verbatim copies, no combination), which keeps
the committed ``qmd_warm_start`` baseline bit-for-bit valid.
"""

from __future__ import annotations

from math import comb

import numpy as np


def aspc_coefficients(k: int) -> np.ndarray:
    """Predictor coefficients ``B_1..B_k`` of the length-``k`` ASPC window.

    ``k=1`` → ``[1]`` (last-state reuse), ``k=2`` → ``[2, -1]`` (linear
    extrapolation), ``k=3`` → ``[2.5, -2, 0.5]``.  For every ``k`` the
    coefficients sum to 1; for ``k >= 2`` they satisfy
    ``Σ_j B_j (1-j) = 1`` as well, so linear-in-time histories are
    continued exactly.
    """
    if k < 1:
        raise ValueError("history length k must be >= 1")
    denom = comb(2 * k - 2, k - 1)
    return np.array(
        [
            (-1.0) ** (j + 1) * j * comb(2 * k, k - j) / denom
            for j in range(1, k + 1)
        ],
        dtype=float,
    )


def lowdin_orthonormalize(psi: np.ndarray) -> np.ndarray:
    """Symmetric (Löwdin) orthonormalization ``ψ (ψ†ψ)^{-1/2}``.

    The unique orthonormal block closest to ``psi`` in Frobenius norm —
    the gauge-respecting way to repair a predicted block.
    """
    overlap = psi.conj().T @ psi
    evals, evecs = np.linalg.eigh(overlap)
    evals = np.clip(evals.real, 1e-14, None)
    inv_sqrt = (evecs * (evals ** -0.5)) @ evecs.conj().T
    return psi @ inv_sqrt


def align_to_reference(psi: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Rotate ``psi`` into ``ref``'s band gauge (orthogonal Procrustes).

    Returns ``psi @ (U V†)`` where ``U Σ V† = SVD(psi† ref)`` — the
    unitary band mixing that brings ``psi`` closest to ``ref``, removing
    the arbitrary per-step gauge drift that would otherwise poison the
    ASPC combination.
    """
    u, _, vh = np.linalg.svd(psi.conj().T @ ref)
    return psi @ (u @ vh)


def extrapolate_orbitals(history: list[np.ndarray]) -> np.ndarray:
    """ASPC-predict the next orbital block from ``history`` (newest first).

    Older blocks are gauge-aligned to the newest before the combination
    and the result is Löwdin-orthonormalized.  A length-1 history returns
    a verbatim copy of the newest block (exact last-state warm start).
    """
    k = len(history)
    if k == 0:
        raise ValueError("history must contain at least one orbital block")
    if k == 1:
        return history[0].copy()
    coeffs = aspc_coefficients(k)
    ref = history[0]
    out = coeffs[0] * ref
    for c, psi in zip(coeffs[1:], history[1:]):
        out += c * align_to_reference(psi, ref)
    return lowdin_orthonormalize(out)


def extrapolate_fields(
    history: list[np.ndarray], nonnegative: bool = False
) -> np.ndarray:
    """ASPC-predict the next real-space field (density, v_bc) from
    ``history`` (newest first); ``nonnegative`` clips the prediction at 0
    (densities must stay physical after the signed combination)."""
    k = len(history)
    if k == 0:
        raise ValueError("history must contain at least one field")
    if k == 1:
        return history[0].copy()
    coeffs = aspc_coefficients(k)
    out = coeffs[0] * history[0]
    for c, f in zip(coeffs[1:], history[1:]):
        out += c * f
    if nonnegative:
        np.clip(out, 0.0, None, out=out)
    return out


def subspace_residual(psi_pred: np.ndarray, psi_conv: np.ndarray) -> float:
    """Gauge-invariant distance between a predicted and a converged block.

    ``‖ψ_conv − align(ψ_pred → ψ_conv)‖_F / √nband`` — zero when the
    prediction spans the converged subspace, O(1) for a random guess.
    This is the predictor-quality series the run ledger tracks.
    """
    if psi_pred.shape != psi_conv.shape:
        return float("nan")
    aligned = align_to_reference(psi_pred, psi_conv)
    nband = max(psi_conv.shape[1], 1)
    return float(np.linalg.norm(psi_conv - aligned) / np.sqrt(nband))


class DomainHistory:
    """Bounded ASPC window of converged (ψ, v_bc, ρ) snapshots for one
    domain (or one global SCF trajectory, with ``vbc=None``).

    ``key`` identifies the electronic problem the snapshots solve —
    ``(npw, nband, atom-index tuple)`` for an LDC domain.  Pushing or
    predicting under a different key clears the window (atom migration,
    band-count change, basis rebuild → deterministic cold fallback).
    """

    def __init__(self, depth: int = 3) -> None:
        if depth < 1:
            raise ValueError("history depth must be >= 1")
        self.depth = int(depth)
        self._key: tuple | None = None
        #: newest-first snapshots (ψ, v_bc, ρ)
        self._entries: list[
            tuple[np.ndarray, np.ndarray | None, np.ndarray | None]
        ] = []
        #: the ψ block handed out by the last :meth:`predict` (residual
        #: bookkeeping; compared against the next converged ψ by the
        #: workspace's ``store``)
        self.last_prediction: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def key(self) -> tuple | None:
        return self._key

    def clear(self) -> None:
        self._key = None
        self._entries = []
        self.last_prediction = None

    def resize(self, depth: int) -> None:
        """Change the window depth in place, trimming oldest-first.

        Deepening keeps the existing snapshots (the window simply grows
        from here); shrinking drops the tail — either way no cold restart.
        """
        if depth < 1:
            raise ValueError("history depth must be >= 1")
        self.depth = int(depth)
        del self._entries[self.depth:]

    def push(
        self,
        key: tuple,
        psi: np.ndarray,
        vbc: np.ndarray | None,
        rho: np.ndarray | None,
    ) -> None:
        """Prepend a converged snapshot, invalidating on a key change.

        Snapshots are stored by reference: callers hand over ownership
        (the LDC driver re-binds ``state.psi``/``state.rho_local`` to
        fresh arrays each pass, and :meth:`predict` returns combinations
        or copies, never aliases into the window)."""
        if key != self._key:
            self.clear()
            self._key = key
        self._entries.insert(0, (psi, vbc, rho))
        del self._entries[self.depth:]

    def predict(
        self, key: tuple, depth: int | None = None
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None] | None:
        """The ASPC prediction for the next step, or ``None`` (cold).

        ``depth`` (≤ stored depth) restricts the window — the knob
        ``LDCOptions.history_depth`` resolves to.  Returns fresh arrays:
        the caller may mutate them freely (the LDC driver updates v_bc in
        place every SCF iteration) without corrupting the window.
        """
        if key != self._key or not self._entries:
            return None
        use = self._entries[: max(1, depth or self.depth)]
        psi = extrapolate_orbitals([e[0] for e in use])
        vbc_hist = [e[1] for e in use]
        rho_hist = [e[2] for e in use]
        vbc = (
            extrapolate_fields([v for v in vbc_hist if v is not None])
            if vbc_hist[0] is not None
            else None
        )
        rho = (
            extrapolate_fields(
                [r for r in rho_hist if r is not None], nonnegative=True
            )
            if rho_hist[0] is not None
            else None
        )
        self.last_prediction = psi
        return psi, vbc, rho
