"""Molecular dynamics substrate: integrators, thermostats, neighbor lists,
and the QMD driver that couples MD to a quantum (or surrogate) force engine.
"""

from repro.md.integrator import VelocityVerlet, kinetic_energy, temperature
from repro.md.thermostat import BerendsenThermostat, LangevinThermostat
from repro.md.neighbors import NeighborList
from repro.md.qmd import QMDDriver, QMDFrame, LDCEngine, SCFEngine
from repro.md.observables import (
    coordination_number,
    diffusion_constant,
    mean_square_displacement,
    radial_distribution,
    velocity_autocorrelation,
)

__all__ = [
    "VelocityVerlet",
    "kinetic_energy",
    "temperature",
    "BerendsenThermostat",
    "LangevinThermostat",
    "NeighborList",
    "QMDDriver",
    "QMDFrame",
    "LDCEngine",
    "SCFEngine",
    "radial_distribution",
    "mean_square_displacement",
    "diffusion_constant",
    "velocity_autocorrelation",
    "coordination_number",
]
