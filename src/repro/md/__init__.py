"""Molecular dynamics substrate: integrators, thermostats, neighbor lists,
and the QMD driver that couples MD to a quantum (or surrogate) force engine.
"""

from repro.md.integrator import VelocityVerlet, kinetic_energy, temperature
from repro.md.thermostat import BerendsenThermostat, LangevinThermostat
from repro.md.neighbors import NeighborList
from repro.md.qmd import QMDDriver, QMDFrame, LDCEngine, QMDOptions, SCFEngine
from repro.md.extrapolate import (
    DomainHistory,
    aspc_coefficients,
    extrapolate_fields,
    extrapolate_orbitals,
    subspace_residual,
)
from repro.md.observables import (
    coordination_number,
    diffusion_constant,
    mean_square_displacement,
    radial_distribution,
    velocity_autocorrelation,
)

__all__ = [
    "VelocityVerlet",
    "kinetic_energy",
    "temperature",
    "BerendsenThermostat",
    "LangevinThermostat",
    "NeighborList",
    "QMDDriver",
    "QMDFrame",
    "LDCEngine",
    "QMDOptions",
    "SCFEngine",
    "DomainHistory",
    "aspc_coefficients",
    "extrapolate_fields",
    "extrapolate_orbitals",
    "subspace_residual",
    "radial_distribution",
    "mean_square_displacement",
    "diffusion_constant",
    "velocity_autocorrelation",
    "coordination_number",
]
