"""Thermostats for canonical-ensemble (NVT) sampling.

* :class:`BerendsenThermostat` — weak-coupling velocity rescale; simple and
  robust for equilibration (what large production QMD typically uses to hold
  300/600/1500 K).
* :class:`LangevinThermostat` — stochastic friction + noise; proper
  canonical sampling, used by the reactive surrogate where rare-event
  statistics matter.
"""

from __future__ import annotations

import numpy as np

from repro.constants import KELVIN_TO_HARTREE
from repro.md.integrator import temperature
from repro.systems.configuration import Configuration


class BerendsenThermostat:
    """Velocity rescaling toward a target temperature with time constant τ."""

    def __init__(self, target_kelvin: float, tau: float, timestep: float) -> None:
        if target_kelvin <= 0 or tau <= 0 or timestep <= 0:
            raise ValueError("temperature, tau, and timestep must be positive")
        if tau < timestep:
            raise ValueError("tau must be >= timestep")
        self.target = float(target_kelvin)
        self.tau = float(tau)
        self.dt = float(timestep)

    def apply(self, config: Configuration) -> None:
        t_now = temperature(config)
        if t_now <= 0:
            return
        lam2 = 1.0 + (self.dt / self.tau) * (self.target / t_now - 1.0)
        config.velocities *= np.sqrt(max(lam2, 1e-12))


class LangevinThermostat:
    """BAOAB-style Ornstein–Uhlenbeck velocity update.

    Applied once per step: v ← c v + √((1-c²) k_B T / m) ξ with
    c = exp(-γ dt).
    """

    def __init__(
        self,
        target_kelvin: float,
        friction: float,
        timestep: float,
        seed: int = 0,
    ) -> None:
        if target_kelvin <= 0 or friction <= 0 or timestep <= 0:
            raise ValueError("temperature, friction, and timestep must be positive")
        self.target = float(target_kelvin)
        self.gamma = float(friction)
        self.dt = float(timestep)
        self.rng = np.random.default_rng(seed)

    def apply(self, config: Configuration) -> None:
        if config.velocities is None:
            config.velocities = np.zeros_like(config.positions)
        kt = self.target * KELVIN_TO_HARTREE
        c = np.exp(-self.gamma * self.dt)
        sigma = np.sqrt((1.0 - c * c) * kt / config.masses)[:, None]
        config.velocities = (
            c * config.velocities
            + sigma * self.rng.normal(size=config.velocities.shape)
        )
