"""Linked-cell neighbor lists (O(N) construction) for the reactive substrate.

The cell is binned into boxes at least ``cutoff`` wide; candidate pairs come
only from the 27 neighboring boxes.  Falls back to the O(N²) all-pairs path
when the box is too small for 3 bins per axis (tiny test systems).
"""

from __future__ import annotations

import numpy as np

from repro.systems.configuration import Configuration


class NeighborList:
    """Half neighbor list (each pair appears once, i < j)."""

    def __init__(self, cutoff: float, skin: float = 0.0) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.cutoff = float(cutoff)
        self.skin = float(skin)

    def build(self, config: Configuration) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(pairs, displacements, distances)``.

        ``pairs``: (npair, 2) int array with i < j;
        ``displacements``: minimum-image r_j − r_i;
        ``distances``: |displacements|.
        """
        rc = self.cutoff + self.skin
        cell = config.cell
        nbins = np.maximum(1, np.floor(cell / rc).astype(int))
        if np.any(nbins < 3) or config.natoms < 32:
            return self._all_pairs(config, rc)
        return self._linked_cells(config, rc, nbins)

    # -- strategies ---------------------------------------------------------------

    def _all_pairs(self, config, rc):
        pos = config.wrapped_positions()
        diff = pos[None, :, :] - pos[:, None, :]
        diff -= config.cell * np.round(diff / config.cell)
        dist = np.linalg.norm(diff, axis=-1)
        iu, ju = np.triu_indices(config.natoms, k=1)
        mask = dist[iu, ju] <= rc
        pairs = np.column_stack([iu[mask], ju[mask]])
        return pairs, diff[iu[mask], ju[mask]], dist[iu[mask], ju[mask]]

    def _linked_cells(self, config, rc, nbins):
        pos = config.wrapped_positions()
        bin_size = config.cell / nbins
        bins = np.minimum((pos / bin_size).astype(int), nbins - 1)
        flat = (bins[:, 0] * nbins[1] + bins[:, 1]) * nbins[2] + bins[:, 2]
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        starts = np.searchsorted(sorted_flat, np.arange(np.prod(nbins)))
        ends = np.searchsorted(sorted_flat, np.arange(np.prod(nbins)), side="right")

        offsets = np.array(
            [(i, j, k) for i in (-1, 0, 1) for j in (-1, 0, 1) for k in (-1, 0, 1)]
        )
        pair_list: list[np.ndarray] = []
        for bx in range(nbins[0]):
            for by in range(nbins[1]):
                for bz in range(nbins[2]):
                    b = (bx * nbins[1] + by) * nbins[2] + bz
                    atoms_b = order[starts[b] : ends[b]]
                    if len(atoms_b) == 0:
                        continue
                    neigh_atoms = []
                    for off in offsets:
                        nb_idx = (np.array([bx, by, bz]) + off) % nbins
                        nb = (nb_idx[0] * nbins[1] + nb_idx[1]) * nbins[2] + nb_idx[2]
                        neigh_atoms.append(order[starts[nb] : ends[nb]])
                    cand = np.concatenate(neigh_atoms)
                    for i in atoms_b:
                        js = cand[cand > i]
                        if len(js) == 0:
                            continue
                        d = pos[js] - pos[i]
                        d -= config.cell * np.round(d / config.cell)
                        r = np.linalg.norm(d, axis=1)
                        keep = r <= rc
                        if keep.any():
                            pair_list.append(
                                np.column_stack(
                                    [np.full(keep.sum(), i), js[keep]]
                                )
                            )
        if not pair_list:
            return (
                np.zeros((0, 2), dtype=int),
                np.zeros((0, 3)),
                np.zeros(0),
            )
        pairs = np.vstack(pair_list)
        d = pos[pairs[:, 1]] - pos[pairs[:, 0]]
        d -= config.cell * np.round(d / config.cell)
        return pairs, d, np.linalg.norm(d, axis=1)
