"""Per-rank virtual clocks and the event trace.

Every compute section or communication primitive executed through the
virtual machine is *charged* here: compute advances the participating
ranks' clocks, a synchronizing collective first aligns the participants to
their maximum (the laggard defines the cost — exactly how real bulk-
synchronous codes behave), then adds the collective's modeled time.

``elapsed()`` (max over clocks) is the predicted wall-clock of the run, and
the event log supports per-phase breakdowns like the paper's I/O accounting
(Sec. 4.2).

Two observability seams ride on the charge path, both free when unused:

* **phases** — :meth:`CostTracker.phase` stamps subsequent events with an
  algorithmic phase label (``"domain"``, ``"tree"``, ...), so downstream
  analysis can aggregate the event log by the same names the span tracer
  uses;
* **profiler** — an object with a ``record(event)`` method (duck-typed so
  this module never imports observability code; in practice a
  :class:`repro.observability.comms.CommProfiler`) attached as
  :attr:`CostTracker.profiler` sees every event at charge time.  Collective
  and p2p events carry :attr:`TraceEvent.rank_arrivals` — each
  participant's pre-synchronization clock — from which the profiler
  decomposes the charge into *wait* (clock alignment to the laggard) and
  *transfer* time.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np


@dataclass
class TraceEvent:
    kind: str
    ranks: tuple[int, ...] | None  # None = all ranks
    seconds: float
    nbytes: float = 0.0
    label: str = ""
    #: per-participant virtual start/end times (aligned with the expanded
    #: rank list), recorded at charge time so the event log can be rendered
    #: as a per-rank timeline (Chrome trace) without replaying the run
    rank_starts: tuple[float, ...] | None = None
    rank_ends: tuple[float, ...] | None = None
    #: per-participant clock *before* synchronization (collective/p2p only):
    #: ``start - arrival`` is the wait a rank spends blocked on the laggard
    rank_arrivals: tuple[float, ...] | None = None
    #: algorithmic phase active at charge time (see :meth:`CostTracker.phase`)
    phase: str = ""

    def participants(self, nranks: int) -> tuple[int, ...]:
        """Concrete rank list (expands the ``None`` = all-ranks shorthand)."""
        return tuple(range(nranks)) if self.ranks is None else self.ranks

    def waits(self) -> tuple[float, ...] | None:
        """Per-participant wait seconds (sync point − arrival), when known."""
        if self.rank_arrivals is None or self.rank_starts is None:
            return None
        return tuple(
            max(s - a, 0.0)
            for s, a in zip(self.rank_starts, self.rank_arrivals)
        )


class CostTracker:
    """Virtual clocks for ``nranks`` simulated ranks."""

    def __init__(self, nranks: int, profiler=None) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.clocks = np.zeros(nranks)
        self.events: list[TraceEvent] = []
        #: optional live observer with a ``record(event)`` method (e.g.
        #: :class:`repro.observability.comms.CommProfiler`); ``None`` keeps
        #: the charge path observer-free
        self.profiler = profiler
        #: phase label stamped on events charged now (see :meth:`phase`)
        self.current_phase = ""

    # -- phases ---------------------------------------------------------------

    @contextlib.contextmanager
    def phase(self, label: str):
        """Stamp events charged inside the block with an algorithmic phase.

        Phases nest by replacement (the innermost label wins), mirroring how
        span labels name the enclosing algorithm section.
        """
        previous = self.current_phase
        self.current_phase = label
        try:
            yield self
        finally:
            self.current_phase = previous

    # -- charging -----------------------------------------------------------

    def charge_compute(self, ranks, seconds: float, label: str = "compute") -> None:
        """Advance the given ranks' clocks by a compute duration."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        idx = self._as_index(ranks)
        starts = tuple(float(t) for t in np.atleast_1d(self.clocks[idx]))
        self.clocks[idx] += seconds
        ends = tuple(t + seconds for t in starts)
        self._emit(
            TraceEvent(
                "compute", self._key(ranks), seconds, 0.0, label,
                rank_starts=starts, rank_ends=ends,
                phase=self.current_phase,
            )
        )

    def charge_collective(
        self, ranks, seconds: float, nbytes: float = 0.0, label: str = "collective"
    ) -> None:
        """Synchronize the participants, then advance all of them."""
        idx = self._as_index(ranks)
        arrivals = tuple(float(t) for t in np.atleast_1d(self.clocks[idx]))
        sync = max(arrivals) if arrivals else 0.0
        n = len(arrivals)
        self.clocks[idx] = sync + seconds
        self._emit(
            TraceEvent(
                "collective", self._key(ranks), seconds, nbytes, label,
                rank_starts=(sync,) * n, rank_ends=(sync + seconds,) * n,
                rank_arrivals=arrivals, phase=self.current_phase,
            )
        )

    def charge_p2p(
        self, src: int, dst: int, seconds: float, nbytes: float = 0.0,
        label: str = "p2p",
    ) -> None:
        """Point-to-point: receiver finishes at max(send-ready, recv-ready) + t."""
        arrivals = (float(self.clocks[src]), float(self.clocks[dst]))
        ready = max(arrivals)
        self.clocks[src] = ready + seconds
        self.clocks[dst] = ready + seconds
        self._emit(
            TraceEvent(
                "p2p", (src, dst), seconds, nbytes, label,
                rank_starts=(ready, ready), rank_ends=(ready + seconds,) * 2,
                rank_arrivals=arrivals, phase=self.current_phase,
            )
        )

    # -- queries ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Predicted wall-clock so far (slowest rank)."""
        return float(np.max(self.clocks))

    def imbalance(self) -> float:
        """Relative load imbalance: (max - mean)/max (0 = perfect)."""
        mx = np.max(self.clocks)
        if mx <= 0:
            return 0.0
        return float((mx - np.mean(self.clocks)) / mx)

    def total_by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.label] = out.get(e.label, 0.0) + e.seconds
        return out

    def total_by_phase(self) -> dict[str, float]:
        """Charged seconds per stamped phase (unstamped events under ``""``)."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.phase] = out.get(e.phase, 0.0) + e.seconds
        return out

    def total_bytes(self) -> float:
        return float(sum(e.nbytes for e in self.events))

    def chrome_trace(self, pid: int | None = None) -> dict:
        """Event log as a Chrome ``trace_event`` JSON object (one lane per
        simulated rank) — see :mod:`repro.observability.cost_trace`."""
        from repro.observability.cost_trace import chrome_trace_from_cost_tracker

        if pid is None:
            return chrome_trace_from_cost_tracker(self)
        return chrome_trace_from_cost_tracker(self, pid=pid)

    # -- helpers -------------------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        if self.profiler is not None:
            self.profiler.record(event)

    def _as_index(self, ranks):
        if ranks is None:
            return slice(None)
        return np.asarray(list(ranks), dtype=int)

    def _key(self, ranks):
        if ranks is None:
            return None
        return tuple(int(r) for r in ranks)
