"""Per-rank virtual clocks and the event trace.

Every compute section or communication primitive executed through the
virtual machine is *charged* here: compute advances the participating
ranks' clocks, a synchronizing collective first aligns the participants to
their maximum (the laggard defines the cost — exactly how real bulk-
synchronous codes behave), then adds the collective's modeled time.

``elapsed()`` (max over clocks) is the predicted wall-clock of the run, and
the event log supports per-phase breakdowns like the paper's I/O accounting
(Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TraceEvent:
    kind: str
    ranks: tuple[int, ...] | None  # None = all ranks
    seconds: float
    nbytes: float = 0.0
    label: str = ""
    #: per-participant virtual start/end times (aligned with the expanded
    #: rank list), recorded at charge time so the event log can be rendered
    #: as a per-rank timeline (Chrome trace) without replaying the run
    rank_starts: tuple[float, ...] | None = None
    rank_ends: tuple[float, ...] | None = None

    def participants(self, nranks: int) -> tuple[int, ...]:
        """Concrete rank list (expands the ``None`` = all-ranks shorthand)."""
        return tuple(range(nranks)) if self.ranks is None else self.ranks


class CostTracker:
    """Virtual clocks for ``nranks`` simulated ranks."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.clocks = np.zeros(nranks)
        self.events: list[TraceEvent] = []

    # -- charging -----------------------------------------------------------

    def charge_compute(self, ranks, seconds: float, label: str = "compute") -> None:
        """Advance the given ranks' clocks by a compute duration."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        idx = self._as_index(ranks)
        starts = tuple(float(t) for t in np.atleast_1d(self.clocks[idx]))
        self.clocks[idx] += seconds
        ends = tuple(t + seconds for t in starts)
        self.events.append(
            TraceEvent(
                "compute", self._key(ranks), seconds, 0.0, label,
                rank_starts=starts, rank_ends=ends,
            )
        )

    def charge_collective(
        self, ranks, seconds: float, nbytes: float = 0.0, label: str = "collective"
    ) -> None:
        """Synchronize the participants, then advance all of them."""
        idx = self._as_index(ranks)
        sync = float(np.max(self.clocks[idx]))
        n = len(np.atleast_1d(self.clocks[idx]))
        self.clocks[idx] = sync + seconds
        self.events.append(
            TraceEvent(
                "collective", self._key(ranks), seconds, nbytes, label,
                rank_starts=(sync,) * n, rank_ends=(sync + seconds,) * n,
            )
        )

    def charge_p2p(
        self, src: int, dst: int, seconds: float, nbytes: float = 0.0,
        label: str = "p2p",
    ) -> None:
        """Point-to-point: receiver finishes at max(send-ready, recv-ready) + t."""
        ready = max(self.clocks[src], self.clocks[dst])
        self.clocks[src] = ready + seconds
        self.clocks[dst] = ready + seconds
        self.events.append(
            TraceEvent(
                "p2p", (src, dst), seconds, nbytes, label,
                rank_starts=(ready, ready), rank_ends=(ready + seconds,) * 2,
            )
        )

    # -- queries ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Predicted wall-clock so far (slowest rank)."""
        return float(np.max(self.clocks))

    def imbalance(self) -> float:
        """Relative load imbalance: (max - mean)/max (0 = perfect)."""
        mx = np.max(self.clocks)
        if mx <= 0:
            return 0.0
        return float((mx - np.mean(self.clocks)) / mx)

    def total_by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.label] = out.get(e.label, 0.0) + e.seconds
        return out

    def total_bytes(self) -> float:
        return float(sum(e.nbytes for e in self.events))

    def chrome_trace(self, pid: int | None = None) -> dict:
        """Event log as a Chrome ``trace_event`` JSON object (one lane per
        simulated rank) — see :mod:`repro.observability.cost_trace`."""
        from repro.observability.cost_trace import chrome_trace_from_cost_tracker

        if pid is None:
            return chrome_trace_from_cost_tracker(self)
        return chrome_trace_from_cost_tracker(self, pid=pid)

    # -- helpers -------------------------------------------------------------------

    def _as_index(self, ranks):
        if ranks is None:
            return slice(None)
        return np.asarray(list(ranks), dtype=int)

    def _key(self, ranks):
        if ranks is None:
            return None
        return tuple(int(r) for r in ranks)
