"""Hierarchical band-space-domain (BSD) decomposition (Sec. 3.3, Fig. 4).

Three nested levels of parallelism:

1. **Domain** — DC domains are distributed over rank groups; each domain
   gets a dedicated communicator (``MPI_COMM_SPLIT``).
2. **Band / space** — inside a domain's group, ranks alternate between band
   decomposition (each rank optimizes a subset of KS orbitals) and spatial
   decomposition (each rank owns a slab of reciprocal-space grid points);
   switching between the two is an all-to-all *within the domain
   communicator only*.
3. **Cholesky** — the overlap matrix is built from per-slab partial Gram
   blocks reduced over the domain group, then factorized.

:class:`BSDLayout` computes the rank assignments; the ``distributed_*``
helpers execute the real algorithms over a
:class:`~repro.parallel.comm.VirtualComm` so they can be verified against
their serial counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.comm import VirtualComm
from repro.util.linalg import cholesky_orthonormalize


@dataclass
class BSDLayout:
    """Static rank → (domain, band-group, space-slab) assignment.

    Parameters
    ----------
    total_ranks:
        World size.
    ndomains:
        Number of DC domains; must divide ``total_ranks`` (the paper runs
        with ranks-per-domain a power of two).
    """

    total_ranks: int
    ndomains: int

    def __post_init__(self) -> None:
        if self.total_ranks < 1 or self.ndomains < 1:
            raise ValueError("counts must be positive")
        if self.total_ranks % self.ndomains:
            raise ValueError(
                f"{self.total_ranks} ranks not divisible by {self.ndomains} domains"
            )

    @property
    def ranks_per_domain(self) -> int:
        return self.total_ranks // self.ndomains

    def domain_of(self, rank: int) -> int:
        return rank // self.ranks_per_domain

    def domain_colors(self) -> list[int]:
        """Per-rank colors for ``VirtualComm.split`` (one color per domain)."""
        return [self.domain_of(r) for r in range(self.total_ranks)]

    def band_slice(self, local_rank: int, nband: int) -> slice:
        """Contiguous block of bands owned by a rank in band decomposition."""
        per = int(np.ceil(nband / self.ranks_per_domain))
        lo = min(local_rank * per, nband)
        return slice(lo, min(lo + per, nband))

    def space_slice(self, local_rank: int, npw: int) -> slice:
        """Contiguous slab of reciprocal-space rows owned by a rank."""
        per = int(np.ceil(npw / self.ranks_per_domain))
        lo = min(local_rank * per, npw)
        return slice(lo, min(lo + per, npw))


# ---------------------------------------------------------------------------
# Distributed kernels (functional, verified against serial in the tests)
# ---------------------------------------------------------------------------

def distributed_overlap(
    comm: VirtualComm, psi_slabs: list[np.ndarray]
) -> np.ndarray:
    """Overlap matrix S = Ψ^H Ψ from per-rank reciprocal-space slabs.

    Each rank holds a row-slab of Ψ; partial Gram matrices are summed by an
    allreduce within the domain communicator (Sec. 3.3's reciprocal-space
    decomposition for orthonormalization).
    """
    partial = [slab.conj().T @ slab for slab in psi_slabs]
    return comm.allreduce(partial)[0]


def distributed_cholesky_orthonormalize(
    comm: VirtualComm, psi_slabs: list[np.ndarray]
) -> list[np.ndarray]:
    """Orthonormalize slab-distributed orbitals via the shared overlap.

    Every rank applies the same triangular solve to its slab; the result is
    identical (up to roundoff) to serial Cholesky orthonormalization of the
    stacked matrix.
    """
    import scipy.linalg

    s = distributed_overlap(comm, psi_slabs)
    l = np.linalg.cholesky(s)
    out = []
    for slab in psi_slabs:
        out.append(
            scipy.linalg.solve_triangular(l, slab.conj().T, lower=True).conj().T
        )
    return out


def band_to_space(
    comm: VirtualComm, band_blocks: list[np.ndarray], layout: BSDLayout
) -> list[np.ndarray]:
    """Switch from band decomposition to space decomposition (all-to-all).

    ``band_blocks[r]`` is an ``(npw, nb_r)`` block of whole orbitals owned by
    local rank ``r``; the result gives each rank an ``(npw_r, nband)`` slab
    of all orbitals.  The matrix transpose happens via ``alltoall`` — the
    exact communication pattern the paper charges to the domain communicator.
    """
    size = comm.size
    npw = band_blocks[0].shape[0]
    # build the send matrix: piece (src=band owner, dst=slab owner)
    matrix = []
    for src in range(size):
        row = []
        for dst in range(size):
            sl = layout.space_slice(dst, npw)
            row.append(band_blocks[src][sl, :])
        matrix.append(row)
    received = comm.alltoall(matrix)
    # each dst stacks pieces from all srcs along the band axis
    return [np.concatenate(received[dst], axis=1) for dst in range(size)]


def space_to_band(
    comm: VirtualComm, space_slabs: list[np.ndarray], layout: BSDLayout
) -> list[np.ndarray]:
    """Inverse redistribution: slabs of all orbitals → whole-orbital blocks."""
    size = comm.size
    nband = space_slabs[0].shape[1]
    matrix = []
    for src in range(size):
        row = []
        for dst in range(size):
            bs = layout.band_slice(dst, nband)
            row.append(space_slabs[src][:, bs])
        matrix.append(row)
    received = comm.alltoall(matrix)
    return [np.concatenate(received[dst], axis=0) for dst in range(size)]
