"""The virtual parallel machine — substitute for the 786,432-core Blue Gene/Q.

Two halves, usable separately or together:

* **Functional simulated MPI** (:mod:`repro.parallel.comm`): ranks,
  communicators, ``split`` (the paper's ``MPI_COMM_SPLIT`` per domain),
  collectives over per-rank NumPy values.  Executes the *real* data movement
  of the BSD decomposition at small rank counts, so the parallel algorithms
  can be tested for correctness against their serial counterparts.
* **Analytic cost model** (:mod:`repro.parallel.machine`,
  :mod:`repro.parallel.topology`, :mod:`repro.parallel.trace`): per-node
  FLOP rates with SIMD/threading efficiency (Blue Gene/Q and Xeon E5-2665
  presets), 5-D torus link model, tree/butterfly collective costs, and
  per-rank virtual clocks.  Communication issued through a
  :class:`~repro.parallel.comm.VirtualComm` is charged to the clocks, so a
  run yields both the answer and the predicted wall-clock time.

Scaling to core counts we cannot instantiate (Figs. 5-6) is a deterministic
evaluation of the same cost expressions — see
:mod:`repro.perfmodel.scaling`.
"""

from repro.parallel.machine import (
    BLUE_GENE_Q,
    MIRA,
    XEON_E5_2665,
    MachineSpec,
)
from repro.parallel.topology import TorusTopology, TreeTopology
from repro.parallel.trace import CostTracker
from repro.parallel.comm import VirtualComm
from repro.parallel.decomposition import BSDLayout
from repro.parallel.collective_io import CollectiveIOModel
from repro.parallel.scheduler import Schedule, schedule_domains
from repro.parallel.halo import exchange_halos, halo_bytes_per_domain

__all__ = [
    "MachineSpec",
    "BLUE_GENE_Q",
    "MIRA",
    "XEON_E5_2665",
    "TorusTopology",
    "TreeTopology",
    "CostTracker",
    "VirtualComm",
    "BSDLayout",
    "CollectiveIOModel",
    "Schedule",
    "schedule_domains",
    "exchange_halos",
    "halo_bytes_per_domain",
]
