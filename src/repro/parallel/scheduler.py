"""Domain → rank-group scheduling with load balancing.

The paper assigns one MPI communicator per DC domain (Sec. 3.3).  When the
domain atom counts are unequal (LiAl particle + water), naive round-robin
placement leaves some groups idle; this module provides the standard
largest-first (LPT) heuristic over per-domain cost estimates, plus the
imbalance metrics the trace reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Schedule:
    """Assignment of domains to rank groups."""

    group_of_domain: np.ndarray  # (ndomains,)
    ngroups: int
    loads: np.ndarray  # (ngroups,) summed cost per group

    @property
    def imbalance(self) -> float:
        """(max - mean)/max of group loads; 0 = perfect balance."""
        mx = float(self.loads.max())
        if mx <= 0:
            return 0.0
        return float((mx - self.loads.mean()) / mx)

    def domains_in_group(self, g: int) -> list[int]:
        return [int(d) for d in np.flatnonzero(self.group_of_domain == g)]


def domain_cost_estimate(natoms: int, nu: float = 2.0) -> float:
    """Per-domain solve cost ∝ (electron count)^ν — the Sec. 3.1 scaling."""
    return float(max(natoms, 0)) ** nu


def schedule_round_robin(costs, ngroups: int) -> Schedule:
    """Naive static assignment (the baseline)."""
    costs = np.asarray(costs, dtype=float)
    if ngroups < 1:
        raise ValueError("ngroups must be >= 1")
    groups = np.arange(len(costs)) % ngroups
    loads = np.bincount(groups, weights=costs, minlength=ngroups)
    return Schedule(groups, ngroups, loads)


def schedule_lpt(costs, ngroups: int) -> Schedule:
    """Longest-processing-time-first: sort descending, place on the least
    loaded group (4/3-competitive for makespan)."""
    costs = np.asarray(costs, dtype=float)
    if ngroups < 1:
        raise ValueError("ngroups must be >= 1")
    if np.any(costs < 0):
        raise ValueError("costs must be nonnegative")
    order = np.argsort(-costs, kind="stable")
    groups = np.zeros(len(costs), dtype=int)
    loads = np.zeros(ngroups)
    for d in order:
        g = int(np.argmin(loads))
        groups[d] = g
        loads[g] += costs[d]
    return Schedule(groups, ngroups, loads)


def schedule_manual(group_of_domain, ngroups: int, costs=None) -> Schedule:
    """Build a :class:`Schedule` from an explicit domain → group assignment.

    The injection seam for externally decided placements: skewed
    assignments in divergence tests/benches, and (eventually) SFC-based
    dynamic re-assignment from measured per-domain solve times.  ``costs``
    defaults to unit cost per domain.
    """
    groups = np.asarray(group_of_domain, dtype=int)
    if ngroups < 1:
        raise ValueError("ngroups must be >= 1")
    if groups.size and (groups.min() < 0 or groups.max() >= ngroups):
        raise ValueError("group assignments must lie in [0, ngroups)")
    costs = (
        np.ones(len(groups)) if costs is None
        else np.asarray(costs, dtype=float)
    )
    if len(costs) != len(groups):
        raise ValueError("costs length must match assignment length")
    loads = np.bincount(groups, weights=costs, minlength=ngroups)
    return Schedule(groups, ngroups, loads)


def schedule_domains(
    atom_counts, ngroups: int, nu: float = 2.0, method: str = "lpt"
) -> Schedule:
    """Schedule domains by their atom counts."""
    costs = [domain_cost_estimate(n, nu) for n in atom_counts]
    if method == "lpt":
        return schedule_lpt(costs, ngroups)
    if method == "round_robin":
        return schedule_round_robin(costs, ngroups)
    raise ValueError(f"unknown scheduling method {method!r}")
