"""Functional halo exchange of domain buffer regions over the simulated MPI.

In the production LDC code, each domain's buffer density values live on the
neighboring domains' cores, so after every density assembly the owning
ranks exchange their boundary slabs (the point-to-point traffic Sec. 5.1
says the buffer reduction "drastically reduced").  This module performs
that exchange functionally for a rank-per-domain layout: every rank holds
its core block, and after the exchange every rank holds its full extended
(core + buffer) block — verified in the tests against direct extraction
from the assembled global field.
"""

from __future__ import annotations

import numpy as np

from repro.core.domains import DomainDecomposition
from repro.parallel.comm import VirtualComm


def exchange_halos(
    comm: VirtualComm,
    decomp: DomainDecomposition,
    core_blocks: list[np.ndarray],
) -> list[np.ndarray]:
    """Assemble every domain's extended block from per-rank core blocks.

    Parameters
    ----------
    comm:
        A communicator with exactly one rank per domain.
    decomp:
        The domain decomposition (defines cores, buffers, index maps).
    core_blocks:
        Per-rank core-region fields, shape ``tuple(core_points)`` each.

    Returns
    -------
    Per-rank extended fields of shape ``tuple(extent_points)``; buffer
    values come from the owning neighbors via an all-gather of core blocks
    (the functional equivalent of the nearest-neighbor exchange, charged as
    a collective when a tracker is attached).
    """
    if comm.size != decomp.ndomains:
        raise ValueError(
            f"need one rank per domain ({decomp.ndomains}), got {comm.size}"
        )
    for dom, block in zip(decomp.domains, core_blocks):
        if block.shape != tuple(dom.core_points):
            raise ValueError("core block shape mismatch")

    # functional exchange: gather all cores (costs charged by the comm),
    # scatter-add into the global grid, then each rank extracts its extent.
    gathered = comm.allgather(core_blocks)[0]
    global_field = np.zeros(decomp.grid.shape)
    for dom, block in zip(decomp.domains, gathered):
        dom.scatter_add_core(global_field, _embed_core(dom, block))
    return [dom.extract(global_field) for dom in decomp.domains]


def _embed_core(dom, core_block: np.ndarray) -> np.ndarray:
    """Place a core block inside a zero extended block (scatter helper)."""
    out = np.zeros(tuple(dom.extent_points))
    b = dom.buffer_points
    out[
        b[0] : b[0] + dom.core_points[0],
        b[1] : b[1] + dom.core_points[1],
        b[2] : b[2] + dom.core_points[2],
    ] = core_block
    return out


def halo_bytes_per_domain(decomp: DomainDecomposition) -> float:
    """Buffer-region bytes each domain must receive — the traffic the LDC
    buffer reduction shrinks (scales like the buffer shell volume)."""
    total = 0.0
    for dom in decomp.domains:
        ext = int(np.prod(dom.extent_points))
        core = int(np.prod(dom.core_points))
        total += 8.0 * (ext - core)
    return total / max(decomp.ndomains, 1)
