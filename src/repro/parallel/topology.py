"""Network topology cost models: the Blue Gene/Q 5-D torus and the tree
abstraction the metascalability argument rests on.

The paper's conclusion: LDC-DFT stays scalable as long as the network
supports a *tree* whose communication volume shrinks going up (the global
density is the only globally shared object, 0.078% of the data for the 50.3M
atom system).  :class:`TreeTopology` models exactly that; the torus provides
nearest-neighbor and collective primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TorusTopology:
    """A d-dimensional torus with per-link bandwidth/latency.

    Blue Gene/Q uses a 5-D torus (Sec. 4.1); Mira's full machine is
    (16, 16, 16, 12, 2) across 96k nodes.
    """

    dims: tuple[int, ...]
    link_bandwidth: float = 2.0e9
    link_latency: float = 1.5e-6

    @property
    def nnodes(self) -> int:
        return int(np.prod(self.dims))

    # -- coordinates -----------------------------------------------------------

    def coordinates(self, rank: int) -> tuple[int, ...]:
        """Rank → torus coordinates (row-major)."""
        if not 0 <= rank < self.nnodes:
            raise ValueError(f"rank {rank} outside torus of {self.nnodes}")
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def hops(self, a: int, b: int) -> int:
        """Minimal wrap-around Manhattan distance between two ranks."""
        ca, cb = self.coordinates(a), self.coordinates(b)
        total = 0
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)
        return total

    def max_hops(self) -> int:
        """Network diameter."""
        return int(sum(d // 2 for d in self.dims))

    # -- primitive costs ----------------------------------------------------------

    def p2p_time(self, nbytes: float, hops: int = 1) -> float:
        """Point-to-point message time (store-and-forward latency per hop,
        single payload transfer)."""
        if hops < 1:
            hops = 1
        return hops * self.link_latency + nbytes / self.link_bandwidth

    def allreduce_time(self, nbytes: float, nranks: int) -> float:
        """Tree allreduce: reduce + broadcast, log₂ depth."""
        if nranks <= 1:
            return 0.0
        depth = int(np.ceil(np.log2(nranks)))
        return 2.0 * depth * (self.link_latency + nbytes / self.link_bandwidth)

    def broadcast_time(self, nbytes: float, nranks: int) -> float:
        if nranks <= 1:
            return 0.0
        depth = int(np.ceil(np.log2(nranks)))
        return depth * (self.link_latency + nbytes / self.link_bandwidth)

    def alltoall_time(self, nbytes_per_pair: float, nranks: int) -> float:
        """Butterfly (log-stage) all-to-all; each stage moves half the data.

        This is the transpose pattern of the intra-domain parallel FFT
        (red lines in Fig. 3).
        """
        if nranks <= 1:
            return 0.0
        stages = int(np.ceil(np.log2(nranks)))
        stage_bytes = nbytes_per_pair * nranks / 2.0
        return stages * (self.link_latency + stage_bytes / self.link_bandwidth)

    def halo_exchange_time(self, nbytes_per_face: float, nfaces: int = 6) -> float:
        """Nearest-neighbor exchange (domain buffers); faces overlap across
        the node's independent links, so cost is max not sum when the link
        count allows."""
        concurrent = max(1, nfaces // 2)  # send/recv pairs share links
        return concurrent * self.link_latency + (
            nfaces * nbytes_per_face / (2.0 * self.link_bandwidth)
        )


def torus_for(nnodes: int) -> TorusTopology:
    """A reasonable 5-D torus for the given node count (powers of 2 split)."""
    dims = [1, 1, 1, 1, 2] if nnodes > 1 else [1, 1, 1, 1, 1]
    axis = 0
    remaining = nnodes // dims[-1] if nnodes > 1 else 1
    while remaining > 1:
        factor = 2 if remaining % 2 == 0 else remaining
        dims[axis % 4] *= factor
        remaining //= factor
        axis += 1
    return TorusTopology(tuple(dims))


@dataclass(frozen=True)
class TreeTopology:
    """The reduction tree of the global (inter-domain) solve.

    Models the multigrid/octree traffic (blue lines in Fig. 3): level k of
    the tree carries ``volume₀ / branching^k`` data, so the total up-sweep
    volume is geometrically bounded — the paper's metascalability condition.
    """

    branching: int = 8
    link_bandwidth: float = 2.0e9
    link_latency: float = 1.5e-6

    def depth(self, nleaves: int) -> int:
        if nleaves <= 1:
            return 0
        return int(np.ceil(np.log(nleaves) / np.log(self.branching)))

    def sweep_time(self, leaf_bytes: float, nleaves: int) -> float:
        """One up-sweep (reduce): Σ_k latency + volume_k/bandwidth."""
        d = self.depth(nleaves)
        total = 0.0
        vol = leaf_bytes
        for _ in range(d):
            total += self.link_latency + vol / self.link_bandwidth
            vol /= self.branching
        return total

    def vcycle_time(self, leaf_bytes: float, nleaves: int) -> float:
        """Down+up traversal (one multigrid V-cycle's communication)."""
        return 2.0 * self.sweep_time(leaf_bytes, nleaves)

    def total_volume(self, leaf_bytes: float, nleaves: int) -> float:
        """Total bytes moved in one sweep — bounded by leaf_bytes·b/(b-1)."""
        d = self.depth(nleaves)
        vol, total = leaf_bytes, 0.0
        for _ in range(d):
            total += vol
            vol /= self.branching
        return total
