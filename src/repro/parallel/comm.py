"""Functional simulated MPI: communicators, collectives, and ``split``.

A :class:`VirtualComm` executes SPMD code over *per-rank value lists*: the
value at index ``r`` is what rank ``r`` holds.  Collectives really move the
data (so parallel algorithms can be verified bit-for-bit against serial
ones) and, when a :class:`~repro.parallel.trace.CostTracker` and a
:class:`~repro.parallel.topology.TorusTopology` are attached, charge the
modeled communication time to the participants' virtual clocks.

``split`` reproduces the paper's ``MPI_COMM_SPLIT``-per-domain pattern of
Sec. 3.3 (one dedicated communicator per DC domain).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

import numpy as np

from repro.parallel.topology import TorusTopology
from repro.parallel.trace import CostTracker

#: Fallback payload estimate (bytes) for opaque python objects — roughly a
#: small object header + a few slots.  Containers, arrays, scalars, strings,
#: dataclasses, and ``None`` are all sized explicitly before this applies.
_OPAQUE_OBJECT_BYTES = 64.0


def _nbytes(value: Any) -> float:
    """Approximate payload size of one rank's value.

    ``None`` is the "no payload" marker the collectives themselves produce
    (e.g. non-root entries after :meth:`VirtualComm.reduce`) and costs
    nothing; dataclass payloads are sized as the sum of their fields.
    """
    if value is None:
        return 0.0
    if isinstance(value, np.ndarray):
        return float(value.nbytes)
    if isinstance(value, (int, float, complex, np.generic)):
        return 8.0
    if isinstance(value, (bytes, bytearray)):
        return float(len(value))
    if isinstance(value, str):
        return float(len(value.encode("utf-8")))
    if isinstance(value, (list, tuple, set, frozenset)):
        return float(sum(_nbytes(v) for v in value))
    if isinstance(value, dict):
        # Keys travel with the payload too (a real MPI dict send serializes
        # both); sizing only the values silently under-charges keyed data.
        return float(
            sum(_nbytes(k) + _nbytes(v) for k, v in value.items())
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return float(
            sum(
                _nbytes(getattr(value, f.name))
                for f in dataclasses.fields(value)
            )
        )
    return _OPAQUE_OBJECT_BYTES


class VirtualComm:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks in this communicator.
    tracker:
        Optional shared :class:`CostTracker` (world-sized).
    topology:
        Optional :class:`TorusTopology` for communication costs.
    world_ranks:
        Global rank ids of this communicator's members (identity for the
        world communicator).
    profiler:
        Optional live observer with a ``record(event)`` method (in practice
        a :class:`repro.observability.comms.CommProfiler`).  Attached to the
        shared tracker, so every collective this communicator — or any
        sub-communicator from :meth:`split` — charges is profiled with its
        wait/transfer decomposition.  ``None`` (the default) keeps the
        charge path observer-free.
    sanitizer:
        Optional collective-schedule sanitizer (in practice a
        :class:`repro.sanitize.collective.CollectiveScheduleSanitizer`)
        consulted *before* each collective executes: it validates roots
        and payload congruence and keeps a schedule ledger, raising a
        diagnosis instead of letting a malformed collective produce a
        silently wrong answer.  Propagated to sub-communicators from
        :meth:`split`.  ``None`` (the default) keeps every collective
        sanitizer-free — not a single extra call.
    """

    def __init__(
        self,
        size: int,
        tracker: CostTracker | None = None,
        topology: TorusTopology | None = None,
        world_ranks: Sequence[int] | None = None,
        name: str = "world",
        profiler=None,
        sanitizer=None,
    ) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.tracker = tracker
        self.topology = topology
        self.world_ranks = (
            list(range(size)) if world_ranks is None else list(world_ranks)
        )
        if len(self.world_ranks) != size:
            raise ValueError("world_ranks length must equal size")
        self.name = name
        self.profiler = profiler
        self.sanitizer = sanitizer
        if profiler is not None and tracker is not None:
            tracker.profiler = profiler

    # -- internals -----------------------------------------------------------

    def _validate(self, values: Sequence[Any]) -> None:
        if len(values) != self.size:
            raise ValueError(
                f"{self.name}: expected one value per rank "
                f"({self.size}), got {len(values)}"
            )

    def _charge(self, seconds: float, nbytes: float, label: str) -> None:
        if self.tracker is not None:
            self.tracker.charge_collective(
                self.world_ranks, seconds, nbytes, label
            )
        elif self.profiler is not None:
            # No virtual clocks: record the call/byte accounting anyway so a
            # profiler on an untimed communicator still sees traffic volumes
            # (wait decomposition needs a tracker and stays zero here).
            from repro.parallel.trace import TraceEvent

            self.profiler.record(
                TraceEvent(
                    "collective", tuple(self.world_ranks), seconds, nbytes,
                    label,
                )
            )

    def _collective_time(self, nbytes: float) -> float:
        if self.topology is None:
            return 0.0
        return self.topology.allreduce_time(nbytes, self.size)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.record(self, "barrier", None, None)
        self._charge(self._collective_time(8.0), 0.0, "barrier")

    def bcast(self, values: Sequence[Any], root: int = 0) -> list[Any]:
        """Every rank receives the root's value."""
        self._validate(values)
        if self.sanitizer is not None:
            self.sanitizer.record(self, "bcast", root, values)
        payload = values[root]
        nbytes = _nbytes(payload)
        t = (
            self.topology.broadcast_time(nbytes, self.size)
            if self.topology
            else 0.0
        )
        self._charge(t, nbytes * (self.size - 1), "bcast")
        return [payload for _ in range(self.size)]

    def reduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = np.add,
        root: int = 0,
    ) -> list[Any]:
        """Root holds the reduction; other ranks hold ``None``."""
        self._validate(values)
        if self.sanitizer is not None:
            self.sanitizer.record(self, "reduce", root, values)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        nbytes = _nbytes(values[0])
        t = self._collective_time(nbytes) / 2.0  # reduce = half of allreduce
        self._charge(t, nbytes * (self.size - 1), "reduce")
        return [acc if r == root else None for r in range(self.size)]

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any] = np.add
    ) -> list[Any]:
        self._validate(values)
        if self.sanitizer is not None:
            self.sanitizer.record(self, "allreduce", None, values)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        nbytes = _nbytes(values[0])
        self._charge(self._collective_time(nbytes), nbytes * self.size, "allreduce")
        return [acc for _ in range(self.size)]

    def gather(self, values: Sequence[Any], root: int = 0) -> list[Any]:
        self._validate(values)
        if self.sanitizer is not None:
            self.sanitizer.record(self, "gather", root, values)
        nbytes = sum(_nbytes(v) for v in values)
        t = self._collective_time(nbytes / max(self.size, 1))
        self._charge(t, nbytes, "gather")
        return [list(values) if r == root else None for r in range(self.size)]

    def allgather(self, values: Sequence[Any]) -> list[list[Any]]:
        self._validate(values)
        if self.sanitizer is not None:
            self.sanitizer.record(self, "allgather", None, values)
        nbytes = sum(_nbytes(v) for v in values)
        self._charge(self._collective_time(nbytes), nbytes * self.size, "allgather")
        return [list(values) for _ in range(self.size)]

    def scatter(self, chunks: Sequence[Any], root: int = 0) -> list[Any]:
        """Root's list of ``size`` chunks is distributed, one per rank."""
        if len(chunks) != self.size:
            raise ValueError("scatter needs one chunk per rank")
        if self.sanitizer is not None:
            self.sanitizer.record(self, "scatter", root, chunks)
        nbytes = sum(_nbytes(c) for c in chunks)
        t = self._collective_time(nbytes / max(self.size, 1))
        self._charge(t, nbytes, "scatter")
        return list(chunks)

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> list[list[Any]]:
        """``matrix[src][dst]`` → returns ``out[dst][src]`` (the transpose).

        This is the band↔space redistribution of Sec. 3.3.
        """
        self._validate(matrix)
        for row in matrix:
            if len(row) != self.size:
                raise ValueError("alltoall needs a square value matrix")
        if self.sanitizer is not None:
            self.sanitizer.record(self, "alltoall", None, matrix)
        per_pair = _nbytes(matrix[0][0])
        t = (
            self.topology.alltoall_time(per_pair, self.size)
            if self.topology
            else 0.0
        )
        self._charge(t, per_pair * self.size * self.size, "alltoall")
        return [[matrix[src][dst] for src in range(self.size)] for dst in range(self.size)]

    # -- communicator management ----------------------------------------------------

    def split(
        self, colors: Sequence[int], keys: Sequence[int] | None = None
    ) -> list["VirtualComm"]:
        """``MPI_COMM_SPLIT``: per-rank colors → per-rank sub-communicators.

        Returns a list of length ``size``: entry ``r`` is the communicator
        rank ``r`` belongs to (ranks sharing a color share the object).
        Within each sub-communicator, ranks are ordered by ``keys`` (default:
        original rank order).
        """
        self._validate(colors)
        if self.sanitizer is not None:
            self.sanitizer.record(self, "split", None, colors)
        if keys is None:
            keys = list(range(self.size))
        groups: dict[int, list[int]] = {}
        for r, color in enumerate(colors):
            groups.setdefault(color, []).append(r)
        comms: dict[int, VirtualComm] = {}
        for color, members in groups.items():
            members = sorted(members, key=lambda r: (keys[r], r))
            comms[color] = VirtualComm(
                len(members),
                tracker=self.tracker,
                topology=self.topology,
                world_ranks=[self.world_ranks[m] for m in members],
                name=f"{self.name}/color{color}",
                profiler=self.profiler,
                sanitizer=self.sanitizer,
            )
        self._charge(0.0, 0.0, "comm_split")
        return [comms[colors[r]] for r in range(self.size)]

    def rank_in(self, world_rank: int) -> int:
        """Local rank of a world rank within this communicator."""
        return self.world_ranks.index(world_rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualComm(name={self.name!r}, size={self.size})"
