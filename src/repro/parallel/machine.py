"""Machine models: Blue Gene/Q (Mira) and dual Xeon E5-2665 (Sec. 4.1).

The FLOP-rate model captures the three effects Sec. 4 documents:

* **SIMD (QPX) fraction** — code that is not vectorized runs at 1/simd_width
  of peak; the paper's optimization raised the vectorized fraction.
* **Instruction issue** — a PowerPC A2 core needs ≥ 2 instruction streams to
  dual-issue AXU+XU; 4 hardware threads hide further latency (Table 1).
* **Memory-bandwidth saturation** — more threads per core stop helping once
  the memory interface saturates.

Effective GFLOP/s = peak × simd_eff × issue_eff(threads) × locality_eff.
The preset efficiency constants are calibrated against Tables 1-2 (see
EXPERIMENTS.md for the paper-vs-model comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one compute platform.

    Attributes
    ----------
    name:
        Human-readable platform name.
    cores_per_node:
        Physical cores per node.
    threads_per_core:
        Hardware threads per core.
    clock_hz:
        Core clock (the Xeon preset uses the turbo clock, as the paper does
        when quoting the 396 GFLOP/s node peak).
    flops_per_cycle:
        Peak double-precision FLOPs per cycle per core (SIMD width × FMA).
    link_bandwidth:
        Per-link bandwidth in bytes/second.
    link_latency:
        Per-hop latency in seconds.
    links_per_node:
        Inter-node links (Blue Gene/Q: 10 torus links + 1 I/O).
    memory_bandwidth:
        Node memory bandwidth, bytes/second.
    issue_efficiency:
        Map threads-per-core → instruction-issue efficiency (calibrated).
    simd_efficiency:
        Fraction of peak attainable by the vectorized instruction mix.
    watts_per_node:
        Power draw (the paper quotes 55 W/node for Blue Gene/Q).
    """

    name: str
    cores_per_node: int
    threads_per_core: int
    clock_hz: float
    flops_per_cycle: float
    link_bandwidth: float
    link_latency: float
    links_per_node: int
    memory_bandwidth: float
    issue_efficiency: dict[int, float] = field(
        default_factory=lambda: {1: 0.55, 2: 0.78, 4: 1.0}
    )
    simd_efficiency: float = 0.60
    watts_per_node: float = 100.0

    # -- peak rates ---------------------------------------------------------

    @property
    def peak_core_flops(self) -> float:
        return self.clock_hz * self.flops_per_cycle

    @property
    def peak_node_flops(self) -> float:
        return self.cores_per_node * self.peak_core_flops

    def peak_flops(self, nodes: int) -> float:
        return nodes * self.peak_node_flops

    # -- effective rates ------------------------------------------------------

    def effective_core_flops(
        self, threads_per_core: int = None, locality: float = 1.0
    ) -> float:
        """Attainable FLOP/s per core for a given threading level."""
        t = threads_per_core or self.threads_per_core
        issue = self.issue_efficiency.get(t)
        if issue is None:
            # interpolate between known points
            keys = sorted(self.issue_efficiency)
            t_clamped = min(max(t, keys[0]), keys[-1])
            issue = self.issue_efficiency[
                min(keys, key=lambda k: abs(k - t_clamped))
            ]
        return self.peak_core_flops * self.simd_efficiency * issue * locality

    def effective_node_flops(
        self, threads_per_core: int = None, locality: float = 1.0
    ) -> float:
        return self.cores_per_node * self.effective_core_flops(
            threads_per_core, locality
        )

    def time_for_flops(
        self, flops: float, cores: int, threads_per_core: int = None
    ) -> float:
        """Seconds to execute ``flops`` spread over ``cores`` cores."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return flops / (cores * self.effective_core_flops(threads_per_core))


#: IBM Blue Gene/Q node: PowerPC A2, 16 cores @ 1.6 GHz, QPX 4-wide FMA
#: → 204.8 GFLOP/s peak per node; 10 torus links at 2 GB/s each (Sec. 4.1).
BLUE_GENE_Q = MachineSpec(
    name="IBM Blue Gene/Q",
    cores_per_node=16,
    threads_per_core=4,
    clock_hz=1.6e9,
    flops_per_cycle=8.0,  # 4-wide QPX FMA
    link_bandwidth=2.0e9,
    link_latency=1.5e-6,
    links_per_node=10,
    memory_bandwidth=28.0e9,
    issue_efficiency={1: 0.52, 2: 0.73, 4: 1.0},
    simd_efficiency=0.56,
    watts_per_node=55.0,
)

#: Mira = 48 racks × 1,024 nodes of Blue Gene/Q (Sec. 4.1).
MIRA = BLUE_GENE_Q
MIRA_NODES_PER_RACK = 1024
MIRA_RACKS = 48

#: Dual Intel Xeon E5-2665 (Sandy Bridge-EP): 2 × 8 cores; with turbo the
#: paper quotes 198 GFLOP/s per chip → 396 GFLOP/s per node (Sec. 5.4).
XEON_E5_2665 = MachineSpec(
    name="dual Intel Xeon E5-2665",
    cores_per_node=16,
    threads_per_core=2,
    clock_hz=3.1e9,  # turbo-boosted clock, as assumed by the paper
    flops_per_cycle=8.0,  # AVX 4-wide add + mul
    link_bandwidth=6.4e9,  # QPI-ish
    link_latency=1.0e-6,
    links_per_node=2,
    memory_bandwidth=14.9e9 * 4,  # 4 channels (Sec. 4.1)
    issue_efficiency={1: 0.70, 2: 1.0, 4: 1.0},
    simd_efficiency=0.55,
    watts_per_node=230.0,
)


def mira_cores(racks: int = MIRA_RACKS) -> int:
    """Core count of a Mira partition (48 racks = 786,432 cores)."""
    return racks * MIRA_NODES_PER_RACK * BLUE_GENE_Q.cores_per_node
