"""Collective file I/O model (Sec. 4.2).

The paper aggregates MPI processes into I/O groups: within each group a
master gathers the group's data and performs the disk access, so the
filesystem sees ``nranks / group_size`` clients instead of 786,432.  Two
opposing costs set an optimal group size (the paper finds 192):

* larger groups → fewer files/clients, but a taller intra-group gather tree
  and more data per master;
* smaller groups → cheap gathers, but metadata/client overhead and
  contention on the finite I/O servers grow with the group count.

For a typical 12-hour production run on the full machine the paper reports
read 9.1 s and write 99 s — 0.02% and 0.23% of the execution time; the
defaults below are calibrated to land in that regime (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CollectiveIOModel:
    """Analytic cost model for grouped collective I/O.

    Parameters
    ----------
    n_io_servers:
        Parallel I/O servers / filesystem targets (Mira: 1 I/O node per 128
        compute nodes; bandwidth is what matters here).
    server_bandwidth:
        Sustained bytes/second per server.
    file_overhead:
        Fixed cost per file open/close + metadata (seconds).
    gather_latency, gather_bandwidth:
        Intra-group aggregation tree parameters (network-level).
    client_overhead:
        Filesystem cost per concurrent client (contention; seconds).
    """

    n_io_servers: int = 384
    server_bandwidth: float = 1.2e9
    file_overhead: float = 0.04
    gather_latency: float = 2.0e-6
    gather_bandwidth: float = 1.8e9
    client_overhead: float = 0.004

    def io_time(
        self, total_bytes: float, nranks: int, group_size: int, write: bool = True
    ) -> float:
        """Seconds to write (or read) ``total_bytes`` spread over all ranks."""
        if nranks < 1 or group_size < 1:
            raise ValueError("counts must be positive")
        group_size = min(group_size, nranks)
        ngroups = int(np.ceil(nranks / group_size))
        bytes_per_rank = total_bytes / nranks
        group_bytes = bytes_per_rank * group_size

        # intra-group gather (tree): log2(g) stages, full group payload
        depth = int(np.ceil(np.log2(group_size))) if group_size > 1 else 0
        gather = depth * self.gather_latency + group_bytes / self.gather_bandwidth
        if not write:
            gather = gather  # scatter on read costs the same in this model

        # disk phase: ngroups clients share the servers
        waves = int(np.ceil(ngroups / self.n_io_servers))
        disk = waves * (self.file_overhead + group_bytes / self.server_bandwidth)
        contention = ngroups * self.client_overhead / self.n_io_servers
        factor = 1.0 if write else 0.35  # reads stream faster than writes
        return gather + factor * (disk + contention)

    def optimal_group_size(
        self,
        total_bytes: float,
        nranks: int,
        candidates: np.ndarray | None = None,
        write: bool = True,
    ) -> tuple[int, float]:
        """Group size minimizing :meth:`io_time`; returns (size, seconds)."""
        if candidates is None:
            exps = np.arange(0, int(np.log2(max(nranks, 2))) + 1)
            candidates = np.unique(
                np.concatenate([2**exps, 3 * 2**exps, [192, nranks]])
            )
            candidates = candidates[(candidates >= 1) & (candidates <= nranks)]
        best_size, best_time = 1, np.inf
        for g in candidates:
            t = self.io_time(total_bytes, nranks, int(g), write)
            if t < best_time:
                best_size, best_time = int(g), t
        return best_size, best_time
