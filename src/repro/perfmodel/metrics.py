"""Time-to-solution metrics and the prior-art comparison of Sec. 2.

The paper's figure of merit is ``atoms × SCF-iterations / second``:

* Hasegawa et al. (2011 Gordon Bell, K computer, O(N³) real-space DFT):
  107,292 Si atoms, 5,456 s/iteration → **19.7** atom·it/s.
* Osei-Kuffuor & Fattebert (2014, O(N) on 23,328 BG/Q cores): 101,952-atom
  polymer, ~275 s/MD-step at ~5 SCF/step → **1,850** atom·it/s.
* This paper: 50,331,648-atom SiC, 441 s/iteration on 786,432 cores →
  **114,000** atom·it/s (5,800× and 62× improvements).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriorArt:
    """One state-of-the-art reference point."""

    label: str
    natoms: int
    seconds_per_iteration: float

    @property
    def atom_iterations_per_second(self) -> float:
        return self.natoms / self.seconds_per_iteration


PRIOR_ART: dict[str, PriorArt] = {
    "hasegawa2011": PriorArt("Hasegawa et al. SC11 (K computer, O(N³))", 107_292, 5_456.0),
    "oseikuffuor2014": PriorArt(
        "Osei-Kuffuor & Fattebert PRL 2014 (O(N), 23,328 BG/Q cores)",
        101_952,
        275.0 / 5.0,
    ),
    "this_paper": PriorArt("LDC-DFT (786,432 BG/Q cores)", 50_331_648, 441.0),
}


def atom_iterations_per_second(natoms: int, iterations: float, seconds: float) -> float:
    """The paper's time-to-solution metric."""
    if seconds <= 0 or iterations <= 0:
        raise ValueError("seconds and iterations must be positive")
    return natoms * iterations / seconds


def speedup_over(metric: float, reference: PriorArt) -> float:
    """How many times faster than a prior-art reference."""
    return metric / reference.atom_iterations_per_second


def percent_of_peak(achieved_flops: float, peak_flops: float) -> float:
    if peak_flops <= 0:
        raise ValueError("peak must be positive")
    return 100.0 * achieved_flops / peak_flops


def parallel_efficiency_weak(
    time_base: float, time_scaled: float
) -> float:
    """Weak scaling: efficiency = T(P₀)/T(P) at constant work per core."""
    if time_base <= 0 or time_scaled <= 0:
        raise ValueError("times must be positive")
    return time_base / time_scaled


def parallel_efficiency_strong(
    time_base: float, cores_base: int, time_scaled: float, cores_scaled: int
) -> float:
    """Strong scaling: efficiency = (T₀·P₀)/(T·P) at constant problem size."""
    if min(time_base, time_scaled) <= 0 or min(cores_base, cores_scaled) <= 0:
        raise ValueError("inputs must be positive")
    return (time_base * cores_base) / (time_scaled * cores_scaled)
