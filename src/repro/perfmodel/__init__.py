"""Analytic performance models for the paper's evaluation artifacts.

* :mod:`repro.perfmodel.flops` — FLOP counts of the LDC-DFT kernels
  (batched FFTs, BLAS3 projector/subspace GEMMs, multigrid stencils).
* :mod:`repro.perfmodel.threading` — the Table 1 / Table 2 FLOP-rate model
  (SIMD fraction × instruction issue × parallel dilution).
* :mod:`repro.perfmodel.scaling` — weak- (Fig. 5) and strong- (Fig. 6)
  scaling wall-clock composition on the virtual Blue Gene/Q.
* :mod:`repro.perfmodel.metrics` — time-to-solution metrics
  (atom·iteration/s, parallel efficiency, %peak) and the prior-art
  comparison of Sec. 2.
"""

from repro.perfmodel.flops import (
    FlopCounts,
    domain_scf_flops,
    fft_flops,
    gemm_flops,
    multigrid_vcycle_flops,
    qmd_step_flops,
)
from repro.perfmodel.threading import flops_table, rack_table
from repro.perfmodel.scaling import StrongScalingModel, WeakScalingModel
from repro.perfmodel.campaign import CampaignSpec, PAPER_PRODUCTION, plan_campaign
from repro.perfmodel.metrics import (
    PRIOR_ART,
    atom_iterations_per_second,
    parallel_efficiency_strong,
    parallel_efficiency_weak,
    percent_of_peak,
    speedup_over,
)

__all__ = [
    "FlopCounts",
    "fft_flops",
    "gemm_flops",
    "domain_scf_flops",
    "multigrid_vcycle_flops",
    "qmd_step_flops",
    "flops_table",
    "rack_table",
    "WeakScalingModel",
    "StrongScalingModel",
    "atom_iterations_per_second",
    "parallel_efficiency_weak",
    "parallel_efficiency_strong",
    "percent_of_peak",
    "speedup_over",
    "PRIOR_ART",
    "CampaignSpec",
    "PAPER_PRODUCTION",
    "plan_campaign",
]
