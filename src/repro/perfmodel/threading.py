"""The FLOP-rate model behind Tables 1-2 (threading, SIMD, and dilution).

Three multiplicative factors over peak:

* ``simd_efficiency`` — attainable fraction from the vectorized instruction
  mix (Sec. 4.2's QPX work: post-optimization ≈ 0.56 on Blue Gene/Q).
* ``issue_efficiency(threads/core)`` — PowerPC A2 needs ≥ 2 instruction
  streams to dual-issue; 4 hardware threads hide more latency (Table 1's
  rising columns).
* ``dilution(scale)`` — at fixed problem size, adding nodes shrinks the
  per-node working set and raises the communication fraction (Table 1's
  falling rows); under weak scaling only a gentle log-depth collective term
  remains (Table 2's 54% → 50.5%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.machine import (
    BLUE_GENE_Q,
    MIRA_NODES_PER_RACK,
    MachineSpec,
)

#: Strong-scaling dilution coefficient (Table 1 calibration).
STRONG_DILUTION = 0.105

#: Weak-scaling dilution per log₂(racks) (Table 2 calibration).
WEAK_DILUTION = 0.0125

#: Table 2's weak-scaled problem runs slightly below the Table-1 small-block
#: optimum (larger per-rank working sets): 53.99% vs the 56% SIMD ceiling.
RACK_BASE_FRACTION = 0.9641


def strong_dilution(nodes: int, base_nodes: int = 4) -> float:
    """Efficiency factor when spreading a fixed problem over more nodes."""
    if nodes < base_nodes:
        return 1.0
    return 1.0 / (1.0 + STRONG_DILUTION * np.log2(nodes / base_nodes))


def weak_dilution(racks: float, base_racks: float = 1.0) -> float:
    """Efficiency factor under weak scaling across racks."""
    if racks <= base_racks:
        return 1.0
    return 1.0 / (1.0 + WEAK_DILUTION * np.log2(racks / base_racks))


@dataclass
class FlopRow:
    """One row/cell of a FLOP-rate table."""

    nodes: int
    threads_per_core: int
    gflops: float
    percent_peak: float


def node_flop_rate(
    machine: MachineSpec,
    nodes: int,
    threads_per_core: int,
    dilution: float = 1.0,
) -> FlopRow:
    """Modeled aggregate FLOP/s for a partition."""
    eff = machine.effective_node_flops(threads_per_core) * dilution
    total = eff * nodes
    peak = machine.peak_flops(nodes)
    return FlopRow(nodes, threads_per_core, total / 1e9, 100.0 * total / peak)


def flops_table(
    machine: MachineSpec = BLUE_GENE_Q,
    node_counts: tuple[int, ...] = (4, 8, 16),
    thread_counts: tuple[int, ...] = (1, 2, 4),
    base_nodes: int = 4,
) -> list[FlopRow]:
    """The Table 1 sweep: fixed 512-atom problem, nodes × threads grid."""
    rows = []
    for nodes in node_counts:
        dil = strong_dilution(nodes, base_nodes)
        for t in thread_counts:
            rows.append(node_flop_rate(machine, nodes, t, dil))
    return rows


def rack_table(
    machine: MachineSpec = BLUE_GENE_Q,
    racks: tuple[int, ...] = (1, 2, 48),
    nodes_per_rack: int = MIRA_NODES_PER_RACK,
) -> list[FlopRow]:
    """The Table 2 sweep: weak-scaled problem over Mira racks, 4 threads."""
    rows = []
    for r in racks:
        dil = RACK_BASE_FRACTION * weak_dilution(r)
        row = node_flop_rate(machine, r * nodes_per_rack, 4, dil)
        rows.append(row)
    return rows


def xeon_portability_estimate(machine: MachineSpec) -> FlopRow:
    """Sec. 5.4: single dual-Xeon node, hyper-threaded (Table-free scalar)."""
    return node_flop_rate(machine, 1, 2, 1.0)
