"""Production-campaign accounting (Sec. 6).

The paper's science run: 16,661 atoms (43,708 electrons) for 21,140 QMD
steps — 129,208 SCF iterations at a 0.242 fs time step, executed in ~12-hour
sessions on the full machine with collective I/O between sessions.  This
module reproduces that bookkeeping and provides a planner that predicts the
wall-clock of a campaign from the scaling models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import PAPER_TIMESTEP_FS
from repro.parallel.machine import BLUE_GENE_Q, MachineSpec
from repro.perfmodel.scaling import StrongScalingModel


@dataclass(frozen=True)
class CampaignSpec:
    """A production QMD campaign."""

    natoms: int
    nsteps: int
    scf_iterations: int
    timestep_fs: float = PAPER_TIMESTEP_FS

    @property
    def scf_per_step(self) -> float:
        return self.scf_iterations / self.nsteps

    @property
    def simulated_ps(self) -> float:
        return self.nsteps * self.timestep_fs / 1000.0


#: The paper's hydrogen-on-demand production run (Sec. 6).
PAPER_PRODUCTION = CampaignSpec(
    natoms=16_661, nsteps=21_140, scf_iterations=129_208
)

#: The paper's verification run (Sec. 5.5): Li30Al30 + 182 H2O.
PAPER_VERIFICATION = CampaignSpec(
    natoms=606, nsteps=10_000, scf_iterations=60_000
)


@dataclass
class CampaignPlan:
    """Predicted execution profile of a campaign."""

    spec: CampaignSpec
    cores: int
    seconds_per_scf: float
    total_hours: float
    sessions_12h: float
    io_seconds_per_session: float

    @property
    def atom_iterations_per_second(self) -> float:
        return self.spec.natoms / self.seconds_per_scf


def plan_campaign(
    spec: CampaignSpec,
    cores: int = 786_432,
    machine: MachineSpec = BLUE_GENE_Q,
    atoms_per_domain: int = 100,
    io_model=None,
) -> CampaignPlan:
    """Predict the wall-clock profile of a production campaign.

    Uses the strong-scaling composition with the campaign's own domain
    count (the paper runs ~100 atoms per domain) and the collective-I/O
    model for the per-session checkpoint cost.
    """
    if spec.natoms < atoms_per_domain:
        ndomains = 1
    else:
        ndomains = max(1, spec.natoms // atoms_per_domain)
    model = StrongScalingModel(
        machine=machine,
        natoms=spec.natoms,
        ndomains=ndomains,
        base_cores=cores,
    )
    t_step = model.point(cores, base_cores=cores).wall_clock
    t_scf = t_step / model.scf_per_step
    total_seconds = spec.scf_iterations * t_scf
    total_hours = total_seconds / 3600.0
    sessions = total_hours / 12.0

    if io_model is None:
        from repro.parallel.collective_io import CollectiveIOModel

        io_model = CollectiveIOModel()
    snapshot_bytes = spec.natoms * 200.0  # coordinates+velocities+density meta
    io_seconds = io_model.io_time(
        max(snapshot_bytes, 1e6), cores, 192, write=True
    )
    return CampaignPlan(
        spec=spec,
        cores=cores,
        seconds_per_scf=t_scf,
        total_hours=total_hours,
        sessions_12h=sessions,
        io_seconds_per_session=io_seconds,
    )
