"""Weak- and strong-scaling wall-clock models (Figs. 5-6).

Both models compose the *same* physically-labeled terms the paper's
algorithm generates, evaluated on a machine spec + torus topology:

* ``T_domain`` — the embarrassingly parallel per-domain KS solves (FLOPs
  from :mod:`repro.perfmodel.flops` over the effective node rate);
* ``T_halo`` — nearest-neighbor exchange of domain boundary densities
  (constant under weak scaling — the LDC buffer reduction shrinks it);
* ``T_tree`` — the global density reduction / multigrid octree traffic,
  depth log(P) with geometrically decaying volume (the only term that grows
  with P under weak scaling — hence 0.984 efficiency at 786K cores);
* ``T_intra`` — intra-domain band↔space all-to-alls and the distributed
  Cholesky (the strong-scaling-limiting terms of Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.machine import BLUE_GENE_Q, MachineSpec
from repro.parallel.topology import TorusTopology, TreeTopology
from repro.perfmodel.flops import domain_scf_flops, sic_domain_parameters


@dataclass
class ScalingPoint:
    """One row of a scaling figure."""

    cores: int
    natoms: int
    wall_clock: float
    speed: float  # atoms·steps/s
    efficiency: float
    breakdown: dict[str, float] = field(default_factory=dict)


@dataclass
class WeakScalingModel:
    """Fig. 5: 64·P-atom SiC on P cores, 3 SCF × 3 CG per QMD step.

    One domain per core (as in the benchmark); per-core work is constant,
    and only the tree-reduction depth grows with P.
    """

    machine: MachineSpec = BLUE_GENE_Q
    atoms_per_core: int = 64
    scf_per_step: int = 3
    cg_per_scf: int = 3
    ecut: float = 25.0
    threads_per_core: int = 4
    #: bytes per core of the global density (0.078% of total data, Sec. 5.1)
    density_bytes_per_core: float = 8.0 * 4096
    halo_bytes: float = 8.0 * 32**2 * 6
    #: absolute calibration of the per-domain solve time to the paper's
    #: measured 441 s/SCF-iteration at 786,432 cores (Sec. 5.2) — the naive
    #: FLOP count over the effective rate overestimates by ~10× because the
    #: production code's CG touches only a converging subset of bands and
    #: exploits ultrasoft-pseudopotential structure our counts don't model.
    #: Only the absolute scale is affected; every shape claim (efficiency,
    #: flatness, speedups) is calibration-independent.
    domain_time_calibration: float = 0.0967

    def point(self, cores: int, base_cores: int = 16) -> ScalingPoint:
        t = self._time(cores)
        t0 = self._time(base_cores)
        natoms = self.atoms_per_core * cores
        return ScalingPoint(
            cores=cores,
            natoms=natoms,
            wall_clock=t,
            speed=natoms / t,
            efficiency=t0 / t,
            breakdown=self._breakdown(cores),
        )

    def curve(self, core_counts) -> list[ScalingPoint]:
        return [self.point(int(p)) for p in core_counts]

    # -- internals -------------------------------------------------------------

    def _breakdown(self, cores: int) -> dict[str, float]:
        params = sic_domain_parameters(self.atoms_per_core, self.ecut)
        flops = domain_scf_flops(
            params["npw"],
            params["nband"],
            params["grid_points"],
            params["nproj"],
            self.cg_per_scf,
        ).total
        core_rate = self.machine.effective_core_flops(self.threads_per_core)
        t_domain = (
            self.domain_time_calibration * self.scf_per_step * flops / core_rate
        )
        nodes = max(1, cores // self.machine.cores_per_node)
        torus = TorusTopology(
            (max(nodes, 1),),
            self.machine.link_bandwidth,
            self.machine.link_latency,
        )
        t_halo = self.scf_per_step * torus.halo_exchange_time(self.halo_bytes)
        tree = TreeTopology(
            8, self.machine.link_bandwidth, self.machine.link_latency
        )
        t_tree = self.scf_per_step * tree.vcycle_time(
            self.density_bytes_per_core, max(cores, 1)
        )
        # Residual per-level software overhead of deeper reductions: the
        # empirical ~1.6% growth from 16 → 786,432 cores (Fig. 5).
        depth = np.log2(max(cores, 2))
        t_soft = t_domain * 1.05e-3 * depth
        return {
            "domain": t_domain,
            "halo": t_halo,
            "tree": t_tree,
            "software": t_soft,
        }

    def _time(self, cores: int) -> float:
        return float(sum(self._breakdown(cores).values()))


@dataclass
class StrongScalingModel:
    """Fig. 6: fixed 77,889-atom LiAl-water system, P = 49,152 … 786,432.

    The domain count is fixed; increasing P deepens the intra-domain
    parallelization (band/space groups), whose all-to-all and Cholesky terms
    erode the speedup to 12.85 at 16× cores (efficiency 0.803).
    """

    machine: MachineSpec = BLUE_GENE_Q
    natoms: int = 77_889
    ndomains: int = 768
    scf_per_step: int = 3
    cg_per_scf: int = 3
    ecut: float = 25.0
    threads_per_core: int = 4
    base_cores: int = 49_152
    #: non-scaling fraction of the base-partition domain time: load
    #: imbalance across band groups + latency-bound small messages
    #: (calibrated so the 16× speedup is the paper's 12.85 — EXPERIMENTS.md)
    imbalance_fraction: float = 0.00425
    #: same absolute anchor as the weak model (441 s/SCF; see
    #: WeakScalingModel.domain_time_calibration) — ratios are unaffected
    domain_time_calibration: float = 0.0967

    def point(self, cores: int, base_cores: int = 49_152) -> ScalingPoint:
        t = self._time(cores)
        t0 = self._time(base_cores)
        eff = (t0 * base_cores) / (t * cores)
        return ScalingPoint(
            cores=cores,
            natoms=self.natoms,
            wall_clock=t,
            speed=self.natoms / t,
            efficiency=eff,
            breakdown=self._breakdown(cores),
        )

    def curve(self, core_counts) -> list[ScalingPoint]:
        return [self.point(int(p)) for p in core_counts]

    def speedup(self, cores: int, base_cores: int = 49_152) -> float:
        return self._time(base_cores) / self._time(cores)

    # -- internals ---------------------------------------------------------------

    def _breakdown(self, cores: int) -> dict[str, float]:
        atoms_per_domain = self.natoms / self.ndomains
        params = sic_domain_parameters(int(atoms_per_domain), self.ecut)
        flops = domain_scf_flops(
            params["npw"],
            params["nband"],
            params["grid_points"],
            params["nproj"],
            self.cg_per_scf,
        ).total
        cores_per_domain = max(1, cores // self.ndomains)
        core_rate = self.machine.effective_core_flops(self.threads_per_core)
        flops = flops * self.domain_time_calibration
        t_domain = self.scf_per_step * flops / (core_rate * cores_per_domain)

        torus = TorusTopology(
            (max(cores // self.machine.cores_per_node, 1),),
            self.machine.link_bandwidth,
            self.machine.link_latency,
        )
        # band↔space all-to-alls within the domain group, per CG iteration
        slab_bytes = 16.0 * params["npw"] * params["nband"] / max(
            cores_per_domain, 1
        )
        t_a2a = (
            self.scf_per_step
            * self.cg_per_scf
            * 2.0
            * torus.alltoall_time(
                slab_bytes / max(cores_per_domain, 1), cores_per_domain
            )
        )
        # distributed Cholesky: serial n³ bottleneck fraction + broadcasts
        chol_flops = 4.0 * params["nband"] ** 3 / 3.0
        t_chol = self.scf_per_step * (
            chol_flops / core_rate * 0.02
            + torus.broadcast_time(16.0 * params["nband"] ** 2, cores_per_domain)
        )
        tree = TreeTopology(
            8, self.machine.link_bandwidth, self.machine.link_latency
        )
        t_tree = self.scf_per_step * tree.vcycle_time(8.0 * 4096, max(cores, 1))
        base_cpd = max(1, self.base_cores // self.ndomains)
        t_imbalance = (
            self.imbalance_fraction
            * self.scf_per_step
            * flops
            / (core_rate * base_cpd)
        )
        return {
            "domain": t_domain,
            "alltoall": t_a2a,
            "cholesky": t_chol,
            "tree": t_tree,
            "imbalance": t_imbalance,
        }

    def _time(self, cores: int) -> float:
        return float(sum(self._breakdown(cores).values()))
