"""FLOP counts for the LDC-DFT computational kernels.

These are the standard operation counts (complex arithmetic counted as the
equivalent real FLOPs) for the kernels of Sec. 3: batched FFTs for the local
potential, BLAS3 GEMMs for the nonlocal projectors / subspace algebra /
Cholesky, and stencil sweeps for the global multigrid.  They parameterize
the scaling models and the %peak accounting of Tables 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def fft_flops(npoints: int) -> float:
    """Complex 3-D FFT: ≈ 5 N log₂ N real FLOPs."""
    if npoints < 1:
        raise ValueError("npoints must be positive")
    return 5.0 * npoints * np.log2(max(npoints, 2))


def gemm_flops(m: int, n: int, k: int, complex_: bool = True) -> float:
    """Matrix-matrix multiply: 2mnk real / 8mnk complex FLOPs."""
    return (8.0 if complex_ else 2.0) * m * n * k


def cholesky_flops(n: int, complex_: bool = True) -> float:
    """Cholesky factorization of an n×n matrix: n³/3 (×4 complex)."""
    return (4.0 if complex_ else 1.0) * n**3 / 3.0


def stencil_flops(npoints: int, points_per_stencil: int = 7) -> float:
    """One smoothing sweep of a finite-difference stencil."""
    return 2.0 * points_per_stencil * npoints


@dataclass
class FlopCounts:
    """Breakdown of one domain SCF iteration's FLOPs."""

    fft: float
    nonlocal_gemm: float
    subspace: float
    orthonormalization: float

    @property
    def total(self) -> float:
        return self.fft + self.nonlocal_gemm + self.subspace + self.orthonormalization


def domain_scf_flops(
    npw: int,
    nband: int,
    grid_points: int,
    nproj: int,
    cg_iterations: int = 3,
) -> FlopCounts:
    """FLOPs for one SCF iteration of one DC domain.

    Per CG iteration: every band needs a forward+inverse FFT (local
    potential), the packed projector GEMMs (Eq. 5), and its share of the
    subspace Rayleigh–Ritz; orthonormalization adds the overlap build and
    the Cholesky solve (Sec. 3.3).
    """
    per_iter_fft = 2.0 * nband * fft_flops(grid_points)
    per_iter_nl = 2.0 * gemm_flops(nproj, nband, npw) if nproj else 0.0
    per_iter_sub = 2.0 * gemm_flops(nband, nband, npw) + gemm_flops(
        npw, nband, nband
    )
    ortho = gemm_flops(nband, nband, npw) + cholesky_flops(nband) + gemm_flops(
        npw, nband, nband
    )
    return FlopCounts(
        fft=cg_iterations * per_iter_fft,
        nonlocal_gemm=cg_iterations * per_iter_nl,
        subspace=cg_iterations * per_iter_sub,
        orthonormalization=ortho,
    )


def multigrid_vcycle_flops(finest_points: int, sweeps: int = 4) -> float:
    """One V-cycle over the octree hierarchy: geometric series ≤ 8/7 finest."""
    return stencil_flops(finest_points) * sweeps * 8.0 / 7.0


def qmd_step_flops(
    ndomains: int,
    npw: int,
    nband: int,
    grid_points: int,
    nproj: int,
    scf_iterations: int = 3,
    cg_iterations: int = 3,
    global_grid_points: int | None = None,
) -> float:
    """Total FLOPs of one QMD step of the full LDC-DFT system.

    Matches the Fig. 5 benchmark protocol: ``scf_iterations`` SCF cycles,
    each with ``cg_iterations`` CG refinements per wave function, plus one
    global multigrid solve per SCF cycle.
    """
    per_domain = domain_scf_flops(
        npw, nband, grid_points, nproj, cg_iterations
    ).total
    global_pts = global_grid_points or ndomains * grid_points
    per_scf = ndomains * per_domain + multigrid_vcycle_flops(global_pts)
    return scf_iterations * per_scf


def sic_domain_parameters(
    atoms_per_domain: int = 64, ecut: float = 25.0, buffer_ratio: float = 0.5
) -> dict[str, float]:
    """Representative production-scale domain parameters for SiC.

    The paper's production runs use large plane-wave bases (>10⁴ unknowns
    per electron); this helper returns self-consistent (npw, nband,
    grid_points, nproj) for the FLOP model given atoms per domain.
    """
    # 3C-SiC: 4.36 Å lattice, 8 atoms per (a₀)³ → volume per atom
    a0_bohr = 8.238
    vol_per_atom = a0_bohr**3 / 8.0
    core_vol = atoms_per_domain * vol_per_atom
    l = core_vol ** (1.0 / 3.0)
    ext = l * (1.0 + 2.0 * buffer_ratio)
    vol = ext**3
    gmax = np.sqrt(2.0 * ecut)
    npw = vol * gmax**3 / (6.0 * np.pi**2)
    grid_pts = int((2.0 * gmax * ext / np.pi) ** 3)
    # 8 valence electrons per SiC pair → 4 per atom; buffer atoms included
    natoms_ext = atoms_per_domain * (ext / l) ** 3
    nband = int(natoms_ext * 4 / 2 * 1.1)
    nproj = int(natoms_ext)
    return {
        "npw": int(npw),
        "nband": nband,
        "grid_points": grid_pts,
        "nproj": nproj,
        "extent": ext,
    }
