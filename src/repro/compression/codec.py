"""Adaptive coordinate compression: quantize → curve-sort → delta → varint.

The pipeline of the paper's I/O compressor (ref. 65): coordinates are
quantized to a tolerance, atoms are ordered along a space-filling curve so
neighbors on the curve are neighbors in space, and the (small) deltas are
zigzag+varint encoded.  Lossy only through the explicit quantization step;
everything else round-trips exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.sfc import sfc_sort


def _zigzag(v: np.ndarray) -> np.ndarray:
    """Map signed ints to unsigned: 0,-1,1,-2,... → 0,1,2,3,..."""
    return (v << 1) ^ (v >> 63)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    return (u >> 1) ^ -(u & 1)


def _varint_encode(values: np.ndarray) -> bytes:
    out = bytearray()
    for v in values:
        v = int(v)
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _varint_decode(data: bytes, count: int) -> np.ndarray:
    out = np.empty(count, dtype=np.int64)
    pos = 0
    for i in range(count):
        shift = 0
        val = 0
        while True:
            byte = data[pos]
            pos += 1
            val |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = val
    return out


@dataclass
class CompressedFrame:
    """One compressed snapshot of atomic coordinates."""

    payload: bytes
    permutation: np.ndarray
    natoms: int
    cell: np.ndarray
    bits: int
    curve: str

    @property
    def nbytes(self) -> int:
        return len(self.payload) + self.permutation.nbytes

    def compression_ratio(self) -> float:
        """Raw float64 coordinate bytes / compressed bytes."""
        raw = self.natoms * 3 * 8
        return raw / max(self.nbytes, 1)


def compress_frame(
    positions: np.ndarray,
    cell: np.ndarray,
    bits: int = 12,
    curve: str = "hilbert",
) -> CompressedFrame:
    """Compress one frame of coordinates.

    ``bits`` sets the quantization: the positional error is at most
    ``cell / 2^{bits+1}`` per axis.
    """
    positions = np.asarray(positions, dtype=float)
    cell = np.asarray(cell, dtype=float).reshape(3)
    n = len(positions)
    frac = np.mod(positions, cell) / cell
    quant = np.minimum((frac * (1 << bits)).astype(np.int64), (1 << bits) - 1)
    perm = sfc_sort(positions, cell, min(bits, 16), curve)
    ordered = quant[perm]
    deltas = np.empty_like(ordered)
    deltas[0] = ordered[0]
    deltas[1:] = ordered[1:] - ordered[:-1]
    payload = _varint_encode(_zigzag(deltas.ravel()))
    return CompressedFrame(
        payload=payload,
        permutation=perm.astype(np.int32),
        natoms=n,
        cell=cell.copy(),
        bits=bits,
        curve=curve,
    )


def decompress_frame(frame: CompressedFrame) -> np.ndarray:
    """Reconstruct quantized coordinates in the original atom order."""
    flat = _unzigzag(_varint_decode(frame.payload, frame.natoms * 3))
    deltas = flat.reshape(frame.natoms, 3)
    ordered = np.cumsum(deltas, axis=0)
    quant = np.empty_like(ordered)
    quant[frame.permutation] = ordered
    scale = frame.cell / (1 << frame.bits)
    return (quant + 0.5) * scale


def quantization_error_bound(cell: np.ndarray, bits: int) -> np.ndarray:
    """Worst-case per-axis reconstruction error."""
    return np.asarray(cell, dtype=float) / (1 << (bits + 1))
