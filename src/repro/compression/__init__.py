"""Space-filling-curve adaptive data compression (Sec. 4.2, ref. 65).

Production runs compress atomic coordinates for I/O: atoms are sorted along
a space-filling curve (Morton or Hilbert), coordinates are quantized to a
user-chosen precision, and successive curve-neighbors are delta-encoded —
locality along the curve makes the deltas small, so variable-length coding
shrinks them.
"""

from repro.compression.sfc import hilbert_index, morton_index, sfc_sort
from repro.compression.codec import CompressedFrame, compress_frame, decompress_frame

__all__ = [
    "morton_index",
    "hilbert_index",
    "sfc_sort",
    "CompressedFrame",
    "compress_frame",
    "decompress_frame",
]
