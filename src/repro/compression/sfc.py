"""Morton (Z-order) and Hilbert space-filling curves in 3-D.

Both map quantized integer coordinates (b bits per axis) to a single curve
index; Hilbert preserves locality strictly better (no long jumps), which is
why the paper's compressor (ref. 65) uses it — we provide both so the
locality advantage can be measured (see the compression tests/benches).
"""

from __future__ import annotations

import numpy as np


def _validate(coords: np.ndarray, bits: int) -> np.ndarray:
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim == 1:
        coords = coords[None, :]
    if coords.shape[-1] != 3:
        raise ValueError("coordinates must be (..., 3)")
    if bits < 1 or bits > 20:
        raise ValueError("bits must be in [1, 20]")
    if coords.min() < 0 or coords.max() >= (1 << bits):
        raise ValueError(f"coordinates out of [0, 2^{bits}) range")
    return coords


def morton_index(coords: np.ndarray, bits: int = 10) -> np.ndarray:
    """Interleave the bits of (x, y, z): the Z-order curve index."""
    coords = _validate(coords, bits)
    out = np.zeros(len(coords), dtype=np.int64)
    for bit in range(bits):
        for axis in range(3):
            out |= ((coords[:, axis] >> bit) & 1) << (3 * bit + (2 - axis))
    return out


def hilbert_index(coords: np.ndarray, bits: int = 10) -> np.ndarray:
    """3-D Hilbert curve index (Skilling's transpose algorithm)."""
    coords = _validate(coords, bits)
    x = coords.T.copy()  # (3, n), most-significant axis first

    # Inverse undo excess work (Skilling 2004, AIP Conf. Proc. 707)
    m = np.int64(1) << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(3):
            mask = (x[i] & q) != 0
            # invert lower bits of x[0] where needed
            x[0][mask] ^= p
            t = (x[0][~mask] ^ x[i][~mask]) & p
            x[0][~mask] ^= t
            x[i][~mask] ^= t
        q >>= 1

    # Gray encode
    for i in range(1, 3):
        x[i] ^= x[i - 1]
    t = np.zeros(x.shape[1], dtype=np.int64)
    q = m
    while q > 1:
        mask = (x[2] & q) != 0
        t[mask] ^= q - 1
        q >>= 1
    for i in range(3):
        x[i] ^= t

    # interleave (transpose) to a single index
    out = np.zeros(x.shape[1], dtype=np.int64)
    for bit in range(bits):
        for axis in range(3):
            out |= ((x[axis] >> bit) & 1) << (3 * bit + (2 - axis))
    return out


def sfc_sort(
    positions: np.ndarray, cell: np.ndarray, bits: int = 10, curve: str = "hilbert"
) -> np.ndarray:
    """Permutation sorting atoms along the chosen curve."""
    positions = np.asarray(positions, dtype=float)
    cell = np.asarray(cell, dtype=float).reshape(3)
    frac = np.mod(positions, cell) / cell
    quant = np.minimum((frac * (1 << bits)).astype(np.int64), (1 << bits) - 1)
    if curve == "morton":
        idx = morton_index(quant, bits)
    elif curve == "hilbert":
        idx = hilbert_index(quant, bits)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    return np.argsort(idx, kind="stable")
