"""Hellmann–Feynman forces in the divide-and-conquer framework.

Three pieces, mirroring :mod:`repro.dft.forces`:

* **Local-pseudopotential forces** — computed *globally* from the assembled
  global density (the local field is global in our formulation, so its force
  is exact given ρ).
* **Nonlocal forces** — per-domain: each atom's projector force is evaluated
  in the domain that owns the atom's core, using that domain's orbitals and
  occupations (the standard DC approximation; its error decays with the
  buffer like everything else).
* **Ewald forces** — global, exact.
"""

from __future__ import annotations

import numpy as np

from repro.dft.ewald import ewald
from repro.dft.forces import local_forces
from repro.systems.configuration import Configuration


def ldc_forces(config: Configuration, result) -> np.ndarray:
    """Total forces for a converged :class:`~repro.core.ldc.LDCResult`."""
    grid = result.grid
    forces = local_forces(grid, config, result.density)
    _, f_ewald = ewald(config.wrapped_positions(), config.zvals, config.cell)
    forces += f_ewald
    forces += nonlocal_forces_dc(config, result)
    return forces


def nonlocal_forces_dc(config: Configuration, result) -> np.ndarray:
    """Nonlocal projector forces assembled from owning domains."""
    forces = np.zeros((config.natoms, 3), dtype=float)
    decomp = result.decomposition
    owners = [
        decomp.owner_domain(config.positions[i]) for i in range(config.natoms)
    ]
    # Map domain list index -> state (states are stored in the same order).
    for state in result.states:
        if state.nband == 0 or state.vnl is None or state.vnl.nproj == 0:
            continue
        dom_idx = _domain_list_index(decomp, state.domain.index)
        b = state.vnl.b
        gv = state.basis.g_vectors
        overlaps = b.conj().T @ state.psi  # (nproj, nband)
        occ = state.occupations
        for col, local_atom in enumerate(state.vnl.atom_indices):
            global_atom = int(state.atom_indices[local_atom])
            if owners[global_atom] != dom_idx:
                continue  # another domain owns this atom's core
            d = state.vnl.d[col]
            bcol = b[:, col]
            grad = (1j * gv * bcol.conj()[:, None]).T @ state.psi  # (3, nband)
            de = 2.0 * d * np.real(
                np.sum(occ[None, :] * np.conj(overlaps[col])[None, :] * grad, axis=1)
            )
            forces[global_atom] -= de
    return forces


def _domain_list_index(decomp, index3: tuple[int, int, int]) -> int:
    nd = decomp.domain_counts
    return index3[0] * nd[1] * nd[2] + index3[1] * nd[2] + index3[2]
