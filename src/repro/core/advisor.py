"""Automatic optimization of the DC computational parameters (Sec. 3.1).

The "lean" in LDC-DFT begins with choosing the domain geometry from the
cost/error model: probe the error decay at a few cheap buffer values, fit
the nearsightedness decay length λ (Eq. 1), and return the buffer that
meets a requested tolerance together with the optimal core size l* and the
predicted cost/speedup — the workflow the paper describes as "optimization
of DC computational parameters".

Two entry points:

* :func:`recommend_parameters` / :func:`probe_and_recommend` — the static,
  ahead-of-time workflow (probe runs → fit → one recommendation);
* :class:`BufferController` — the *runtime* closed loop: every MD step it
  observes the live boundary-density error the LDC driver already measures
  and nudges the buffer toward the Eq.-1 optimum for a target error band,
  with hysteresis (hold band, cooldown, grid-quantization no-op detection)
  so the structural caches are not churned by sub-grid-point adjustments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.complexity import (
    buffer_for_tolerance,
    crossover_natoms,
    fit_decay_constant,
    optimal_core_length,
    total_cost,
)


@dataclass
class ParameterRecommendation:
    """Output of the advisor."""

    decay_length: float
    error_amplitude: float
    recommended_buffer: float
    optimal_core_length: float
    predicted_error: float
    cost_relative_to_largest_probe: float
    crossover_atoms: float | None = None

    def summary(self) -> str:
        return (
            f"λ = {self.decay_length:.2f} Bohr, recommend b = "
            f"{self.recommended_buffer:.2f} Bohr with l* = "
            f"{self.optimal_core_length:.2f} Bohr "
            f"(predicted error {self.predicted_error:.2e}/atom)"
        )


def recommend_parameters(
    probe_buffers: np.ndarray,
    probe_errors: np.ndarray,
    tolerance: float,
    nu: float = 2.0,
    number_density: float | None = None,
) -> ParameterRecommendation:
    """Fit Eq. 1 to probe data and recommend (b, l*) for a tolerance.

    Parameters
    ----------
    probe_buffers, probe_errors:
        Buffer thicknesses (Bohr) and the measured per-atom errors at them
        (from cheap probe runs against a reference or self-referenced to
        the largest probe).
    tolerance:
        Target per-atom error (the paper's Fig.-7 criterion, e.g. 1e-3).
    nu:
        Per-domain solver exponent (2 for the practical regime, 3
        asymptotic).
    number_density:
        Optional atoms/Bohr³ to also report the O(N)↔O(N³) crossover.
    """
    probe_buffers = np.asarray(probe_buffers, dtype=float)
    probe_errors = np.asarray(probe_errors, dtype=float)
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    lam, amp = fit_decay_constant(probe_buffers, probe_errors)
    b = buffer_for_tolerance(lam, amp, tolerance)
    b = max(b, float(probe_buffers.min()))
    l_star = optimal_core_length(b, nu)
    predicted = amp * np.exp(-b / lam)
    # cost relative to running at the largest probed buffer (same L)
    ref_b = float(probe_buffers.max())
    cost_rel = total_cost(optimal_core_length(ref_b, nu), 100.0, ref_b, nu)
    cost_here = total_cost(l_star, 100.0, b, nu)
    return ParameterRecommendation(
        decay_length=lam,
        error_amplitude=amp,
        recommended_buffer=float(b),
        optimal_core_length=float(l_star),
        predicted_error=float(predicted),
        cost_relative_to_largest_probe=float(cost_here / cost_rel),
        crossover_atoms=(
            crossover_natoms(b, number_density, nu) if number_density else None
        ),
    )


@dataclass
class BufferControllerOptions:
    """Knobs for the runtime :class:`BufferController`.

    The thresholds of the adaptive-buffer loop live here (one config
    object, same convention as ``HealthThresholds`` — RP006 flags numeric
    literals at controller call sites).
    """

    #: target per-domain boundary-density error ε (Eq. 1's tolerance)
    target_error: float = 1e-4
    #: hold while the observed error stays within [ε/band, ε·band]
    band: float = 3.0
    #: initial nearsightedness decay length λ in Bohr (refit online from
    #: (b, error) observations once two distinct buffers have been seen)
    decay_length: float = 1.5
    #: per-domain solver exponent ν of the cost model (l* = 2b/(ν-1))
    nu: float = 2.0
    min_buffer: float = 0.5
    max_buffer: float = 6.0
    #: largest |Δb| per adjustment (Bohr) — keeps a mis-fit λ from
    #: slamming the buffer across its whole range in one step
    max_step: float = 1.0
    #: steps to hold after an adjustment: a buffer change resets the
    #: workspace (cold restart), so the next error samples are transient
    cooldown_steps: int = 2

    def __post_init__(self) -> None:
        if self.target_error <= 0 or self.band < 1.0:
            raise ValueError("target_error must be > 0 and band >= 1")
        if self.decay_length <= 0 or self.nu <= 1.0:
            raise ValueError("decay_length must be > 0 and nu > 1")
        if not 0 < self.min_buffer <= self.max_buffer:
            raise ValueError("need 0 < min_buffer <= max_buffer")
        if self.max_step <= 0 or self.cooldown_steps < 0:
            raise ValueError("max_step > 0 and cooldown_steps >= 0 required")


@dataclass
class BufferDecision:
    """One :meth:`BufferController.propose` outcome."""

    #: the buffer to run the next step with (== current when held)
    buffer: float
    #: the matching Eq.-1 optimal core size l* = 2b/(ν-1)
    core_length: float
    #: whether the controller asks for a change
    changed: bool
    #: "hold-band" | "hold-cooldown" | "hold-quantized" | "hold-no-data"
    #: | "grow" | "shrink"
    reason: str


@dataclass
class BufferController:
    """Runtime adaptive-buffer loop over the live boundary-error telemetry.

    Feed it one ``observe(buffer, error)`` per MD step (the LDC driver's
    mean boundary-density error — the quantity Eq. 1 models) and ask
    ``propose(current_buffer, spacings)`` whether to re-run the next step
    at a different thickness.  The update rule is the incremental form of
    Eq. 1: with error ≈ A·e^{-b/λ},

        b_new − b = λ · ln(e_obs / ε)

    so one step lands on the target error when λ is right; λ itself is
    refit online (:func:`repro.core.complexity.fit_decay_constant`) once
    observations at two distinct thicknesses exist.  Hysteresis keeps the
    loop from churning the structural caches: a hold band around ε, a
    cooldown after every change (the post-reset transient carries no
    steady-state information), and a no-op detector for proposals that
    quantize to the same whole-grid-point buffer the decomposition already
    realizes.
    """

    options: BufferControllerOptions = field(
        default_factory=BufferControllerOptions
    )
    #: current λ estimate (starts at ``options.decay_length``, refit online)
    decay_length: float = 0.0
    #: total adjustments requested (the ``ldc.buffer_adjustments`` counter)
    adjustments: int = 0
    _observations: list[tuple[float, float]] = field(default_factory=list)
    _cooldown: int = 0

    def __post_init__(self) -> None:
        if self.decay_length <= 0:
            self.decay_length = self.options.decay_length

    def observe(self, buffer_: float, error: float) -> None:
        """Record one (buffer, boundary error) sample and refit λ.

        The refit needs ≥ 2 distinct thicknesses with nonzero, decaying
        errors; until then (or when the fit degenerates, e.g. errors grow
        with b over a transient) the prior λ is kept.
        """
        self._observations.append((float(buffer_), float(error)))
        buffers = np.array([b for b, _ in self._observations])
        errors = np.array([e for _, e in self._observations])
        if len(np.unique(buffers[errors > 0])) >= 2:
            try:
                self.decay_length, _ = fit_decay_constant(buffers, errors)
            except ValueError:
                pass  # non-decaying/degenerate sample set: keep prior λ

    def propose(
        self, current_buffer: float, spacings: np.ndarray | None = None
    ) -> BufferDecision:
        """The buffer for the next step given the latest observation.

        ``spacings`` (per-axis grid spacings, Bohr) enables the
        quantization no-op check: a proposal that realizes to the same
        whole-grid-point buffer on every axis as ``current_buffer`` is
        held — the decomposition would not change, so the workspace reset
        would buy nothing.
        """
        opts = self.options

        def hold(reason: str) -> BufferDecision:
            return BufferDecision(
                buffer=float(current_buffer),
                core_length=float(
                    optimal_core_length(current_buffer, opts.nu)
                ),
                changed=False,
                reason=reason,
            )

        if not self._observations:
            return hold("hold-no-data")
        error = self._observations[-1][1]
        if error <= 0:
            return hold("hold-no-data")
        if self._cooldown > 0:
            self._cooldown -= 1
            return hold("hold-cooldown")
        if opts.target_error / opts.band <= error <= (
            opts.target_error * opts.band
        ):
            return hold("hold-band")
        delta = self.decay_length * float(
            np.log(error / opts.target_error)
        )
        delta = float(np.clip(delta, -opts.max_step, opts.max_step))
        proposed = float(
            np.clip(current_buffer + delta, opts.min_buffer, opts.max_buffer)
        )
        if proposed == float(current_buffer):
            return hold("hold-band")
        if spacings is not None:
            sp = np.asarray(spacings, dtype=float)
            if np.array_equal(
                np.rint(proposed / sp), np.rint(current_buffer / sp)
            ):
                return hold("hold-quantized")
        self._cooldown = opts.cooldown_steps
        self.adjustments += 1
        return BufferDecision(
            buffer=proposed,
            core_length=float(optimal_core_length(proposed, opts.nu)),
            changed=True,
            reason="grow" if proposed > current_buffer else "shrink",
        )


def probe_and_recommend(
    config,
    reference_energy: float,
    tolerance: float,
    probe_buffers=(0.6, 1.2, 1.8),
    ldc_options=None,
    nu: float = 2.0,
):
    """Run cheap LDC probes at the given buffers and recommend parameters.

    Returns ``(recommendation, probe_errors)``.  The probes reuse the given
    base options with only the buffer changed.
    """
    from dataclasses import replace

    from repro.core.ldc import LDCOptions, run_ldc

    base = ldc_options or LDCOptions()
    errors = []
    for b in probe_buffers:
        r = run_ldc(config, replace(base, buffer=float(b)))
        errors.append(abs(r.energy - reference_energy) / len(config))
    rec = recommend_parameters(
        np.asarray(probe_buffers), np.asarray(errors), tolerance, nu,
        number_density=len(config) / config.volume,
    )
    return rec, np.asarray(errors)
