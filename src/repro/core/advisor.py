"""Automatic optimization of the DC computational parameters (Sec. 3.1).

The "lean" in LDC-DFT begins with choosing the domain geometry from the
cost/error model: probe the error decay at a few cheap buffer values, fit
the nearsightedness decay length λ (Eq. 1), and return the buffer that
meets a requested tolerance together with the optimal core size l* and the
predicted cost/speedup — the workflow the paper describes as "optimization
of DC computational parameters".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.complexity import (
    buffer_for_tolerance,
    crossover_natoms,
    fit_decay_constant,
    optimal_core_length,
    total_cost,
)


@dataclass
class ParameterRecommendation:
    """Output of the advisor."""

    decay_length: float
    error_amplitude: float
    recommended_buffer: float
    optimal_core_length: float
    predicted_error: float
    cost_relative_to_largest_probe: float
    crossover_atoms: float | None = None

    def summary(self) -> str:
        return (
            f"λ = {self.decay_length:.2f} Bohr, recommend b = "
            f"{self.recommended_buffer:.2f} Bohr with l* = "
            f"{self.optimal_core_length:.2f} Bohr "
            f"(predicted error {self.predicted_error:.2e}/atom)"
        )


def recommend_parameters(
    probe_buffers: np.ndarray,
    probe_errors: np.ndarray,
    tolerance: float,
    nu: float = 2.0,
    number_density: float | None = None,
) -> ParameterRecommendation:
    """Fit Eq. 1 to probe data and recommend (b, l*) for a tolerance.

    Parameters
    ----------
    probe_buffers, probe_errors:
        Buffer thicknesses (Bohr) and the measured per-atom errors at them
        (from cheap probe runs against a reference or self-referenced to
        the largest probe).
    tolerance:
        Target per-atom error (the paper's Fig.-7 criterion, e.g. 1e-3).
    nu:
        Per-domain solver exponent (2 for the practical regime, 3
        asymptotic).
    number_density:
        Optional atoms/Bohr³ to also report the O(N)↔O(N³) crossover.
    """
    probe_buffers = np.asarray(probe_buffers, dtype=float)
    probe_errors = np.asarray(probe_errors, dtype=float)
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    lam, amp = fit_decay_constant(probe_buffers, probe_errors)
    b = buffer_for_tolerance(lam, amp, tolerance)
    b = max(b, float(probe_buffers.min()))
    l_star = optimal_core_length(b, nu)
    predicted = amp * np.exp(-b / lam)
    # cost relative to running at the largest probed buffer (same L)
    ref_b = float(probe_buffers.max())
    cost_rel = total_cost(optimal_core_length(ref_b, nu), 100.0, ref_b, nu)
    cost_here = total_cost(l_star, 100.0, b, nu)
    return ParameterRecommendation(
        decay_length=lam,
        error_amplitude=amp,
        recommended_buffer=float(b),
        optimal_core_length=float(l_star),
        predicted_error=float(predicted),
        cost_relative_to_largest_probe=float(cost_here / cost_rel),
        crossover_atoms=(
            crossover_natoms(b, number_density, nu) if number_density else None
        ),
    )


def probe_and_recommend(
    config,
    reference_energy: float,
    tolerance: float,
    probe_buffers=(0.6, 1.2, 1.8),
    ldc_options=None,
    nu: float = 2.0,
):
    """Run cheap LDC probes at the given buffers and recommend parameters.

    Returns ``(recommendation, probe_errors)``.  The probes reuse the given
    base options with only the buffer changed.
    """
    from dataclasses import replace

    from repro.core.ldc import LDCOptions, run_ldc

    base = ldc_options or LDCOptions()
    errors = []
    for b in probe_buffers:
        r = run_ldc(config, replace(base, buffer=float(b)))
        errors.append(abs(r.energy - reference_energy) / len(config))
    rec = recommend_parameters(
        np.asarray(probe_buffers), np.asarray(errors), tolerance, nu,
        number_density=len(config) / config.volume,
    )
    return rec, np.asarray(errors)
