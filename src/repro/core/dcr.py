"""Divide-Conquer-Recombine (DCR) — the paper's concluding paradigm (Sec. 7).

In DCR, the DC phase computes *globally informed local solutions*, which the
recombine phase uses as compact bases to synthesize global properties.  The
paper lists global frontier (HOMO/LUMO) molecular orbitals as a flagship
application [refs. 82-83]; this module implements exactly that:

1. **Divide/conquer** — run LDC-DFT; keep each domain's few orbitals nearest
   the chemical potential ("frontier fragments").
2. **Recombine** — embed the fragments on the global grid (windowed by the
   domain support so each is compactly supported), build the global KS
   Hamiltonian and overlap matrices in this nonorthogonal reduced basis, and
   solve the generalized eigenproblem.

The resulting frontier energies/orbitals approximate the global O(N³)
spectrum near the gap at a cost linear in the number of domains — and they
capture the *inter-domain* couplings the DC density assembly alone cannot
(the range-limited n-tuple computation of the DCR recombine phase).

Also provided: a density-of-states synthesizer over the DC eigenvalues
(another "global property from local solutions" in the paper's list).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ldc import LDCResult
from repro.dft.basis import PlaneWaveBasis
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.hartree import hartree_potential
from repro.dft.pseudopotential import NonlocalProjectors, local_potential
from repro.dft.xc import lda_xc
from repro.systems.configuration import Configuration


@dataclass
class FrontierResult:
    """Recombined global frontier spectrum."""

    energies: np.ndarray
    orbitals: np.ndarray  # (npw_global, nstates) in the global PW basis
    homo: float
    lumo: float
    n_fragments: int

    @property
    def gap(self) -> float:
        return self.lumo - self.homo


def _fragment_states(result: LDCResult, n_frontier: int) -> list[np.ndarray]:
    """Per-domain frontier orbitals embedded on the global grid (windowed by
    the domain support, so each fragment is compactly supported)."""
    fragments: list[np.ndarray] = []
    for state in result.states:
        if state.nband == 0:
            continue
        eigs = state.eigenvalues
        order = np.argsort(np.abs(eigs - result.mu))
        chosen = order[: min(n_frontier, len(order))]
        fields = state.basis.to_grid(state.psi[:, chosen])  # (k, *dom shape)
        window = np.sqrt(np.clip(state.support, 0.0, None))
        ix, iy, iz = state.domain.grid_indices
        for k in range(fields.shape[0]):
            emb = np.zeros(result.grid.shape, dtype=complex)
            emb[np.ix_(ix, iy, iz)] += window * fields[k]
            fragments.append(emb)
    return fragments


def recombine_frontier(
    config: Configuration,
    result: LDCResult,
    n_frontier: int = 2,
    overlap_floor: float = 1e-8,
) -> FrontierResult:
    """The DCR recombine phase for global frontier orbitals.

    Parameters
    ----------
    config:
        The atomic configuration the LDC result was computed for.
    result:
        A converged :class:`~repro.core.ldc.LDCResult`.
    n_frontier:
        Frontier orbitals kept per domain (those nearest μ).
    overlap_floor:
        Eigenvalue floor for the (possibly ill-conditioned) overlap matrix;
        smaller modes are projected out (canonical orthogonalization).
    """
    grid = result.grid
    fragments = _fragment_states(result, n_frontier)
    if not fragments:
        raise ValueError("LDC result contains no solved domains")

    # Global KS Hamiltonian at the converged density.
    basis = PlaneWaveBasis(grid, _max_ecut(result))
    vh = hartree_potential(grid, result.density)
    _, vxc = lda_xc(result.density)
    v_eff = local_potential(grid, config) + vh + vxc
    ham = Hamiltonian(basis, v_eff, NonlocalProjectors(basis, config))

    # Express fragments in the global plane-wave basis.
    coeffs = basis.from_grid(np.stack(fragments))  # (npw, nfrag)
    norms = np.linalg.norm(coeffs, axis=0)
    keep = norms > 1e-10
    coeffs = coeffs[:, keep] / norms[keep][None, :]

    h_red = coeffs.conj().T @ ham.apply(coeffs)
    s_red = coeffs.conj().T @ coeffs
    h_red = 0.5 * (h_red + h_red.conj().T)
    s_red = 0.5 * (s_red + s_red.conj().T)

    # canonical orthogonalization against near-null overlap modes
    s_eval, s_evec = np.linalg.eigh(s_red)
    good = s_eval > overlap_floor
    x = s_evec[:, good] * (1.0 / np.sqrt(s_eval[good]))[None, :]
    h_ortho = x.conj().T @ h_red @ x
    h_ortho = 0.5 * (h_ortho + h_ortho.conj().T)
    evals, evecs = np.linalg.eigh(h_ortho)
    orbitals = coeffs @ (x @ evecs)

    below = evals[evals <= result.mu]
    above = evals[evals > result.mu]
    homo = float(below.max()) if below.size else float("nan")
    lumo = float(above.min()) if above.size else float("nan")
    return FrontierResult(
        energies=evals,
        orbitals=orbitals,
        homo=homo,
        lumo=lumo,
        n_fragments=int(coeffs.shape[1]),
    )


def _max_ecut(result: LDCResult) -> float:
    ecuts = [s.basis.ecut for s in result.states if s.basis is not None]
    if not ecuts:
        raise ValueError("no domain bases available")
    return max(ecuts)


def density_of_states(
    result: LDCResult,
    energies: np.ndarray | None = None,
    broadening: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Global DOS from the weighted DC eigenvalues (Gaussian broadening).

    D(E) = Σ_αn w_αn g(E - ε_αn), normalized so ∫D dE = Σ w (states).
    """
    eigs, weights = [], []
    for s in result.states:
        if s.nband:
            eigs.append(s.eigenvalues)
            weights.append(s.band_weights)
    eig = np.concatenate(eigs)
    w = np.concatenate(weights)
    if energies is None:
        lo, hi = eig.min() - 5 * broadening, eig.max() + 5 * broadening
        energies = np.linspace(lo, hi, 400)
    diff = energies[:, None] - eig[None, :]
    gauss = np.exp(-0.5 * (diff / broadening) ** 2) / (
        broadening * np.sqrt(2 * np.pi)
    )
    dos = gauss @ w
    return energies, dos
