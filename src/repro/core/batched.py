"""Domain-batched shape-class kernels for the LDC SCF pass.

The paper's Sec. 3.4 BLAS2→BLAS3 transformation batches *bands within one
domain* into matrix-matrix kernels.  This module lifts the same idea one
level up the LDC hierarchy: DC domains whose eigenproblems have the same
shape — identical ``(grid shape, plane-wave count, band count, projector
count)`` — are grouped into **shape classes** and solved as one stacked
``(n_domains, …)`` problem (cf. DGDFT's grouped subproblems,
arXiv:2003.00407).  Instead of ``n`` small FFTs/GEMMs per inner iteration
the class runs one batched FFT, one batched nonlocal GEMM, and one
``(n, nband, nband)`` stacked ``eigh`` — few large kernels where the
per-domain path (PR 4's ``ldc_workers``) issues many tiny ones.

Every array operation here routes through the :mod:`repro.backend`
array-module shim (``backend.get()``) — never ``numpy`` directly.  That is
the GPU seam: a backend satisfying the array-module contract drops in
without touching this file.  Analysis rule RP009 enforces the discipline
statically.  The per-domain physics prework/postwork (potential
restriction, v_bc updates, band-density staging) stays in
:mod:`repro.core.ldc` — it is shared verbatim with the per-domain path,
which is what makes the two paths agree to ≤1e-10.

Enable via ``LDCOptions.batch_domains=True`` or ``REPRO_BATCH_DOMAINS=1``
(all-band eigensolver only; env-resolved requests fall back silently for
other solvers).

ASPC warm starts (``LDCOptions.history_depth``) need no special handling
here: the batched pass seeds ``psi0[j]`` from each ``DomainState.psi``,
which :meth:`repro.core.workspace.LDCWorkspace.prepare` has already filled
with the extrapolated orbitals — predictor parity with the per-domain path
holds by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import backend
from repro.dft.eigensolver import record_solve, solve_all_band_batched
from repro.dft.hamiltonian import BatchedHamiltonian

if TYPE_CHECKING:
    import numpy as np

    from repro.core.ldc import DomainState, LDCOptions
    from repro.core.workspace import DomainScratch
    from repro.dft.eigensolver import EigenResult
    from repro.observability.instrumentation import Instrumentation

#: Environment variable enabling domain batching when
#: ``LDCOptions.batch_domains`` is left unset.
ENV_FLAG = "REPRO_BATCH_DOMAINS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def batching_enabled(options: LDCOptions) -> bool:
    """Whether this run's domain solves go through the batched path.

    Resolution: an explicit ``options.batch_domains`` wins; ``None`` defers
    to ``$REPRO_BATCH_DOMAINS``.  Batching requires the all-band solver —
    an env-resolved request with another eigensolver falls back silently
    (so a blanket ``REPRO_BATCH_DOMAINS=1`` test run keeps working), while
    ``batch_domains=True`` with another solver already raised in
    ``LDCOptions.__post_init__``.  An explicitly configured thread fan-out
    (``ldc_workers > 1``) likewise beats the ambient env flag — only the
    in-code ``batch_domains=True`` overrides it.
    """
    if options.eigensolver != "all_band":
        return False
    if options.batch_domains is not None:
        return bool(options.batch_domains)
    if options.ldc_workers > 1:
        return False
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class ShapeClassKey:
    """What must coincide for two domains to share stacked kernels.

    ``nproj`` is part of the key deliberately: zero-padding projector
    stacks would change the GEMM contraction length and with it the BLAS
    accumulation, breaking parity with the per-domain path.
    """

    grid_shape: tuple[int, int, int]
    npw: int
    nband: int
    nproj: int


@dataclass
class ShapeClass:
    """One group of same-shape domains: the unit of batched solving.

    ``members`` are positions into the active-domain list (ascending, so
    stacking order is deterministic and results fold back in domain-index
    order).
    """

    key: ShapeClassKey
    members: list[int]


def _state_key(state: DomainState) -> ShapeClassKey:
    assert state.basis is not None and state.vnl is not None
    return ShapeClassKey(
        grid_shape=tuple(state.domain.grid.shape),
        npw=state.basis.npw,
        nband=state.nband,
        nproj=state.vnl.nproj,
    )


def group_shape_classes(states: list[DomainState]) -> list[ShapeClass]:
    """Group active domain states into shape classes (first-seen order).

    Raises if two domains with equal keys have structurally different
    plane-wave bases — that would make stacking silently wrong, and cannot
    happen for a grid-aligned decomposition with one cutoff.
    """
    classes: dict[ShapeClassKey, ShapeClass] = {}
    for pos, state in enumerate(states):
        key = _state_key(state)
        cls = classes.get(key)
        if cls is None:
            classes[key] = ShapeClass(key=key, members=[pos])
            continue
        first = states[cls.members[0]]
        assert first.basis is not None and state.basis is not None
        if not first.basis.structurally_equal(state.basis):
            raise ValueError(
                f"domains {cls.members[0]} and {pos} share shape-class key "
                f"{key} but have structurally different plane-wave bases"
            )
        cls.members.append(pos)
    return list(classes.values())


def batched_domain_pass(
    active: list[tuple[int, DomainState]],
    rho: np.ndarray,
    v_hxc_global: np.ndarray,
    v_ks_global: np.ndarray,
    xi: float | None,
    opts: LDCOptions,
    ins: Instrumentation | None,
    pool: DomainScratch | None = None,
) -> list[tuple[EigenResult, float | None, None]]:
    """All active domain solves of one SCF pass, as stacked shape classes.

    Drop-in replacement for mapping ``_domain_pass`` over ``active``:
    returns ``(EigenResult, boundary_error, None)`` per active domain in
    input order (the ``None`` dt tells the caller's fold that telemetry was
    already recorded here).  The per-domain prework (potential restriction
    + v_bc update, writing straight into the stacked potential block) and
    postwork (band densities/weights) are the exact helpers the per-domain
    path runs, and the stacked eigensolver applies the same arithmetic per
    slice, so energies agree with the per-domain path to ≤1e-10.

    ``pool`` holds the stacked class buffers between passes (the workspace
    owns one across MD steps); passing ``None`` builds a throwaway pool.
    """
    from repro.core.ldc import _domain_effective_potential, _stage_band_data
    from repro.core.workspace import DomainScratch

    xp = backend.get()
    if pool is None:
        pool = DomainScratch()
    states = [state for _, state in active]
    outcomes: list[tuple[EigenResult, float | None, None] | None]
    outcomes = [None] * len(states)
    for cls in group_shape_classes(states):
        key = cls.key
        nd = len(cls.members)
        first = states[cls.members[0]]
        assert first.basis is not None
        basis = first.basis
        tag = (key.grid_shape, key.npw, key.nband, key.nproj)
        v_eff = pool.get(("v_eff", tag), (nd,) + key.grid_shape, float)
        psi0 = pool.get(("psi0", tag), (nd, key.npw, key.nband), complex)
        rho_restricted: list[np.ndarray] = []
        for j, pos in enumerate(cls.members):
            state = states[pos]
            _, restricted = _domain_effective_potential(
                state, rho, v_hxc_global, v_ks_global, xi, opts,
                out=v_eff[j],
            )
            rho_restricted.append(restricted)
            psi0[j] = state.psi
        if key.nproj:
            b = pool.get(("b", tag), (nd, key.npw, key.nproj), complex)
            d = pool.get(("d", tag), (nd, key.nproj), float)
            for j, pos in enumerate(cls.members):
                vnl = states[pos].vnl
                assert vnl is not None
                b[j] = vnl.b
                d[j] = vnl.d
        else:
            b = d = None
        bham = BatchedHamiltonian(basis, v_eff, b, d, xp=xp)
        if ins is None:
            results = solve_all_band_batched(
                bham, psi0, max_iter=opts.eig_max_iter, tol=opts.eig_tol,
                want_fields=True,
            )
        else:
            with ins.span(
                "ldc.batched_solve", category="ldc", n_domains=nd,
                npw=key.npw, nband=key.nband, nproj=key.nproj,
                grid_points=basis.grid.npoints,
            ) as sp:
                results = solve_all_band_batched(
                    bham, psi0, max_iter=opts.eig_max_iter, tol=opts.eig_tol,
                    want_fields=True,
                )
                # total inner iterations across the class feed the
                # per-shape-class FLOP attribution (costattr) at report time
                sp.attrs.update(
                    cg_iterations=sum(res.iterations for res in results)
                )
        for j, pos in enumerate(cls.members):
            state = states[pos]
            res = results[j]
            state.psi = res.orbitals
            state.eigenvalues = res.eigenvalues
            err = _stage_band_data(state, res, rho_restricted[j])
            if ins is not None:
                record_solve(ins, opts.eigensolver, key.npw, res)
            outcomes[pos] = (res, err, None)
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]
