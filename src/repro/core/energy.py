"""Divide-and-conquer total-energy assembly.

Global physical properties are linear combinations of domain properties
(Fig. 1): with the partition of unity p_α and domain eigenpairs (ε_n^α,
ψ_n^α), the band energy is

    E_band = Σ_α Σ_n f_n ε_n^α w_αn,     w_αn = ∫ p_α |ψ_n^α|² dr,

from which the boundary-potential contribution Σ_α ∫ p_α v_bc ρ_α is removed
(v_bc is a numerical device, not physics).  Double counting is subtracted
with the *global* density and potentials, and the ionic Ewald energy and the
smearing entropy are added:

    E = E_band - ∫ρ(V_H + v_xc) + E_H[ρ] + E_xc[ρ] + E_Ewald - k_B T S.
"""

from __future__ import annotations

import numpy as np

from repro.dft.grid import RealSpaceGrid
from repro.dft.hartree import hartree_energy
from repro.dft.occupations import smearing_entropy
from repro.dft.xc import xc_energy


def dc_band_energy(
    eigenvalues: list[np.ndarray],
    occupations: list[np.ndarray],
    band_weights: list[np.ndarray],
) -> float:
    """Σ_α Σ_n f_n ε_n w_αn over all domains."""
    total = 0.0
    for eigs, occs, w in zip(eigenvalues, occupations, band_weights):
        total += float(np.sum(occs * eigs * w))
    return total


def boundary_energy_correction(
    supports: list[np.ndarray],
    vbcs: list[np.ndarray],
    rho_locals: list[np.ndarray],
    dv: float,
) -> float:
    """Σ_α ∫ p_α v_bc ρ_α dr — subtracted from the band energy."""
    total = 0.0
    for p, vbc, rho in zip(supports, vbcs, rho_locals):
        total += float(np.sum(p * vbc * rho) * dv)
    return total


def dc_total_energy(
    grid: RealSpaceGrid,
    rho: np.ndarray,
    vh: np.ndarray,
    vxc: np.ndarray,
    band_energy: float,
    vbc_correction: float,
    e_ewald: float,
    all_eigs: np.ndarray,
    all_weights: np.ndarray,
    mu: float,
    kt: float,
) -> dict[str, float]:
    """Assemble the total energy; returns all components for diagnostics."""
    double_count = grid.integrate(rho * (vh + vxc))
    e_h = hartree_energy(grid, rho, vh)
    e_xc = xc_energy(rho, grid.dv)
    entropy = smearing_entropy(all_eigs, mu, kt, weights=all_weights)
    total = (
        band_energy
        - vbc_correction
        - double_count
        + e_h
        + e_xc
        + e_ewald
        - kt * entropy
    )
    return {
        "total": total,
        "band": band_energy,
        "vbc_correction": vbc_correction,
        "double_count": double_count,
        "hartree": e_h,
        "xc": e_xc,
        "ewald": e_ewald,
        "entropy_term": -kt * entropy,
    }
