"""LDC-DFT on the virtual parallel machine.

Couples the *real* LDC-DFT solve to the simulated Blue Gene/Q: the physics
is computed exactly as in :func:`repro.core.ldc.run_ldc`, while every phase
of every SCF iteration is charged to per-rank virtual clocks —

* per-domain KS solves → the owning rank group's clocks (FLOPs from the
  actual domain problem sizes over the machine's effective rate, LPT-
  scheduled across groups);
* the global-density reduction → a tree collective over all ranks;
* buffer halo exchange → nearest-neighbor torus traffic;
* intra-domain band↔space all-to-alls → butterfly cost within the group.

The output carries both the physical result and the predicted wall-clock /
imbalance — so the scaling predictions of Figs. 5-6 can be generated from a
genuinely executed calculation rather than a standalone model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ldc import LDCOptions, LDCResult, run_ldc
from repro.parallel.machine import BLUE_GENE_Q, MachineSpec
from repro.parallel.scheduler import Schedule, schedule_domains
from repro.parallel.topology import TorusTopology, TreeTopology
from repro.parallel.trace import CostTracker
from repro.perfmodel.flops import domain_scf_flops
from repro.systems.configuration import Configuration


@dataclass
class ParallelLDCResult:
    """Physics result + virtual-machine execution record."""

    result: LDCResult
    tracker: CostTracker
    schedule: Schedule
    total_ranks: int
    predicted_seconds: float
    breakdown: dict[str, float]

    @property
    def imbalance(self) -> float:
        return self.tracker.imbalance()

    def atom_iterations_per_second(self, natoms: int) -> float:
        if self.predicted_seconds <= 0:
            return 0.0
        return natoms * self.result.iterations / self.predicted_seconds


def run_parallel_ldc(
    config: Configuration,
    options: LDCOptions | None = None,
    total_ranks: int = 8,
    machine: MachineSpec = BLUE_GENE_Q,
    threads_per_core: int = 4,
    cg_per_scf: int = 3,
    instrumentation=None,
    schedule: Schedule | None = None,
    sanitize=None,
) -> ParallelLDCResult:
    """Execute LDC-DFT and charge its phases to a virtual machine.

    Parameters
    ----------
    total_ranks:
        Simulated MPI ranks.  Domains are LPT-scheduled onto
        ``min(total_ranks, ndomains)`` groups; larger ranks-per-domain
        accelerate the domain solves (with the intra-domain all-to-all and
        Cholesky costs of Sec. 3.3 growing accordingly).
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation`; the real
        solve is instrumented as usual and the simulated-rank timeline is
        attached to the same Chrome-trace export (under its own pid), so
        measured spans and predicted rank activity render in one viewer.
        A :class:`~repro.observability.comms.CommProfiler` rides the
        tracker, decomposing every charge into compute / wait / transfer
        per phase, and — with a health monitor on the facade — each
        phase's measured time is graded against the balanced-cost model
        on the ``vm.phase`` channel (:class:`DivergenceInvariant`).
    schedule:
        Explicit domain → rank-group assignment (e.g. from
        :func:`~repro.parallel.scheduler.schedule_manual`).  ``None`` (the
        default) LPT-schedules by the actual domain atom counts.  Its
        ``ngroups`` must match ``min(total_ranks, ndomains)``.
    sanitize:
        Optional :class:`~repro.sanitize.Sanitizers` bundle forwarded to
        the LDC solve (numerics/race checkpoints).  ``None`` defers to
        ``REPRO_SANITIZE``.
    """
    if total_ranks < 1:
        raise ValueError("total_ranks must be >= 1")
    opts = options or LDCOptions()
    result = run_ldc(
        config, opts, instrumentation=instrumentation, sanitize=sanitize
    )

    active = [s for s in result.states if s.nband > 0]
    ndomains = max(len(active), 1)
    ngroups = min(total_ranks, ndomains)
    ranks_per_group = max(1, total_ranks // ngroups)
    if schedule is None:
        schedule = schedule_domains(
            [len(s.atom_indices) for s in active], ngroups, nu=2.0
        )
    elif schedule.ngroups != ngroups:
        raise ValueError(
            f"schedule has {schedule.ngroups} groups, run needs {ngroups}"
        )

    profiler = None
    if instrumentation is not None:
        from repro.observability.comms import CommProfiler

        profiler = CommProfiler(total_ranks)
    tracker = CostTracker(total_ranks, profiler=profiler)
    torus = TorusTopology(
        (max(total_ranks // machine.cores_per_node, 1),),
        machine.link_bandwidth,
        machine.link_latency,
    )
    tree = TreeTopology(8, machine.link_bandwidth, machine.link_latency)
    core_rate = machine.effective_core_flops(threads_per_core)

    # Per-domain compute seconds per SCF iteration, from the *actual* solve
    # dimensions of this run.
    domain_seconds = []
    for s in active:
        fc = domain_scf_flops(
            npw=s.basis.npw,
            nband=s.nband,
            grid_points=s.basis.grid.npoints,
            nproj=s.vnl.nproj if s.vnl is not None else 0,
            cg_iterations=cg_per_scf,
        )
        domain_seconds.append(fc.total / (core_rate * ranks_per_group))

    group_ranks = [
        list(range(g * ranks_per_group, (g + 1) * ranks_per_group))
        for g in range(ngroups)
    ]
    rho_bytes = 8.0 * result.grid.npoints
    halo_bytes = 8.0 * float(
        np.mean([s.domain.extent_points.prod() - s.domain.core_points.prod()
                 for s in active])
    ) if active else 0.0

    breakdown = {"domain": 0.0, "alltoall": 0.0, "tree": 0.0, "halo": 0.0}
    for _ in range(result.iterations):
        # local solves (embarrassingly parallel across groups)
        for g in range(ngroups):
            secs = sum(
                domain_seconds[d] for d in schedule.domains_in_group(g)
            )
            with tracker.phase("domain"):
                tracker.charge_compute(group_ranks[g], secs, label="domain")
            breakdown["domain"] += secs / ngroups
            # intra-domain band<->space all-to-alls per CG iteration
            if ranks_per_group > 1:
                slab = 16.0 * np.mean([s.basis.npw * s.nband for s in active])
                t_a2a = 2 * cg_per_scf * torus.alltoall_time(
                    slab / max(ranks_per_group, 1) ** 2, ranks_per_group
                )
                with tracker.phase("alltoall"):
                    tracker.charge_collective(
                        group_ranks[g], t_a2a, slab, label="alltoall"
                    )
                breakdown["alltoall"] += t_a2a / ngroups
        # halo exchange of buffer densities
        t_halo = torus.halo_exchange_time(halo_bytes)
        with tracker.phase("halo"):
            tracker.charge_collective(
                range(total_ranks), t_halo, halo_bytes, "halo"
            )
        breakdown["halo"] += t_halo
        # global density reduction over the tree
        t_tree = tree.vcycle_time(rho_bytes / total_ranks, total_ranks)
        with tracker.phase("tree"):
            tracker.charge_collective(
                range(total_ranks), t_tree, rho_bytes, "tree"
            )
        breakdown["tree"] += t_tree

    parallel_result = ParallelLDCResult(
        result=result,
        tracker=tracker,
        schedule=schedule,
        total_ranks=total_ranks,
        predicted_seconds=tracker.elapsed(),
        breakdown=breakdown,
    )
    if instrumentation is not None:
        instrumentation.attach_cost_tracker(tracker)
        instrumentation.attach_comm_profiler(profiler)
        instrumentation.gauge("vm.predicted_seconds").set(
            parallel_result.predicted_seconds
        )
        instrumentation.gauge("vm.imbalance").set(parallel_result.imbalance)
        instrumentation.gauge("vm.ranks").set(total_ranks)
        instrumentation.gauge("vm.parallel_efficiency").set(
            profiler.parallel_efficiency()
        )
        instrumentation.gauge("vm.wait_fraction").set(profiler.wait_fraction())
        for phase, seconds in breakdown.items():
            instrumentation.gauge("vm.breakdown", phase=phase).set(seconds)
        hm = instrumentation.health
        if hm is not None:
            # Grade each phase's measured laggard time against the balanced
            # cost-model prediction (DivergenceInvariant on "vm.phase"):
            # the laggard's active seconds in a phase vs the breakdown's
            # every-group-equal estimate.  A skewed domain assignment shows
            # up here as drift ≈ ngroups − 1.
            for phase, agg in profiler.by_phase().items():
                modeled = breakdown.get(phase, 0.0)
                measured = float((agg["compute"] + agg["transfer"]).max())
                hm.observe(
                    "vm.phase",
                    phase=phase,
                    measured_seconds=measured,
                    modeled_seconds=modeled,
                    ranks=total_ranks,
                )
        instrumentation.log.info(
            "virtual machine run",
            extra={
                "ranks": total_ranks,
                "predicted_seconds": parallel_result.predicted_seconds,
                "imbalance": parallel_result.imbalance,
                "parallel_efficiency": profiler.parallel_efficiency(),
            },
        )
    return parallel_result
