"""Persistent LDC workspace: MD-step-invariant state, cached once per cell.

The paper's headline metric is QMD time-to-solution — atoms × SCF iterations
per second (Sec. 5.2/6).  Between MD steps the *cell* is fixed; only atom
positions move.  Everything derived purely from the cell and the solver
options is therefore invariant across steps:

* the global real-space grid,
* the domain decomposition (cores + buffers),
* the partition-of-unity supports p_α(r),
* each domain's plane-wave basis (cutoff sphere on the domain grid),
* the Ewald image shifts and reciprocal vectors.

``run_ldc`` without a workspace rebuilds all of these every call.  An
:class:`LDCWorkspace` builds them once, re-bins the atoms each step, and
rebuilds only the atom-dependent pieces — the nonlocal projectors and
(in ``vion="domain"`` mode) the domain-local ionic potentials.

On top of the structural reuse the workspace **warm-starts each domain's
orbitals** from its previous converged ψ, together with the settled
boundary potential v_bc and local density ρ_α (restarting the damped v_bc
iteration from zero would otherwise dominate the step-2 SCF count).  A
domain whose band count changed (atoms migrated across a boundary between
steps) falls back to the same deterministic random start the cold path
uses.  Orbital warm starts are the
dominant lever on MD throughput: the eigensolver starts inside the converged
subspace of the previous step and typically needs a small fraction of the
cold iteration count (cf. DGDFT, arXiv:2003.00407; Scheiber et al.,
arXiv:1803.04536).

Thread it through :func:`repro.core.ldc.run_ldc` via ``workspace=``;
:class:`repro.md.qmd.LDCEngine` creates one automatically so ``QMDDriver``
trajectories get the reuse for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.core.domains import Domain, DomainDecomposition
from repro.core.support import supports
from repro.dft.basis import PlaneWaveBasis
from repro.dft.ewald import EwaldStructure
from repro.dft.grid import RealSpaceGrid
from repro.dft.pseudopotential import NonlocalProjectors, local_potential
from repro.systems.configuration import Configuration

if TYPE_CHECKING:
    from repro.core.ldc import DomainState, LDCOptions


class DomainScratch:
    """A named pool of reusable work arrays for one LDC hot-path consumer.

    ``get(name, shape, dtype)`` returns the cached buffer when shape and
    dtype still match, else (re)allocates — so a steady-state SCF pass
    performs **zero** buffer allocations (the invariant the domain-batching
    benchmark pins with its tracemalloc check).  :attr:`allocations` counts
    every real allocation for exactly that assertion.

    One instance serves one single-threaded consumer: either one domain
    (attached to its :class:`~repro.core.ldc.DomainState`, used only by
    whichever worker owns that domain during a pass) or the batched
    coordinator's stack pool.  Buffer contents are undefined between uses —
    every consumer overwrites before reading (``np.take(..., out=)`` /
    full-array ufunc ``out=`` writes), which is why ``np.empty`` suffices.
    """

    def __init__(self) -> None:
        self._bufs: dict[Hashable, np.ndarray] = {}
        self._flat: np.ndarray | None = None
        #: number of buffer (re)allocations since construction
        self.allocations: int = 0

    def get(
        self,
        name: Hashable,
        shape: tuple[int, ...],
        dtype: type | np.dtype = float,
    ) -> np.ndarray:
        """The pooled buffer named ``name`` with ``shape``/``dtype``."""
        shape = tuple(int(n) for n in shape)
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
            self.allocations += 1
        return buf

    def flat_indices(self, domain: Domain, global_shape: tuple[int, ...]) -> np.ndarray:
        """Flat global-grid indices of the domain's extended region.

        Cached on first use (the decomposition is MD-step-invariant); lets
        field restriction run as ``np.take(field.ravel(), flat, out=buf)``
        — the gather of ``Domain.extract`` without its per-call allocation.
        """
        if self._flat is None:
            ix, iy, iz = domain.grid_indices
            ny, nz = int(global_shape[1]), int(global_shape[2])
            self._flat = (
                ix[:, None, None] * ny + iy[None, :, None]
            ) * nz + iz[None, None, :]
        return self._flat


def _options_signature(options: LDCOptions) -> tuple:
    """The option fields the cached structures depend on.

    A change in any of these invalidates the grid/decomposition/bases (and
    with them the orbital cache); other options (tolerances, mixing, damping)
    only steer the SCF loop and leave the cached geometry valid.
    """
    return (
        options.ecut,
        tuple(options.domains),
        options.buffer,
        options.grid_factor,
        options.support,
        options.extra_bands,
        options.vion,
        options.seed,
    )


class LDCWorkspace:
    """Reusable LDC solver state for a trajectory in a fixed cell.

    Usage::

        ws = LDCWorkspace()
        for step in trajectory:
            result = run_ldc(config, opts, workspace=ws, rho0=rho_prev)

    ``prepare`` detects cell / option changes and resets itself, so a single
    workspace can safely outlive a cell swap — it just pays one cold rebuild.
    Not thread-safe: one workspace per trajectory.
    """

    def __init__(self) -> None:
        self._cell: np.ndarray | None = None
        self._signature: tuple | None = None
        self.grid: RealSpaceGrid | None = None
        self.decomposition: DomainDecomposition | None = None
        self.pou: list[np.ndarray] | None = None
        self._bases: dict[int, PlaneWaveBasis] = {}
        #: converged per-domain solver state (ψ, v_bc, ρ_α) saved by
        #: :meth:`store`, keyed by domain index
        self._solver_state: dict[
            int, tuple[np.ndarray, np.ndarray | None, np.ndarray | None]
        ] = {}
        self._ewald: EwaldStructure | None = None
        #: per-domain reusable work buffers (gathered potentials, v_bc
        #: targets, band densities), attached to each ``DomainState`` by
        #: :meth:`prepare` so SCF passes stop re-allocating them
        self._scratch: dict[int, DomainScratch] = {}
        #: the batched coordinator's shape-class stack pool
        #: (``repro.core.batched`` stacks v_eff/ψ/projectors into it)
        self.batch_pool: DomainScratch = DomainScratch()
        #: per-``prepare`` stats: domains seeded from cached orbitals vs
        #: random (fresh build, or band count changed after atom migration)
        self.warm_domains: int = 0
        self.cold_domains: int = 0
        #: number of ``prepare`` calls since the last reset
        self.steps: int = 0

    # -- cache lifecycle -----------------------------------------------------

    @property
    def has_orbitals(self) -> bool:
        """Whether the next ``prepare`` can seed any domain from cached ψ."""
        return bool(self._solver_state)

    def shared_buffers(self) -> dict[str, np.ndarray]:
        """Arrays shared across the ``ldc_workers`` fan-out, by name.

        This is the race sanitizer's guard list
        (:meth:`repro.sanitize.race.RaceSanitizer.guard_readonly`): the
        partition-of-unity windows and every cached converged ψ/v_bc/ρ_α
        are read concurrently by domain workers and must only be written
        by the coordinating thread after the join.
        """
        buffers: dict[str, np.ndarray] = {}
        if self.pou is not None:
            for idom, window in enumerate(self.pou):
                buffers[f"pou[{idom}]"] = window
        for idom, (psi, vbc, rho_a) in self._solver_state.items():
            buffers[f"psi[{idom}]"] = psi
            if vbc is not None:
                buffers[f"vbc[{idom}]"] = vbc
            if rho_a is not None:
                buffers[f"rho_local[{idom}]"] = rho_a
        return buffers

    def reset(self) -> None:
        """Drop everything (structures, orbital cache, scratch pools)."""
        self._cell = None
        self._signature = None
        self.grid = None
        self.decomposition = None
        self.pou = None
        self._bases.clear()
        self._solver_state.clear()
        self._ewald = None
        self._scratch.clear()
        self.batch_pool = DomainScratch()
        self.warm_domains = 0
        self.cold_domains = 0
        self.steps = 0

    def scratch_allocations(self) -> int:
        """Total buffer allocations across every scratch pool.

        Flat across warm SCF passes — the domain-batching benchmark asserts
        the delta over a warm trajectory step is zero.
        """
        return self.batch_pool.allocations + sum(
            s.allocations for s in self._scratch.values()
        )

    def _ensure_structures(
        self, config: Configuration, options: LDCOptions
    ) -> None:
        from repro.core.ldc import make_global_grid

        cell = np.asarray(config.cell, dtype=float).reshape(3)
        sig = _options_signature(options)
        if (
            self._cell is not None
            and np.array_equal(self._cell, cell)
            and self._signature == sig
        ):
            return
        self.reset()
        self._cell = cell.copy()
        self._signature = sig
        self.grid = make_global_grid(config, options)
        self.decomposition = DomainDecomposition(
            self.grid, options.domains, options.buffer
        )
        self.pou = supports(self.decomposition, options.support)

    def ewald_structure(self, config: Configuration) -> EwaldStructure:
        """The cached Ewald geometry for this cell (built on first use)."""
        natoms = len(config.symbols)
        if self._ewald is None or not self._ewald.matches(
            config.cell, natoms
        ):
            self._ewald = EwaldStructure.build(config.cell, natoms)
        return self._ewald

    # -- per-step state ------------------------------------------------------

    def prepare(
        self, config: Configuration, options: LDCOptions
    ) -> tuple[RealSpaceGrid, DomainDecomposition, list[DomainState]]:
        """Bin atoms into the cached decomposition and build per-step states.

        Structural pieces (grid, decomposition, supports, bases) come from
        the cache; atom-dependent pieces (nonlocal projectors, domain-local
        ionic potentials) are rebuilt.  Each domain's ψ is seeded from the
        previous step's converged orbitals when its band count is unchanged,
        otherwise from the cold path's deterministic random start.
        """
        from repro.core.ldc import DomainState

        self._ensure_structures(config, options)
        assert self.grid is not None
        assert self.decomposition is not None and self.pou is not None
        decomp = self.decomposition
        self.warm_domains = 0
        self.cold_domains = 0
        states: list[DomainState] = []
        for idom, (dom, w) in enumerate(zip(decomp.domains, self.pou)):
            idx, local = decomp.atoms_in_domain(config, dom)
            if len(idx) == 0:
                states.append(
                    DomainState(dom, idx, local, None, None, w, nband=0)
                )
                continue
            basis = self._bases.get(idom)
            if basis is None:
                basis = PlaneWaveBasis(dom.grid, options.ecut)
                self._bases[idom] = basis
            vnl = NonlocalProjectors(basis, local)
            ne_local = local.n_electrons()
            nband = min(
                int(np.ceil(ne_local / 2.0)) + options.extra_bands, basis.npw
            )
            cached = self._solver_state.get(idom)
            vbc = rho_local = None
            if cached is not None and cached[0].shape == (basis.npw, nband):
                # warm: previous converged ψ, plus the settled boundary
                # potential and local density — without them the damped
                # v_bc iteration re-converges from scratch and the orbital
                # warm start buys far less
                psi, vbc, rho_local = cached
                self.warm_domains += 1
            else:
                # same deterministic seeding as the cold path in
                # _prepare_states (seed offset is the domain index)
                psi = basis.random_orbitals(
                    nband, seed=options.seed + 131 * idom
                )
                self.cold_domains += 1
            v_ion = (
                local_potential(dom.grid, local)
                if options.vion == "domain"
                else None
            )
            scratch = self._scratch.get(idom)
            if scratch is None:
                scratch = DomainScratch()
                self._scratch[idom] = scratch
            states.append(
                DomainState(
                    dom, idx, local, basis, vnl, w, nband=nband, psi=psi,
                    v_ion_local=v_ion, vbc=vbc, rho_local=rho_local,
                    scratch=scratch,
                )
            )
        self.steps += 1
        return self.grid, decomp, states

    def store(self, states: list[DomainState]) -> None:
        """Save each domain's converged solver state (ψ, v_bc, ρ_α) for the
        next step's warm start."""
        self._solver_state.clear()
        for idom, state in enumerate(states):
            if state.nband and state.psi is not None:
                self._solver_state[idom] = (
                    state.psi, state.vbc, state.rho_local
                )
