"""Persistent LDC workspace: MD-step-invariant state, cached once per cell.

The paper's headline metric is QMD time-to-solution — atoms × SCF iterations
per second (Sec. 5.2/6).  Between MD steps the *cell* is fixed; only atom
positions move.  Everything derived purely from the cell and the solver
options is therefore invariant across steps:

* the global real-space grid,
* the domain decomposition (cores + buffers),
* the partition-of-unity supports p_α(r),
* each domain's plane-wave basis (cutoff sphere on the domain grid),
* the Ewald image shifts and reciprocal vectors.

``run_ldc`` without a workspace rebuilds all of these every call.  An
:class:`LDCWorkspace` builds them once, re-bins the atoms each step, and
rebuilds only the atom-dependent pieces — the nonlocal projectors and
(in ``vion="domain"`` mode) the domain-local ionic potentials.

On top of the structural reuse the workspace **warm-starts each domain's
orbitals** from a bounded history of its converged states: each domain
keeps a :class:`~repro.md.extrapolate.DomainHistory` window of (ψ, v_bc,
ρ_α) snapshots, and ``prepare`` seeds the next solve from the ASPC
prediction over the last ``LDCOptions.history_depth`` of them (depth 1
degrades to verbatim last-state reuse — the PR 4 behaviour; restarting
the damped v_bc iteration from zero would otherwise dominate the step-2
SCF count).  A domain whose identity changed — atoms migrated across a
boundary, the band count moved — invalidates its window and falls back to
the same deterministic random start the cold path uses.  Orbital warm
starts are the dominant lever on MD throughput: the eigensolver starts
inside (depth 1) or ahead of (depth ≥ 2, extrapolated) the previous
step's converged subspace and typically needs a small fraction of the
cold iteration count (cf. DGDFT, arXiv:2003.00407; Scheiber et al.,
arXiv:1803.04536; Kolafa's ASPC).

Thread it through :func:`repro.core.ldc.run_ldc` via ``workspace=``;
:class:`repro.md.qmd.LDCEngine` creates one automatically so ``QMDDriver``
trajectories get the reuse for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.core.domains import Domain, DomainDecomposition
from repro.core.support import supports
from repro.dft.basis import PlaneWaveBasis
from repro.dft.ewald import EwaldStructure
from repro.dft.grid import RealSpaceGrid
from repro.dft.pseudopotential import NonlocalProjectors, local_potential
from repro.systems.configuration import Configuration

if TYPE_CHECKING:
    from repro.core.ldc import DomainState, LDCOptions
    from repro.md.extrapolate import DomainHistory


class DomainScratch:
    """A named pool of reusable work arrays for one LDC hot-path consumer.

    ``get(name, shape, dtype)`` returns the cached buffer when shape and
    dtype still match, else (re)allocates — so a steady-state SCF pass
    performs **zero** buffer allocations (the invariant the domain-batching
    benchmark pins with its tracemalloc check).  :attr:`allocations` counts
    every real allocation for exactly that assertion.

    One instance serves one single-threaded consumer: either one domain
    (attached to its :class:`~repro.core.ldc.DomainState`, used only by
    whichever worker owns that domain during a pass) or the batched
    coordinator's stack pool.  Buffer contents are undefined between uses —
    every consumer overwrites before reading (``np.take(..., out=)`` /
    full-array ufunc ``out=`` writes), which is why ``np.empty`` suffices.
    """

    def __init__(self) -> None:
        self._bufs: dict[Hashable, np.ndarray] = {}
        self._flat: np.ndarray | None = None
        #: number of buffer (re)allocations since construction
        self.allocations: int = 0

    def get(
        self,
        name: Hashable,
        shape: tuple[int, ...],
        dtype: type | np.dtype = float,
    ) -> np.ndarray:
        """The pooled buffer named ``name`` with ``shape``/``dtype``."""
        shape = tuple(int(n) for n in shape)
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
            self.allocations += 1
        return buf

    def flat_indices(self, domain: Domain, global_shape: tuple[int, ...]) -> np.ndarray:
        """Flat global-grid indices of the domain's extended region.

        Cached on first use (the decomposition is MD-step-invariant); lets
        field restriction run as ``np.take(field.ravel(), flat, out=buf)``
        — the gather of ``Domain.extract`` without its per-call allocation.
        """
        if self._flat is None:
            ix, iy, iz = domain.grid_indices
            ny, nz = int(global_shape[1]), int(global_shape[2])
            self._flat = (
                ix[:, None, None] * ny + iy[None, :, None]
            ) * nz + iz[None, None, :]
        return self._flat


def _domain_key(
    atom_indices: np.ndarray, npw: int, nband: int
) -> tuple:
    """The identity of a domain's electronic problem across MD steps.

    History snapshots are only reusable while this is unchanged: the basis
    size, the band count, and *which* atoms the domain owns (a migrated
    atom changes the local problem even at equal band count).
    """
    return (int(npw), int(nband), tuple(int(i) for i in atom_indices))


def _options_signature(options: LDCOptions) -> tuple:
    """The option fields the cached structures depend on.

    A change in any of these invalidates the grid/decomposition/bases (and
    with them the orbital cache); other options (tolerances, mixing, damping)
    only steer the SCF loop and leave the cached geometry valid.
    """
    return (
        options.ecut,
        tuple(options.domains),
        options.buffer,
        options.grid_factor,
        options.support,
        options.extra_bands,
        options.vion,
        options.seed,
    )


class LDCWorkspace:
    """Reusable LDC solver state for a trajectory in a fixed cell.

    Usage::

        ws = LDCWorkspace()
        for step in trajectory:
            result = run_ldc(config, opts, workspace=ws, rho0=rho_prev)

    ``prepare`` detects cell / option changes and resets itself, so a single
    workspace can safely outlive a cell swap — it just pays one cold rebuild.
    Not thread-safe: one workspace per trajectory.
    """

    def __init__(self) -> None:
        self._cell: np.ndarray | None = None
        self._signature: tuple | None = None
        self.grid: RealSpaceGrid | None = None
        self.decomposition: DomainDecomposition | None = None
        self.pou: list[np.ndarray] | None = None
        self._bases: dict[int, PlaneWaveBasis] = {}
        #: bounded per-domain ASPC windows of converged (ψ, v_bc, ρ_α)
        #: snapshots (:class:`~repro.md.extrapolate.DomainHistory`), keyed
        #: by domain index; filled by :meth:`store`, consumed by
        #: :meth:`prepare`
        self._history: dict[int, DomainHistory] = {}
        #: mean gauge-invariant residual of the last step's ψ predictions
        #: against the converged blocks (None until a predicted step has
        #: been stored) — the ``ldc.predictor_residual`` series
        self.predictor_residual: float | None = None
        self._ewald: EwaldStructure | None = None
        #: per-domain reusable work buffers (gathered potentials, v_bc
        #: targets, band densities), attached to each ``DomainState`` by
        #: :meth:`prepare` so SCF passes stop re-allocating them
        self._scratch: dict[int, DomainScratch] = {}
        #: the batched coordinator's shape-class stack pool
        #: (``repro.core.batched`` stacks v_eff/ψ/projectors into it)
        self.batch_pool: DomainScratch = DomainScratch()
        #: per-``prepare`` stats: domains seeded from cached orbitals vs
        #: random (fresh build, or band count changed after atom migration)
        self.warm_domains: int = 0
        self.cold_domains: int = 0
        #: number of ``prepare`` calls since the last reset
        self.steps: int = 0

    # -- cache lifecycle -----------------------------------------------------

    @property
    def has_orbitals(self) -> bool:
        """Whether the next ``prepare`` can seed any domain from cached ψ."""
        return any(len(h) for h in self._history.values())

    def shared_buffers(self) -> dict[str, np.ndarray]:
        """Arrays shared across the ``ldc_workers`` fan-out, by name.

        This is the race sanitizer's guard list
        (:meth:`repro.sanitize.race.RaceSanitizer.guard_readonly`): the
        partition-of-unity windows and every history snapshot of converged
        ψ/v_bc/ρ_α are read concurrently by domain workers and must only
        be written by the coordinating thread after the join.
        """
        buffers: dict[str, np.ndarray] = {}
        if self.pou is not None:
            for idom, window in enumerate(self.pou):
                buffers[f"pou[{idom}]"] = window
        for idom, hist in self._history.items():
            for depth, (psi, vbc, rho_a) in enumerate(hist._entries):
                buffers[f"psi[{idom}]@{depth}"] = psi
                if vbc is not None:
                    buffers[f"vbc[{idom}]@{depth}"] = vbc
                if rho_a is not None:
                    buffers[f"rho_local[{idom}]@{depth}"] = rho_a
        return buffers

    def reset(self) -> None:
        """Drop everything (structures, orbital cache, scratch pools)."""
        self._cell = None
        self._signature = None
        self.grid = None
        self.decomposition = None
        self.pou = None
        self._bases.clear()
        self._history.clear()
        self.predictor_residual = None
        self._ewald = None
        self._scratch.clear()
        self.batch_pool = DomainScratch()
        self.warm_domains = 0
        self.cold_domains = 0
        self.steps = 0

    def scratch_allocations(self) -> int:
        """Total buffer allocations across every scratch pool.

        Flat across warm SCF passes — the domain-batching benchmark asserts
        the delta over a warm trajectory step is zero.
        """
        return self.batch_pool.allocations + sum(
            s.allocations for s in self._scratch.values()
        )

    def _ensure_structures(
        self, config: Configuration, options: LDCOptions
    ) -> None:
        from repro.core.ldc import make_global_grid

        cell = np.asarray(config.cell, dtype=float).reshape(3)
        sig = _options_signature(options)
        if (
            self._cell is not None
            and np.array_equal(self._cell, cell)
            and self._signature == sig
        ):
            return
        self.reset()
        self._cell = cell.copy()
        self._signature = sig
        self.grid = make_global_grid(config, options)
        self.decomposition = DomainDecomposition(
            self.grid, options.domains, options.buffer
        )
        self.pou = supports(self.decomposition, options.support)

    def ewald_structure(self, config: Configuration) -> EwaldStructure:
        """The cached Ewald geometry for this cell (built on first use)."""
        natoms = len(config.symbols)
        if self._ewald is None or not self._ewald.matches(
            config.cell, natoms
        ):
            self._ewald = EwaldStructure.build(config.cell, natoms)
        return self._ewald

    # -- per-step state ------------------------------------------------------

    def prepare(
        self, config: Configuration, options: LDCOptions
    ) -> tuple[RealSpaceGrid, DomainDecomposition, list[DomainState]]:
        """Bin atoms into the cached decomposition and build per-step states.

        Structural pieces (grid, decomposition, supports, bases) come from
        the cache; atom-dependent pieces (nonlocal projectors, domain-local
        ionic potentials) are rebuilt.  Each domain's ψ is seeded from the
        ASPC prediction over its history window (depth 1 = the previous
        step's converged orbitals verbatim) when its identity ``(npw,
        nband, atoms)`` is unchanged, otherwise from the cold path's
        deterministic random start.
        """
        from repro.core.ldc import DomainState

        self._ensure_structures(config, options)
        assert self.grid is not None
        assert self.decomposition is not None and self.pou is not None
        decomp = self.decomposition
        self.warm_domains = 0
        self.cold_domains = 0
        states: list[DomainState] = []
        for idom, (dom, w) in enumerate(zip(decomp.domains, self.pou)):
            idx, local = decomp.atoms_in_domain(config, dom)
            if len(idx) == 0:
                states.append(
                    DomainState(dom, idx, local, None, None, w, nband=0)
                )
                continue
            basis = self._bases.get(idom)
            if basis is None:
                basis = PlaneWaveBasis(dom.grid, options.ecut)
                self._bases[idom] = basis
            vnl = NonlocalProjectors(basis, local)
            ne_local = local.n_electrons()
            nband = min(
                int(np.ceil(ne_local / 2.0)) + options.extra_bands, basis.npw
            )
            hist = self._history.get(idom)
            key = _domain_key(idx, basis.npw, nband)
            predicted = (
                hist.predict(key, depth=options.history_depth)
                if hist is not None
                else None
            )
            vbc = rho_local = None
            if predicted is not None:
                # warm: ASPC-predicted ψ (depth 1 = previous converged ψ
                # verbatim), plus the settled boundary potential and local
                # density — without them the damped v_bc iteration
                # re-converges from scratch and the orbital warm start
                # buys far less
                psi, vbc, rho_local = predicted
                self.warm_domains += 1
            else:
                # same deterministic seeding as the cold path in
                # _prepare_states (seed offset is the domain index)
                psi = basis.random_orbitals(
                    nband, seed=options.seed + 131 * idom
                )
                self.cold_domains += 1
            v_ion = (
                local_potential(dom.grid, local)
                if options.vion == "domain"
                else None
            )
            scratch = self._scratch.get(idom)
            if scratch is None:
                scratch = DomainScratch()
                self._scratch[idom] = scratch
            states.append(
                DomainState(
                    dom, idx, local, basis, vnl, w, nband=nband, psi=psi,
                    v_ion_local=v_ion, vbc=vbc, rho_local=rho_local,
                    scratch=scratch,
                )
            )
        self.steps += 1
        return self.grid, decomp, states

    def store(
        self, states: list[DomainState], options: LDCOptions | None = None
    ) -> None:
        """Push each domain's converged solver state (ψ, v_bc, ρ_α) onto
        its ASPC window for the next step's warm start.

        Also settles :attr:`predictor_residual`: the mean gauge-invariant
        distance between the ψ each window predicted for *this* step and
        the block that actually converged — the per-step predictor-quality
        number the run ledger tracks.
        """
        from repro.md.extrapolate import DomainHistory, subspace_residual

        depth = max(1, options.history_depth) if options is not None else 1
        residuals: list[float] = []
        live = set()
        for idom, state in enumerate(states):
            if not state.nband or state.psi is None or state.basis is None:
                continue
            live.add(idom)
            hist = self._history.get(idom)
            if hist is None:
                hist = DomainHistory(depth=depth)
                self._history[idom] = hist
            elif hist.depth != depth:
                hist.resize(depth)
            if hist.last_prediction is not None:
                res = subspace_residual(hist.last_prediction, state.psi)
                if np.isfinite(res):
                    residuals.append(res)
                hist.last_prediction = None
            key = _domain_key(
                state.atom_indices, state.basis.npw, state.nband
            )
            hist.push(key, state.psi, state.vbc, state.rho_local)
        for idom in list(self._history):
            if idom not in live:
                del self._history[idom]
        self.predictor_residual = (
            float(np.mean(residuals)) if residuals else None
        )
