"""Domain support functions p_α(r) — the partition of unity of DC-DFT.

Two families:

* **sharp** — ``p_α`` is the indicator of the core Ω₀α.  Since cores tile the
  grid exactly, ``Σ_α p_α = 1`` holds point-wise by construction.  This is
  the assembly the main driver uses.
* **smooth** — separable trapezoidal "tent with plateau" profiles that ramp
  linearly across the buffer overlap and are then normalized point-wise so
  the sum rule holds to machine precision.  Smooth supports reduce assembly
  discontinuities at core boundaries (useful diagnostics / ablations).

Both return weights on a domain's extended grid, compactly supported within
the domain (zero at its outermost buffer shell), as the paper requires.
"""

from __future__ import annotations

import numpy as np

from repro.core.domains import Domain, DomainDecomposition


def sharp_support(domain: Domain) -> np.ndarray:
    """Indicator of the core on the domain grid."""
    return domain.core_mask.astype(float)


def _axis_profile(npoints: int, core: int, buffer_: int) -> np.ndarray:
    """1-D trapezoid: 0 at the domain edge, ramping to 1 over the buffer,
    flat 1 across the core."""
    w = np.zeros(npoints)
    if buffer_ == 0:
        w[:core] = 1.0
        return w
    ramp = (np.arange(1, buffer_ + 1)) / (buffer_ + 1)
    w[:buffer_] = ramp
    w[buffer_ : buffer_ + core] = 1.0
    w[buffer_ + core : buffer_ + core + buffer_] = ramp[::-1]
    return w


def smooth_support_raw(domain: Domain) -> np.ndarray:
    """Unnormalized separable trapezoid on the domain grid."""
    profiles = [
        _axis_profile(
            int(domain.extent_points[a]),
            int(domain.core_points[a]),
            int(domain.buffer_points[a]),
        )
        for a in range(3)
    ]
    return (
        profiles[0][:, None, None]
        * profiles[1][None, :, None]
        * profiles[2][None, None, :]
    )


def smooth_supports(decomp: DomainDecomposition) -> list[np.ndarray]:
    """Point-wise normalized smooth supports for all domains.

    The raw trapezoids are scattered onto the global grid to obtain the
    normalizer ``W(r) = Σ_α p̃_α(r)``; each domain weight is then divided by
    ``W`` restricted to its region, guaranteeing ``Σ_α p_α(r) = 1`` exactly.
    """
    raw = [smooth_support_raw(d) for d in decomp.domains]
    total = np.zeros(decomp.grid.shape)
    for dom, w in zip(decomp.domains, raw):
        ix, iy, iz = dom.grid_indices
        np.add.at(total, np.ix_(ix, iy, iz), w)
    if np.any(total <= 0):
        raise RuntimeError("smooth supports do not cover the grid")
    out = []
    for dom, w in zip(decomp.domains, raw):
        out.append(w / dom.extract(total))
    return out


def supports(decomp: DomainDecomposition, kind: str = "sharp") -> list[np.ndarray]:
    """Partition-of-unity weights for every domain (``kind``: sharp|smooth)."""
    if kind == "sharp":
        return [sharp_support(d) for d in decomp.domains]
    if kind == "smooth":
        return smooth_supports(decomp)
    raise ValueError(f"unknown support kind {kind!r}")


def verify_partition_of_unity(
    decomp: DomainDecomposition, weights: list[np.ndarray], atol: float = 1e-10
) -> bool:
    """Check Σ_α p_α(r) = 1 on the global grid."""
    total = np.zeros(decomp.grid.shape)
    for dom, w in zip(decomp.domains, weights):
        ix, iy, iz = dom.grid_indices
        np.add.at(total, np.ix_(ix, iy, iz), w)
    return bool(np.allclose(total, 1.0, atol=atol))
