"""The LDC-DFT global-local SCF driver (Fig. 2).

One SCF iteration:

1. **Global**: the Hartree potential of the global density ρ is solved on the
   global grid (FFT or multigrid — the GSLF split of Sec. 3.2) and combined
   with v_xc[ρ] and the global local-pseudopotential field.
2. **Local**: each domain solves its Kohn–Sham eigenproblem on its own small
   plane-wave basis with periodic boundary conditions, the restricted global
   potential, its own nonlocal projectors, and — in ``mode="ldc"`` — the
   density-adaptive boundary potential v_bc = (ρ_α − ρ)/ξ (Eq. 2-3).
3. **Global**: a single chemical potential μ is found by Newton–Raphson on
   the electron count over all domain eigenvalues weighted by the partition
   of unity (Eq. c in Fig. 2); the global density is reassembled as
   ρ(r) = Σ_α p_α(r) ρ_α(r) (Eq. b) and mixed.

``mode="dc"`` disables the boundary potential, recovering the original
divide-and-conquer algorithm — the comparison baseline of Fig. 7.

Design choice (documented in DESIGN.md): the *local pseudopotential* field is
built once globally and restricted to domains, so the buffer controls purely
the quantum (wave-function confinement) error — the error Eq. 1 models.  The
nonlocal projectors use the atoms inside each domain (core + buffer).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.boundary import PAPER_XI, boundary_error_norm, boundary_potential
from repro.core.domains import Domain, DomainDecomposition
from repro.core.energy import (
    boundary_energy_correction,
    dc_band_energy,
    dc_total_energy,
)
from repro.core.support import supports
from repro.dft.basis import PlaneWaveBasis
from repro.dft.eigensolver import (
    EigenResult,
    record_solve,
    solve_all_band,
    solve_band_by_band,
    solve_direct,
)
from repro.dft.ewald import ewald_energy
from repro.dft.grid import RealSpaceGrid
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.hartree import hartree_potential
from repro.dft.mixing import LinearMixer, PulayMixer, renormalize
from repro.dft.occupations import fermi_occupations, find_chemical_potential
from repro.dft.pseudopotential import NonlocalProjectors, local_potential
from repro.dft.scf import initial_density
from repro.dft.xc import lda_xc
from repro.multigrid.poisson import MultigridPoisson
from repro.sanitize import ENV_SANITIZERS, Sanitizers
from repro.systems.configuration import Configuration

if TYPE_CHECKING:
    from repro.core.workspace import DomainScratch, LDCWorkspace
    from repro.observability.instrumentation import Instrumentation


@dataclass
class LDCOptions:
    """Knobs for the LDC/DC SCF driver."""

    ecut: float = 5.0
    #: number of DC cores per axis
    domains: tuple[int, int, int] = (2, 2, 2)
    #: buffer thickness b in Bohr (realized to whole grid points)
    buffer: float = 2.5
    #: "ldc" (density-adaptive boundary potential) or "dc" (classic)
    mode: str = "ldc"
    #: response parameter ξ of Eq. 2
    xi: float = PAPER_XI
    kt: float = 0.01
    #: SCF convergence threshold on ∫|Δρ|/N_e
    tol: float = 1e-5
    max_iter: int = 40
    mixer: str = "pulay"
    mix_alpha: float = 0.4
    extra_bands: int = 4
    eigensolver: str = "all_band"
    eig_tol: float = 1e-6
    eig_max_iter: int = 30
    grid_factor: float = 2.0
    #: global Poisson solver: "fft" | "multigrid" (the GSLF choice)
    poisson: str = "fft"
    #: partition of unity: "sharp" | "smooth"
    support: str = "sharp"
    #: ionic potential seen by a domain: "domain" (paper-faithful — built
    #: from the domain's own atoms and their artificial periodic images,
    #: the error source v_bc corrects) or "global" (the exact global local
    #: pseudopotential restricted to the domain — a GSLF-enabled variant
    #: whose only remaining buffer error is wave-function confinement)
    vion: str = "global"
    #: where the boundary potential acts: "buffer" (outside the core — the
    #: artificial boundary's neighborhood) or "full" (whole domain)
    vbc_region: str = "buffer"
    #: under-relaxation of v_bc across SCF iterations (1.0 = no damping)
    vbc_damping: float = 0.5
    seed: int = 7
    #: threads fanning the independent per-domain KS solves in each SCF
    #: pass (NumPy's BLAS/FFT release the GIL); 1 = serial.  Physics is
    #: identical either way — domains are independent and results are
    #: folded in domain-index order (parity-tested).
    ldc_workers: int = 1
    #: batch same-shape domain solves into stacked shape-class kernels
    #: (:mod:`repro.core.batched`): domains sharing (grid shape, npw,
    #: nband, nproj) solve as one stacked LOBPCG through the
    #: :mod:`repro.backend` array namespace.  ``None`` (default) defers to
    #: ``$REPRO_BATCH_DOMAINS``; requires ``eigensolver="all_band"``
    #: (env-resolved requests fall back silently for other solvers, an
    #: explicit ``True`` raises).  Results match the per-domain path to
    #: ≤1e-10 (parity-tested); when batching is active ``ldc_workers`` is
    #: ignored for the solve stage.
    batch_domains: bool | None = None
    #: ASPC history window per domain (workspace runs only): 1 keeps the
    #: plain last-state warm start, K >= 2 seeds each solve from the
    #: time-reversible K-point extrapolation of the converged ψ/v_bc/ρ_α
    #: (:mod:`repro.md.extrapolate`).  Not part of the structural cache
    #: signature — changing it mid-trajectory trims/deepens the windows
    #: without a cold restart.
    history_depth: int = 1

    def __post_init__(self) -> None:
        if int(self.ldc_workers) != self.ldc_workers or self.ldc_workers < 1:
            raise ValueError("ldc_workers must be an integer >= 1")
        if (
            int(self.history_depth) != self.history_depth
            or self.history_depth < 1
        ):
            raise ValueError("history_depth must be an integer >= 1")
        if self.batch_domains and self.eigensolver != "all_band":
            raise ValueError(
                "batch_domains=True requires eigensolver='all_band' "
                f"(got {self.eigensolver!r}); leave batch_domains unset to "
                "fall back automatically"
            )
        if self.mode not in ("ldc", "dc"):
            raise ValueError(f"mode must be 'ldc' or 'dc', got {self.mode!r}")
        if self.poisson not in ("fft", "multigrid"):
            raise ValueError("poisson must be 'fft' or 'multigrid'")
        if self.vbc_region not in ("buffer", "full"):
            raise ValueError("vbc_region must be 'buffer' or 'full'")
        if self.vion not in ("domain", "global"):
            raise ValueError("vion must be 'domain' or 'global'")
        if not 0.0 < self.vbc_damping <= 1.0:
            raise ValueError("vbc_damping must be in (0, 1]")


@dataclass
class DomainState:
    """Per-domain solver state carried across SCF iterations."""

    domain: Domain
    atom_indices: np.ndarray
    local_config: Configuration
    basis: PlaneWaveBasis | None
    vnl: NonlocalProjectors | None
    support: np.ndarray
    nband: int
    v_ion_local: np.ndarray | None = None
    psi: np.ndarray | None = None
    eigenvalues: np.ndarray | None = None
    band_weights: np.ndarray | None = None
    occupations: np.ndarray | None = None
    rho_local: np.ndarray | None = None
    vbc: np.ndarray | None = None
    #: per-band |ψ|² fields stashed between the solve and density steps of
    #: one SCF pass (cleared after assembly to release the memory)
    band_densities: np.ndarray | None = None
    #: reusable per-domain work buffers (attached by ``LDCWorkspace``;
    #: ``None`` → the pass allocates as before)
    scratch: DomainScratch | None = None


@dataclass
class LDCResult:
    """Output of :func:`run_ldc`."""

    energy: float
    components: dict[str, float]
    mu: float
    density: np.ndarray
    grid: RealSpaceGrid
    decomposition: DomainDecomposition
    states: list[DomainState]
    converged: bool
    iterations: int
    history: list[float] = field(default_factory=list)
    density_residuals: list[float] = field(default_factory=list)
    boundary_errors: list[float] = field(default_factory=list)
    forces: np.ndarray | None = None
    #: total eigensolver (LOBPCG/CG) iterations summed over every domain
    #: solve of every SCF pass, including the final consistent pass — the
    #: per-step cost number the warm-start/extrapolation benches gate on
    eig_iterations: int = 0
    #: mean gauge-invariant residual of the step's ASPC ψ predictions
    #: against the converged blocks (None without a workspace or on the
    #: first, cold step)
    predictor_residual: float | None = None

    @property
    def n_domains(self) -> int:
        return self.decomposition.ndomains

    def eigenvalue_array(self) -> np.ndarray:
        return np.concatenate(
            [s.eigenvalues for s in self.states if s.eigenvalues is not None]
        )


def make_global_grid(
    config: Configuration, options: LDCOptions
) -> RealSpaceGrid:
    """Global grid for the cutoff, rounded up so the domain counts divide it
    (and kept even for the multigrid hierarchy)."""
    base = RealSpaceGrid.for_cutoff(config.cell, options.ecut, options.grid_factor)
    shape = []
    for n, nd in zip(base.shape, options.domains):
        step = int(np.lcm(int(nd), 2))
        shape.append(int(np.ceil(n / step)) * step)
    return RealSpaceGrid(config.cell, shape)


def _prepare_states(
    config: Configuration,
    decomp: DomainDecomposition,
    weights: list[np.ndarray],
    options: LDCOptions,
) -> list[DomainState]:
    states: list[DomainState] = []
    for dom, w in zip(decomp.domains, weights):
        idx, local = decomp.atoms_in_domain(config, dom)
        if len(idx) == 0:
            states.append(
                DomainState(dom, idx, local, None, None, w, nband=0)
            )
            continue
        basis = PlaneWaveBasis(dom.grid, options.ecut)
        vnl = NonlocalProjectors(basis, local)
        ne_local = local.n_electrons()
        nband = min(int(np.ceil(ne_local / 2.0)) + options.extra_bands, basis.npw)
        psi = basis.random_orbitals(nband, seed=options.seed + 131 * len(states))
        v_ion = (
            local_potential(dom.grid, local) if options.vion == "domain" else None
        )
        states.append(
            DomainState(
                dom, idx, local, basis, vnl, w, nband=nband, psi=psi,
                v_ion_local=v_ion,
            )
        )
    return states


def _partition_residual(
    grid: RealSpaceGrid, states: list[DomainState]
) -> float:
    """max_r |Σ_α p_α(r) − 1| — the identity Eq. (b)'s assembly relies on."""
    total = np.zeros(grid.shape)
    for state in states:
        ix, iy, iz = state.domain.grid_indices
        # Direct fancy-index += is valid (and much faster than the
        # unbuffered np.add.at): each per-axis wrapped index array is
        # duplicate-free because a domain's extent never exceeds the grid —
        # DomainDecomposition clamps buffer_points to (shape - core) // 2.
        total[np.ix_(ix, iy, iz)] += state.support
    return float(np.abs(total - 1.0).max())


def _solve_domain(
    state: DomainState,
    v_eff_domain: np.ndarray,
    options: LDCOptions,
    instrumentation: Instrumentation | None = None,
) -> EigenResult:
    """Solve the domain KS problem in place (updates psi, eigenvalues).

    Returns the full :class:`EigenResult`; ``result.fields`` carries the
    converged real-space orbitals so the caller's density assembly skips a
    redundant ``to_grid`` re-transform.
    """
    ham = Hamiltonian(state.basis, v_eff_domain, state.vnl)
    if options.eigensolver == "direct":
        res = solve_direct(
            ham, state.nband, instrumentation=instrumentation,
            want_fields=True,
        )
    elif options.eigensolver == "all_band":
        res = solve_all_band(
            ham, state.psi, max_iter=options.eig_max_iter, tol=options.eig_tol,
            instrumentation=instrumentation, want_fields=True,
        )
    elif options.eigensolver == "band_by_band":
        res = solve_band_by_band(
            ham, state.psi, tol=options.eig_tol,
            instrumentation=instrumentation, want_fields=True,
        )
    else:
        raise ValueError(f"unknown eigensolver {options.eigensolver!r}")
    state.psi = res.orbitals
    state.eigenvalues = res.eigenvalues
    return res


def _domain_effective_potential(
    state: DomainState,
    rho: np.ndarray,
    v_hxc_global: np.ndarray,
    v_ks_global: np.ndarray,
    xi: float | None,
    opts: LDCOptions,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Restrict the global fields to the domain and update its v_bc.

    Returns ``(v_eff_domain, rho_restricted)`` — the effective potential
    the domain eigenproblem sees (including the damped boundary potential)
    and the restricted global density (needed again for the boundary-error
    diagnostic).  ``state.vbc`` is updated in place as a side effect.

    With ``state.scratch`` attached (workspace runs) every intermediate —
    the two gathered fields, the v_bc target, the buffer window — lives in
    the domain's reusable pool, so a steady-state pass allocates nothing
    here; the arithmetic (and hence the result, bit for bit) is the same as
    the allocating path.  ``out``, when given, receives ``v_eff_domain``
    in place — the batched coordinator passes a slice of its stacked
    potential block.
    """
    dom = state.domain
    scratch = state.scratch
    if scratch is not None:
        shape = dom.grid.shape
        flat = scratch.flat_indices(dom, rho.shape)
        v_dom = out if out is not None else scratch.get("v_dom", shape)
        if state.v_ion_local is not None:
            np.take(v_hxc_global.ravel(), flat, out=v_dom)
            v_dom += state.v_ion_local
        else:
            np.take(v_ks_global.ravel(), flat, out=v_dom)
        rho_restricted = scratch.get("rho_restricted", shape)
        np.take(rho.ravel(), flat, out=rho_restricted)
        vbc_target = boundary_potential(
            state.rho_local, rho_restricted, xi,
            out=scratch.get("vbc_target", shape),
        )
        if opts.vbc_region == "buffer":
            # act only near the artificial boundary, not inside the core
            window = scratch.get("boundary_window", shape)
            np.subtract(1.0, state.support, out=window)
            vbc_target *= window
        if state.vbc is None:
            state.vbc = opts.vbc_damping * vbc_target  # owned, not scratch
        else:
            # same values as (1-d)·vbc + d·target, without the temporaries
            state.vbc *= 1.0 - opts.vbc_damping
            vbc_target *= opts.vbc_damping
            state.vbc += vbc_target
        v_dom += state.vbc
        return v_dom, rho_restricted
    if state.v_ion_local is not None:
        v_dom = dom.extract(v_hxc_global) + state.v_ion_local
    else:
        v_dom = dom.extract(v_ks_global)
    rho_restricted = dom.extract(rho)
    vbc_target = boundary_potential(state.rho_local, rho_restricted, xi)
    if opts.vbc_region == "buffer":
        # act only near the artificial boundary, not inside the core
        vbc_target = vbc_target * (1.0 - state.support)
    if state.vbc is None:
        state.vbc = opts.vbc_damping * vbc_target
    else:
        state.vbc = (
            1.0 - opts.vbc_damping
        ) * state.vbc + opts.vbc_damping * vbc_target
    if out is not None:
        np.add(v_dom, state.vbc, out=out)
        return out, rho_restricted
    return v_dom + state.vbc, rho_restricted


def _stage_band_data(
    state: DomainState, res: EigenResult, rho_restricted: np.ndarray
) -> float | None:
    """Stage band densities/weights on the state after a domain solve and
    return the boundary-density error (None on the first pass)."""
    dom = state.domain
    assert res.fields is not None
    if state.scratch is not None:
        densities = state.scratch.get(
            "band_densities", (state.nband,) + dom.grid.shape
        )
        # |ψ|² without the two per-pass temporaries of np.abs(...)**2;
        # ndarray ** 2 is np.power, so the values are identical
        np.absolute(res.fields, out=densities)
        np.power(densities, 2, out=densities)
    else:
        densities = np.abs(res.fields) ** 2  # per-band |ψ|²(r), reused fields
    # band weights w_αn = ∫ p_α |ψ_n|² dr
    w = np.einsum("nijk,ijk->n", densities, state.support) * dom.grid.dv
    state.band_weights = w
    state.band_densities = densities  # stashed for the density step
    err: float | None = None
    if state.rho_local is not None:
        err = boundary_error_norm(state.rho_local, rho_restricted, dom.grid.dv)
    return err


def _domain_pass(
    state: DomainState,
    rho: np.ndarray,
    v_hxc_global: np.ndarray,
    v_ks_global: np.ndarray,
    xi: float | None,
    opts: LDCOptions,
    ins: Instrumentation | None,
) -> tuple[EigenResult, float | None]:
    """The per-domain block of one SCF pass: restrict potentials, update
    v_bc, solve, and stage band weights/densities on the state.

    This is the unit of the ``ldc_workers`` fan-out.  When run on a worker
    thread the caller passes ``ins=None`` — counters/series on the shared
    instrumentation are not thread-safe, so the coordinating thread records
    solve telemetry after the join (see ``record_solve``).  Each invocation
    touches only its own ``state`` (including its private scratch pool)
    plus read-only global fields.
    """
    v_eff, rho_restricted = _domain_effective_potential(
        state, rho, v_hxc_global, v_ks_global, xi, opts
    )
    res = _solve_domain(state, v_eff, opts, ins)
    err = _stage_band_data(state, res, rho_restricted)
    return res, err


def run_ldc(
    config: Configuration,
    options: LDCOptions | None = None,
    compute_forces: bool = False,
    rho0: np.ndarray | None = None,
    grid: RealSpaceGrid | None = None,
    instrumentation: Instrumentation | None = None,
    workspace: LDCWorkspace | None = None,
    sanitize: Sanitizers | None = None,
) -> LDCResult:
    """Run the LDC-DFT (or classic DC-DFT) SCF loop to self-consistency.

    ``instrumentation`` optionally accepts an
    :class:`~repro.observability.Instrumentation`: records per-domain solve
    spans, per-iteration residual/energy/μ/boundary-error series, and
    ``poisson.*`` telemetry when the multigrid solver is selected.  The
    default ``None`` executes no telemetry code.

    ``sanitize`` optionally accepts a :class:`~repro.sanitize.Sanitizers`
    bundle: numerics tripwires fire at the density/potential/eigenvalue
    checkpoints and the race detector guards the shared buffers over the
    ``ldc_workers`` fan-out.  ``None`` (the default) defers to
    ``REPRO_SANITIZE`` and, when that is unset too, executes zero
    sanitizer code on the hot path.

    ``workspace`` optionally accepts a persistent
    :class:`~repro.core.workspace.LDCWorkspace`: the grid, decomposition,
    partition of unity, per-domain bases, and Ewald structure come from its
    cache, domain ψ are warm-started from the previous call's converged
    orbitals, and the converged states are stored back for the next call.
    Mutually exclusive with ``grid``.
    """
    opts = options or LDCOptions()
    san = sanitize if sanitize is not None else ENV_SANITIZERS
    if instrumentation is None:
        return _run_ldc(config, opts, compute_forces, rho0, grid, None,
                        workspace, san)
    if instrumentation.recorder is not None:
        instrumentation.recorder.record_invocation(
            "ldc.run", opts, natoms=len(config.symbols)
        )
    with instrumentation.span(
        "ldc.run", category="ldc", natoms=len(config.symbols),
        mode=opts.mode, domains=str(opts.domains), buffer=opts.buffer,
    ) as span:
        try:
            result = _run_ldc(
                config, opts, compute_forces, rho0, grid, instrumentation,
                workspace, san,
            )
        except Exception as exc:
            if instrumentation.recorder is not None:
                instrumentation.recorder.record_failure(exc)
            raise
        span.attrs.update(
            converged=result.converged, iterations=result.iterations,
            ndomains=result.n_domains,
        )
        instrumentation.log.info(
            "ldc finished",
            extra={
                "engine": "ldc",
                "mode": opts.mode,
                "converged": result.converged,
                "iterations": result.iterations,
                "energy": result.energy,
            },
        )
    return result


def _run_ldc(
    config: Configuration,
    opts: LDCOptions,
    compute_forces: bool,
    rho0: np.ndarray | None,
    grid: RealSpaceGrid | None,
    ins: Instrumentation | None,
    workspace: LDCWorkspace | None = None,
    san: Sanitizers | None = None,
) -> LDCResult:
    """LDC implementation; ``ins``/``san`` are the facades or None."""
    hm = None if ins is None else ins.health
    ewald_structure = None
    if workspace is not None:
        if grid is not None:
            raise ValueError("pass either grid= or workspace=, not both")
        if ins is not None:
            t_setup = ins.tracer.now()
        grid, decomp, states = workspace.prepare(config, opts)
        ewald_structure = workspace.ewald_structure(config)
        if ins is not None:
            ins.tracer.record_complete(
                "ldc.workspace_prepare", ins.tracer.now() - t_setup,
                category="ldc", ndomains=decomp.ndomains,
                warm_domains=workspace.warm_domains,
                cold_domains=workspace.cold_domains,
            )
            ins.gauge("ldc.domains").set(decomp.ndomains)
            ins.gauge("ldc.warm_domains").set(workspace.warm_domains)
    else:
        if grid is None:
            grid = make_global_grid(config, opts)
        decomp = DomainDecomposition(grid, opts.domains, opts.buffer)
        if ins is not None:
            t_setup = ins.tracer.now()
        pou = supports(decomp, opts.support)
        states = _prepare_states(config, decomp, pou, opts)
        if ins is not None:
            ins.tracer.record_complete(
                "ldc.partition_of_unity", ins.tracer.now() - t_setup,
                category="ldc", ndomains=decomp.ndomains, support=opts.support,
            )
            ins.gauge("ldc.domains").set(decomp.ndomains)
    if hm is not None:
        hm.observe(
            "ldc.partition",
            max_residual=_partition_residual(grid, states),
            ndomains=decomp.ndomains, support=opts.support,
        )

    n_electrons = config.n_electrons()
    v_loc_global = local_potential(grid, config)
    e_ewald = ewald_energy(
        config.wrapped_positions(), config.zvals, config.cell,
        structure=ewald_structure,
    )

    if rho0 is not None and rho0.shape != grid.shape:
        rho0 = None  # stale-shaped warm start (grid changed) → cold start
    rho = initial_density(grid, config) if rho0 is None else rho0.copy()
    rho = renormalize(rho, n_electrons, grid.dv)
    if san is not None and san.numerics is not None:
        san.numerics.check(
            "rho0", rho, where="ldc.init", expect_dtype=np.float64
        )

    mg = (
        MultigridPoisson(grid, instrumentation=ins, sanitize=san)
        if opts.poisson == "multigrid"
        else None
    )
    vh_prev: np.ndarray | None = None

    mixer: PulayMixer | LinearMixer
    if opts.mixer == "pulay":
        mixer = PulayMixer(alpha=opts.mix_alpha)
    elif opts.mixer == "linear":
        mixer = LinearMixer(alpha=opts.mix_alpha)
    else:
        raise ValueError(f"unknown mixer {opts.mixer!r}")

    history: list[float] = []
    residuals: list[float] = []
    boundary_errors: list[float] = []
    converged = False
    it = 0
    mu = 0.0
    eig_total = 0
    components: dict[str, float] = {}

    xi = opts.xi if opts.mode == "ldc" else None

    # One pool serves every SCF pass of this run (workers idle between
    # passes; thread reuse avoids per-iteration spawn cost).
    executor = (
        ThreadPoolExecutor(max_workers=opts.ldc_workers)
        if opts.ldc_workers > 1
        else None
    )
    # The batched coordinator's stack pool: persistent across MD steps with
    # a workspace, per-run otherwise — either way no per-pass allocations.
    if workspace is not None:
        batch_pool = workspace.batch_pool
    else:
        from repro.core.workspace import DomainScratch as _DomainScratch

        batch_pool = _DomainScratch()
    try:
        for it in range(1, opts.max_iter + 1):
            if ins is not None:
                t_iter = ins.tracer.now()
            mu, rho_out, components, bnd_err, vh_prev, eig_pass = _scf_pass(
                grid, states, rho, v_loc_global, e_ewald, n_electrons,
                xi, mg, vh_prev, opts, ins, executor, san, batch_pool,
            )  # vh_prev is reused as the next iteration's Poisson warm start
            eig_total += eig_pass
            if san is not None and san.numerics is not None:
                san.numerics.check(
                    "rho_new", rho_out, where=f"ldc.iteration[{it}]",
                    expect_dtype=np.float64,
                )
            boundary_errors.append(bnd_err)
            rho_out = renormalize(
                np.clip(rho_out, 0.0, None), n_electrons, grid.dv
            )
            resid = grid.integrate(np.abs(rho_out - rho)) / max(
                n_electrons, 1.0
            )
            residuals.append(resid)
            history.append(components["total"])
            if ins is not None:
                ins.counter("scf.iterations", engine="ldc").inc()
                ins.series("scf.residual", engine="ldc").append(resid)
                ins.series("scf.energy", engine="ldc").append(
                    components["total"]
                )
                ins.series("scf.mu", engine="ldc").append(mu)
                ins.series("ldc.boundary_error").append(bnd_err)
                ins.tracer.record_complete(
                    "ldc.iteration", ins.tracer.now() - t_iter,
                    category="ldc", iteration=it, residual=resid,
                    boundary_error=bnd_err,
                )
                ins.log.debug(
                    "ldc iteration",
                    extra={"engine": "ldc", "iteration": it,
                           "residual": resid,
                           "energy": components["total"], "mu": mu,
                           "boundary_error": bnd_err},
                )
            if hm is not None:
                hm.observe(
                    "scf.residual", engine="ldc", iteration=it, residual=resid
                )
            if resid < opts.tol:
                rho = rho_out
                converged = True
                break
            rho = renormalize(
                np.clip(mixer.mix(rho, rho_out), 0.0, None), n_electrons,
                grid.dv,
            )

        # Final consistent evaluation at the converged density.
        mu, rho_final, components, bnd_err, _, eig_pass = _scf_pass(
            grid, states, rho, v_loc_global, e_ewald, n_electrons,
            xi, mg, vh_prev, opts, ins, executor, san, batch_pool,
        )
        eig_total += eig_pass
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
    rho_final = renormalize(np.clip(rho_final, 0.0, None), n_electrons, grid.dv)

    predictor_residual: float | None = None
    if workspace is not None:
        # push converged states onto the ASPC windows for the next step's
        # warm start; store() also settles the predictor residual of the
        # guesses this step started from
        workspace.store(states, opts)
        predictor_residual = workspace.predictor_residual
        if ins is not None and predictor_residual is not None:
            ins.series("ldc.predictor_residual").append(predictor_residual)

    if hm is not None:
        hm.observe(
            "scf.density", engine="ldc",
            total_charge=grid.integrate(rho_final), n_electrons=n_electrons,
        )
        hm.observe(
            "solver.convergence", solver="scf[ldc]", converged=converged,
            iterations=it, final=True,
            residual=residuals[-1] if residuals else None,
        )

    result = LDCResult(
        energy=components["total"],
        components=components,
        mu=mu,
        density=rho_final,
        grid=grid,
        decomposition=decomp,
        states=states,
        converged=converged,
        iterations=it,
        history=history,
        density_residuals=residuals,
        boundary_errors=boundary_errors,
        eig_iterations=eig_total,
        predictor_residual=predictor_residual,
    )
    if compute_forces:
        from repro.core.forces import ldc_forces

        result.forces = ldc_forces(config, result)
    return result


def _scf_pass(
    grid: RealSpaceGrid,
    states: list[DomainState],
    rho: np.ndarray,
    v_loc_global: np.ndarray,
    e_ewald: float,
    n_electrons: float,
    xi: float | None,
    mg: MultigridPoisson | None,
    vh_warm: np.ndarray | None,
    opts: LDCOptions,
    ins: Instrumentation | None = None,
    executor: ThreadPoolExecutor | None = None,
    san: Sanitizers | None = None,
    batch_pool: DomainScratch | None = None,
) -> tuple[float, np.ndarray, dict[str, float], float, np.ndarray, int]:
    """One global-local pass: potentials → domain solves → μ → density.

    The per-domain solves are independent; with ``executor`` set they fan
    out across threads and the results are folded back in domain-index
    order, so the assembled physics is identical to the serial path.  When
    domain batching is enabled (``opts.batch_domains`` /
    ``$REPRO_BATCH_DOMAINS``, with the all-band solver) the solves instead
    run as stacked shape-class kernels on the coordinating thread — see
    :func:`repro.core.batched.batched_domain_pass` — again folded in
    domain-index order with results matching the per-domain path.  With
    ``san`` set, the race sanitizer freezes the shared input fields over
    the fan-out (workers own only their domain) and the numerics sanitizer
    checks the potential/eigenvalue checkpoints.

    Returns (μ, assembled density, energy components, mean boundary-density
    error, Hartree potential field — the caller's Poisson warm start, and
    the summed eigensolver iterations over every domain solve).
    """
    if mg is not None:
        vh = mg.solve(rho, v0=vh_warm, tol=1e-8)
    else:
        vh = hartree_potential(grid, rho)
    _, vxc = lda_xc(rho)
    v_hxc_global = vh + vxc
    v_ks_global = v_loc_global + v_hxc_global
    if san is not None and san.numerics is not None:
        san.numerics.check("hartree_potential", vh, where="ldc.scf_pass")
        san.numerics.check("v_ks_global", v_ks_global, where="ldc.scf_pass")

    all_eigs: list[np.ndarray] = []
    all_weights: list[np.ndarray] = []
    bnd_err_total = 0.0
    n_active = 0

    active = [(idom, s) for idom, s in enumerate(states) if s.nband > 0]
    outcomes: list[tuple[EigenResult, float | None, float | None]]
    # Imported here, not at module top: repro.core.batched imports this
    # module for the shared per-domain prework/postwork helpers.
    from repro.core.batched import batched_domain_pass, batching_enabled

    if active and batching_enabled(opts):
        # Stacked shape-class solves on the coordinating thread; outcomes
        # carry dt=None so the fold below does not double-record telemetry
        # (the batched pass emits its own ldc.batched_solve spans and the
        # per-domain eigensolver counters).
        outcomes = batched_domain_pass(
            active, rho, v_hxc_global, v_ks_global, xi, opts, ins,
            pool=batch_pool,
        )
    elif executor is not None and len(active) > 1:

        def _run_one(
            item: tuple[int, DomainState],
        ) -> tuple[EigenResult, float | None, float | None]:
            # Workers never touch the shared instrumentation (its counters
            # and series are not thread-safe); they only time themselves so
            # the coordinating thread can emit the span after the join.
            t0 = time.perf_counter() if ins is not None else 0.0
            res, err = _domain_pass(
                item[1], rho, v_hxc_global, v_ks_global, xi, opts, None
            )
            dt = (time.perf_counter() - t0) if ins is not None else None
            return res, err, dt

        # executor.map preserves input order → deterministic fold below
        if san is not None and san.race is not None:
            race = san.race

            def _run_one_claimed(
                item: tuple[int, DomainState],
            ) -> tuple[EigenResult, float | None, float | None]:
                # two workers claiming one domain is a scheduling bug the
                # exclusive claim turns into an immediate RaceError
                with race.exclusive(("ldc.domain", item[0]),
                                    f"domain-{item[0]}"):
                    return _run_one(item)

            with race.guard_readonly(
                {"rho": rho, "v_hxc_global": v_hxc_global,
                 "v_ks_global": v_ks_global}
            ):
                outcomes = list(executor.map(_run_one_claimed, active))
        else:
            outcomes = list(executor.map(_run_one, active))
    else:
        outcomes = []
        for idom, state in active:
            if ins is None:
                res, err = _domain_pass(
                    state, rho, v_hxc_global, v_ks_global, xi, opts, None
                )
                outcomes.append((res, err, None))
            else:
                with ins.span(
                    "ldc.domain_solve", category="ldc", domain=idom,
                    natoms=len(state.atom_indices), nband=state.nband,
                ) as sp:
                    res, err = _domain_pass(
                        state, rho, v_hxc_global, v_ks_global, xi, opts, ins
                    )
                    # solve sizes feed the per-kernel FLOP attribution
                    # (repro.observability.costattr) at report time
                    sp.attrs.update(
                        npw=state.basis.npw,
                        grid_points=int(np.prod(state.domain.grid.shape)),
                        nproj=len(state.vnl.d), cg_iterations=res.iterations,
                    )
                outcomes.append((res, err, None))

    for (idom, state), (res, err, dt) in zip(active, outcomes):
        assert state.basis is not None and state.eigenvalues is not None
        if ins is not None and dt is not None:
            # phase-safe telemetry for the parallel path: same span name and
            # attrs as the serial path, recorded post-join with the worker's
            # measured duration, plus the eigensolver counters the worker
            # deliberately skipped
            ins.tracer.record_complete(
                "ldc.domain_solve", dt, category="ldc", domain=idom,
                natoms=len(state.atom_indices), nband=state.nband,
                npw=state.basis.npw,
                grid_points=int(np.prod(state.domain.grid.shape)),
                nproj=len(state.vnl.d), cg_iterations=res.iterations,
            )
            record_solve(ins, opts.eigensolver, state.basis.npw, res)
        all_eigs.append(state.eigenvalues)
        all_weights.append(state.band_weights)
        if err is not None:
            bnd_err_total += err
            n_active += 1
            if ins is not None:
                ins.series("ldc.boundary_error", domain=idom).append(err)

    eigs_cat = np.concatenate(all_eigs)
    w_cat = np.concatenate(all_weights)
    mu = find_chemical_potential(eigs_cat, n_electrons, opts.kt, weights=w_cat)
    if san is not None and san.numerics is not None:
        san.numerics.check("eigenvalues", eigs_cat, where="ldc.scf_pass")
        san.numerics.check("mu", mu, where="ldc.scf_pass")

    if ins is not None:
        t_asm = ins.tracer.now()
    rho_new = np.zeros(grid.shape)
    rho_locals: list[np.ndarray] = []
    vbcs: list[np.ndarray] = []
    sup_list: list[np.ndarray] = []
    for state in states:
        if state.nband == 0 or state.band_densities is None:
            continue
        occs = fermi_occupations(state.eigenvalues, mu, opts.kt)
        state.occupations = occs
        rho_a = np.einsum("n,nijk->ijk", occs, state.band_densities)
        state.rho_local = rho_a
        state.band_densities = None  # release the per-band fields
        ix, iy, iz = state.domain.grid_indices
        # Fancy-index += (not np.add.at): each per-axis wrapped index array
        # is duplicate-free — a domain's extent never exceeds the grid shape
        # (DomainDecomposition clamps buffer_points to (shape - core) // 2) —
        # so the buffered read-modify-write is exact and skips np.add.at's
        # slow unbuffered element-wise path.
        rho_new[np.ix_(ix, iy, iz)] += state.support * rho_a
        rho_locals.append(rho_a)
        if state.vbc is not None:
            vbcs.append(state.vbc)
        sup_list.append(state.support)
    if ins is not None:
        ins.tracer.record_complete(
            "ldc.assemble_density", ins.tracer.now() - t_asm,
            category="ldc", ndomains=len(rho_locals),
        )

    band_e = dc_band_energy(
        [s.eigenvalues for s in states if s.nband],
        [s.occupations for s in states if s.nband],
        [s.band_weights for s in states if s.nband],
    )
    vbc_corr = boundary_energy_correction(sup_list, vbcs, rho_locals, grid.dv)
    components = dc_total_energy(
        grid, rho, vh, vxc, band_e, vbc_corr, e_ewald, eigs_cat, w_cat, mu, opts.kt
    )
    mean_err = bnd_err_total / n_active if n_active else 0.0
    eig_pass = sum(int(res.iterations) for res, _, _ in outcomes)
    return mu, rho_new, components, mean_err, vh, eig_pass
