"""The density-adaptive boundary potential of LDC-DFT (Eq. 2-3).

The exact linear-response boundary correction

    v_bc(r) = ∫ dr' (∂v/∂ρ(r')) (ρ_α(r') - ρ(r'))

is localized via the quantum-nearsightedness principle (Prodan–Kohn) to

    v_bc(r) ≅ (ρ_α(r) - ρ(r)) / ξ,

with ξ an adjustable parameter the paper fits to 0.333 a.u.  ρ_α is the
domain's own density from the *previous* SCF iteration and ρ the global
density restricted to the domain, so the first iteration has v_bc = 0 and
the correction vanishes as the calculation self-consists — exactly the
paper's scheme.  Classic DC-DFT is recovered by ``xi = None`` (no
correction).
"""

from __future__ import annotations

import numpy as np

#: The paper's fitted value of ξ (atomic units).
PAPER_XI = 0.333


def boundary_potential(
    rho_domain_prev: np.ndarray | None,
    rho_global_restricted: np.ndarray,
    xi: float | None = PAPER_XI,
    clip: float = 2.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The density-adaptive boundary potential on a domain grid.

    Parameters
    ----------
    rho_domain_prev:
        Domain density from the previous SCF iteration (``None`` on the
        first iteration → zero potential).
    rho_global_restricted:
        Global density restricted to the domain's extended region.
    xi:
        Response parameter ξ; ``None`` disables the correction (classic DC).
    clip:
        Safety bound (Hartree) on |v_bc|, guarding the first few unconverged
        iterations against overshooting.
    out:
        Optional destination array, written in place and returned — lets the
        LDC hot path reuse a per-domain scratch buffer instead of allocating
        every SCF pass.  Same values either way.
    """
    if xi is None or rho_domain_prev is None:
        if out is not None:
            out[...] = 0.0
            return out
        return np.zeros_like(rho_global_restricted)
    if xi <= 0:
        raise ValueError("xi must be positive")
    if out is not None:
        np.subtract(rho_domain_prev, rho_global_restricted, out=out)
        out /= xi
        return np.clip(out, -clip, clip, out=out)
    v = (rho_domain_prev - rho_global_restricted) / xi
    return np.clip(v, -clip, clip)


def boundary_error_norm(
    rho_domain: np.ndarray, rho_global_restricted: np.ndarray, dv: float
) -> float:
    """∫ |ρ_α - ρ| dr over the domain — the Δρ that Eq. 1's buffer bound
    controls; used by the convergence diagnostics and tests."""
    return float(np.sum(np.abs(rho_domain - rho_global_restricted)) * dv)
