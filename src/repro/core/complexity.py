"""The complexity and error model of Sec. 3.1 — the analysis that makes
divide-and-conquer "lean".

For a cubic system of side L tiled by cubic cores of side l with buffers of
thickness b, and a per-domain solver of complexity (domain size)^ν in volume:

    T(l) = (L/l)³ (l + 2b)^{3ν}                      (total cost)
    l*   = argmin_l T(l) = 2b/(ν - 1)                (optimal core size)
    b    = λ ln( max|Δρ| / (ε ⟨ρ⟩) )                 (buffer for tolerance, Eq. 1)

and the LDC↔DC speedup at equal accuracy follows from the buffer reduction:

    S = [(l + 2 b_dc) / (l + 2 b_ldc)]^{3ν}.

The O(N) ↔ O(N³) crossover is where T(l*) equals the monolithic cost L^{3ν}.
"""

from __future__ import annotations

import numpy as np


def total_cost(l: float, system_length: float, buffer_: float, nu: float = 2.0) -> float:
    """T(l) = (L/l)³ (l+2b)^{3ν}; arbitrary units (prefactor 1)."""
    if l <= 0 or system_length <= 0:
        raise ValueError("lengths must be positive")
    return (system_length / l) ** 3 * (l + 2.0 * buffer_) ** (3.0 * nu)


def optimal_core_length(buffer_: float, nu: float = 2.0) -> float:
    """l* = 2b/(ν-1): the paper's optimum (l* = 2b for ν = 2, l* = b for ν = 3)."""
    if nu <= 1.0:
        raise ValueError("nu must exceed 1 for a finite optimum")
    return 2.0 * buffer_ / (nu - 1.0)


def buffer_for_tolerance(
    decay_length: float,
    max_delta_rho: float,
    epsilon: float,
    mean_rho: float = 1.0,
) -> float:
    """Eq. 1: b = λ ln(max|Δρ| / (ε ⟨ρ⟩))."""
    if decay_length <= 0 or epsilon <= 0 or max_delta_rho <= 0 or mean_rho <= 0:
        raise ValueError("all arguments must be positive")
    arg = max_delta_rho / (epsilon * mean_rho)
    return decay_length * np.log(arg) if arg > 1.0 else 0.0


def speedup_factor(
    core_length: float, buffer_dc: float, buffer_ldc: float, nu: float = 2.0
) -> float:
    """LDC-over-DC speedup from buffer reduction at equal accuracy.

    Sec. 5.2 example: l = 11.416, b_dc = 4.73 (the paper quotes 4.72 in the
    speedup formula), b_ldc = 3.57 → 2.03 (ν = 2) or 2.89 (ν = 3).
    """
    if buffer_ldc < 0 or buffer_dc < 0:
        raise ValueError("buffers must be nonnegative")
    return float(
        ((core_length + 2 * buffer_dc) / (core_length + 2 * buffer_ldc)) ** (3 * nu)
    )


def crossover_length(buffer_: float, nu: float = 2.0) -> float:
    """System size L at which T(l*) = L^{3ν} (the O(N)↔O(N³) crossover).

    For ν = 2 this reduces to the paper's L = 8b.
    """
    l_star = optimal_core_length(buffer_, nu)
    # (L/l*)³ (l*+2b)^{3ν} = L^{3ν}  ⇒  L^{3ν-3} = (l*+2b)^{3ν} / l*³
    rhs = (l_star + 2 * buffer_) ** (3 * nu) / l_star**3
    return float(rhs ** (1.0 / (3 * nu - 3)))


def crossover_natoms(
    buffer_: float, number_density: float, nu: float = 2.0
) -> float:
    """Atom count at the crossover, given atoms per Bohr³."""
    if number_density <= 0:
        raise ValueError("number density must be positive")
    return number_density * crossover_length(buffer_, nu) ** 3


def fit_decay_constant(
    buffers: np.ndarray, errors: np.ndarray
) -> tuple[float, float]:
    """Fit |error| ≈ A e^{-b/λ}: returns (λ, A).

    This is the exponential decay of the boundary-condition error with
    buffer thickness predicted by quantum nearsightedness — Fig. 7's trend.
    Zero/negative errors are dropped (converged points carry no slope
    information).
    """
    buffers = np.asarray(buffers, dtype=float)
    errors = np.abs(np.asarray(errors, dtype=float))
    keep = errors > 0
    if keep.sum() < 2:
        raise ValueError("need at least two nonzero errors to fit a decay")
    b = buffers[keep]
    loge = np.log(errors[keep])
    slope, intercept = np.polyfit(b, loge, 1)
    if slope >= 0:
        raise ValueError("errors do not decay with buffer thickness")
    return float(-1.0 / slope), float(np.exp(intercept))
