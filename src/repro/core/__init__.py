"""LDC-DFT: the paper's primary contribution (Sec. 3).

* :mod:`repro.core.domains` — the divide-and-conquer spatial decomposition:
  non-overlapping cores tiling the cell, each extended by a buffer (Fig. 1).
* :mod:`repro.core.support` — partition-of-unity domain support functions
  ``p_α`` with ``Σ_α p_α(r) = 1``.
* :mod:`repro.core.boundary` — the density-adaptive boundary potential
  ``v_bc = (ρ_α - ρ)/ξ`` (Eq. 2), the "lean" ingredient of LDC-DFT.
* :mod:`repro.core.ldc` — the global-local SCF driver (Fig. 2) with
  ``mode="dc"`` (classic divide-and-conquer) and ``mode="ldc"`` switches.
* :mod:`repro.core.workspace` — persistent per-trajectory cache of the
  MD-step-invariant structures plus orbital warm starts (QMD hot path).
* :mod:`repro.core.energy` — divide-and-conquer total-energy assembly.
* :mod:`repro.core.forces` — per-domain Hellmann–Feynman forces.
* :mod:`repro.core.complexity` — the cost/error model of Sec. 3.1 (Eq. 1,
  optimal core size ``l* = 2b/(ν-1)``, O(N)↔O(N³) crossover, LDC/DC speedup).
"""

from repro.core.domains import Domain, DomainDecomposition
from repro.core.ldc import LDCOptions, LDCResult, run_ldc
from repro.core.workspace import LDCWorkspace
from repro.core.parallel_ldc import ParallelLDCResult, run_parallel_ldc
from repro.core.dcr import FrontierResult, density_of_states, recombine_frontier
from repro.core.advisor import (
    BufferController,
    BufferControllerOptions,
    BufferDecision,
    ParameterRecommendation,
    recommend_parameters,
)
from repro.core.complexity import (
    buffer_for_tolerance,
    crossover_length,
    crossover_natoms,
    fit_decay_constant,
    optimal_core_length,
    speedup_factor,
    total_cost,
)

__all__ = [
    "Domain",
    "DomainDecomposition",
    "LDCOptions",
    "LDCResult",
    "LDCWorkspace",
    "run_ldc",
    "ParallelLDCResult",
    "run_parallel_ldc",
    "FrontierResult",
    "recombine_frontier",
    "density_of_states",
    "BufferController",
    "BufferControllerOptions",
    "BufferDecision",
    "ParameterRecommendation",
    "recommend_parameters",
    "buffer_for_tolerance",
    "crossover_length",
    "crossover_natoms",
    "fit_decay_constant",
    "optimal_core_length",
    "speedup_factor",
    "total_cost",
]
