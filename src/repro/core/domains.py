"""The divide-and-conquer spatial decomposition (Fig. 1).

The periodic cell Ω is tiled by ``nd0 × nd1 × nd2`` non-overlapping cubic
*cores* Ω₀α; each domain Ωα extends its core by a buffer of thickness ``b``
on every side (periodically wrapped).  Domains therefore overlap: a grid
point in a buffer belongs to several domains, but to exactly one core.

The decomposition is grid-aligned: the global real-space grid shape must be
divisible by the domain counts, so every domain maps to a contiguous
(wrapped) block of global grid points and field restriction / assembly are
pure index operations (``np.take`` with wrapped indices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft.grid import RealSpaceGrid
from repro.systems.configuration import Configuration


@dataclass
class Domain:
    """One DC domain: core block + buffer, with global-grid index maps.

    Attributes
    ----------
    index:
        ``(ix, iy, iz)`` position in the domain lattice.
    core_start, core_points:
        Per-axis start index and extent of the core on the global grid.
    buffer_points:
        Per-axis buffer extent in grid points.
    grid_indices:
        Per-axis arrays of wrapped global indices of the extended region.
    grid:
        A :class:`RealSpaceGrid` for the extended region (its own small
        periodic cell — this *is* the artificial boundary condition).
    core_mask:
        Boolean array on the domain grid: True on core points.
    origin:
        Cartesian position (global frame) of the domain grid's first point.
    """

    index: tuple[int, int, int]
    core_start: np.ndarray
    core_points: np.ndarray
    buffer_points: np.ndarray
    grid_indices: tuple[np.ndarray, np.ndarray, np.ndarray]
    grid: RealSpaceGrid
    core_mask: np.ndarray
    origin: np.ndarray

    @property
    def extent_points(self) -> np.ndarray:
        return self.core_points + 2 * self.buffer_points

    def extract(self, global_field: np.ndarray) -> np.ndarray:
        """Restrict a global grid field to this domain's extended region."""
        ix, iy, iz = self.grid_indices
        return global_field[np.ix_(ix, iy, iz)]

    def core_extract(self, global_field: np.ndarray) -> np.ndarray:
        """Restrict a global field to this domain's *core* block only."""
        sub = self.extract(global_field)
        b = self.buffer_points
        return sub[
            b[0] : b[0] + self.core_points[0],
            b[1] : b[1] + self.core_points[1],
            b[2] : b[2] + self.core_points[2],
        ]

    def scatter_add_core(
        self, global_field: np.ndarray, domain_field: np.ndarray
    ) -> None:
        """Add the core part of a domain field into ``global_field`` in place.

        Because cores are non-overlapping and tile the grid, plain assignment
        semantics hold (each global point receives exactly one contribution
        when the sharp partition of unity is used).
        """
        b = self.buffer_points
        core = domain_field[
            b[0] : b[0] + self.core_points[0],
            b[1] : b[1] + self.core_points[1],
            b[2] : b[2] + self.core_points[2],
        ]
        ix, iy, iz = self.grid_indices
        cx = ix[b[0] : b[0] + self.core_points[0]]
        cy = iy[b[1] : b[1] + self.core_points[1]]
        cz = iz[b[2] : b[2] + self.core_points[2]]
        global_field[np.ix_(cx, cy, cz)] += core


class DomainDecomposition:
    """Builds and owns all :class:`Domain` objects for a cell + grid.

    Parameters
    ----------
    grid:
        The global real-space grid; its shape must be divisible by
        ``domain_counts``.
    domain_counts:
        Number of cores per axis ``(nd0, nd1, nd2)``.
    buffer_thickness:
        Requested buffer ``b`` in Bohr; realized as the nearest whole number
        of grid points per axis (see :attr:`buffer_actual`).  The buffer is
        clamped so the domain extent never exceeds the cell.
    """

    def __init__(
        self,
        grid: RealSpaceGrid,
        domain_counts: tuple[int, int, int],
        buffer_thickness: float,
    ) -> None:
        self.grid = grid
        self.domain_counts = tuple(int(d) for d in domain_counts)
        if any(d < 1 for d in self.domain_counts):
            raise ValueError(f"domain counts must be >= 1, got {domain_counts}")
        if buffer_thickness < 0:
            raise ValueError("buffer thickness must be >= 0")
        shape = np.array(grid.shape)
        counts = np.array(self.domain_counts)
        if np.any(shape % counts):
            raise ValueError(
                f"grid shape {grid.shape} not divisible by domains {domain_counts}"
            )
        self.core_points = shape // counts
        spacing = grid.spacing
        nb = np.rint(buffer_thickness / spacing).astype(int)
        # Clamp: extended region must fit within the periodic cell.
        max_nb = (shape - self.core_points) // 2
        self.buffer_points = np.minimum(nb, max_nb)
        #: realized buffer thickness per axis (Bohr)
        self.buffer_actual = self.buffer_points * spacing
        self.domains: list[Domain] = []
        for ix in range(counts[0]):
            for iy in range(counts[1]):
                for iz in range(counts[2]):
                    self.domains.append(self._build_domain((ix, iy, iz)))

    # -- construction -----------------------------------------------------------

    def _build_domain(self, index: tuple[int, int, int]) -> Domain:
        shape = np.array(self.grid.shape)
        start = np.array(index) * self.core_points
        nb = self.buffer_points
        idx = tuple(
            np.mod(np.arange(start[a] - nb[a], start[a] + self.core_points[a] + nb[a]),
                   shape[a])
            for a in range(3)
        )
        extent_pts = self.core_points + 2 * nb
        lengths = extent_pts * self.grid.spacing
        dgrid = RealSpaceGrid(lengths, extent_pts)
        mask = np.zeros(tuple(extent_pts), dtype=bool)
        mask[
            nb[0] : nb[0] + self.core_points[0],
            nb[1] : nb[1] + self.core_points[1],
            nb[2] : nb[2] + self.core_points[2],
        ] = True
        origin = (start - nb) * self.grid.spacing
        return Domain(
            index=index,
            core_start=start.copy(),
            core_points=self.core_points.copy(),
            buffer_points=nb.copy(),
            grid_indices=idx,
            grid=dgrid,
            core_mask=mask,
            origin=origin,
        )

    # -- queries -----------------------------------------------------------------

    @property
    def ndomains(self) -> int:
        return len(self.domains)

    def core_lengths(self) -> np.ndarray:
        """Core edge lengths l per axis (Bohr)."""
        return self.core_points * self.grid.spacing

    def assemble_from_cores(self, domain_fields: list[np.ndarray]) -> np.ndarray:
        """Global field from per-domain fields using the sharp partition of
        unity (each core point taken from its owning domain)."""
        out = np.zeros(self.grid.shape)
        for dom, field in zip(self.domains, domain_fields):
            dom.scatter_add_core(out, field)
        return out

    def atoms_in_domain(
        self, config: Configuration, domain: Domain
    ) -> tuple[np.ndarray, Configuration]:
        """Atoms whose wrapped position lies in the domain's extended region.

        Returns ``(global_indices, local_config)`` where the local
        configuration expresses positions in the domain frame (origin at the
        domain grid's first point) with the domain's periodic cell.
        """
        cell = self.grid.lengths
        extent = domain.extent_points * self.grid.spacing
        rel = np.mod(config.positions - domain.origin, cell)
        inside = np.all(rel < extent - 1e-12, axis=1)
        indices = np.flatnonzero(inside)
        local = Configuration(
            [config.symbols[i] for i in indices],
            rel[indices],
            extent,
        ) if len(indices) else Configuration([], np.zeros((0, 3)), extent)
        return indices, local

    def owner_domain(self, position: np.ndarray) -> int:
        """Index (into ``self.domains``) of the domain whose *core* contains
        the wrapped position."""
        frac = np.mod(np.asarray(position, dtype=float), self.grid.lengths)
        pt = np.floor(frac / self.grid.spacing).astype(int)
        pt = np.minimum(pt, np.array(self.grid.shape) - 1)
        cell_idx = pt // self.core_points
        counts = np.array(self.domain_counts)
        cell_idx = np.minimum(cell_idx, counts - 1)
        return int(
            cell_idx[0] * counts[1] * counts[2] + cell_idx[1] * counts[2] + cell_idx[2]
        )
