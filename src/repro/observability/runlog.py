"""The run ledger: durable per-run identity, manifests, and cross-run drift.

Single-run telemetry (trace/metrics/health/comm artifacts) answers "what
happened in *this* invocation"; the paper's scaling and time-to-solution
claims (Figs. 5/6, Sec. 5) are statements about *series* of runs.  This
module adds the longitudinal layer:

* **Run ledger** — :class:`RunRecorder` gives every driver/bench invocation
  a run id and a directory ``<telemetry>/runs/<run_id>/`` holding the
  telemetry artifacts plus a schema'd ``manifest.json``: git SHA, options
  hashes, backend name, environment flags, wall-clock, headline metrics,
  and a content hash of every artifact (so a ledger entry is verifiable
  long after the run).
* **Flight recorder** — a :class:`~repro.observability.flightrec.
  FlightRecorder` wired to the run's telemetry bus dumps ``blackbox.jsonl``
  on health FAILs, sanitizer errors, and unhandled driver exceptions.
* **Sampling profiler** — ``RunRecorder(profile=True)`` attaches a
  :class:`~repro.observability.profiler.SamplingProfiler`; its samples land
  in ``profile.json`` and merge into the Chrome trace as pid 4.
* **Cross-run analytics** — the CLI lists/inspects/verifies runs, diffs two
  manifests metric-by-metric under
  :class:`~repro.observability.regress.FieldSpec` tolerance bands, and runs
  a direction-aware trend test over the last K runs of a component so drift
  shows up *between* baseline updates::

      python -m repro.observability.runlog list
      python -m repro.observability.runlog show <run_id>
      python -m repro.observability.runlog verify <run_id>
      python -m repro.observability.runlog diff <run_a> <run_b>
      python -m repro.observability.runlog diff --last bench:qmd_warm_start
      python -m repro.observability.runlog drift qmd.run --k 8

  Exit status: 0 = clean, 1 = drift/verification failure, 2 = usage/I-O
  error (the :mod:`~repro.observability.regress` convention).

All telemetry writers resolve their output location through
:func:`telemetry_root` (the ``REPRO_TELEMETRY_DIR`` environment variable,
default ``telemetry/``), so runs never clobber each other's ``trace.json``.

The recorder rides the :class:`~repro.observability.Instrumentation` facade
(``Instrumentation(recorder=rec)``) and inherits its zero-overhead
contract: no facade, or a facade without a recorder, executes zero runlog
code (pinned by ``benchmarks/bench_runlog_overhead.py``).
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import hashlib
import json
import os
import pathlib
import shutil
import subprocess
import sys
import time
from typing import TYPE_CHECKING, Any

from repro.observability.flightrec import BLACKBOX_NAME, FlightRecorder

if TYPE_CHECKING:
    from repro.observability.instrumentation import Instrumentation
    from repro.observability.regress import RecordSchema

#: manifest layout version — bumped when the manifest envelope changes
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
PROFILE_NAME = "profile.json"

#: environment variable naming the telemetry root directory
ENV_TELEMETRY_DIR = "REPRO_TELEMETRY_DIR"

#: environment flags recorded in every manifest (set or not)
TRACKED_ENV = (
    "REPRO_SANITIZE",
    "REPRO_BATCH_DOMAINS",
    "REPRO_BACKEND",
    ENV_TELEMETRY_DIR,
)

_STATUSES = ("running", "ok", "fail", "error")


# -- path resolution ---------------------------------------------------------


def telemetry_root(root=None) -> pathlib.Path:
    """The telemetry output directory every writer resolves through.

    Explicit ``root`` wins, then ``$REPRO_TELEMETRY_DIR``, then the
    relative default ``telemetry/``.
    """
    if root is not None:
        return pathlib.Path(root)
    env = os.environ.get(ENV_TELEMETRY_DIR, "").strip()
    return pathlib.Path(env or "telemetry")


def runs_root(root=None) -> pathlib.Path:
    """``<telemetry root>/runs`` — the ledger directory."""
    return telemetry_root(root) / "runs"


def new_run_id(component: str = "run") -> str:
    """``<utc-stamp>-<component>-<entropy>``; sorts chronologically."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    safe = "".join(
        c if c.isalnum() or c in "_.-" else "-" for c in component
    ).strip("-") or "run"
    return f"{stamp}-{safe}-{os.urandom(3).hex()}"


# -- hashing -----------------------------------------------------------------


def hash_file(path) -> str:
    """sha256 hex digest of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def options_hash(options: Any) -> str:
    """Stable short hash of an options object (dataclass, dict, or repr).

    Equal options hash equal; any field change changes the hash — the
    cheap cross-run identity for "same bench, same knobs".
    """
    payload = _canonical_options(options)
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _canonical_options(options: Any) -> Any:
    if options is None:
        return None
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        return {
            f.name: _canonical_options(getattr(options, f.name))
            for f in dataclasses.fields(options)
        }
    if isinstance(options, dict):
        return {str(k): _canonical_options(v) for k, v in options.items()}
    if isinstance(options, (list, tuple)):
        return [_canonical_options(v) for v in options]
    if isinstance(options, (str, int, float, bool)):
        return options
    return repr(options)


# -- metric flattening -------------------------------------------------------


def flatten_metrics(snapshot: dict[str, dict[str, Any]]) -> dict[str, float]:
    """Scalar view of a :meth:`MetricsRegistry.snapshot`.

    Counters/gauges keep their value; histograms contribute ``.mean`` and
    ``.count``; series contribute ``.last`` and ``.n`` — the headline
    numbers two manifests can be diffed on.
    """
    out: dict[str, float] = {}
    for key, rec in snapshot.items():
        kind = rec.get("kind")
        if kind in ("counter", "gauge"):
            if rec.get("value") is not None:
                out[key] = float(rec["value"])
        elif kind == "histogram":
            if rec.get("mean") is not None:
                out[f"{key}.mean"] = float(rec["mean"])
            out[f"{key}.count"] = float(rec.get("count", 0))
        elif kind == "series":
            values = rec.get("values") or []
            if values:
                out[f"{key}.last"] = float(values[-1])
            out[f"{key}.n"] = float(len(values))
    return out


def flatten_records(
    records: list[dict[str, Any]], schema: "RecordSchema | None" = None
) -> dict[str, float]:
    """Scalar view of a bench's ``records=`` rows for the manifest.

    Metric-style rows (``{"metric": m, "value": v}``) map directly; keyed
    tabular rows prefix each numeric field with the schema row key; unkeyed
    rows fall back to a positional prefix.
    """
    out: dict[str, float] = {}
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            continue
        if set(rec) >= {"metric", "value"} and isinstance(
            rec.get("value"), (int, float)
        ):
            out[str(rec["metric"])] = float(rec["value"])
            continue
        if schema is not None and schema.key:
            prefix = schema.row_key(rec)
        else:
            prefix = f"row{i}"
        for name, value in rec.items():
            if schema is not None and name in schema.key:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[f"{prefix}.{name}"] = float(value)
    return out


# -- provenance --------------------------------------------------------------


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _provenance() -> dict[str, Any]:
    import platform

    import numpy

    from repro import backend

    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "backend": backend.resolved_name(),
    }


# -- the recorder ------------------------------------------------------------


class RunRecorder:
    """Gives one driver/bench invocation a durable ledger entry.

    Typical use through the facade::

        rec = RunRecorder(component="qmd")
        ins = Instrumentation(health=monitor, recorder=rec)
        QMDDriver(LDCEngine(opts), timestep=5.0, instrumentation=ins).run(
            config, nsteps)
        rec.finish()        # artifacts + manifest under telemetry/runs/<id>/

    Standalone (no facade — e.g. the bench harness) works too: artifacts
    are registered with :meth:`add_artifact` and headline numbers with
    :meth:`add_metrics`; :meth:`finish` still writes a verified manifest.
    """

    def __init__(
        self,
        component: str = "run",
        root=None,
        run_id: str | None = None,
        flight: FlightRecorder | None = None,
        flight_capacity: int = 256,
        profile: bool = False,
        profile_interval: float = 0.002,
    ) -> None:
        self.component = component
        self.root = telemetry_root(root)
        self.run_id = run_id or new_run_id(component)
        self.dir = self.root / "runs" / self.run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.flight = flight or FlightRecorder(capacity=flight_capacity)
        if self.flight.dump_dir is None:
            self.flight.dump_dir = self.dir
        self.profile = profile
        self.profile_interval = profile_interval
        self.profiler = None
        self.manifest: dict[str, Any] | None = None
        self._ins: "Instrumentation | None" = None
        self._t0 = time.time()
        self._started = _utc_now()
        self._invocations: list[dict[str, Any]] = []
        self._failures: list[dict[str, Any]] = []
        self._last_exc: BaseException | None = None
        self._metrics: dict[str, float] = {}

    # -- facade wiring --------------------------------------------------------

    def attach(self, ins: "Instrumentation") -> None:
        """Wire the flight recorder (and profiler) into a facade.

        Called by ``Instrumentation(recorder=...)``; the facade guarantees
        a telemetry bus exists by then.
        """
        self._ins = ins
        self.flight.tracer = ins.tracer
        if ins.stream is not None:
            ins.stream.subscribe(self.flight)
        if self.profile and self.profiler is None:
            from repro.observability.profiler import SamplingProfiler

            self.profiler = SamplingProfiler(
                interval=self.profile_interval,
                clock=ins.tracer._clock,
                tracer=ins.tracer,
            )
            self.profiler.start()

    # -- in-flight records ----------------------------------------------------

    def record_invocation(
        self, component: str, options: Any = None, **meta: Any
    ) -> None:
        """Note one driver entry (``qmd.run``, ``ldc.run``, ...)."""
        entry: dict[str, Any] = {
            "component": component,
            "options_hash": options_hash(options),
            "time": time.time() - self._t0,
        }
        if meta:
            entry.update(_canonical_options(meta))
        self._invocations.append(entry)

    def record_failure(self, exc: BaseException) -> None:
        """Note an unhandled driver exception and dump the black box.

        Idempotent per exception object, so an engine-level capture and the
        driver-level capture of the *same* propagating error record once.
        """
        if exc is self._last_exc:
            return
        self._last_exc = exc
        entry = {"type": type(exc).__name__, "message": str(exc)}
        self._failures.append(entry)
        self.flight.dump("exception", trigger=entry)

    def add_metrics(self, metrics: dict[str, float]) -> None:
        """Merge explicit headline metrics into the manifest."""
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self._metrics[str(key)] = float(value)

    def add_artifact(self, path, name: str | None = None) -> pathlib.Path:
        """Copy an externally produced file into the run directory."""
        src = pathlib.Path(path)
        dest = self.dir / (name or src.name)
        if src.resolve() != dest.resolve():
            shutil.copy2(src, dest)
        return dest

    # -- finalization ---------------------------------------------------------

    def finish(self, status: str | None = None) -> dict[str, Any]:
        """Write artifacts + manifest; returns the manifest (idempotent)."""
        if self.manifest is not None:
            return self.manifest
        ins = self._ins
        if self.profiler is not None:
            self.profiler.stop()
            if ins is not None and self.profiler.samples:
                ins.extra_chrome_events.extend(self.profiler.chrome_events())
            with open(self.dir / PROFILE_NAME, "w") as fh:
                json.dump(self.profiler.to_dict(), fh, indent=1)
        if ins is not None:
            ins.write_artifacts(self.dir)
            self.add_metrics(flatten_metrics(ins.metrics.snapshot()))
        health = None
        if ins is not None and ins.health is not None:
            health = {
                "worst_status": ins.health.worst_status(),
                "failures": len(ins.health.failures()),
            }
        telemetry = {"published": 0, "dropped": []}
        if ins is not None and ins.stream is not None:
            telemetry = {
                "published": ins.stream.published,
                "dropped": [list(d) for d in ins.stream.dropped],
            }
        manifest: dict[str, Any] = {
            "manifest_version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "component": self.component,
            "status": _resolve_status(status, self._failures, health),
            "started": self._started,
            "finished": _utc_now(),
            "wall_seconds": time.time() - self._t0,
            "provenance": _provenance(),
            "env": {k: os.environ.get(k) for k in TRACKED_ENV},
            "invocations": self._invocations,
            "failures": self._failures,
            "health": health,
            "telemetry": telemetry,
            "metrics": dict(sorted(self._metrics.items())),
            "artifacts": {
                p.name: {
                    "path": p.name,
                    "sha256": hash_file(p),
                    "bytes": p.stat().st_size,
                }
                for p in sorted(self.dir.iterdir())
                if p.is_file() and p.name != MANIFEST_NAME
            },
        }
        problems = validate_manifest(manifest)
        if problems:  # a layout bug in this module, not a user error
            raise RuntimeError(
                "generated manifest violates its own schema:\n  "
                + "\n  ".join(problems)
            )
        with open(self.dir / MANIFEST_NAME, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        self.manifest = manifest
        return manifest


def _utc_now() -> str:
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
    )


def _resolve_status(
    explicit: str | None,
    failures: list[dict[str, Any]],
    health: dict[str, Any] | None,
) -> str:
    if explicit is not None:
        if explicit not in _STATUSES:
            raise ValueError(f"unknown run status {explicit!r}")
        return explicit
    if failures:
        return "error"
    if health is not None and health.get("worst_status") == "fail":
        return "fail"
    return "ok"


# -- manifest schema ---------------------------------------------------------


def validate_manifest(manifest: Any) -> list[str]:
    """Schema-check a manifest dict; returns human-readable problems."""
    errors: list[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not an object"]

    def need(name: str, kinds, check=None) -> None:
        if name not in manifest:
            errors.append(f"missing field {name!r}")
            return
        value = manifest[name]
        if not isinstance(value, kinds):
            errors.append(
                f"field {name!r}: expected {kinds}, got {type(value).__name__}"
            )
            return
        if check is not None:
            check(value)

    need("manifest_version", int)
    need("run_id", str)
    need("component", str)
    need(
        "status", str,
        lambda v: v in _STATUSES
        or errors.append(f"status {v!r} not one of {_STATUSES}"),
    )
    need("started", str)
    need("finished", str)
    need("wall_seconds", (int, float))
    need("provenance", dict)
    need("env", dict)
    need("invocations", list)
    need("failures", list)
    need("telemetry", dict)

    def check_metrics(metrics: dict) -> None:
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"metric {key!r}: value is not numeric")

    need("metrics", dict, check_metrics)

    def check_artifacts(artifacts: dict) -> None:
        for name, entry in artifacts.items():
            if not isinstance(entry, dict):
                errors.append(f"artifact {name!r}: entry is not an object")
                continue
            sha = entry.get("sha256")
            if not (isinstance(sha, str) and len(sha) == 64):
                errors.append(f"artifact {name!r}: bad sha256")
            if not isinstance(entry.get("path"), str):
                errors.append(f"artifact {name!r}: missing path")
            nbytes = entry.get("bytes")
            if isinstance(nbytes, bool) or not isinstance(nbytes, int):
                errors.append(f"artifact {name!r}: bad byte count")

    need("artifacts", dict, check_artifacts)
    return errors


def load_manifest(run_dir) -> dict[str, Any]:
    with open(pathlib.Path(run_dir) / MANIFEST_NAME) as fh:
        return json.load(fh)


def verify_run(run_dir) -> list[str]:
    """Validate a run's manifest and re-hash its artifacts.

    Returns problems (empty = every content hash checks out).  The
    black box is exempt from hashing only if it appeared *after* the
    manifest was written (a post-finish dump) — a hashed one must match.
    """
    run_dir = pathlib.Path(run_dir)
    try:
        manifest = load_manifest(run_dir)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable manifest: {exc}"]
    problems = validate_manifest(manifest)
    for name, entry in manifest.get("artifacts", {}).items():
        path = run_dir / entry.get("path", name)
        if not path.is_file():
            problems.append(f"artifact {name!r}: file missing")
            continue
        actual = hash_file(path)
        if actual != entry.get("sha256"):
            problems.append(
                f"artifact {name!r}: content hash mismatch "
                f"(manifest {str(entry.get('sha256'))[:12]}…, "
                f"file {actual[:12]}…)"
            )
    return problems


# -- ledger queries ----------------------------------------------------------


def list_runs(
    root=None, component: str | None = None
) -> list[dict[str, Any]]:
    """Manifests of every ledger run, oldest first (unreadable runs skipped)."""
    base = runs_root(root)
    if not base.is_dir():
        return []
    out = []
    for run_dir in sorted(base.iterdir()):
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.is_file():
            continue
        try:
            manifest = load_manifest(run_dir)
        except (OSError, json.JSONDecodeError):
            continue
        if component is not None and manifest.get("component") != component:
            continue
        out.append(manifest)
    out.sort(key=lambda m: (str(m.get("started", "")), str(m.get("run_id"))))
    return out


def find_run(run_id: str, root=None) -> pathlib.Path:
    """Resolve a run id (or unique prefix) to its directory."""
    base = runs_root(root)
    exact = base / run_id
    if (exact / MANIFEST_NAME).is_file():
        return exact
    if base.is_dir():
        matches = [
            p for p in sorted(base.iterdir())
            if p.name.startswith(run_id) and (p / MANIFEST_NAME).is_file()
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise FileNotFoundError(
                f"run id {run_id!r} is ambiguous: "
                + ", ".join(p.name for p in matches)
            )
    raise FileNotFoundError(f"no run {run_id!r} under {base}")


def ledger_bench_files(root=None) -> dict[str, pathlib.Path]:
    """Newest ``BENCH_<name>.json`` per bench across the ledger.

    The regress CLI's ``--runs`` resolution: fresh payloads come from run
    directories instead of the flat results dir.
    """
    out: dict[str, pathlib.Path] = {}
    for manifest in list_runs(root):  # oldest first → later wins
        run_dir = runs_root(root) / str(manifest.get("run_id"))
        for name in manifest.get("artifacts", {}):
            if name.startswith("BENCH_") and name.endswith(".json"):
                out[name[len("BENCH_"):-len(".json")]] = run_dir / name
    return out


# -- cross-run diff ----------------------------------------------------------

#: default tolerance band for manifest metric diffs (regress-style)
DEFAULT_REL_TOL = 0.05

_LOWER_MARKERS = (
    "time", "second", "wall", "iter", "error", "drift", "resid",
    "overhead", "dropped", "stall",
)
_HIGHER_MARKERS = ("gflops", "efficiency", "speedup", "throughput", "rate")


def direction_for(metric: str) -> str:
    """Regression direction inferred from the metric name.

    Times/iterations/errors gate on increase (``"lower"`` is better),
    throughput-style metrics on decrease, everything else both ways — the
    same semantics as :class:`~repro.observability.regress.FieldSpec`.
    """
    name = metric.lower()
    if any(marker in name for marker in _HIGHER_MARKERS):
        return "higher"
    if any(marker in name for marker in _LOWER_MARKERS):
        return "lower"
    return "both"


def diff_manifests(
    base: dict[str, Any],
    fresh: dict[str, Any],
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = 0.0,
) -> list[dict[str, Any]]:
    """Metric-by-metric diff of two manifests under FieldSpec bands.

    Returns one row per metric in either manifest: ``{metric, baseline,
    fresh, verdict, message}`` with verdict ``ok`` / ``drift`` /
    ``missing`` / ``new``.
    """
    from repro.observability.regress import FieldSpec, _violates

    rows: list[dict[str, Any]] = []
    a = base.get("metrics", {})
    b = fresh.get("metrics", {})
    for metric in sorted(set(a) | set(b)):
        if metric not in b:
            rows.append(
                {"metric": metric, "baseline": a[metric], "fresh": None,
                 "verdict": "missing", "message": "absent in fresh run"}
            )
            continue
        if metric not in a:
            rows.append(
                {"metric": metric, "baseline": None, "fresh": b[metric],
                 "verdict": "new", "message": "absent in baseline run"}
            )
            continue
        spec = FieldSpec(
            name=metric,
            direction=direction_for(metric),
            rel_tol=rel_tol,
            abs_tol=abs_tol,
        )
        reason = _violates(spec, a[metric], b[metric])
        rows.append(
            {
                "metric": metric,
                "baseline": a[metric],
                "fresh": b[metric],
                "verdict": "ok" if reason is None else "drift",
                "message": reason or "",
            }
        )
    return rows


# -- cross-run drift trend ---------------------------------------------------


def kendall_tau(values: list[float]) -> float:
    """Kendall's tau of a series against its own index ∈ [-1, 1].

    +1 = strictly increasing, -1 = strictly decreasing, ~0 = no monotonic
    trend.  Ties contribute zero.  Tiny and dependency-free — enough for a
    direction-aware drift alarm over a handful of runs.
    """
    n = len(values)
    if n < 2:
        return 0.0
    s = 0
    for i in range(n - 1):
        for j in range(i + 1, n):
            d = values[j] - values[i]
            s += (d > 0) - (d < 0)
    return s / (n * (n - 1) / 2)


def drift_check(
    manifests: list[dict[str, Any]],
    tau_threshold: float = 0.6,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = 0.0,
    min_runs: int = 3,
) -> list[dict[str, Any]]:
    """Direction-aware trend test over a run series (oldest first).

    A metric drifts when (a) its Kendall tau against run order is
    monotonic beyond ``tau_threshold`` *toward its worse direction*, and
    (b) the net first→last change exceeds the regress-style tolerance band
    — so noise near zero never alarms.  ``direction="both"`` metrics alarm
    on a strong monotonic trend either way.

    Returns one row per drifting metric: ``{metric, direction, tau, first,
    last, change}``.
    """
    series: dict[str, list[float]] = {}
    for manifest in manifests:
        for key, value in manifest.get("metrics", {}).items():
            series.setdefault(key, []).append(float(value))
    findings = []
    for metric in sorted(series):
        values = series[metric]
        if len(values) < min_runs:
            continue
        tau = kendall_tau(values)
        direction = direction_for(metric)
        band = max(abs_tol, rel_tol * abs(values[0]))
        change = values[-1] - values[0]
        if abs(change) <= band:
            continue
        worsening = (
            (direction == "lower" and tau >= tau_threshold and change > 0)
            or (direction == "higher" and tau <= -tau_threshold and change < 0)
            or (direction == "both" and abs(tau) >= tau_threshold)
        )
        if worsening:
            findings.append(
                {
                    "metric": metric,
                    "direction": direction,
                    "tau": tau,
                    "first": values[0],
                    "last": values[-1],
                    "change": change,
                    "runs": len(values),
                }
            )
    return findings


# -- CLI ---------------------------------------------------------------------


def _render_run_line(manifest: dict[str, Any]) -> str:
    metrics = manifest.get("metrics", {})
    return (
        f"{manifest.get('run_id'):<44}  {manifest.get('status'):<5}  "
        f"{manifest.get('component'):<28}  "
        f"{manifest.get('wall_seconds', 0.0):>8.2f}s  "
        f"{len(metrics):>3} metric(s)"
    )


def _cmd_list(args) -> int:
    manifests = list_runs(args.root, component=args.component)
    if not manifests:
        print(f"no runs under {runs_root(args.root)}")
        return 0
    for manifest in manifests:
        print(_render_run_line(manifest))
    print(f"{len(manifests)} run(s)")
    return 0


def _cmd_show(args) -> int:
    run_dir = find_run(args.run, root=args.root)
    manifest = load_manifest(run_dir)
    print(json.dumps(manifest, indent=1, sort_keys=True))
    dropped = manifest.get("telemetry", {}).get("dropped") or []
    if dropped:
        print(
            f"warning: {len(dropped)} telemetry subscriber(s) dropped "
            "mid-run (events after the drop are missing):",
            file=sys.stderr,
        )
        for sub, err in dropped:
            print(f"  {sub}: {err}", file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    run_dir = find_run(args.run, root=args.root)
    problems = verify_run(run_dir)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    manifest = load_manifest(run_dir)
    print(
        f"ok: {len(manifest.get('artifacts', {}))} artifact hash(es) verify "
        f"for {manifest.get('run_id')}"
    )
    return 0


def _resolve_diff_pair(args) -> tuple[dict[str, Any], dict[str, Any]]:
    if args.last is not None:
        manifests = list_runs(args.root, component=args.last)
        if len(manifests) < 2:
            raise FileNotFoundError(
                f"need at least 2 ledger runs of component {args.last!r} "
                f"to diff (found {len(manifests)})"
            )
        return manifests[-2], manifests[-1]
    if not (args.run_a and args.run_b):
        raise FileNotFoundError(
            "diff needs two run ids (or --last COMPONENT)"
        )
    return (
        load_manifest(find_run(args.run_a, root=args.root)),
        load_manifest(find_run(args.run_b, root=args.root)),
    )


def _cmd_diff(args) -> int:
    base, fresh = _resolve_diff_pair(args)
    rows = diff_manifests(
        base, fresh, rel_tol=args.rel_tol, abs_tol=args.abs_tol
    )
    drifted = 0
    for row in rows:
        if row["verdict"] == "ok" and not args.verbose:
            continue
        mark = {"ok": "ok   ", "drift": "DRIFT", "missing": "MISS ",
                "new": "NEW  "}[row["verdict"]]
        detail = f" ({row['message']})" if row["message"] else ""
        print(
            f"{mark} {row['metric']}: {row['baseline']!r} -> "
            f"{row['fresh']!r}{detail}"
        )
        if row["verdict"] == "drift":
            drifted += 1
    print(
        f"diff {base.get('run_id')} -> {fresh.get('run_id')}: "
        f"{len(rows)} metric(s), {drifted} outside band"
    )
    return 1 if drifted else 0


def _cmd_drift(args) -> int:
    manifests = list_runs(args.root, component=args.component)
    if args.k:
        manifests = manifests[-args.k:]
    if len(manifests) < args.min_runs:
        print(
            f"not enough ledger runs of {args.component!r} for a trend "
            f"({len(manifests)} < {args.min_runs}); no verdict"
        )
        return 0
    findings = drift_check(
        manifests,
        tau_threshold=args.tau,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        min_runs=args.min_runs,
    )
    for f in findings:
        print(
            f"DRIFT {f['metric']}: {f['first']:.6g} -> {f['last']:.6g} "
            f"over {f['runs']} runs (tau {f['tau']:+.2f}, "
            f"{f['direction']} is better)"
        )
    print(
        f"drift: {len(manifests)} run(s) of {args.component!r} examined, "
        f"{len(findings)} drifting metric(s)"
    )
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.runlog",
        description="Inspect, verify, diff, and trend the run ledger "
        "(telemetry/runs/).",
    )
    parser.add_argument(
        "--root", default=None,
        help="telemetry root (default: $REPRO_TELEMETRY_DIR or telemetry/)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list ledger runs")
    p_list.add_argument("--component", default=None)
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="print one run's manifest")
    p_show.add_argument("run")
    p_show.set_defaults(func=_cmd_show)

    p_verify = sub.add_parser(
        "verify", help="re-hash a run's artifacts against its manifest"
    )
    p_verify.add_argument("run")
    p_verify.set_defaults(func=_cmd_verify)

    p_diff = sub.add_parser(
        "diff", help="metric-by-metric diff of two runs under tolerance bands"
    )
    p_diff.add_argument("run_a", nargs="?")
    p_diff.add_argument("run_b", nargs="?")
    p_diff.add_argument(
        "--last", metavar="COMPONENT", default=None,
        help="diff the two most recent runs of COMPONENT",
    )
    p_diff.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL)
    p_diff.add_argument("--abs-tol", type=float, default=0.0)
    p_diff.add_argument(
        "--verbose", action="store_true", help="also print in-band metrics"
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_drift = sub.add_parser(
        "drift", help="direction-aware trend test over the last K runs"
    )
    p_drift.add_argument("component")
    p_drift.add_argument("--k", type=int, default=8)
    p_drift.add_argument("--tau", type=float, default=0.6)
    p_drift.add_argument("--min-runs", type=int, default=3)
    p_drift.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL)
    p_drift.add_argument("--abs-tol", type=float, default=0.0)
    p_drift.set_defaults(func=_cmd_drift)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# re-exported for API symmetry with the other observability modules
__all__ = [
    "BLACKBOX_NAME",
    "FlightRecorder",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "PROFILE_NAME",
    "RunRecorder",
    "diff_manifests",
    "direction_for",
    "drift_check",
    "flatten_metrics",
    "flatten_records",
    "find_run",
    "hash_file",
    "kendall_tau",
    "ledger_bench_files",
    "list_runs",
    "load_manifest",
    "new_run_id",
    "options_hash",
    "runs_root",
    "telemetry_root",
    "validate_manifest",
    "verify_run",
]


if __name__ == "__main__":
    raise SystemExit(main())
