"""Physics health monitors: the watchdog layer over the telemetry stack.

The paper validates LDC-DFT by watching *physical invariants* — total-energy
conservation to ~10⁻⁵ a.u./fs over 10⁴ QMD steps (Sec. 5.5), the
partition-of-unity identity Σ_α p_α(r) = 1 behind Eq. (b) of Fig. 2, and
charge conservation ∫ρ dr = N_e.  This module turns those from offline
analyses into *online* checks that run while a simulation is in flight:

* :class:`Invariant` — one pluggable check.  Each invariant subscribes to a
  named *channel* (``"qmd.step"``, ``"scf.residual"``, ...) and receives the
  samples drivers publish on it; it answers with a :class:`HealthRecord`
  whose status is OK / WARN / FAIL against its configured thresholds.
* :class:`HealthMonitor` — the dispatcher.  Drivers publish via
  :meth:`HealthMonitor.observe`; the monitor fans samples out to the
  invariants on that channel, stores every non-OK (and optionally OK)
  record, forwards WARN/FAIL to the configured *alert sinks*, and can merge
  the resulting health timeline into the Chrome trace as instant events.
* Alert sinks — :class:`LogAlertSink` (stdlib logging),
  :class:`CollectingAlertSink` (in-memory list, for tests/dashboards) and
  :class:`RaiseOnFailSink` (turn a FAIL into a :class:`HealthError`, the
  "stop the production run before it wastes the allocation" mode).

Thresholds live in :class:`HealthThresholds` — one config object, not
numeric literals sprinkled at call sites (enforced by analysis rule RP006).

The monitor rides on the :class:`~repro.observability.Instrumentation`
facade (``Instrumentation(health=monitor)``); the drivers' zero-overhead
contract is preserved — with no facade, or a facade without a monitor, no
health code executes at all (pinned by ``tests/test_health.py``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol

from repro.util.timer import WallClock

#: status levels, ordered by severity
STATUS_OK = "ok"
STATUS_WARN = "warn"
STATUS_FAIL = "fail"

_SEVERITY = {STATUS_OK: 0, STATUS_WARN: 1, STATUS_FAIL: 2}

#: pid used for health instant events in merged Chrome traces (real spans
#: are pid 1, simulated ranks pid 2)
HEALTH_TRACE_PID = 3


class HealthError(RuntimeError):
    """Raised by :class:`RaiseOnFailSink` when an invariant FAILs."""

    def __init__(self, record: "HealthRecord") -> None:
        super().__init__(record.format())
        self.record = record


@dataclass(frozen=True)
class HealthRecord:
    """One invariant evaluation."""

    invariant: str
    status: str
    value: float
    threshold: float | None
    message: str
    time: float = 0.0
    context: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def format(self) -> str:
        thr = "" if self.threshold is None else f" (threshold {self.threshold:.3g})"
        return (
            f"[{self.status.upper()}] {self.invariant}: {self.message} "
            f"— value {self.value:.6g}{thr}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "status": self.status,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
            "time": self.time,
            "context": dict(self.context),
        }


@dataclass
class HealthThresholds:
    """All WARN/FAIL bands in one config object.

    Defaults are sized for the package's toy workloads (loose SCF
    tolerances, few-atom systems); production runs tighten them toward the
    paper's 10⁻⁵ a.u./fs figure by constructing a custom instance.
    """

    #: NVE total-energy drift, a.u. per fs per atom (paper Sec. 5.5).
    #: Sized for the package's toy engines: nominal trajectories sit at
    #: 1e-6 … 8e-4 (the LDC engine's loose warm-started solves dominate),
    #: while a 10x-too-large timestep lands around 4e-2 (measured in
    #: tests/test_health.py).  Production-grade runs tighten this toward
    #: the paper's 1e-5 a.u./fs via a custom :class:`HealthThresholds`.
    energy_drift_warn: float = 2e-3
    energy_drift_fail: float = 2e-2
    #: relative charge-conservation error |∫ρ − N_e| / N_e
    charge_warn: float = 1e-8
    charge_fail: float = 1e-4
    #: partition-of-unity residual max_r |Σ_α p_α(r) − 1|
    pou_warn: float = 1e-10
    pou_fail: float = 1e-6
    #: SCF stall: no new best residual within this many iterations
    scf_stall_window: int = 8
    #: SCF divergence: residual grows past ``factor ×`` the best seen
    scf_divergence_factor: float = 10.0
    #: thermostat window: fractional |T − T_target| / T_target
    temperature_warn: float = 0.5
    temperature_fail: float = 2.0
    #: steps to let the thermostat settle before the window is enforced
    temperature_settle_steps: int = 10
    #: measured-vs-modeled phase-time drift |t_meas − t_model| / t_model.
    #: The WARN band absorbs the LPT scheduler's residual imbalance on
    #: unequal domains; FAIL marks a genuinely skewed assignment (e.g. a
    #: whole group's work landing on one rank group).
    model_divergence_warn: float = 0.5
    model_divergence_fail: float = 1.0


class Invariant:
    """Base class: one named physics check on one sample channel.

    Subclasses set :attr:`name` and :attr:`channel` and implement
    :meth:`update`, returning a :class:`HealthRecord` (or ``None`` when the
    sample does not apply — e.g. energy drift during a thermostatted run).
    """

    name = "invariant"
    channel = ""

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear cross-sample state (called between independent runs)."""

    def _record(
        self,
        status: str,
        value: float,
        threshold: float | None,
        message: str,
        **context: Any,
    ) -> HealthRecord:
        return HealthRecord(
            invariant=self.name,
            status=status,
            value=float(value),
            threshold=threshold,
            message=message,
            context=context,
        )

    def _banded(
        self, value: float, warn: float, fail: float, message: str, **context: Any
    ) -> HealthRecord:
        """Standard two-threshold grading: value ≥ fail > warn."""
        if value >= fail:
            return self._record(STATUS_FAIL, value, fail, message, **context)
        if value >= warn:
            return self._record(STATUS_WARN, value, warn, message, **context)
        return self._record(STATUS_OK, value, warn, message, **context)


class EnergyDriftInvariant(Invariant):
    """NVE total-energy drift per fs per atom (paper Sec. 5.5).

    The first sample on the channel pins the reference energy; every later
    sample is graded on |E − E₀| / (Δt_fs · N_atoms).  Samples from
    thermostatted (non-NVE) runs are ignored — energy is not conserved
    there by construction.
    """

    name = "energy_drift"
    channel = "qmd.step"

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()
        self._e0: float | None = None
        self._t0_fs = 0.0

    def reset(self) -> None:
        self._e0 = None
        self._t0_fs = 0.0

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        if not sample.get("nve", True):
            return None
        energy = sample["total_energy"]
        elapsed_fs = sample["elapsed_fs"]
        natoms = max(int(sample.get("natoms", 1)), 1)
        if self._e0 is None:
            self._e0 = energy
            self._t0_fs = elapsed_fs
            return self._record(
                STATUS_OK, 0.0, self.thresholds.energy_drift_warn,
                "reference energy pinned", step=sample.get("step"),
            )
        dt = elapsed_fs - self._t0_fs
        if dt <= 0.0:
            return None
        drift = abs(energy - self._e0) / (dt * natoms)
        return self._banded(
            drift,
            self.thresholds.energy_drift_warn,
            self.thresholds.energy_drift_fail,
            "NVE total-energy drift [a.u./fs/atom]",
            step=sample.get("step"), elapsed_fs=elapsed_fs,
        )


class TemperatureWindowInvariant(Invariant):
    """Thermostatted runs must hold T within a window of the target."""

    name = "temperature_window"
    channel = "qmd.step"

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()
        self._steps_seen = 0

    def reset(self) -> None:
        self._steps_seen = 0

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        target = sample.get("target_kelvin")
        if not target:
            return None
        self._steps_seen += 1
        if self._steps_seen <= self.thresholds.temperature_settle_steps:
            return None
        deviation = abs(sample["temperature"] - target) / target
        return self._banded(
            deviation,
            self.thresholds.temperature_warn,
            self.thresholds.temperature_fail,
            f"fractional deviation from thermostat target {target:g} K",
            step=sample.get("step"), temperature=sample["temperature"],
        )


class ChargeConservationInvariant(Invariant):
    """The assembled density must integrate to the electron count."""

    name = "charge_conservation"
    channel = "scf.density"

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        n_electrons = sample["n_electrons"]
        if n_electrons <= 0:
            return None
        err = abs(sample["total_charge"] - n_electrons) / n_electrons
        return self._banded(
            err,
            self.thresholds.charge_warn,
            self.thresholds.charge_fail,
            "relative charge error |∫ρ − N_e| / N_e",
            engine=sample.get("engine"),
        )


class PartitionOfUnityInvariant(Invariant):
    """Σ_α p_α(r) = 1 everywhere (Eq. b of Fig. 2's density assembly)."""

    name = "partition_of_unity"
    channel = "ldc.partition"

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        return self._banded(
            sample["max_residual"],
            self.thresholds.pou_warn,
            self.thresholds.pou_fail,
            "partition-of-unity residual max|Σ p_α − 1|",
            ndomains=sample.get("ndomains"), support=sample.get("support"),
        )


class SCFResidualInvariant(Invariant):
    """Per-iteration SCF residual must keep making progress.

    Tracks the best residual per engine; flags a *stall* (WARN) when no new
    best appears within ``scf_stall_window`` iterations and a *divergence*
    (FAIL) when the residual climbs past ``scf_divergence_factor ×`` the
    best seen.  State resets when a solve restarts at iteration 1.
    """

    name = "scf_residual"
    channel = "scf.residual"

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()
        self._best: dict[str, tuple[float, int]] = {}

    def reset(self) -> None:
        self._best.clear()

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        engine = str(sample.get("engine", "?"))
        iteration = int(sample["iteration"])
        residual = float(sample["residual"])
        if iteration <= 1 or engine not in self._best:
            self._best[engine] = (residual, iteration)
            return self._record(
                STATUS_OK, residual, None,
                f"SCF residual tracking started [{engine}]",
                engine=engine, iteration=iteration,
            )
        best, best_it = self._best[engine]
        if residual < best:
            self._best[engine] = (residual, iteration)
            return self._record(
                STATUS_OK, residual, None,
                f"SCF residual improving [{engine}]",
                engine=engine, iteration=iteration,
            )
        if residual > self.thresholds.scf_divergence_factor * best:
            return self._record(
                STATUS_FAIL, residual,
                self.thresholds.scf_divergence_factor * best,
                f"SCF residual diverged past {self.thresholds.scf_divergence_factor:g}x "
                f"the best seen [{engine}]",
                engine=engine, iteration=iteration, best=best,
            )
        if iteration - best_it >= self.thresholds.scf_stall_window:
            return self._record(
                STATUS_WARN, residual, best,
                f"SCF stalled: no improvement in "
                f"{iteration - best_it} iterations [{engine}]",
                engine=engine, iteration=iteration, best=best,
            )
        return self._record(
            STATUS_OK, residual, None,
            f"SCF residual within stall window [{engine}]",
            engine=engine, iteration=iteration,
        )


class SolverConvergenceInvariant(Invariant):
    """Iterative solves that report non-convergence are flagged.

    A non-converged multigrid Poisson solve WARNs (one bad solve is mixed
    away); a non-converged final SCF state FAILs (the result is the
    answer the caller will use).
    """

    name = "solver_convergence"
    channel = "solver.convergence"

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        solver = str(sample.get("solver", "?"))
        if sample["converged"]:
            return self._record(
                STATUS_OK, 1.0, None, f"{solver} converged", solver=solver,
                iterations=sample.get("iterations"),
            )
        status = STATUS_FAIL if sample.get("final", False) else STATUS_WARN
        return self._record(
            status, 0.0, None,
            f"{solver} did not converge within its iteration budget",
            solver=solver, iterations=sample.get("iterations"),
            residual=sample.get("residual"),
        )


class DivergenceInvariant(Invariant):
    """Measured phase times must track the performance-model prediction.

    Drivers executing on the virtual machine publish, per algorithmic
    phase, the *measured* time (from the :class:`CommProfiler` / event-log
    accounting) alongside the *modeled* time (the closed-form
    :mod:`repro.perfmodel.scaling` / balanced-cost prediction).  A drift
    outside the band flags exactly what the paper's Fig. 5/6 diagnostics
    would: laggard-dominated phases, skewed domain assignments, or a cost
    model that no longer describes the code.
    """

    name = "model_divergence"
    channel = "vm.phase"

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()

    def update(self, sample: dict[str, Any]) -> HealthRecord | None:
        modeled = float(sample["modeled_seconds"])
        measured = float(sample["measured_seconds"])
        phase = str(sample.get("phase", "?"))
        if modeled <= 0.0:
            return None
        drift = abs(measured - modeled) / modeled
        return self._banded(
            drift,
            self.thresholds.model_divergence_warn,
            self.thresholds.model_divergence_fail,
            f"measured-vs-modeled drift in phase {phase!r}",
            phase=phase, measured_seconds=measured,
            modeled_seconds=modeled, ranks=sample.get("ranks"),
        )


def default_invariants(
    thresholds: HealthThresholds | None = None,
) -> list[Invariant]:
    """The standard watchdog set, one shared threshold config."""
    thr = thresholds or HealthThresholds()
    return [
        EnergyDriftInvariant(thr),
        TemperatureWindowInvariant(thr),
        ChargeConservationInvariant(thr),
        PartitionOfUnityInvariant(thr),
        SCFResidualInvariant(thr),
        SolverConvergenceInvariant(),
        DivergenceInvariant(thr),
    ]


class AlertSink(Protocol):
    """Receives every WARN/FAIL record the monitor produces."""

    def emit(self, record: HealthRecord) -> None: ...


class LogAlertSink:
    """Forward WARN/FAIL records to a stdlib logger."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        from repro.observability.logs import get_logger

        self.logger = logger or get_logger("health")

    def emit(self, record: HealthRecord) -> None:
        level = logging.ERROR if record.status == STATUS_FAIL else logging.WARNING
        self.logger.log(level, record.format(), extra={
            "invariant": record.invariant, "status": record.status,
            "value": record.value,
        })


class CollectingAlertSink:
    """Keep WARN/FAIL records in a list (tests, dashboards)."""

    def __init__(self) -> None:
        self.records: list[HealthRecord] = []

    def emit(self, record: HealthRecord) -> None:
        self.records.append(record)


class RaiseOnFailSink:
    """Escalate FAIL records into :class:`HealthError` exceptions."""

    def emit(self, record: HealthRecord) -> None:
        if record.status == STATUS_FAIL:
            raise HealthError(record)


class HealthMonitor:
    """Dispatches driver samples to invariants and fans out alerts.

    Parameters
    ----------
    invariants:
        The checks to run; defaults to :func:`default_invariants`.
    thresholds:
        Shared :class:`HealthThresholds` used when building the default set.
    sinks:
        Alert sinks receiving every WARN/FAIL record.
    keep_ok:
        Store OK records too (full audit trail); default keeps only WARN/FAIL
        plus per-invariant counters, bounding memory on long trajectories.
    clock:
        Injectable clock for record timestamps; shared with the owning
        :class:`~repro.observability.Instrumentation`'s tracer when attached.
    """

    def __init__(
        self,
        invariants: Iterable[Invariant] | None = None,
        thresholds: HealthThresholds | None = None,
        sinks: Iterable[AlertSink] = (),
        keep_ok: bool = False,
        clock: WallClock | None = None,
    ) -> None:
        self.thresholds = thresholds or HealthThresholds()
        self.sinks: list[AlertSink] = list(sinks)
        self.keep_ok = keep_ok
        self.clock = clock
        #: callables receiving *every* record (OK included) — the telemetry
        #: bus wire-up; empty by default so nothing runs when unused
        self.listeners: list[Callable[[HealthRecord], None]] = []
        self.records: list[HealthRecord] = []
        #: evaluation counts per (invariant, status)
        self.counts: dict[tuple[str, str], int] = {}
        self._channels: dict[str, list[Invariant]] = {}
        for inv in (
            default_invariants(self.thresholds)
            if invariants is None
            else invariants
        ):
            self.add(inv)

    # -- wiring ---------------------------------------------------------------

    def add(self, invariant: Invariant) -> "HealthMonitor":
        """Register an invariant on its channel; returns self for chaining."""
        self._channels.setdefault(invariant.channel, []).append(invariant)
        return self

    def add_sink(self, sink: AlertSink) -> "HealthMonitor":
        self.sinks.append(sink)
        return self

    def add_listener(
        self, listener: Callable[[HealthRecord], None]
    ) -> "HealthMonitor":
        """Register a callable that receives every record, OK included."""
        self.listeners.append(listener)
        return self

    def invariants(self) -> list[Invariant]:
        return [inv for invs in self._channels.values() for inv in invs]

    def reset(self) -> None:
        """Clear records and every invariant's cross-sample state."""
        self.records.clear()
        self.counts.clear()
        for inv in self.invariants():
            inv.reset()

    # -- the driver-facing entry point ---------------------------------------

    def observe(self, channel: str, **sample: Any) -> list[HealthRecord]:
        """Publish one sample; returns the records it produced."""
        invs = self._channels.get(channel)
        if not invs:
            return []
        now = self.clock.now() if self.clock is not None else _DEFAULT_CLOCK.now()
        out: list[HealthRecord] = []
        for inv in invs:
            rec = inv.update(sample)
            if rec is None:
                continue
            rec = HealthRecord(
                invariant=rec.invariant, status=rec.status, value=rec.value,
                threshold=rec.threshold, message=rec.message, time=now,
                context=rec.context,
            )
            out.append(rec)
            key = (rec.invariant, rec.status)
            self.counts[key] = self.counts.get(key, 0) + 1
            if rec.status != STATUS_OK or self.keep_ok:
                self.records.append(rec)
            if self.listeners:
                for listener in self.listeners:
                    listener(rec)
            if rec.status != STATUS_OK:
                for sink in self.sinks:
                    sink.emit(rec)
        return out

    # -- queries ---------------------------------------------------------------

    def worst_status(self) -> str:
        worst = STATUS_OK
        for (_, status), n in self.counts.items():
            if n and _SEVERITY[status] > _SEVERITY[worst]:
                worst = status
        return worst

    def all_green(self) -> bool:
        return self.worst_status() == STATUS_OK

    def failures(self) -> list[HealthRecord]:
        return [r for r in self.records if r.status == STATUS_FAIL]

    def warnings(self) -> list[HealthRecord]:
        return [r for r in self.records if r.status == STATUS_WARN]

    def summary(self) -> dict[str, dict[str, int]]:
        """``{invariant: {ok: n, warn: n, fail: n}}`` over all evaluations."""
        out: dict[str, dict[str, int]] = {}
        for (inv, status), n in sorted(self.counts.items()):
            out.setdefault(inv, {STATUS_OK: 0, STATUS_WARN: 0, STATUS_FAIL: 0})
            out[inv][status] += n
        return out

    def render_summary(self) -> str:
        """Fixed-width invariant scoreboard for CLI/example output."""
        rows = self.summary()
        if not rows:
            return "no invariants evaluated"
        width = max(len(k) for k in rows)
        lines = [
            f"{'invariant':<{width}}  {'ok':>6}  {'warn':>6}  {'fail':>6}  status"
        ]
        for name, c in rows.items():
            status = STATUS_OK
            if c[STATUS_FAIL]:
                status = STATUS_FAIL
            elif c[STATUS_WARN]:
                status = STATUS_WARN
            lines.append(
                f"{name:<{width}}  {c[STATUS_OK]:>6}  {c[STATUS_WARN]:>6}  "
                f"{c[STATUS_FAIL]:>6}  {status.upper()}"
            )
        return "\n".join(lines)

    # -- chrome trace merge ----------------------------------------------------

    def chrome_events(self, pid: int = HEALTH_TRACE_PID) -> list[dict[str, Any]]:
        """Stored records as Chrome instant events (merged by the facade)."""
        events = []
        for r in self.records:
            events.append(
                {
                    "name": f"health.{r.invariant}",
                    "cat": "health",
                    "ph": "i",
                    "s": "g",
                    "ts": r.time * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "status": r.status,
                        "value": r.value,
                        "threshold": r.threshold,
                        "message": r.message,
                        **{str(k): v for k, v in r.context.items()},
                    },
                }
            )
        return events

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump: summary + stored records."""
        return {
            "worst_status": self.worst_status(),
            "summary": self.summary(),
            "records": [r.to_dict() for r in self.records],
        }


_DEFAULT_CLOCK = WallClock()


def checked(monitor: HealthMonitor | None, channel: str) -> Callable[..., Any] | None:
    """``monitor.observe`` bound to a channel, or ``None`` when disabled.

    Lets drivers hoist the double guard out of hot loops::

        publish = checked(ins.health if ins else None, "scf.residual")
        ...
        if publish is not None:
            publish(engine="pw", iteration=it, residual=resid)
    """
    if monitor is None:
        return None

    def publish(**sample: Any) -> list[HealthRecord]:
        return monitor.observe(channel, **sample)

    return publish
