"""Structured span tracing.

A *span* is a named wall-clock interval with attributes.  Spans nest: the
tracer keeps a per-thread stack of open spans, so a span opened inside
another records the enclosing span as its parent and its full ``/``-joined
path (``scf.run/scf.iteration/scf.eigensolve``).  Timestamps come from the
injectable :class:`~repro.util.timer.WallClock`, so tests can drive a fake
clock deterministically.

Export targets:

* :meth:`SpanTracer.spans_table` — a flat list of dicts (one row per span);
* :meth:`SpanTracer.to_chrome_trace` — the Chrome ``trace_event`` JSON
  object format (complete ``"X"`` events, microsecond units) that loads
  directly in ``chrome://tracing`` and Perfetto.

The tracer is thread-safe: concurrent threads record into per-thread stacks
and append finished spans under a lock.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.timer import WallClock

#: pid used for real (measured) spans in Chrome traces; simulated-rank
#: timelines from the virtual machine use a different pid so both render
#: side by side in one viewer (see repro.observability.cost_trace).
TRACE_PID = 1


@dataclass
class Span:
    """One finished (or still-open) span."""

    name: str
    t_start: float
    t_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    path: str = ""
    thread_id: int = 0
    category: str = ""

    @property
    def duration(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def root(self) -> str:
        """Top-level segment of the path (the coarse phase name)."""
        return self.path.split("/", 1)[0] if self.path else self.name


class SpanTracer:
    """Records nested spans against a monotonic clock."""

    def __init__(self, clock: WallClock | None = None) -> None:
        self._clock = clock or WallClock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        #: callables receiving each span as it finishes (telemetry-bus
        #: wire-up); empty by default, so closing a span costs one truth test
        self._listeners: list = []
        #: per-thread open-span stacks, keyed by thread id — the same list
        #: objects the thread-locals hold, registered here so the flight
        #: recorder and the sampling profiler can snapshot *other* threads'
        #: open spans (reads are GIL-atomic list copies, never mutations)
        self._open_stacks: dict[int, list[Span]] = {}

    def add_listener(self, listener) -> None:
        """Register a callable invoked with every finished :class:`Span`."""
        self._listeners.append(listener)

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "", **attrs: Any) -> "_SpanContext":
        """Open a span as a context manager.

        Attributes passed as keyword arguments are attached to the span;
        more can be added inside the block via ``span.set(**kw)``.
        """
        return _SpanContext(self, name, category, attrs)

    def record_complete(
        self, name: str, seconds: float, category: str = "", **attrs: Any
    ) -> Span:
        """Record an externally measured duration as a finished span."""
        now = self._clock.now()
        span = Span(
            name=name,
            t_start=now - seconds,
            t_end=now,
            attrs=dict(attrs),
            path=self._path_for(name),
            thread_id=threading.get_ident(),
            category=category,
        )
        with self._lock:
            self._finished.append(span)
        if self._listeners:
            for listener in self._listeners:
                listener(span)
        return span

    def now(self) -> float:
        """The tracer's clock reading (for manual interval measurement)."""
        return self._clock.now()

    # -- queries ------------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def total(self, name: str) -> float:
        """Total inclusive seconds over spans whose name or path matches."""
        return sum(
            s.duration for s in self.spans() if name in (s.name, s.path)
        )

    def count(self, name: str) -> int:
        return sum(1 for s in self.spans() if name in (s.name, s.path))

    def names(self) -> list[str]:
        return sorted({s.name for s in self.spans()})

    def open_spans(self) -> list[Span]:
        """Snapshot of currently *open* spans across all threads.

        The crash-time context the flight recorder dumps: which phases were
        in flight when the run died.  Thread ids may be recycled by the OS
        after a thread exits; a dead thread's (empty) stack is harmless.
        """
        out: list[Span] = []
        for stack in list(self._open_stacks.values()):
            out.extend(stack[:])
        return out

    def spans_table(self) -> list[dict[str, Any]]:
        """Flat table: one dict per finished span, JSON-serializable."""
        return [
            {
                "name": s.name,
                "path": s.path,
                "category": s.category,
                "t_start": s.t_start,
                "t_end": s.t_end,
                "duration": s.duration,
                "thread_id": s.thread_id,
                "attrs": s.attrs,
            }
            for s in self.spans()
        ]

    # -- chrome trace export ------------------------------------------------

    def chrome_events(self, pid: int = TRACE_PID) -> list[dict[str, Any]]:
        """Spans as Chrome ``trace_event`` complete events (µs units)."""
        events = []
        for s in self.spans():
            if s.t_end is None:
                continue
            events.append(
                {
                    "name": s.name,
                    "cat": s.category or s.root,
                    "ph": "X",
                    "ts": s.t_start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": pid,
                    "tid": s.thread_id % 2**31,
                    "args": _json_safe(s.attrs),
                }
            )
        return events

    def to_chrome_trace(self, pid: int = TRACE_PID) -> dict[str, Any]:
        return {
            "traceEvents": self.chrome_events(pid=pid),
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)

    # -- internals -----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            self._open_stacks[threading.get_ident()] = stack
        return stack

    def _path_for(self, name: str) -> str:
        stack = self._stack()
        if stack:
            return f"{stack[-1].path}/{name}"
        return name

    def _enter(self, name: str, category: str, attrs: dict[str, Any]) -> Span:
        span = Span(
            name=name,
            t_start=self._clock.now(),
            attrs=dict(attrs),
            path=self._path_for(name),
            thread_id=threading.get_ident(),
            category=category,
        )
        self._stack().append(span)
        return span

    def _exit(self, span: Span) -> None:
        span.t_end = self._clock.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        with self._lock:
            self._finished.append(span)
        if self._listeners:
            for listener in self._listeners:
                listener(span)


class _SpanContext:
    """Context manager returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_span")

    def __init__(self, tracer, name, category, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._enter(self._name, self._category, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self._span)


def _json_safe(obj: Any) -> Any:
    """Coerce attribute values into JSON-serializable primitives."""
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    return str(obj)


def iter_phase_totals(spans: list[Span]) -> Iterator[tuple[str, float, int]]:
    """(root-phase, total seconds, count) aggregates over top-level spans.

    Only spans that are roots of their own path are counted, so nested time
    is not double-charged to the parent phase.
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for s in spans:
        if "/" in s.path:
            continue
        totals[s.name] = totals.get(s.name, 0.0) + s.duration
        counts[s.name] = counts.get(s.name, 0) + 1
    for name in sorted(totals, key=lambda n: -totals[n]):
        yield name, totals[name], counts[name]
