"""Per-kernel FLOP cost attribution for tracer spans.

The drivers stamp their solve spans with the *sizes* of the work they did
(``npw``, ``nband``, ``grid_points``, ``nproj``, ``cg_iterations`` for
eigensolves; ``grid_points``, ``cycles``, ``sweeps`` for multigrid solves).
This module turns those sizes into FLOP estimates using the operation
counts of :mod:`repro.perfmodel.flops` — the same model behind the paper's
Tables 1-2 %-of-peak accounting — *at report time*, so the attribution
costs nothing while the simulation runs.

:func:`estimate_event_flops` maps one Chrome-trace event (or span) to its
estimated FLOPs; :func:`roofline_table` aggregates a trace into the
paper-style per-phase accounting (time, est. FLOPs, achieved GFLOP/s and,
given a peak, the achieved fraction)::

    python -m repro.observability.report trace.json --flops
    python -m repro.observability.report trace.json --flops --peak-gflops 50
"""

from __future__ import annotations

from typing import Any, Callable

from repro.perfmodel.flops import domain_scf_flops, multigrid_vcycle_flops


def _eigensolve_flops(args: dict[str, Any]) -> float | None:
    npw = args.get("npw")
    nband = args.get("nband")
    grid_points = args.get("grid_points")
    if not npw or not nband or not grid_points:
        return None
    return domain_scf_flops(
        npw=int(npw),
        nband=int(nband),
        grid_points=int(grid_points),
        nproj=int(args.get("nproj") or 0),
        cg_iterations=max(int(args.get("cg_iterations") or 1), 1),
    ).total


def _batched_solve_flops(args: dict[str, Any]) -> float | None:
    """One shape-class stacked solve (``ldc.batched_solve``).

    The span's ``cg_iterations`` is the *sum* over the class's domains, so
    the per-iteration FFT/nonlocal/subspace terms of
    :func:`domain_scf_flops` already count the whole stack; only the
    per-solve orthonormalization setup must be repeated ``n_domains``
    times.
    """
    counts_total = _eigensolve_flops(args)
    if counts_total is None:
        return None
    n_domains = max(int(args.get("n_domains") or 1), 1)
    ortho = domain_scf_flops(
        npw=int(args["npw"]),
        nband=int(args["nband"]),
        grid_points=int(args["grid_points"]),
        nproj=int(args.get("nproj") or 0),
        cg_iterations=1,
    ).orthonormalization
    return counts_total + (n_domains - 1) * ortho


def _poisson_flops(args: dict[str, Any]) -> float | None:
    grid_points = args.get("grid_points")
    if not grid_points:
        return None
    cycles = max(int(args.get("cycles") or 1), 1)
    sweeps = int(args.get("sweeps") or 4)
    return cycles * multigrid_vcycle_flops(int(grid_points), sweeps=sweeps)


#: span name → FLOP estimator over the span's attribute dict.  Returning
#: ``None`` means "sizes missing, cannot attribute" (the span predates the
#: attribution contract or was recorded by other tooling).
ESTIMATORS: dict[str, Callable[[dict[str, Any]], float | None]] = {
    "scf.eigensolve": _eigensolve_flops,
    "ldc.domain_solve": _eigensolve_flops,
    "ldc.batched_solve": _batched_solve_flops,
    "poisson.solve": _poisson_flops,
}


def estimate_event_flops(name: str, args: dict[str, Any] | None) -> float | None:
    """Estimated FLOPs of one trace event; ``None`` when not attributable."""
    fn = ESTIMATORS.get(name)
    if fn is None or not args:
        return None
    try:
        return fn(args)
    except (TypeError, ValueError):
        return None


def roofline_table(
    events: list[dict[str, Any]],
    peak_gflops: float | None = None,
) -> dict[str, dict[str, float | None]]:
    """Aggregate Chrome ``"X"`` events into a per-phase cost table.

    Returns ``{phase: {seconds, calls, est_gflop, gflops, fraction_of_peak,
    attributed_calls}}`` sorted by descending time.  ``gflops`` and
    ``fraction_of_peak`` are ``None`` for phases with no attributable spans
    (or when no peak is given, for the fraction).
    """
    totals: dict[str, dict[str, float]] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        name = str(e.get("name", "?"))
        rec = totals.setdefault(
            name, {"us": 0.0, "calls": 0, "flop": 0.0, "attributed": 0}
        )
        rec["us"] += float(e.get("dur", 0.0))
        rec["calls"] += 1
        flops = estimate_event_flops(name, e.get("args"))
        if flops is not None:
            rec["flop"] += flops
            rec["attributed"] += 1
    out: dict[str, dict[str, float | None]] = {}
    for name in sorted(totals, key=lambda n: -totals[n]["us"]):
        rec = totals[name]
        seconds = rec["us"] / 1e6
        attributed = int(rec["attributed"])
        gflop = rec["flop"] / 1e9 if attributed else None
        gflops = (
            gflop / seconds if gflop is not None and seconds > 0 else None
        )
        out[name] = {
            "seconds": seconds,
            "calls": int(rec["calls"]),
            "attributed_calls": attributed,
            "est_gflop": gflop,
            "gflops": gflops,
            "fraction_of_peak": (
                gflops / peak_gflops
                if gflops is not None and peak_gflops
                else None
            ),
        }
    return out


def render_roofline(
    table: dict[str, dict[str, float | None]],
    top: int | None = None,
) -> str:
    """Fixed-width roofline-style accounting table."""
    rows = list(table.items())
    if top is not None:
        rows = rows[:top]
    width = max([len(k) for k, _ in rows] + [5])
    header = (
        f"{'phase':<{width}}  {'total[s]':>12}  {'calls':>7}  "
        f"{'est GFLOP':>12}  {'GFLOP/s':>10}  {'% peak':>7}"
    )
    lines = [header, "-" * len(header)]
    for name, rec in rows:
        gflop = "-" if rec["est_gflop"] is None else f"{rec['est_gflop']:.3f}"
        rate = "-" if rec["gflops"] is None else f"{rec['gflops']:.2f}"
        frac = (
            "-"
            if rec["fraction_of_peak"] is None
            else f"{100.0 * rec['fraction_of_peak']:.2f}"
        )
        lines.append(
            f"{name:<{width}}  {rec['seconds']:>12.6f}  {rec['calls']:>7d}  "
            f"{gflop:>12}  {rate:>10}  {frac:>7}"
        )
    return "\n".join(lines)
