"""Chrome-trace export for the virtual machine's :class:`CostTracker`.

The simulated-rank event log records, at charge time, each participant's
virtual start/end times (:attr:`TraceEvent.rank_starts` /
:attr:`TraceEvent.rank_ends`).  This module renders that log as Chrome
``trace_event`` complete events — one timeline lane (``tid``) per simulated
rank, under a dedicated ``pid`` — so predicted rank timelines and *real*
wall-clock spans from the :class:`~repro.observability.tracer.SpanTracer`
render side by side in one ``chrome://tracing`` / Perfetto view.
"""

from __future__ import annotations

from typing import Any

#: pid for simulated-rank lanes (real spans use tracer.TRACE_PID = 1)
COST_TRACE_PID = 2


def chrome_events_from_cost_tracker(
    tracker, pid: int = COST_TRACE_PID
) -> list[dict[str, Any]]:
    """One ``"X"`` event per (event, participating rank), µs units."""
    events: list[dict[str, Any]] = []
    for e in tracker.events:
        ranks = e.participants(tracker.nranks)
        starts = e.rank_starts
        ends = e.rank_ends
        if starts is None or ends is None:
            # Legacy event without recorded times: place at t=0.
            starts = (0.0,) * len(ranks)
            ends = (e.seconds,) * len(ranks)
        for rank, t0, t1 in zip(ranks, starts, ends):
            events.append(
                {
                    "name": e.label,
                    "cat": e.kind,
                    "ph": "X",
                    "ts": t0 * 1e6,
                    "dur": (t1 - t0) * 1e6,
                    "pid": pid,
                    "tid": int(rank),
                    "args": {"kind": e.kind, "nbytes": e.nbytes},
                }
            )
    # Name the process and lanes so the viewer reads "virtual machine".
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "virtual machine (simulated ranks)"},
        }
    ]
    for rank in range(tracker.nranks):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": int(rank),
                "args": {"name": f"rank {rank}"},
            }
        )
    return meta + events


def chrome_trace_from_cost_tracker(
    tracker, pid: int = COST_TRACE_PID
) -> dict[str, Any]:
    return {
        "traceEvents": chrome_events_from_cost_tracker(tracker, pid=pid),
        "displayTimeUnit": "ms",
    }
