"""Chrome-trace export for the virtual machine's :class:`CostTracker`.

The simulated-rank event log records, at charge time, each participant's
virtual start/end times (:attr:`TraceEvent.rank_starts` /
:attr:`TraceEvent.rank_ends`).  This module renders that log as Chrome
``trace_event`` complete events — one timeline lane (``tid``) per simulated
rank, under a dedicated ``pid`` — so predicted rank timelines and *real*
wall-clock spans from the :class:`~repro.observability.tracer.SpanTracer`
render side by side in one ``chrome://tracing`` / Perfetto view.

Every slice is stamped with the args the communication observatory needs
to rebuild the event log from the trace alone (``python -m
repro.observability.report <trace> --comm`` / ``--critical-path``):

* ``seq`` — the event's charge-order index (slices of one collective share
  it, so per-event quantities like bytes are not multi-counted);
* ``kind`` / ``phase`` — the charge kind and the algorithmic phase label;
* ``wait`` — for synchronizing events, this rank's clock-alignment seconds
  (sync point − arrival), the laggard-wait half of the decomposition.

With ``include_waits=True`` the wait is additionally rendered as its own
bar (``cat="wait"``, spanning arrival → sync) so Perfetto shows blocked
time explicitly; the default keeps the legacy one-bar-per-event layout.
"""

from __future__ import annotations

from typing import Any

#: pid for simulated-rank lanes (real spans use tracer.TRACE_PID = 1)
COST_TRACE_PID = 2


def chrome_events_from_cost_tracker(
    tracker, pid: int = COST_TRACE_PID, include_waits: bool = False
) -> list[dict[str, Any]]:
    """One ``"X"`` event per (event, participating rank), µs units."""
    events: list[dict[str, Any]] = []
    for seq, e in enumerate(tracker.events):
        ranks = e.participants(tracker.nranks)
        starts = e.rank_starts
        ends = e.rank_ends
        if starts is None or ends is None:
            # Legacy event without recorded times: place at t=0.
            starts = (0.0,) * len(ranks)
            ends = (e.seconds,) * len(ranks)
        waits = e.waits() or (0.0,) * len(ranks)
        for rank, t0, t1, wait in zip(ranks, starts, ends, waits):
            events.append(
                {
                    "name": e.label,
                    "cat": e.kind,
                    "ph": "X",
                    "ts": t0 * 1e6,
                    "dur": (t1 - t0) * 1e6,
                    "pid": pid,
                    "tid": int(rank),
                    "args": {
                        "kind": e.kind,
                        "nbytes": e.nbytes,
                        "phase": e.phase,
                        "seq": seq,
                        "wait": wait,
                    },
                }
            )
            if include_waits and wait > 0.0:
                events.append(
                    {
                        "name": f"{e.label} (wait)",
                        "cat": "wait",
                        "ph": "X",
                        "ts": (t0 - wait) * 1e6,
                        "dur": wait * 1e6,
                        "pid": pid,
                        "tid": int(rank),
                        "args": {
                            "kind": "wait",
                            "phase": e.phase,
                            "seq": seq,
                            "label": e.label,
                        },
                    }
                )
    # Name the process and lanes so the viewer reads "virtual machine".
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "virtual machine (simulated ranks)"},
        }
    ]
    for rank in range(tracker.nranks):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": int(rank),
                "args": {"name": f"rank {rank}"},
            }
        )
    return meta + events


def chrome_trace_from_cost_tracker(
    tracker, pid: int = COST_TRACE_PID, include_waits: bool = False
) -> dict[str, Any]:
    return {
        "traceEvents": chrome_events_from_cost_tracker(
            tracker, pid=pid, include_waits=include_waits
        ),
        "displayTimeUnit": "ms",
    }
