"""Unified telemetry: structured tracing, metrics, and logging.

The subsystem has four layers, all usable independently but designed to be
consumed together through the :class:`Instrumentation` facade:

* :mod:`repro.observability.tracer` — nested wall-clock *spans* (a span is a
  named, attributed interval), exportable as a flat table or as Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto;
* :mod:`repro.observability.metrics` — a registry of labeled counters,
  gauges, histograms, and time-ordered series (e.g. the per-iteration SCF
  residual), with JSON/CSV snapshot export;
* :mod:`repro.observability.logs` — stdlib ``logging`` under the ``repro.*``
  namespace with an optional JSON formatter, silent by default;
* :mod:`repro.observability.instrumentation` — the facade the drivers accept
  as an optional parameter.  Passing ``None`` (the default) keeps every hot
  loop entirely instrumentation-free.

Span/metric naming convention: dotted ``subsystem.thing`` names
(``scf.residual``, ``ldc.domain_solve``, ``poisson.vcycles``), with
key=value labels for series dimensions (``scf.iterations{engine=ldc}``).

Two further layers close the loop from telemetry to *gates*:

* :mod:`repro.observability.health` — online physics invariants (energy
  drift, charge conservation, partition of unity, SCF stalls, thermostat
  window) attached to the facade as ``Instrumentation(health=...)``;
* :mod:`repro.observability.regress` — the schema'd BENCH ledger and the
  performance-regression CLI that diffs fresh results against committed
  baselines;
* :mod:`repro.observability.runlog` — the *run ledger*: per-run identity
  and manifests under ``telemetry/runs/<run_id>/``
  (``Instrumentation(recorder=RunRecorder(...))``), the failure-triggered
  :class:`FlightRecorder` black box, the :class:`SamplingProfiler`, and
  the cross-run diff/drift CLI (``python -m repro.observability.runlog``).

The report CLI renders a paper-style per-phase breakdown from a trace
(``--flops`` adds the roofline-style FLOP attribution of
:mod:`repro.observability.costattr`)::

    python -m repro.observability.report trace.json
    python -m repro.observability.report trace.json --flops
"""

from repro.observability.comms import CommProfiler, profile_events
from repro.observability.cost_trace import (
    chrome_events_from_cost_tracker,
    chrome_trace_from_cost_tracker,
)
from repro.observability.critpath import (
    CriticalSegment,
    critical_path,
    critical_path_from_tracker,
    measured_efficiency,
    render_critical_path,
)
from repro.observability.health import (
    DivergenceInvariant,
    HealthError,
    HealthMonitor,
    HealthRecord,
    HealthThresholds,
)
from repro.observability.flightrec import FlightRecorder
from repro.observability.instrumentation import Instrumentation
from repro.observability.logs import configure_logging, get_logger
from repro.observability.profiler import SamplingProfiler, render_profile
from repro.observability.metrics import MetricsRegistry
from repro.observability.stream import (
    JsonlSink,
    TelemetryBus,
    attach_jsonl,
    read_jsonl,
)
from repro.observability.tracer import Span, SpanTracer

__all__ = [
    "CommProfiler",
    "CriticalSegment",
    "DivergenceInvariant",
    "FieldSpec",
    "FlightRecorder",
    "HealthError",
    "HealthMonitor",
    "HealthRecord",
    "HealthThresholds",
    "Instrumentation",
    "JsonlSink",
    "MetricsRegistry",
    "RecordSchema",
    "RunRecorder",
    "SamplingProfiler",
    "Span",
    "SpanTracer",
    "TelemetryBus",
    "attach_jsonl",
    "chrome_events_from_cost_tracker",
    "chrome_trace_from_cost_tracker",
    "configure_logging",
    "critical_path",
    "critical_path_from_tracker",
    "get_logger",
    "measured_efficiency",
    "phase_breakdown",
    "profile_events",
    "read_jsonl",
    "render_breakdown",
    "render_critical_path",
    "render_profile",
    "runs_root",
    "telemetry_root",
]


def __getattr__(name):
    # ``report`` and ``regress`` are lazy so that running them as
    # ``python -m repro.observability.<mod>`` does not import them twice
    # (runpy warns when the module already sits in sys.modules via the
    # package import).
    if name in ("phase_breakdown", "render_breakdown"):
        from repro.observability import report

        return getattr(report, name)
    if name in ("FieldSpec", "RecordSchema"):
        from repro.observability import regress

        return getattr(regress, name)
    if name in ("RunRecorder", "runs_root", "telemetry_root"):
        from repro.observability import runlog

        return getattr(runlog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
