"""Metrics registry: labeled counters, gauges, histograms, and series.

Instruments are identified by ``name`` plus a frozen label set, so
``registry.counter("scf.iterations", engine="ldc")`` and the same name with
``engine="pw"`` are independent time series — rendered in snapshots as
``scf.iterations{engine=ldc}``.

Four instrument kinds:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — summary statistics of observed values
  (count/sum/min/max/mean);
* :class:`Series` — the full ordered sample list (``append``), used for
  convergence histories like the per-iteration SCF residual or the
  multigrid V-cycle residual norms.

``snapshot()`` returns a plain dict; ``to_json``/``to_csv`` serialize it.
The registry is thread-safe.
"""

from __future__ import annotations

import io
import json
import threading
from typing import Any


def format_key(name: str, labels: dict[str, Any]) -> str:
    """Render ``name{k=v,...}`` with labels sorted for determinism."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Instrument:
    """Common identity for all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        #: set by the owning registry when sample listeners are attached
        #: (telemetry-bus wire-up); ``None`` keeps sampling listener-free
        self._notify = None

    @property
    def key(self) -> str:
        return format_key(self.name, self.labels)


class Counter(_Instrument):
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        if self._notify is not None:
            self._notify(self, self.value)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge(_Instrument):
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)
        if self._notify is not None:
            self._notify(self, self.value)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        if self._notify is not None:
            self._notify(self, v)

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class Series(_Instrument):
    """Ordered sample list — a convergence history."""

    kind = "series"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.values: list[float] = []

    def append(self, value: float) -> None:
        self.values.append(float(value))
        if self._notify is not None:
            self._notify(self, self.values[-1])

    def extend(self, values) -> None:
        for v in values:
            self.append(v)

    def __len__(self) -> int:
        return len(self.values)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "values": list(self.values)}


class MetricsRegistry:
    """Creates-or-returns labeled instruments and snapshots them."""

    _kinds = {"counter": Counter, "gauge": Gauge,
              "histogram": Histogram, "series": Series}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        #: sample listeners, called as ``listener(instrument, value)`` on
        #: every inc/set/observe/append — the telemetry-bus wire-up
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """Attach a per-sample listener to every current/future instrument."""
        with self._lock:
            self._listeners.append(listener)
            for inst in self._instruments.values():
                inst._notify = self._dispatch

    def _dispatch(self, instrument: _Instrument, value: float) -> None:
        for listener in self._listeners:
            listener(instrument, value)

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def series(self, name: str, **labels: Any) -> Series:
        return self._get("series", name, labels)

    def _get(self, kind: str, name: str, labels: dict[str, Any]):
        key = format_key(name, labels)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = self._kinds[kind](name, labels)
                if self._listeners:
                    inst._notify = self._dispatch
                self._instruments[key] = inst
            elif inst.kind != kind:
                raise TypeError(
                    f"{key} already registered as {inst.kind}, not {kind}"
                )
            return inst

    # -- queries / export ----------------------------------------------------

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str, **labels: Any) -> _Instrument | None:
        """Look up an instrument without creating it."""
        with self._lock:
            return self._instruments.get(format_key(name, labels))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            items = list(self._instruments.items())
        out: dict[str, dict[str, Any]] = {}
        for key, inst in sorted(items):
            rec = inst.snapshot()
            rec["name"] = inst.name
            rec["labels"] = dict(inst.labels)
            out[key] = rec
        return out

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_csv(self) -> str:
        """Flat CSV: series expand to one row per sample (``index`` column)."""
        buf = io.StringIO()
        buf.write("key,kind,index,value\n")
        for key, rec in self.snapshot().items():
            if rec["kind"] == "series":
                for i, v in enumerate(rec["values"]):
                    buf.write(f"{_csv_quote(key)},series,{i},{v}\n")
            elif rec["kind"] == "histogram":
                for stat in ("count", "sum", "min", "max", "mean"):
                    buf.write(f"{_csv_quote(key)},histogram:{stat},,{rec[stat]}\n")
            else:
                buf.write(f"{_csv_quote(key)},{rec['kind']},,{rec['value']}\n")
        return buf.getvalue()

    def write_snapshot(self, json_path=None, csv_path=None) -> None:
        if json_path is not None:
            with open(json_path, "w") as fh:
                fh.write(self.to_json())
        if csv_path is not None:
            with open(csv_path, "w") as fh:
                fh.write(self.to_csv())


def _csv_quote(text: str) -> str:
    if "," in text or '"' in text:
        return '"' + text.replace('"', '""') + '"'
    return text
