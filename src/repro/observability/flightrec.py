"""The flight recorder: a bounded event ring dumped on failure.

A :class:`FlightRecorder` subscribes to the
:class:`~repro.observability.stream.TelemetryBus` and keeps the most recent
telemetry in memory — a bounded ring of raw events plus the latest sample
per metric key.  Nothing is written while a run is healthy.  When the run
fails — a health invariant FAILs, a sanitizer trips, or a driver dies on an
unhandled exception — the recorder dumps its ring, the currently *open*
span stack, and the recent metric samples to ``blackbox.jsonl`` inside the
run directory: the post-mortem artifact the elastic-execution work replays.

Dump format is JSONL, one record per line, discriminated by ``"record"``::

    {"record": "dump",      "reason": "health_fail", "seen": 412, ...}
    {"record": "event",     "topic": "span", "seq": 405, ...}
    {"record": "open_span", "path": "qmd.step/ldc.run", ...}
    {"record": "metric",    "key": "qmd.total_energy.last", "value": ...}

A crash-time file may by construction end mid-record;
:func:`~repro.observability.stream.read_jsonl` tolerates exactly that.

The recorder is wired automatically by
:class:`~repro.observability.runlog.RunRecorder`; it can also be used
standalone (``bus.subscribe(flight)``) with an explicit ``dump_dir``.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.observability.tracer import SpanTracer

#: file name of the post-mortem dump inside a run directory
BLACKBOX_NAME = "blackbox.jsonl"


class FlightRecorder:
    """Bounded telemetry ring buffer with failure-triggered dumps.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are evicted FIFO (the ring
        semantics a post-mortem wants: the *last* N events before death).
    metrics_keep:
        Most-recently-sampled metric keys retained (one latest sample per
        key, LRU-evicted beyond this bound).
    dump_dir:
        Directory receiving ``blackbox.jsonl``; usually set by the owning
        :class:`~repro.observability.runlog.RunRecorder`.  ``None`` makes
        :meth:`dump` a no-op returning ``None``.
    tracer:
        Optional :class:`~repro.observability.tracer.SpanTracer` whose
        open-span stacks are included in dumps.
    """

    def __init__(
        self,
        capacity: int = 256,
        metrics_keep: int = 64,
        dump_dir=None,
        tracer: "SpanTracer | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be >= 1")
        self.capacity = capacity
        self.metrics_keep = metrics_keep
        self.dump_dir = dump_dir
        self.tracer = tracer
        self._lock = threading.Lock()
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._metrics: OrderedDict[str, dict[str, Any]] = OrderedDict()
        #: total events observed (>= len(ring) once the ring wraps)
        self.seen = 0
        #: paths written by :meth:`dump`, in order
        self.dumps: list[pathlib.Path] = []

    # -- bus subscriber -------------------------------------------------------

    def __call__(self, event: dict[str, Any]) -> None:
        """Record one bus event; a FAIL health verdict triggers a dump."""
        topic = event.get("topic")
        with self._lock:
            self.seen += 1
            self._events.append(event)
            if topic == "metric":
                data = event.get("data", {})
                key = str(data.get("key"))
                self._metrics[key] = {
                    "key": key,
                    "value": data.get("value"),
                    "seq": event.get("seq"),
                    "time": event.get("time"),
                }
                self._metrics.move_to_end(key)
                while len(self._metrics) > self.metrics_keep:
                    self._metrics.popitem(last=False)
        if (
            topic == "health"
            and event.get("data", {}).get("status") == "fail"
        ):
            self.dump("health_fail", trigger=event)

    # -- queries --------------------------------------------------------------

    @property
    def overflowed(self) -> int:
        """Events evicted from the ring since creation."""
        with self._lock:
            return max(0, self.seen - len(self._events))

    def events(self) -> list[dict[str, Any]]:
        """Ring contents, oldest first."""
        with self._lock:
            return list(self._events)

    def recent_metrics(self) -> list[dict[str, Any]]:
        """Latest sample per metric key, least-recently-sampled first."""
        with self._lock:
            return list(self._metrics.values())

    # -- the post-mortem dump -------------------------------------------------

    def dump(self, reason: str, trigger=None, path=None) -> pathlib.Path | None:
        """Write the black box; returns the path (``None`` if undumpable).

        Multiple dumps append to the same file, each starting with its own
        ``"dump"`` header record, so a health FAIL followed by the raising
        sink's exception leaves both contexts on disk in order.
        """
        if path is None:
            if self.dump_dir is None:
                return None
            path = pathlib.Path(self.dump_dir) / BLACKBOX_NAME
        path = pathlib.Path(path)
        with self._lock:
            events = list(self._events)
            metrics = list(self._metrics.values())
            seen = self.seen
        records: list[dict[str, Any]] = [
            {
                "record": "dump",
                "reason": reason,
                "seen": seen,
                "retained": len(events),
                "overflowed": max(0, seen - len(events)),
                "trigger": trigger,
            }
        ]
        records.extend({"record": "event", **e} for e in events)
        if self.tracer is not None:
            for s in self.tracer.open_spans():
                records.append(
                    {
                        "record": "open_span",
                        "name": s.name,
                        "path": s.path,
                        "category": s.category,
                        "t_start": s.t_start,
                        "thread_id": s.thread_id,
                        "attrs": s.attrs,
                    }
                )
        records.extend({"record": "metric", **m} for m in metrics)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        self.dumps.append(path)
        return path
