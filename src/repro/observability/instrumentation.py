"""The ``Instrumentation`` facade the drivers accept.

Bundles a :class:`~repro.observability.tracer.SpanTracer`, a
:class:`~repro.observability.metrics.MetricsRegistry`, and a ``repro.*``
logger behind one object, threaded as an *optional* parameter through the
hot drivers (``run_scf``, ``run_ldc``, ``QMDDriver``, ...).

The contract is: **``None`` means off, and off costs nothing.**  Drivers
guard every telemetry statement with ``if instrumentation is not None``,
so the default path executes zero observability code — a property enforced
by a regression test (``tests/test_instrumentation_overhead.py``).

Typical use::

    from repro.observability import Instrumentation

    ins = Instrumentation()
    result = run_ldc(config, opts, instrumentation=ins)
    ins.write_artifacts("out/")   # trace.json + metrics.json + metrics.csv
"""

from __future__ import annotations

import json
import logging
import pathlib
from typing import TYPE_CHECKING, Any

from repro.observability.logs import get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.observability.tracer import SpanTracer
from repro.util.timer import WallClock

if TYPE_CHECKING:
    from repro.observability.comms import CommProfiler
    from repro.observability.health import HealthMonitor
    from repro.observability.runlog import RunRecorder
    from repro.observability.stream import TelemetryBus


class Instrumentation:
    """Tracer + metrics + logger bundle.

    Parameters
    ----------
    tracer, metrics:
        Pre-built components to share between instrumentations (e.g. one
        registry across several engines); fresh ones are created by default.
    logger:
        A stdlib logger; defaults to the ``repro`` namespace root.
    clock:
        Injectable clock used for a default-constructed tracer.
    health:
        Optional :class:`~repro.observability.health.HealthMonitor`; when
        set, drivers additionally publish physics-invariant samples to it
        and its records merge into the Chrome trace as instant events.
        ``None`` (the default) keeps every health check off the hot path.
    stream:
        Optional :class:`~repro.observability.stream.TelemetryBus`.  When
        set, finished spans, metric samples, health verdicts, and
        comm-profiler summaries are published to it live (topics ``span``,
        ``metric``, ``health``, ``comm.summary``).  ``None`` (the default)
        installs no listeners, so recording stays bus-free.
    recorder:
        Optional :class:`~repro.observability.runlog.RunRecorder`.  When
        set, the run gets a ledger entry (``telemetry/runs/<run_id>/`` with
        a schema'd manifest), a flight recorder is subscribed to the bus
        (one is auto-created if ``stream`` is ``None``), and drivers note
        their invocations/failures against it.  ``None`` (the default)
        executes zero runlog code.
    """

    def __init__(
        self,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        logger: logging.Logger | None = None,
        clock: WallClock | None = None,
        health: "HealthMonitor | None" = None,
        stream: "TelemetryBus | None" = None,
        recorder: "RunRecorder | None" = None,
    ) -> None:
        self.tracer = tracer or SpanTracer(clock=clock)
        self.metrics = metrics or MetricsRegistry()
        self.log = logger or get_logger()
        self.health = health
        if health is not None and health.clock is None:
            # share the tracer's clock so health instants align with spans
            health.clock = self.tracer._clock
        #: extra Chrome-trace events merged into exports (e.g. simulated-rank
        #: timelines attached via :meth:`attach_cost_tracker`)
        self.extra_chrome_events: list[dict[str, Any]] = []
        #: comm profilers attached by drivers (`attach_comm_profiler`)
        self.comm_profilers: list["CommProfiler"] = []
        if stream is None and recorder is not None:
            # the flight recorder listens on the bus; a ledger-enabled run
            # without an explicit bus gets a private one
            from repro.observability.stream import TelemetryBus

            stream = TelemetryBus(clock=self.tracer._clock)
        self.stream = stream
        if stream is not None:
            self._wire_stream(stream)
        self.recorder = recorder
        if recorder is not None:
            recorder.attach(self)

    def _wire_stream(self, bus: "TelemetryBus") -> None:
        """Subscribe the bus to span/metric/health emission points."""
        self.tracer.add_listener(
            lambda span: bus.publish(
                "span",
                name=span.name,
                path=span.path,
                category=span.category,
                duration=span.duration,
                attrs=span.attrs,
            )
        )
        self.metrics.add_listener(
            lambda inst, value: bus.publish(
                "metric", key=inst.key, kind=inst.kind, value=value
            )
        )
        if self.health is not None:
            self.health.add_listener(
                lambda rec: bus.publish(
                    "health",
                    invariant=rec.invariant,
                    status=rec.status,
                    value=rec.value,
                    message=rec.message,
                    context=rec.context,
                )
            )

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, category: str = "", **attrs: Any):
        return self.tracer.span(name, category=category, **attrs)

    # -- metrics shortcuts ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.metrics.histogram(name, **labels)

    def series(self, name: str, **labels: Any) -> Series:
        return self.metrics.series(name, **labels)

    # -- virtual-machine timelines ------------------------------------------

    def attach_cost_tracker(
        self, tracker, pid: int | None = None, include_waits: bool = True
    ) -> None:
        """Merge a :class:`CostTracker`'s simulated-rank timeline into the
        Chrome-trace export, alongside the real wall-clock spans."""
        from repro.observability.cost_trace import (
            COST_TRACE_PID,
            chrome_events_from_cost_tracker,
        )

        self.extra_chrome_events.extend(
            chrome_events_from_cost_tracker(
                tracker,
                pid=COST_TRACE_PID if pid is None else pid,
                include_waits=include_waits,
            )
        )

    def attach_comm_profiler(self, profiler: "CommProfiler") -> None:
        """Register a finished :class:`CommProfiler` for artifact export.

        Its per-phase/per-kind summary lands in ``comm.json`` alongside the
        trace, and — when a telemetry bus is attached — a ``comm.summary``
        event is published immediately."""
        self.comm_profilers.append(profiler)
        if self.stream is not None:
            self.stream.publish("comm.summary", **profiler.to_dict())

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        trace = self.tracer.to_chrome_trace()
        events = trace["traceEvents"] + self.extra_chrome_events
        if self.health is not None:
            events = events + self.health.chrome_events()
        trace["traceEvents"] = events
        return trace

    def write_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)

    def write_artifacts(self, outdir) -> dict[str, pathlib.Path]:
        """Write ``trace.json``, ``metrics.json``, ``metrics.csv`` (and
        ``health.json`` when a monitor is attached); returns the artifact
        paths keyed by name."""
        out = pathlib.Path(outdir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": out / "trace.json",
            "metrics_json": out / "metrics.json",
            "metrics_csv": out / "metrics.csv",
        }
        self.write_trace(paths["trace"])
        self.metrics.write_snapshot(
            json_path=paths["metrics_json"], csv_path=paths["metrics_csv"]
        )
        if self.health is not None:
            paths["health"] = out / "health.json"
            with open(paths["health"], "w") as fh:
                json.dump(self.health.to_dict(), fh, indent=1)
        if self.comm_profilers:
            paths["comm"] = out / "comm.json"
            payload = [p.to_dict() for p in self.comm_profilers]
            with open(paths["comm"], "w") as fh:
                json.dump(payload[0] if len(payload) == 1 else payload, fh, indent=1)
        return paths
