"""Critical-path extraction over the virtual machine's rank timelines.

In a bulk-synchronous run the predicted wall-clock is set by one chain of
dependent work: compute on some rank, a synchronizing collective whose cost
the *laggard* (last-arriving) rank defines, compute on possibly another
rank, and so on.  This module walks a :class:`~repro.parallel.trace.TraceEvent`
log backwards along exactly that chain:

1. start from the rank holding the final clock maximum;
2. walk its timeline backwards, attributing each busy segment;
3. at a synchronizing event, jump to the participant that arrived last
   (the rank whose clock defined the sync point) and continue there.

The resulting segment list covers the whole elapsed time (idle gaps on the
critical rank cannot exist: the walk always continues on the rank that was
last busy), so its per-phase totals *are* the measured critical-path
decomposition — the quantity the closed-form scaling models of
:mod:`repro.perfmodel.scaling` predict for Figs. 5-6.

The walker also runs on an exported Chrome trace: the cost-trace adapter
stamps every virtual-machine slice with ``seq``/``kind``/``phase``/``wait``
args, and :func:`events_from_chrome` reconstructs the event log from them,
so ``python -m repro.observability.report <trace> --critical-path`` needs
only the trace artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.parallel.trace import CostTracker, TraceEvent


@dataclass(frozen=True)
class CriticalSegment:
    """One busy interval on the critical path."""

    rank: int
    label: str
    phase: str
    kind: str
    t_start: float
    t_end: float
    #: wait (clock-alignment) seconds contained in this segment — zero for
    #: compute and for the laggard of a synchronizing event
    wait: float = 0.0

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start


def critical_path(
    events: Sequence[TraceEvent], nranks: int
) -> list[CriticalSegment]:
    """The chain of segments that sets the run's elapsed time.

    Returns segments ordered by time (earliest first).  Events must be in
    charge order (as the tracker records them).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    # Forward replay: per-rank timeline of (event index, arrival, start, end).
    timeline: list[list[tuple[int, float, float, float]]] = [
        [] for _ in range(nranks)
    ]
    for ei, e in enumerate(events):
        ranks = e.participants(nranks)
        starts = e.rank_starts
        ends = e.rank_ends
        if starts is None or ends is None:
            continue  # legacy event without recorded times
        arrivals = e.rank_arrivals or starts
        for r, arr, t0, t1 in zip(ranks, arrivals, starts, ends):
            timeline[int(r)].append((ei, float(arr), float(t0), float(t1)))

    ends_per_rank = [
        (tl[-1][3] if tl else 0.0) for tl in timeline
    ]
    if not any(tl for tl in timeline):
        return []
    rank = int(np.argmax(ends_per_rank))
    pos = len(timeline[rank]) - 1
    segments: list[CriticalSegment] = []
    while pos >= 0:
        ei, arrival, start, end = timeline[rank][pos]
        e = events[ei]
        if e.kind == "compute":
            segments.append(
                CriticalSegment(
                    rank, e.label, e.phase, e.kind, start, end
                )
            )
            pos -= 1
            continue
        # Synchronizing event: the segment on the *laggard* covers
        # [its arrival == sync, end] with zero wait; jump there.
        ranks = e.participants(len(timeline))
        arrivals = e.rank_arrivals or ((start,) * len(ranks))
        lag_i = int(np.argmax(arrivals))
        lag_rank = int(ranks[lag_i])
        segments.append(
            CriticalSegment(
                lag_rank, e.label, e.phase, e.kind,
                float(arrivals[lag_i]), end,
            )
        )
        if lag_rank != rank:
            rank = lag_rank
            pos = _position_before(timeline[rank], ei)
        else:
            pos -= 1
    segments.reverse()
    return segments


def _position_before(
    rank_timeline: list[tuple[int, float, float, float]], event_index: int
) -> int:
    """Index of the last timeline entry charged before ``event_index``."""
    for pos in range(len(rank_timeline) - 1, -1, -1):
        if rank_timeline[pos][0] < event_index:
            return pos
    return -1


def critical_path_from_tracker(tracker: CostTracker) -> list[CriticalSegment]:
    return critical_path(tracker.events, tracker.nranks)


# -- aggregate views ----------------------------------------------------------


def phase_summary(
    segments: Iterable[CriticalSegment],
) -> dict[str, dict[str, Any]]:
    """Per-phase critical-path accounting.

    ``laggard`` is the rank carrying the most critical-path seconds of the
    phase — the rank the others effectively wait for.
    """
    out: dict[str, dict[str, Any]] = {}
    for seg in segments:
        agg = out.setdefault(seg.phase, {
            "seconds": 0.0, "compute_s": 0.0, "comm_s": 0.0,
            "segments": 0, "_rank_seconds": {},
        })
        agg["seconds"] += seg.seconds
        if seg.kind == "compute":
            agg["compute_s"] += seg.seconds
        else:
            agg["comm_s"] += seg.seconds
        agg["segments"] += 1
        rs = agg["_rank_seconds"]
        rs[seg.rank] = rs.get(seg.rank, 0.0) + seg.seconds
    for agg in out.values():
        rs = agg.pop("_rank_seconds")
        agg["laggard"] = max(rs, key=lambda r: rs[r]) if rs else -1
    return out


def measured_efficiency(
    tracker: CostTracker, profiler=None
) -> dict[str, float]:
    """Whole-run measured scaling quantities from an executed tracker.

    ``efficiency`` is useful-compute rank-seconds over total rank-seconds
    (elapsed × nranks) — the measured counterpart of the Fig. 5 parallel
    efficiency; ``critical_comm_fraction`` is the share of the critical
    path spent in communication or waiting.
    """
    elapsed = tracker.elapsed()
    total = elapsed * tracker.nranks
    compute = sum(
        e.seconds * len(e.participants(tracker.nranks))
        for e in tracker.events
        if e.kind == "compute"
    )
    segments = critical_path_from_tracker(tracker)
    comm_on_path = sum(s.seconds for s in segments if s.kind != "compute")
    return {
        "elapsed_s": elapsed,
        "efficiency": compute / total if total > 0 else 1.0,
        "imbalance": tracker.imbalance(),
        "critical_comm_fraction": (
            comm_on_path / elapsed if elapsed > 0 else 0.0
        ),
    }


# -- chrome-trace reconstruction ----------------------------------------------


def events_from_chrome(
    chrome_events: Iterable[dict[str, Any]], pid: int | None = None
) -> tuple[list[TraceEvent], int]:
    """Rebuild a (event log, nranks) pair from exported VM trace slices.

    Accepts the slices written by
    :func:`repro.observability.cost_trace.chrome_events_from_cost_tracker`,
    which stamp ``args.seq`` (charge order), ``args.kind``, ``args.phase``
    and ``args.wait`` on every per-rank event.  Wait bars (``cat ==
    "wait"``) are visual only and skipped here.
    """
    groups: dict[int, dict[str, Any]] = {}
    nranks = 0
    for e in chrome_events:
        if e.get("ph") != "X":
            continue
        if pid is not None and e.get("pid") != pid:
            continue
        args = e.get("args") or {}
        if "seq" not in args or e.get("cat") == "wait":
            continue
        seq = int(args["seq"])
        rank = int(e.get("tid", 0))
        nranks = max(nranks, rank + 1)
        g = groups.setdefault(seq, {
            "label": e.get("name", ""),
            "kind": str(args.get("kind", "compute")),
            "phase": str(args.get("phase", "")),
            "nbytes": float(args.get("nbytes", 0.0)),
            "per_rank": {},
        })
        t0 = float(e.get("ts", 0.0)) / 1e6
        t1 = t0 + float(e.get("dur", 0.0)) / 1e6
        g["per_rank"][rank] = (t0, t1, float(args.get("wait", 0.0)))
    events: list[TraceEvent] = []
    for seq in sorted(groups):
        g = groups[seq]
        ranks = tuple(sorted(g["per_rank"]))
        starts = tuple(g["per_rank"][r][0] for r in ranks)
        ends = tuple(g["per_rank"][r][1] for r in ranks)
        waits = tuple(g["per_rank"][r][2] for r in ranks)
        seconds = max(
            (t1 - t0 for t0, t1, _ in g["per_rank"].values()), default=0.0
        )
        arrivals = (
            tuple(s - w for s, w in zip(starts, waits))
            if g["kind"] != "compute" else None
        )
        events.append(
            TraceEvent(
                g["kind"], ranks, seconds, g["nbytes"], g["label"],
                rank_starts=starts, rank_ends=ends,
                rank_arrivals=arrivals, phase=g["phase"],
            )
        )
    return events, nranks


# -- rendering ----------------------------------------------------------------


def render_critical_path(
    segments: Sequence[CriticalSegment], top: int | None = None
) -> str:
    """Fixed-width critical-path listing plus the per-phase summary."""
    if not segments:
        return "critical path is empty (no timed events)"
    total = segments[-1].t_end - segments[0].t_start
    lines = [
        f"{'phase':<12} {'label':<14} {'rank':>5} {'start[s]':>12} "
        f"{'end[s]':>12} {'dur[s]':>12} {'% path':>7}"
    ]
    lines.append("-" * len(lines[0]))
    shown = segments if top is None else segments[:top]
    for seg in shown:
        pct = 100.0 * seg.seconds / total if total > 0 else 0.0
        lines.append(
            f"{seg.phase or '-':<12} {seg.label:<14} {seg.rank:>5} "
            f"{seg.t_start:>12.6f} {seg.t_end:>12.6f} "
            f"{seg.seconds:>12.6f} {pct:>7.2f}"
        )
    if top is not None and len(segments) > top:
        lines.append(f"... ({len(segments) - top} more segments)")
    lines.append("")
    lines.append(
        f"{'phase':<12} {'path[s]':>12} {'compute[s]':>12} "
        f"{'comm[s]':>12} {'laggard':>8}"
    )
    lines.append("-" * len(lines[-1]))
    for phase, agg in phase_summary(segments).items():
        lines.append(
            f"{phase or '-':<12} {agg['seconds']:>12.6f} "
            f"{agg['compute_s']:>12.6f} {agg['comm_s']:>12.6f} "
            f"{agg['laggard']:>8d}"
        )
    lines.append("")
    lines.append(f"critical path: {len(segments)} segments, {total:.6f} s")
    return "\n".join(lines)
