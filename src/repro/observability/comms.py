"""Per-rank communication profiling for the virtual parallel machine.

The cost model (PRs before this one) predicted where parallel time *should*
go; this module measures where it *does* go in an executed run.  A
:class:`CommProfiler` attaches to a :class:`~repro.parallel.trace.CostTracker`
(directly, or through ``VirtualComm(..., profiler=...)``) and observes every
charge at charge time.  Using the tracker's align-to-laggard semantics, each
synchronizing collective decomposes exactly into

* **wait** — the clock alignment each rank spends blocked until the laggard
  arrives (``sync − arrival``, from :attr:`TraceEvent.rank_arrivals`), and
* **transfer** — the modeled communication time proper (``event.seconds``);

compute charges accumulate as **compute**.  The three per-rank accumulators
reconcile *exactly* with the tracker's virtual clocks::

    compute[r] + wait[r] + transfer[r] == tracker.clocks[r]

so ``max`` over the totals is :meth:`CostTracker.elapsed` — the accounting
identity the report CLI's ``--comm`` table rests on.

Aggregation is per *phase* (the labels stamped by
:meth:`CostTracker.phase`, reusing span-label names) and per collective
*kind* (the charge label: ``allreduce``, ``halo``, ``tree``, ...).  From
these the profiler derives the Fig. 5/6 quantities from measurements
instead of the closed-form model: per-phase parallel efficiency
(compute / total rank-seconds), load imbalance ((max−mean)/max of per-rank
busy time), and the laggard rank everyone else waits for.

The profiler is plain data + arithmetic: no clocks are read and nothing is
imported from the engine, so it can equally be rebuilt *post hoc* from a
recorded event log via :func:`profile_events`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

if TYPE_CHECKING:
    from repro.parallel.trace import CostTracker, TraceEvent


class PhaseCommStats:
    """Accumulated communication accounting for one (phase, label) cell."""

    __slots__ = ("kind", "calls", "nbytes", "compute", "wait", "transfer")

    def __init__(self, nranks: int, kind: str) -> None:
        self.kind = kind
        self.calls = 0
        self.nbytes = 0.0
        self.compute = np.zeros(nranks)
        self.wait = np.zeros(nranks)
        self.transfer = np.zeros(nranks)

    def seconds(self) -> float:
        """Total rank-seconds accumulated in this cell."""
        return float(
            self.compute.sum() + self.wait.sum() + self.transfer.sum()
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "calls": self.calls,
            "nbytes": self.nbytes,
            "compute_s": [float(v) for v in self.compute],
            "wait_s": [float(v) for v in self.wait],
            "transfer_s": [float(v) for v in self.transfer],
        }


class CommProfiler:
    """Live observer of :class:`CostTracker` charges.

    Parameters
    ----------
    nranks:
        Width of the per-rank accumulators (the tracker's rank count).
    """

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        #: per-rank totals over the whole run
        self.compute = np.zeros(nranks)
        self.wait = np.zeros(nranks)
        self.transfer = np.zeros(nranks)
        self.bytes_total = 0.0
        self.calls_total = 0
        #: fine-grained accounting keyed by (phase, charge label)
        self.cells: dict[tuple[str, str], PhaseCommStats] = {}

    # -- the tracker-facing entry point ---------------------------------------

    def record(self, event: "TraceEvent") -> None:
        """Observe one charged event (called by the tracker at charge time)."""
        ranks = list(event.participants(self.nranks))
        if any(r >= self.nranks for r in ranks):
            raise ValueError(
                f"event touches rank >= profiler width {self.nranks}"
            )
        cell = self._cell(event.phase, event.label, event.kind)
        cell.calls += 1
        self.calls_total += 1
        idx = np.asarray(ranks, dtype=int)
        if event.kind == "compute":
            cell.compute[idx] += event.seconds
            self.compute[idx] += event.seconds
            return
        waits = event.waits()
        if waits is not None:
            w = np.asarray(waits)
            cell.wait[idx] += w
            self.wait[idx] += w
        cell.transfer[idx] += event.seconds
        self.transfer[idx] += event.seconds
        cell.nbytes += event.nbytes
        self.bytes_total += event.nbytes

    # -- accounting identities -------------------------------------------------

    def totals_per_rank(self) -> np.ndarray:
        """compute + wait + transfer per rank (== tracker clocks)."""
        return self.compute + self.wait + self.transfer

    def reconcile(self, tracker: "CostTracker") -> float:
        """Max relative gap between profiled totals and the virtual clocks.

        0 (to roundoff) when the profiler saw every charge — the accounting
        identity behind the ``--comm`` table.
        """
        totals = self.totals_per_rank()
        scale = max(float(np.max(tracker.clocks)), 1e-300)
        return float(np.max(np.abs(totals - tracker.clocks)) / scale)

    # -- aggregate views -------------------------------------------------------

    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for phase, _ in self.cells:
            seen.setdefault(phase, None)
        return list(seen)

    def by_phase(self) -> dict[str, dict[str, Any]]:
        """Per-phase totals: the measured Fig. 5/6 quantities.

        ``efficiency`` is useful-compute over total rank-seconds;
        ``imbalance`` is (max−mean)/max over per-rank busy (compute) time —
        0 when no compute was charged in the phase.
        """
        out: dict[str, dict[str, Any]] = {}
        for (phase, _), cell in self.cells.items():
            agg = out.setdefault(phase, {
                "compute": np.zeros(self.nranks),
                "wait": np.zeros(self.nranks),
                "transfer": np.zeros(self.nranks),
                "nbytes": 0.0,
                "calls": 0,
            })
            agg["compute"] = agg["compute"] + cell.compute
            agg["wait"] = agg["wait"] + cell.wait
            agg["transfer"] = agg["transfer"] + cell.transfer
            agg["nbytes"] += cell.nbytes
            # "calls" counts communication events only; compute charges are
            # already reflected in compute_s
            if cell.kind != "compute":
                agg["calls"] += cell.calls
        for phase, agg in out.items():
            compute, wait, transfer = (
                agg["compute"], agg["wait"], agg["transfer"]
            )
            busy_max = float(compute.max())
            total = float(compute.sum() + wait.sum() + transfer.sum())
            agg["compute_s"] = float(compute.sum())
            agg["wait_s"] = float(wait.sum())
            agg["transfer_s"] = float(transfer.sum())
            agg["efficiency"] = (
                float(compute.sum()) / total if total > 0 else 1.0
            )
            agg["imbalance"] = (
                (busy_max - float(compute.mean())) / busy_max
                if busy_max > 0 else 0.0
            )
            # The laggard is the rank others align to: with synchronizing
            # charges in the phase it is the one that waited least; in a
            # pure-compute phase, the most loaded rank.
            if float(wait.sum()) > 0.0:
                agg["laggard"] = int(np.argmin(wait))
            else:
                agg["laggard"] = int(np.argmax(compute + transfer))
        return out

    def by_kind(self) -> dict[str, dict[str, float]]:
        """Per collective-kind totals (calls, bytes, transfer/wait seconds)."""
        out: dict[str, dict[str, float]] = {}
        for (_, label), cell in self.cells.items():
            if cell.kind == "compute":
                continue
            agg = out.setdefault(label, {
                "calls": 0, "nbytes": 0.0, "transfer_s": 0.0, "wait_s": 0.0,
            })
            agg["calls"] += cell.calls
            agg["nbytes"] += cell.nbytes
            agg["transfer_s"] += float(cell.transfer.sum())
            agg["wait_s"] += float(cell.wait.sum())
        return out

    def wait_fraction(self) -> float:
        """Laggard-induced wait as a fraction of all rank-seconds."""
        total = float(self.totals_per_rank().sum())
        return float(self.wait.sum()) / total if total > 0 else 0.0

    def parallel_efficiency(self) -> float:
        """Whole-run measured efficiency: compute / total rank-seconds."""
        total = float(self.totals_per_rank().sum())
        return float(self.compute.sum()) / total if total > 0 else 1.0

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump (the ``comm.json`` artifact payload)."""
        phases = {}
        for phase, agg in self.by_phase().items():
            phases[phase or "(unphased)"] = {
                "compute_s": agg["compute_s"],
                "wait_s": agg["wait_s"],
                "transfer_s": agg["transfer_s"],
                "nbytes": agg["nbytes"],
                "calls": agg["calls"],
                "efficiency": agg["efficiency"],
                "imbalance": agg["imbalance"],
                "laggard": agg["laggard"],
            }
        return {
            "nranks": self.nranks,
            "calls": self.calls_total,
            "nbytes": self.bytes_total,
            "compute_s": [float(v) for v in self.compute],
            "wait_s": [float(v) for v in self.wait],
            "transfer_s": [float(v) for v in self.transfer],
            "wait_fraction": self.wait_fraction(),
            "parallel_efficiency": self.parallel_efficiency(),
            "by_phase": phases,
            "by_kind": self.by_kind(),
        }

    # -- internals -------------------------------------------------------------

    def _cell(self, phase: str, label: str, kind: str) -> PhaseCommStats:
        key = (phase, label)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = PhaseCommStats(self.nranks, kind)
        return cell


def profile_events(
    events: Iterable["TraceEvent"], nranks: int
) -> CommProfiler:
    """Rebuild a profiler post hoc from a recorded event log."""
    profiler = CommProfiler(nranks)
    for event in events:
        profiler.record(event)
    return profiler
