"""Thread-based wall-clock sampling profiler for ``repro.*`` code.

A background thread periodically snapshots every live thread's Python stack
(``sys._current_frames``) and attributes each sample to the innermost frame
inside the ``repro`` package — plus, when a
:class:`~repro.observability.tracer.SpanTracer` is attached, the span phase
that thread currently has open.  Because sampling happens from *outside*
the measured threads, the hot path runs completely unmodified: the
zero-overhead contract holds trivially when no profiler is started, and
the enabled cost is one stack walk per thread per tick.

Outputs:

* :meth:`SamplingProfiler.table` / :func:`render_profile` — the self-profile
  accounting table (frame | phase | samples | %) behind
  ``python -m repro.observability.report <run> --profile``;
* :meth:`SamplingProfiler.chrome_events` — consecutive same-frame samples
  coalesced into Chrome-trace slices on their own pid
  (:data:`PROFILE_TRACE_PID`), so the statistical profile renders alongside
  the measured spans (pid 1), simulated ranks (pid 2), and health instants
  (pid 3) in one viewer;
* :meth:`SamplingProfiler.to_dict` — the ``profile.json`` run artifact.

The profiler is owned by :class:`~repro.observability.runlog.RunRecorder`
(``RunRecorder(profile=True)``) but is usable standalone.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import TYPE_CHECKING, Any

from repro.util.timer import WallClock

if TYPE_CHECKING:
    from repro.observability.tracer import SpanTracer

#: pid for profile slices in merged Chrome traces (spans=1, VM ranks=2,
#: health instants=3)
PROFILE_TRACE_PID = 4

_REPRO_NEEDLE = os.sep + "repro" + os.sep


def attribute_frame(frame) -> str | None:
    """``module:function`` of the innermost ``repro.*`` frame, else None."""
    f = frame
    while f is not None:
        filename = f.f_code.co_filename
        idx = filename.rfind(_REPRO_NEEDLE)
        if idx >= 0:
            rel = filename[idx + 1 : ]
            if rel.endswith(".py"):
                rel = rel[: -len(".py")]
            module = rel.replace(os.sep, ".")
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            return f"{module}:{f.f_code.co_name}"
        f = f.f_back
    return None


class SamplingProfiler:
    """Wall-clock stack sampler attributing time to ``repro.*`` frames."""

    def __init__(
        self,
        interval: float = 0.002,
        clock: WallClock | None = None,
        tracer: "SpanTracer | None" = None,
        max_samples: int = 200_000,
    ) -> None:
        self.interval = interval
        self.clock = clock or WallClock()
        self.tracer = tracer
        self.max_samples = max_samples
        #: (time, thread_id, frame, phase) tuples, in sampling order
        self.samples: list[tuple[float, int, str, str]] = []
        #: stack snapshots taken (>= len(samples): non-repro ticks attribute
        #: no sample but still count here)
        self.ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------------

    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            if len(self.samples) >= self.max_samples:
                break
            self._sample(own)

    def _sample(self, own_ident: int) -> None:
        t = self.clock.now()
        self.ticks += 1
        stacks = getattr(self.tracer, "_open_stacks", None)
        for tid, frame in sys._current_frames().items():
            if tid == own_ident:
                continue
            attributed = attribute_frame(frame)
            if attributed is None:
                continue
            phase = ""
            if stacks is not None:
                stack = stacks.get(tid)
                if stack:
                    phase = stack[-1].path or stack[-1].name
            self.samples.append((t, tid, attributed, phase))

    # -- aggregation ----------------------------------------------------------

    def table(self) -> list[dict[str, Any]]:
        """``{frame, phase, samples, percent}`` rows, heaviest first."""
        counts: dict[tuple[str, str], int] = {}
        for _, _, frame, phase in self.samples:
            counts[(frame, phase)] = counts.get((frame, phase), 0) + 1
        total = len(self.samples)
        return [
            {
                "frame": frame,
                "phase": phase,
                "samples": n,
                "percent": 100.0 * n / total if total else 0.0,
            }
            for (frame, phase), n in sorted(
                counts.items(), key=lambda kv: -kv[1]
            )
        ]

    def chrome_events(
        self, pid: int = PROFILE_TRACE_PID
    ) -> list[dict[str, Any]]:
        """Consecutive same-attribution samples coalesced into X slices."""
        by_tid: dict[int, list[tuple[float, str, str]]] = {}
        for t, tid, frame, phase in self.samples:
            by_tid.setdefault(tid, []).append((t, frame, phase))
        events: list[dict[str, Any]] = []
        gap = 4.0 * self.interval
        for tid, rows in by_tid.items():
            rows.sort(key=lambda r: r[0])
            run_start = run_end = None
            run_key: tuple[str, str] | None = None
            run_n = 0

            def flush() -> None:
                if run_key is None:
                    return
                events.append(
                    {
                        "name": run_key[0],
                        "cat": "profile",
                        "ph": "X",
                        "ts": run_start * 1e6,
                        "dur": max(run_end - run_start, self.interval) * 1e6,
                        "pid": pid,
                        "tid": tid % 2**31,
                        "args": {"phase": run_key[1], "samples": run_n},
                    }
                )

            for t, frame, phase in rows:
                key = (frame, phase)
                if run_key == key and t - run_end <= gap:
                    run_end = t
                    run_n += 1
                else:
                    flush()
                    run_key, run_start, run_end, run_n = key, t, t, 1
            flush()
        events.sort(key=lambda e: e["ts"])
        return events

    def to_dict(self) -> dict[str, Any]:
        """The ``profile.json`` payload."""
        return {
            "interval": self.interval,
            "ticks": self.ticks,
            "nsamples": len(self.samples),
            "rows": self.table(),
        }


def render_profile(profile: dict[str, Any], top: int | None = None) -> str:
    """Fixed-width self-profile table from a ``profile.json`` payload."""
    rows = profile.get("rows", [])
    if top is not None:
        rows = rows[:top]
    if not rows:
        return (
            f"no samples ({profile.get('ticks', 0)} ticks at "
            f"{profile.get('interval', 0.0):.4f}s interval; was the "
            "profiled code running long enough?)"
        )
    fw = max([len(r["frame"]) for r in rows] + [5])
    pw = max([len(r["phase"] or "-") for r in rows] + [5])
    lines = [
        f"{'frame':<{fw}}  {'phase':<{pw}}  {'samples':>7}  {'%':>6}"
    ]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(
            f"{r['frame']:<{fw}}  {r['phase'] or '-':<{pw}}  "
            f"{r['samples']:>7d}  {r['percent']:>6.2f}"
        )
    lines.append(
        f"\n{profile.get('nsamples', 0)} attributed samples over "
        f"{profile.get('ticks', 0)} ticks "
        f"(interval {profile.get('interval', 0.0):.4f}s)"
    )
    return "\n".join(lines)
