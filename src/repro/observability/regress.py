"""Schema'd performance ledger and regression gate for the BENCH record files.

Every benchmark in ``benchmarks/`` reports its measured rows through
``_harness.report(..., records=, schema=)``, which writes a machine-readable
``BENCH_<name>.json`` payload.  This module supplies the two halves of the
continuous-regression loop around those payloads:

* **Schemas** — :class:`FieldSpec` / :class:`RecordSchema` declare, per
  benchmark, which fields a record row carries, which fields identify a row
  (the ``key``), and the tolerance band + direction of acceptable drift for
  every compared metric.  The schema is embedded *in* the JSON payload, so
  the gate below never has to import benchmark code.
* **The gate** — :func:`compare_payloads` diffs a fresh payload against a
  committed baseline row-by-row, and the CLI wires that into CI::

      python -m repro.observability.regress                 # diff vs baselines
      python -m repro.observability.regress --update        # promote fresh
      python -m repro.observability.regress --require-all   # CI strict mode

  Exit status: 0 = no regressions, 1 = regression/validation failure,
  2 = usage or I/O error.

Tolerance semantics (the paper's Tables 1-2 style "within N%" bands): the
allowed band around a baseline value ``x`` is ``max(abs_tol, rel_tol·|x|)``.
``direction="lower"`` means lower-is-better — only an *increase* beyond the
band is a regression (wall-clock, error norms, iteration counts);
``"higher"`` means higher-is-better (GFLOP/s, efficiency); ``"both"`` flags
drift either way (physics constants, model outputs).  Host-dependent
measurements (raw timings, this-host DGEMM rates) are declared
``compare=False`` — recorded in the ledger, never gated.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable

#: payload layout version written by benchmarks/_harness.py — bumped when
#: the BENCH_*.json envelope itself changes shape.
SCHEMA_VERSION = 2

_DIRECTIONS = ("lower", "higher", "both")
_KINDS = ("float", "int", "str")


@dataclass(frozen=True)
class FieldSpec:
    """One declared column of a benchmark record row.

    ``direction`` states which way regressions point; ``rel_tol``/``abs_tol``
    set the tolerance band (see module docstring).  ``compare=False`` fields
    are validated and ledgered but never gated — use it for host-dependent
    measurements.
    """

    name: str
    kind: str = "float"
    required: bool = True
    compare: bool = True
    direction: str = "both"
    rel_tol: float = 0.05
    abs_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"field {self.name}: unknown kind {self.kind!r}")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"field {self.name}: unknown direction {self.direction!r}"
            )
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError(f"field {self.name}: tolerances must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FieldSpec":
        return cls(**data)


def metric_value(**overrides: Any) -> list[FieldSpec]:
    """The canonical field list of a *metric-style* schema: rows are
    ``{"metric": <name>, "value": <number>}`` and per-metric tolerance
    bands live in :attr:`RecordSchema.overrides`."""
    return [
        FieldSpec("metric", kind="str", compare=False),
        FieldSpec("value", **overrides),
    ]


@dataclass
class RecordSchema:
    """The declared shape of one benchmark's ``records=`` rows.

    ``key`` names the fields whose joined values identify a row across runs
    (empty key ⇒ the bench emits a single row).  ``overrides`` maps a row's
    key-string to ``{field: {spec kwargs}}`` replacements — how metric-style
    benches give every scalar its own band.
    """

    bench: str
    fields: list[FieldSpec]
    key: tuple[str, ...] = ()
    version: int = 1
    overrides: dict[str, dict[str, dict[str, Any]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.bench}: duplicate field declarations")
        for k in self.key:
            if k not in names:
                raise ValueError(f"{self.bench}: key field {k!r} undeclared")

    # -- row identity -------------------------------------------------------

    def row_key(self, record: dict[str, Any]) -> str:
        return "|".join(str(record.get(k)) for k in self.key)

    def spec_for(self, key_str: str, name: str) -> FieldSpec | None:
        for f in self.fields:
            if f.name == name:
                kw = self.overrides.get(key_str, {}).get(name)
                return dataclasses.replace(f, **kw) if kw else f
        return None

    # -- validation ---------------------------------------------------------

    def validate(self, records: Iterable[dict[str, Any]]) -> list[str]:
        """Schema-check a record list; returns human-readable problems."""
        errors: list[str] = []
        declared = {f.name: f for f in self.fields}
        seen_keys: set[str] = set()
        for i, rec in enumerate(records):
            where = f"{self.bench}[{i}]"
            if not isinstance(rec, dict):
                errors.append(f"{where}: record is not an object")
                continue
            for f in self.fields:
                if f.required and f.name not in rec:
                    errors.append(f"{where}: missing field {f.name!r}")
            for name, value in rec.items():
                spec = declared.get(name)
                if spec is None:
                    errors.append(f"{where}: undeclared field {name!r}")
                elif not _kind_ok(spec.kind, value):
                    errors.append(
                        f"{where}: field {name!r} is not {spec.kind} "
                        f"(got {type(value).__name__})"
                    )
            key = self.row_key(rec)
            if self.key and key in seen_keys:
                errors.append(f"{where}: duplicate row key {key!r}")
            seen_keys.add(key)
        return errors

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench,
            "version": self.version,
            "key": list(self.key),
            "fields": [f.to_dict() for f in self.fields],
            "overrides": self.overrides,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RecordSchema":
        return cls(
            bench=data["bench"],
            fields=[FieldSpec.from_dict(f) for f in data["fields"]],
            key=tuple(data.get("key", ())),
            version=int(data.get("version", 1)),
            overrides=dict(data.get("overrides", {})),
        )


def _kind_ok(kind: str, value: Any) -> bool:
    if value is None:
        return True  # required-ness is checked separately; None = absent
    if kind == "str":
        return isinstance(value, str)
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# -- comparison -------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """One row/field-level difference between baseline and fresh."""

    bench: str
    key: str
    field: str
    status: str  # "regression" | "missing_row" | "new_row" | "invalid"
    baseline: Any = None
    fresh: Any = None
    message: str = ""

    @property
    def gating(self) -> bool:
        """New rows are informational; everything else fails the gate."""
        return self.status != "new_row"

    def format(self) -> str:
        loc = f"{self.bench}[{self.key}]" if self.key else self.bench
        if self.status == "regression":
            return (
                f"REGRESSION {loc}.{self.field}: "
                f"baseline {self.baseline!r} -> fresh {self.fresh!r}"
                + (f" ({self.message})" if self.message else "")
            )
        if self.status == "missing_row":
            return f"MISSING    {loc}: row present in baseline, absent in fresh"
        if self.status == "new_row":
            return f"NEW        {loc}: row has no baseline (use --update)"
        return f"INVALID    {loc}: {self.message}"


def _band(spec: FieldSpec, baseline: float) -> float:
    return max(spec.abs_tol, spec.rel_tol * abs(baseline))


def _violates(spec: FieldSpec, baseline: Any, fresh: Any) -> str | None:
    """Tolerance-band check; returns a reason string on violation."""
    if spec.kind == "str":
        return "changed" if baseline != fresh else None
    if baseline is None and fresh is None:
        return None
    if baseline is None or fresh is None:
        return "value appeared/disappeared"
    if not _kind_ok("float", baseline) or not _kind_ok("float", fresh):
        # the kind violation is already reported by validate(); the row
        # simply cannot be banded
        return "value is not numeric"
    b, f = float(baseline), float(fresh)
    if math.isnan(b) and math.isnan(f):
        return None
    if math.isnan(b) != math.isnan(f):
        return "NaN-ness changed"
    band = _band(spec, b)
    if spec.direction == "lower" and f > b + band:
        return f"worse by {f - b:.4g} (band {band:.4g}, lower is better)"
    if spec.direction == "higher" and f < b - band:
        return f"worse by {b - f:.4g} (band {band:.4g}, higher is better)"
    if spec.direction == "both" and abs(f - b) > band:
        return f"drifted by {f - b:.4g} (band {band:.4g})"
    return None


def compare_payloads(
    baseline: dict[str, Any], fresh: dict[str, Any]
) -> list[Delta]:
    """Diff two ``BENCH_*.json`` payloads row-by-row under the schema.

    The *fresh* payload's embedded schema wins (it reflects the current
    code's declaration); the baseline's is the fallback for old payloads.
    """
    bench = str(fresh.get("bench") or baseline.get("bench") or "?")
    schema_dict = fresh.get("schema") or baseline.get("schema")
    if not schema_dict:
        return [
            Delta(bench, "", "", "invalid", message="no schema in payload")
        ]
    schema = RecordSchema.from_dict(schema_dict)
    deltas: list[Delta] = [
        Delta(bench, "", "", "invalid", message=err)
        for err in schema.validate(fresh.get("records", []))
    ]
    base_rows = {
        schema.row_key(r): r for r in baseline.get("records", [])
    }
    fresh_rows = {
        schema.row_key(r): r for r in fresh.get("records", [])
    }
    for key, base_row in base_rows.items():
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            deltas.append(Delta(bench, key, "", "missing_row"))
            continue
        for name in base_row:
            spec = schema.spec_for(key, name)
            if spec is None or not spec.compare:
                continue
            reason = _violates(spec, base_row.get(name), fresh_row.get(name))
            if reason is not None:
                deltas.append(
                    Delta(
                        bench, key, name, "regression",
                        baseline=base_row.get(name),
                        fresh=fresh_row.get(name),
                        message=reason,
                    )
                )
    for key in fresh_rows:
        if key not in base_rows:
            deltas.append(Delta(bench, key, "", "new_row"))
    return deltas


# -- CLI --------------------------------------------------------------------


def _load(path: pathlib.Path) -> dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def _bench_files(directory: pathlib.Path) -> dict[str, pathlib.Path]:
    return {
        p.name[len("BENCH_"):-len(".json")]: p
        for p in sorted(directory.glob("BENCH_*.json"))
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.regress",
        description="Diff fresh BENCH_*.json results against committed "
        "baselines; nonzero exit on regression.",
    )
    parser.add_argument(
        "--results", default="benchmarks/results",
        help="directory with fresh BENCH_*.json payloads",
    )
    parser.add_argument(
        "--runs", action="store_true",
        help="resolve fresh payloads through the run ledger "
        "(newest BENCH_*.json per bench under telemetry/runs/) instead "
        "of --results",
    )
    parser.add_argument(
        "--baselines", default="benchmarks/baselines",
        help="directory with committed baseline payloads",
    )
    parser.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        help="restrict to specific bench name(s)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="promote fresh payloads to baselines instead of diffing",
    )
    parser.add_argument(
        "--require-all", action="store_true",
        help="fail when a baselined bench has no fresh result (CI strict)",
    )
    args = parser.parse_args(argv)

    baselines_dir = pathlib.Path(args.baselines)
    if args.runs:
        from repro.observability.runlog import ledger_bench_files, runs_root

        fresh_files = ledger_bench_files()
        if not fresh_files:
            print(
                f"error: no ledger bench runs under {runs_root()}",
                file=sys.stderr,
            )
            return 2
    else:
        results_dir = pathlib.Path(args.results)
        if not results_dir.is_dir():
            print(
                f"error: results dir not found: {results_dir}",
                file=sys.stderr,
            )
            return 2
        fresh_files = _bench_files(results_dir)
    if args.bench:
        missing = sorted(set(args.bench) - set(fresh_files))
        if missing and not args.update:
            # tolerated unless strict: the selected bench may not have run
            for name in missing:
                print(f"note: no fresh result for --bench {name}")
        fresh_files = {
            k: v for k, v in fresh_files.items() if k in set(args.bench)
        }

    if args.update:
        baselines_dir.mkdir(parents=True, exist_ok=True)
        for name, path in sorted(fresh_files.items()):
            (baselines_dir / path.name).write_text(path.read_text())
            print(f"baseline updated: {name}")
        if not fresh_files:
            print("nothing to update", file=sys.stderr)
            return 2
        return 0

    if not baselines_dir.is_dir():
        print(
            f"error: baselines dir not found: {baselines_dir} "
            "(run with --update to create it)",
            file=sys.stderr,
        )
        return 2
    baseline_files = _bench_files(baselines_dir)
    if args.bench:
        baseline_files = {
            k: v for k, v in baseline_files.items() if k in set(args.bench)
        }

    gating = 0
    compared = 0
    skipped: list[str] = []
    for name, base_path in sorted(baseline_files.items()):
        fresh_path = fresh_files.get(name)
        if fresh_path is None:
            skipped.append(name)
            continue
        compared += 1
        for delta in compare_payloads(_load(base_path), _load(fresh_path)):
            print(delta.format())
            if delta.gating:
                gating += 1
    for name in sorted(set(fresh_files) - set(baseline_files)):
        print(f"NEW        {name}: bench has no baseline (use --update)")

    if skipped:
        verb = "FAIL" if args.require_all else "skipped"
        print(f"{verb}: no fresh result for {', '.join(skipped)}")
        if args.require_all:
            gating += len(skipped)
    print(
        f"regress: {compared} bench(es) compared, "
        f"{gating} gating difference(s)"
    )
    return 1 if gating else 0


if __name__ == "__main__":
    raise SystemExit(main())
