"""A lightweight pub/sub telemetry bus with a JSONL file sink.

The forward seam for QMD-as-a-service: spans, metric samples, health
verdicts, and comm-profiler summaries publish through one
:class:`TelemetryBus` so a future serving layer can subscribe to live
per-step telemetry without touching engine code.  The bus rides on the
:class:`~repro.observability.Instrumentation` facade
(``Instrumentation(stream=bus)``) and inherits its zero-overhead contract:
with no facade — or a facade without a bus — no publish call executes.

Events are plain dicts::

    {"topic": "qmd.step", "seq": 17, "time": 0.042, "data": {...}}

* **topics** are dotted names matching the span/metric convention
  (``span``, ``metric``, ``health``, ``comm.summary``, ...);
* **subscribers** are callables receiving the event dict; a subscription
  can filter by exact topic or by a ``"prefix.*"`` glob;
* **:class:`JsonlSink`** appends one JSON line per event to a file — the
  durable form a service process can tail — and is safe under concurrent
  publishing from ``ldc_workers`` threads.

Subscriber errors are contained: a raising subscriber is dropped after its
first failure (recorded on :attr:`TelemetryBus.dropped`), so telemetry can
never take down the simulation it observes.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterable

from repro.util.timer import WallClock

Subscriber = Callable[[dict[str, Any]], None]


class Subscription:
    """One registered subscriber with its topic filter."""

    __slots__ = ("callback", "topics", "active")

    def __init__(
        self, callback: Subscriber, topics: tuple[str, ...] | None
    ) -> None:
        self.callback = callback
        self.topics = topics
        self.active = True

    def matches(self, topic: str) -> bool:
        if self.topics is None:
            return True
        for pattern in self.topics:
            if pattern == topic:
                return True
            if pattern.endswith("*") and topic.startswith(pattern[:-1]):
                return True
        return False


class TelemetryBus:
    """In-memory publish/subscribe fan-out for telemetry events."""

    def __init__(self, clock: WallClock | None = None) -> None:
        self._clock = clock or WallClock()
        self._lock = threading.Lock()
        self._subs: list[Subscription] = []
        self._seq = 0
        self.published = 0
        #: subscribers removed after raising, as (repr, error message)
        self.dropped: list[tuple[str, str]] = []

    # -- wiring ---------------------------------------------------------------

    def subscribe(
        self,
        callback: Subscriber,
        topics: str | Iterable[str] | None = None,
    ) -> Subscription:
        """Register a subscriber; ``topics=None`` receives everything."""
        if isinstance(topics, str):
            topics = (topics,)
        sub = Subscription(
            callback, None if topics is None else tuple(topics)
        )
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.active = False
        with self._lock:
            self._subs = [s for s in self._subs if s is not sub]

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    # -- publishing ------------------------------------------------------------

    def publish(self, topic: str, **data: Any) -> dict[str, Any]:
        """Fan one event out to every matching subscriber."""
        with self._lock:
            self._seq += 1
            event = {
                "topic": topic,
                "seq": self._seq,
                "time": self._clock.now(),
                "data": data,
            }
            subs = list(self._subs)
            self.published += 1
        for sub in subs:
            if not sub.active or not sub.matches(topic):
                continue
            try:
                sub.callback(event)
            except Exception as exc:  # noqa: BLE001 - contain subscriber bugs
                self.unsubscribe(sub)
                self.dropped.append((repr(sub.callback), str(exc)))
        return event

    def close(self) -> None:
        """Close closable subscribers (e.g. :class:`JsonlSink`) and detach all."""
        with self._lock:
            subs = list(self._subs)
            self._subs = []
        for sub in subs:
            sub.active = False
            closer = getattr(sub.callback, "close", None)
            if callable(closer):
                closer()


class JsonlSink:
    """Append-only JSONL file subscriber (one event per line).

    Thread-safe: concurrent publishers (the ``ldc_workers`` fan-out) write
    whole lines under a lock, so the file is always a valid JSONL stream.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a")
        self.lines_written = 0

    def __call__(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=_stringify)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self.lines_written += 1

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


def attach_jsonl(bus: TelemetryBus, path, topics=None) -> JsonlSink:
    """Create a :class:`JsonlSink` on ``path`` and subscribe it."""
    sink = JsonlSink(path)
    bus.subscribe(sink, topics=topics)
    return sink


def read_jsonl(path, strict: bool = False) -> list[dict[str, Any]]:
    """Load a JSONL telemetry file back into event dicts (round-trip).

    A crash-time file (the flight recorder's ``blackbox.jsonl``, a sink
    killed mid-write) ends mid-record by construction, so by default a
    malformed *final* line is dropped rather than raised on; corruption
    anywhere earlier — and any malformed line under ``strict=True`` —
    still raises :class:`json.JSONDecodeError`.
    """
    events = []
    with open(path) as fh:
        lines = [ln.strip() for ln in fh]
    while lines and not lines[-1]:
        lines.pop()
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or i != len(lines) - 1:
                raise
    return events


def _stringify(obj: Any) -> Any:
    """JSON fallback: numpy scalars via .item(), everything else repr'd."""
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)
