"""Per-phase breakdown reports from Chrome-trace JSON.

Renders the paper-style accounting table (phase | total | calls | mean | %)
from a trace produced by :class:`~repro.observability.tracer.SpanTracer`,
:meth:`Instrumentation.write_trace`, or the :class:`CostTracker` adapter::

    python -m repro.observability.report trace.json
    python -m repro.observability.report trace.json --by cat --top 10

The percentage column is relative to the trace's wall-clock extent
(max end − min start over the selected events), matching how the paper
reports per-phase fractions of the run (Sec. 4.2).

``--flops`` switches to the roofline-style accounting of Tables 1-2:
per-phase time, estimated FLOPs (attributed from the solve sizes stamped
on spans via :mod:`repro.observability.costattr`), achieved GFLOP/s, and —
with ``--peak-gflops`` — the achieved fraction of peak.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def load_trace(path) -> list[dict[str, Any]]:
    """Read a Chrome-trace file; accepts both the object format
    (``{"traceEvents": [...]}``) and the bare JSON-array format."""
    with open(path) as fh:
        data = json.load(fh)
    events = data["traceEvents"] if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace")
    return events


def duration_events(
    events: list[dict[str, Any]], pid: int | None = None
) -> list[dict[str, Any]]:
    """Complete (``"X"``) events, optionally filtered to one pid."""
    out = []
    for e in events:
        if e.get("ph") != "X":
            continue
        if pid is not None and e.get("pid") != pid:
            continue
        out.append(e)
    return out


def phase_breakdown(
    events: list[dict[str, Any]],
    by: str = "name",
    pid: int | None = None,
) -> dict[str, dict[str, float]]:
    """Aggregate ``"X"`` events by name (or category).

    Returns ``{phase: {"seconds", "calls", "mean", "percent"}}`` sorted by
    descending total, with percent relative to the wall-clock extent.
    """
    evs = duration_events(events, pid=pid)
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    t0 = float("inf")
    t1 = float("-inf")
    for e in evs:
        key = str(e.get(by) or e.get("name") or "?")
        dur = float(e.get("dur", 0.0))
        ts = float(e.get("ts", 0.0))
        totals[key] = totals.get(key, 0.0) + dur
        counts[key] = counts.get(key, 0) + 1
        t0 = min(t0, ts)
        t1 = max(t1, ts + dur)
    wall_us = max(t1 - t0, 0.0) if evs else 0.0
    out: dict[str, dict[str, float]] = {}
    for key in sorted(totals, key=lambda k: -totals[k]):
        sec = totals[key] / 1e6
        out[key] = {
            "seconds": sec,
            "calls": counts[key],
            "mean": sec / counts[key],
            "percent": 100.0 * totals[key] / wall_us if wall_us > 0 else 0.0,
        }
    return out


def render_breakdown(
    breakdown: dict[str, dict[str, float]], top: int | None = None
) -> str:
    """The paper-style fixed-width table."""
    rows = list(breakdown.items())
    if top is not None:
        rows = rows[:top]
    width = max([len(k) for k, _ in rows] + [5])
    lines = [
        f"{'phase':<{width}}  {'total[s]':>12}  {'calls':>7}  "
        f"{'mean[s]':>12}  {'% wall':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for key, rec in rows:
        lines.append(
            f"{key:<{width}}  {rec['seconds']:>12.6f}  {rec['calls']:>7d}  "
            f"{rec['mean']:>12.6f}  {rec['percent']:>7.2f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.report",
        description="Per-phase wall-clock breakdown of a Chrome-trace JSON.",
    )
    parser.add_argument("trace", help="path to a trace .json file")
    parser.add_argument(
        "--by", choices=("name", "cat"), default="name",
        help="aggregate by span name (default) or category",
    )
    parser.add_argument(
        "--pid", type=int, default=None,
        help="restrict to one trace pid (1=real spans, 2=simulated ranks)",
    )
    parser.add_argument(
        "--top", type=int, default=None, help="show only the N largest phases"
    )
    parser.add_argument(
        "--flops", action="store_true",
        help="roofline-style table: per-phase time, estimated FLOPs "
             "(from repro.perfmodel.flops), achieved GFLOP/s",
    )
    parser.add_argument(
        "--peak-gflops", type=float, default=None,
        help="machine peak used for the %% of peak column in --flops mode",
    )
    args = parser.parse_args(argv)

    try:
        events = load_trace(args.trace)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.flops:
        from repro.observability.costattr import render_roofline, roofline_table

        table = roofline_table(
            duration_events(events, pid=args.pid),
            peak_gflops=args.peak_gflops,
        )
        if not table:
            print("trace contains no duration events")
            return 1
        print(render_roofline(table, top=args.top))
        return 0
    breakdown = phase_breakdown(events, by=args.by, pid=args.pid)
    if not breakdown:
        print("trace contains no duration events")
        return 1
    print(render_breakdown(breakdown, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
