"""Per-phase breakdown reports from Chrome-trace JSON.

Renders the paper-style accounting table (phase | total | calls | mean | %)
from a trace produced by :class:`~repro.observability.tracer.SpanTracer`,
:meth:`Instrumentation.write_trace`, or the :class:`CostTracker` adapter::

    python -m repro.observability.report trace.json
    python -m repro.observability.report trace.json --by cat --top 10

The positional argument also accepts a run directory or a (prefix of a)
ledger run id — the trace is resolved through the run ledger
(:mod:`repro.observability.runlog`), dropped-subscriber counts recorded in
the manifest are surfaced as warnings, and ``--profile`` renders the
sampling profiler's self-profile table from the run's ``profile.json``::

    python -m repro.observability.report 20260808-143022-qmd-1a2b3c
    python -m repro.observability.report telemetry/runs/<run_id> --profile

The percentage column is relative to the trace's wall-clock extent
(max end − min start over the selected events), matching how the paper
reports per-phase fractions of the run (Sec. 4.2).

``--flops`` switches to the roofline-style accounting of Tables 1-2:
per-phase time, estimated FLOPs (attributed from the solve sizes stamped
on spans via :mod:`repro.observability.costattr`), achieved GFLOP/s, and —
with ``--peak-gflops`` — the achieved fraction of peak.

Two views read the *virtual machine* lanes of the trace (the simulated-rank
slices exported under ``pid=2``, stamped with ``seq``/``kind``/``phase``/
``wait`` args by :mod:`repro.observability.cost_trace`):

* ``--comm`` — the communication observatory table: per algorithmic phase,
  compute / transfer / wait rank-seconds, bytes moved, collective calls,
  parallel efficiency, load imbalance, and the laggard rank (the Fig. 5/6
  quantities, measured rather than modeled);
* ``--critical-path`` — the longest dependency chain through the rank
  timelines: which rank's which segment the run is actually waiting on.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any


def resolve_run(arg) -> tuple[pathlib.Path, pathlib.Path | None]:
    """Resolve the CLI's positional argument to ``(trace_path, run_dir)``.

    Accepts a trace file, a run directory (containing ``trace.json``), or a
    ledger run id / unique prefix; ``run_dir`` is ``None`` for a bare file.
    """
    path = pathlib.Path(arg)
    if path.is_dir():
        return path / "trace.json", path
    if path.exists():
        return path, None
    from repro.observability.runlog import find_run

    run_dir = find_run(str(arg))  # raises FileNotFoundError with detail
    return run_dir / "trace.json", run_dir


def _warn_dropped(run_dir: pathlib.Path) -> None:
    """Surface the manifest's dropped-subscriber records on stderr."""
    from repro.observability.runlog import load_manifest

    try:
        manifest = load_manifest(run_dir)
    except (OSError, json.JSONDecodeError):
        return
    dropped = manifest.get("telemetry", {}).get("dropped") or []
    if dropped:
        print(
            f"warning: {len(dropped)} telemetry subscriber(s) were dropped "
            "mid-run; events published after the drop are missing from "
            "the artifacts:",
            file=sys.stderr,
        )
        for entry in dropped:
            sub, err = (list(entry) + ["", ""])[:2]
            print(f"  {sub}: {err}", file=sys.stderr)


def load_trace(path) -> list[dict[str, Any]]:
    """Read a Chrome-trace file; accepts both the object format
    (``{"traceEvents": [...]}``) and the bare JSON-array format."""
    with open(path) as fh:
        data = json.load(fh)
    events = data["traceEvents"] if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace")
    return events


def duration_events(
    events: list[dict[str, Any]], pid: int | None = None
) -> list[dict[str, Any]]:
    """Complete (``"X"``) events, optionally filtered to one pid."""
    out = []
    for e in events:
        if e.get("ph") != "X":
            continue
        if pid is not None and e.get("pid") != pid:
            continue
        out.append(e)
    return out


def phase_breakdown(
    events: list[dict[str, Any]],
    by: str = "name",
    pid: int | None = None,
) -> dict[str, dict[str, float]]:
    """Aggregate ``"X"`` events by name (or category).

    Returns ``{phase: {"seconds", "calls", "mean", "percent"}}`` sorted by
    descending total, with percent relative to the wall-clock extent.
    """
    evs = duration_events(events, pid=pid)
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    t0 = float("inf")
    t1 = float("-inf")
    for e in evs:
        key = str(e.get(by) or e.get("name") or "?")
        dur = float(e.get("dur", 0.0))
        ts = float(e.get("ts", 0.0))
        totals[key] = totals.get(key, 0.0) + dur
        counts[key] = counts.get(key, 0) + 1
        t0 = min(t0, ts)
        t1 = max(t1, ts + dur)
    wall_us = max(t1 - t0, 0.0) if evs else 0.0
    out: dict[str, dict[str, float]] = {}
    for key in sorted(totals, key=lambda k: -totals[k]):
        sec = totals[key] / 1e6
        out[key] = {
            "seconds": sec,
            "calls": counts[key],
            "mean": sec / counts[key],
            "percent": 100.0 * totals[key] / wall_us if wall_us > 0 else 0.0,
        }
    return out


def render_breakdown(
    breakdown: dict[str, dict[str, float]], top: int | None = None
) -> str:
    """The paper-style fixed-width table."""
    rows = list(breakdown.items())
    if top is not None:
        rows = rows[:top]
    width = max([len(k) for k, _ in rows] + [5])
    lines = [
        f"{'phase':<{width}}  {'total[s]':>12}  {'calls':>7}  "
        f"{'mean[s]':>12}  {'% wall':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for key, rec in rows:
        lines.append(
            f"{key:<{width}}  {rec['seconds']:>12.6f}  {rec['calls']:>7d}  "
            f"{rec['mean']:>12.6f}  {rec['percent']:>7.2f}"
        )
    return "\n".join(lines)


def comm_breakdown(
    events: list[dict[str, Any]], pid: int | None = None
):
    """Rebuild a :class:`~repro.observability.comms.CommProfiler` from the
    virtual-machine slices of a Chrome trace.

    Returns ``None`` when the trace holds no VM events (e.g. a spans-only
    trace recorded without an attached :class:`CostTracker`).
    """
    from repro.observability.comms import profile_events
    from repro.observability.cost_trace import COST_TRACE_PID
    from repro.observability.critpath import events_from_chrome

    vm_events, nranks = events_from_chrome(
        events, pid=COST_TRACE_PID if pid is None else pid
    )
    if not vm_events:
        return None
    return profile_events(vm_events, nranks)


def render_comm(profiler) -> str:
    """The observatory table: per-phase decomposition + per-kind traffic."""
    by_phase = profiler.by_phase()
    width = max([len(p or "(unphased)") for p in by_phase] + [5])
    lines = [
        f"{'phase':<{width}}  {'compute[s]':>11}  {'transfer[s]':>11}  "
        f"{'wait[s]':>11}  {'bytes':>12}  {'calls':>6}  {'eff':>6}  "
        f"{'imbal':>6}  {'laggard':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for phase, agg in sorted(
        by_phase.items(), key=lambda kv: -kv[1]["compute_s"]
    ):
        lines.append(
            f"{phase or '(unphased)':<{width}}  {agg['compute_s']:>11.6f}  "
            f"{agg['transfer_s']:>11.6f}  {agg['wait_s']:>11.6f}  "
            f"{agg['nbytes']:>12.0f}  {agg['calls']:>6d}  "
            f"{agg['efficiency']:>6.3f}  {agg['imbalance']:>6.3f}  "
            f"{agg['laggard']:>7d}"
        )
    by_kind = profiler.by_kind()
    if by_kind:
        lines.append("")
        kwidth = max([len(k) for k in by_kind] + [10])
        lines.append(
            f"{'collective':<{kwidth}}  {'calls':>6}  {'bytes':>12}  "
            f"{'transfer[s]':>11}  {'wait[s]':>11}"
        )
        lines.append("-" * len(lines[-1]))
        for label, agg in sorted(
            by_kind.items(), key=lambda kv: -kv[1]["transfer_s"]
        ):
            lines.append(
                f"{label:<{kwidth}}  {agg['calls']:>6d}  {agg['nbytes']:>12.0f}  "
                f"{agg['transfer_s']:>11.6f}  {agg['wait_s']:>11.6f}"
            )
    lines.append("")
    lines.append(
        f"ranks: {profiler.nranks}   "
        f"parallel efficiency: {profiler.parallel_efficiency():.4f}   "
        f"wait fraction: {profiler.wait_fraction():.4f}   "
        f"total bytes: {profiler.bytes_total:.0f}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.report",
        description="Per-phase wall-clock breakdown of a Chrome-trace JSON.",
    )
    parser.add_argument(
        "trace",
        help="a trace .json file, a run directory, or a ledger run id",
    )
    parser.add_argument(
        "--by", choices=("name", "cat"), default="name",
        help="aggregate by span name (default) or category",
    )
    parser.add_argument(
        "--pid", type=int, default=None,
        help="restrict to one trace pid (1=real spans, 2=simulated ranks)",
    )
    parser.add_argument(
        "--top", type=int, default=None, help="show only the N largest phases"
    )
    parser.add_argument(
        "--flops", action="store_true",
        help="roofline-style table: per-phase time, estimated FLOPs "
             "(from repro.perfmodel.flops), achieved GFLOP/s",
    )
    parser.add_argument(
        "--peak-gflops", type=float, default=None,
        help="machine peak used for the %% of peak column in --flops mode",
    )
    parser.add_argument(
        "--comm", action="store_true",
        help="communication observatory: per-phase compute/transfer/wait, "
             "bytes, efficiency, imbalance, laggard (from the VM lanes)",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="walk the simulated-rank timelines and print the critical "
             "path (the dependency chain the run actually waits on)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="render the sampling profiler's self-profile table from the "
             "run's profile.json (requires a run directory or run id)",
    )
    args = parser.parse_args(argv)

    try:
        trace_path, run_dir = resolve_run(args.trace)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if run_dir is not None:
        _warn_dropped(run_dir)
    if args.profile:
        from repro.observability.profiler import render_profile

        if run_dir is None:
            print(
                "error: --profile needs a run directory or run id "
                "(profile.json lives next to the trace)",
                file=sys.stderr,
            )
            return 2
        profile_path = run_dir / "profile.json"
        if not profile_path.is_file():
            print(
                f"error: {profile_path} not found; was the run recorded "
                "with RunRecorder(profile=True)?",
                file=sys.stderr,
            )
            return 2
        with open(profile_path) as fh:
            print(render_profile(json.load(fh), top=args.top))
        return 0
    try:
        events = load_trace(trace_path)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.comm or args.critical_path:
        from repro.observability.cost_trace import COST_TRACE_PID
        from repro.observability.critpath import (
            critical_path,
            events_from_chrome,
            render_critical_path,
        )

        vm_events, nranks = events_from_chrome(
            events, pid=COST_TRACE_PID if args.pid is None else args.pid
        )
        if not vm_events:
            print(
                "trace contains no virtual-machine events (pid "
                f"{COST_TRACE_PID if args.pid is None else args.pid}); "
                "was the run recorded with an attached CostTracker?",
                file=sys.stderr,
            )
            return 1
        if args.comm:
            from repro.observability.comms import profile_events

            print(render_comm(profile_events(vm_events, nranks)))
            if args.critical_path:
                print()
        if args.critical_path:
            segments = critical_path(vm_events, nranks)
            print(render_critical_path(segments, top=args.top))
        return 0
    if args.flops:
        from repro.observability.costattr import render_roofline, roofline_table

        table = roofline_table(
            duration_events(events, pid=args.pid),
            peak_gflops=args.peak_gflops,
        )
        if not table:
            print("trace contains no duration events")
            return 1
        print(render_roofline(table, top=args.top))
        return 0
    breakdown = phase_breakdown(events, by=args.by, pid=args.pid)
    if not breakdown:
        print("trace contains no duration events")
        return 1
    print(render_breakdown(breakdown, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
