"""Structured logging under the ``repro.*`` namespace.

Silent by default: the root ``repro`` logger gets a ``NullHandler`` so
importing the package never prints anything.  Call
:func:`configure_logging` (or set the ``REPRO_LOG`` environment variable)
to attach a real handler:

* ``REPRO_LOG=info`` — human-readable lines at INFO;
* ``REPRO_LOG=debug`` + ``REPRO_LOG_FORMAT=json`` — one JSON object per
  line (machine-parseable, includes any ``extra={...}`` fields).

Drivers log through :func:`get_logger`, e.g. ``get_logger("dft.scf")`` →
the stdlib logger ``repro.dft.scf``, so standard ``logging`` configuration
(filters, per-module levels) applies unchanged.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any

ROOT_LOGGER = "repro"

#: logging.LogRecord attributes that are not user-supplied extras
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JSONFormatter(logging.Formatter):
    """Formats each record as a single-line JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = _coerce(value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def _coerce(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def get_logger(name: str = "") -> logging.Logger:
    """Logger in the ``repro.*`` namespace (``get_logger("dft.scf")``)."""
    _ensure_null_handler()
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_logging(
    level: int | str | None = None,
    json_format: bool | None = None,
    stream=None,
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger.

    Arguments override the environment (``REPRO_LOG`` for the level,
    ``REPRO_LOG_FORMAT=json|text``).  With no argument and no environment,
    the level defaults to WARNING.  Calling again replaces the previously
    configured handler rather than stacking duplicates.
    """
    if level is None:
        level = os.environ.get("REPRO_LOG", "WARNING")
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.WARNING)
    if json_format is None:
        json_format = os.environ.get("REPRO_LOG_FORMAT", "text").lower() == "json"

    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_configured = True
    if json_format:
        handler.setFormatter(JSONFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    return root


def logging_enabled_from_env() -> bool:
    """True when the environment opts into logging output."""
    return "REPRO_LOG" in os.environ


def _ensure_null_handler() -> None:
    root = logging.getLogger(ROOT_LOGGER)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
