"""Write-versioning race detector for the ``ldc_workers`` thread fan-out.

The LDC thread pool's correctness contract (DESIGN.md §11) is *post-join
discipline*: workers read shared buffers (density, potentials,
:class:`~repro.core.workspace.LDCWorkspace` state) but only the
coordinating thread writes them, after the join.  RP007 enforces the
pattern statically; this module enforces it at runtime, two ways:

* :meth:`RaceSanitizer.guard_readonly` — a ``with`` block protecting named
  arrays over a fan-out region.  On entry each buffer's ``writeable`` flag
  is dropped (an in-place write then raises *at the write site*, the best
  possible diagnostic) and a sampled content fingerprint is taken; on exit
  flags are restored and fingerprints re-verified, so writes through
  pre-existing views — which bypass the flag — are still caught and named.
* :meth:`RaceSanitizer.exclusive` — an ownership claim on a logical
  resource (e.g. one DC domain's eigenstates).  Two live claims on the
  same key is a race, diagnosed with both owners and thread names.

Everything raises :class:`RaceError` with the buffer/claim name — never a
corrupted density three SCF steps later.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping

import numpy as np

from repro.sanitize.collective import SanitizerError


class RaceError(SanitizerError):
    """A shared buffer changed under a fan-out, or an ownership collision."""


#: Cap on bytes fingerprinted per buffer (sampled stride keeps cost flat).
_FINGERPRINT_SAMPLE = 4096


def _fingerprint(arr: np.ndarray) -> str:
    """Order-stable sampled digest of an array's contents."""
    flat = arr.reshape(-1)
    stride = max(1, flat.size // _FINGERPRINT_SAMPLE)
    sample = np.ascontiguousarray(flat[::stride])
    digest = hashlib.blake2b(sample.view(np.uint8), digest_size=16)
    digest.update(str((arr.shape, arr.dtype)).encode())
    return digest.hexdigest()


class RaceSanitizer:
    """Runtime enforcement of the post-join write discipline."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claims: dict[object, tuple[str, str]] = {}
        self.checks = 0
        self.guarded = 0

    @contextmanager
    def guard_readonly(self, buffers: Mapping[str, np.ndarray]) -> Iterator[None]:
        """Freeze ``buffers`` for the duration of a worker fan-out."""
        frozen: list[tuple[str, np.ndarray, bool]] = []
        prints: dict[str, str] = {}
        for name, arr in buffers.items():
            self.guarded += 1
            prints[name] = _fingerprint(arr)
            frozen.append((name, arr, bool(arr.flags.writeable)))
            try:
                arr.flags.writeable = False
            except ValueError:  # pragma: no cover - non-owning view
                pass  # fingerprint still catches writes through the base
        try:
            yield
        finally:
            for name, arr, was_writeable in frozen:
                try:
                    arr.flags.writeable = was_writeable
                except ValueError:  # pragma: no cover - non-owning view
                    pass
            for name, arr, _ in frozen:
                self.checks += 1
                if _fingerprint(arr) != prints[name]:
                    raise RaceError(
                        f"shared buffer {name!r} changed during a "
                        f"guarded worker fan-out — a worker wrote state "
                        f"it does not own; fold results on the "
                        f"coordinating thread after the join"
                    )

    @contextmanager
    def exclusive(self, key: object, owner: str) -> Iterator[None]:
        """Claim exclusive ownership of ``key`` (e.g. one DC domain)."""
        me = threading.current_thread().name
        with self._lock:
            self.checks += 1
            holder = self._claims.get(key)
            if holder is not None:
                raise RaceError(
                    f"concurrent ownership of {key!r}: {owner!r} (thread "
                    f"{me!r}) claimed it while {holder[0]!r} (thread "
                    f"{holder[1]!r}) still holds it — two workers are "
                    f"processing the same unit of work"
                )
            self._claims[key] = (owner, me)
        try:
            yield
        finally:
            with self._lock:
                self._claims.pop(key, None)
