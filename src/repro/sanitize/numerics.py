"""Numerics sanitizer: NaN/Inf and silent-precision tripwires on hot paths.

A NaN born in one domain's eigensolve is *legal* all the way through
density assembly, mixing, the Hartree solve, and an ``allreduce`` — by
the time the energy prints ``nan`` the trail is cold.  The sanitizer
turns the first non-finite value (or a silent dtype demotion, e.g. a
complex wavefunction collapsing to float or ``float64`` state downcast to
``float32``) into an immediate :class:`NumericsError` naming the array
and the checkpoint that caught it.

Checks are explicit calls (``numerics.check("rho_new", rho)``) placed at
the SCF/LDC/multigrid checkpoints by the drivers, guarded by the facade's
``is-not-None`` test, so the disabled path executes zero sanitizer code.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.sanitize.collective import SanitizerError


class NumericsError(SanitizerError):
    """A checked array carried NaN/Inf or silently lost precision."""


#: dtype kind+size floors: demotion = same kind, smaller itemsize, or a
#: complex array arriving where the reference was complex (kind change).
def _is_demotion(ref: np.dtype, got: np.dtype) -> bool:
    if ref == got:
        return False
    if ref.kind == "c" and got.kind in ("f", "i"):
        return True  # complex data silently collapsed to real
    if ref.kind == got.kind and got.itemsize < ref.itemsize:
        return True  # f64 → f32, c128 → c64
    if ref.kind == "f" and got.kind == "i":
        return True  # float state truncated to integer
    return False


class NumericsSanitizer:
    """NaN/Inf and dtype-demotion tripwires.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`NumericsError` at the first
        bad checkpoint; ``"collect"`` records every event in
        :attr:`events` and keeps going (for surveying a long run).
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.checks = 0
        self.events: list[str] = []

    def _report(self, message: str) -> None:
        if self.mode == "raise":
            raise NumericsError(message)
        self.events.append(message)

    def check(
        self,
        name: str,
        value: Any,
        where: str = "",
        expect_dtype: np.dtype | type | str | None = None,
    ) -> Any:
        """Validate one checkpoint; returns ``value`` for inline use."""
        self.checks += 1
        at = f" at {where}" if where else ""
        arr = np.asarray(value)
        if arr.dtype.kind in ("f", "c"):
            if not np.all(np.isfinite(arr)):
                bad = int(np.count_nonzero(~np.isfinite(arr)))
                self._report(
                    f"non-finite values in {name!r}{at}: {bad} of "
                    f"{arr.size} entries are NaN/Inf (dtype {arr.dtype}) "
                    f"— first poisoned checkpoint on this path"
                )
        if expect_dtype is not None:
            ref = np.dtype(expect_dtype)
            if _is_demotion(ref, arr.dtype):
                self._report(
                    f"silent dtype demotion in {name!r}{at}: expected "
                    f"{ref} but got {arr.dtype} — precision (or the "
                    f"imaginary part) was dropped without an explicit cast"
                )
        return value
