"""Collective-schedule sanitizer: SPMD divergence → immediate diagnosis.

Two coupled tools (DESIGN.md §13):

* :class:`CollectiveScheduleSanitizer` — an observer a
  :class:`~repro.parallel.comm.VirtualComm` calls before every collective
  (``comm.sanitizer``).  It keeps a per-communicator schedule ledger and
  verifies what the simulated-MPI call signature *can't*: the root is a
  valid rank (``root=-1`` silently "works" via Python indexing), and
  elementwise collectives (``reduce``/``allreduce``) get congruent
  payloads on every rank — a mismatched shape broadcasts silently and
  produces a wrong answer instead of the crash real MPI would give.

* :func:`run_spmd` — true SPMD emulation: one thread per rank runs the
  same function against a :class:`RankComm` proxy.  Every collective is a
  rendezvous keyed by (kind, root, nbytes class, sequence number); a rank
  entering a *different* collective raises :class:`CollectiveMismatchError`
  naming every rank's pending operation and call site, and a rank that
  never arrives turns the hang into a :class:`DeadlockError` within
  ``timeout`` seconds, naming who waits where and who is missing.  This is
  what converts the paper's dominant at-scale failure mode — a
  rank-conditional collective — from a silent hang into a diagnostic.
"""

from __future__ import annotations

import math
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.parallel.comm import VirtualComm


class SanitizerError(RuntimeError):
    """Base class for every runtime-sanitizer diagnosis."""


class CollectiveMismatchError(SanitizerError):
    """Ranks disagreed about which collective (or payload) comes next."""


class DeadlockError(SanitizerError):
    """A collective or recv waited past the timeout for missing ranks."""


#: Collectives whose ``root`` must be a valid member rank.
_ROOTED = {"bcast", "reduce", "gather", "scatter"}
#: Elementwise collectives: every rank's payload must be congruent.
_ELEMENTWISE = {"reduce", "allreduce"}


def _nbytes_class(value: Any) -> int:
    """log2 size bucket: payloads in the same bucket are 'the same size'."""
    # Deferred import: repro.parallel pulls in repro.core (halo exchange),
    # whose drivers import this package — a module-level import would cycle.
    from repro.parallel.comm import _nbytes

    n = _nbytes(value)
    return -1 if n <= 0 else int(math.log2(n))


def _payload_sig(value: Any) -> str:
    """Human-readable payload signature for congruence diagnostics."""
    if value is None:
        return "None"
    if isinstance(value, np.ndarray):
        return f"ndarray{tuple(value.shape)}:{value.dtype}"
    return f"{type(value).__name__}(~2^{_nbytes_class(value)} B)"


def _call_site() -> str:
    """First stack frame outside this package — where the user called from.

    Matched on the package *directory* (``.../sanitize/...``) so a user
    file that merely mentions sanitize in its name is still reported.
    """
    for frame in reversed(traceback.extract_stack()):
        if "/sanitize/" not in frame.filename.replace("\\", "/"):
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


# -- whole-communicator observer ----------------------------------------------


@dataclass
class ScheduleEntry:
    """One collective as the attached sanitizer saw it."""

    comm: str
    kind: str
    root: int | None
    payload_classes: tuple[int, ...]
    site: str


class CollectiveScheduleSanitizer:
    """Observer for :class:`VirtualComm` (``comm.sanitizer``).

    ``record`` runs before the collective executes, so a diagnosis aborts
    the bad operation instead of describing it post mortem.
    """

    def __init__(self) -> None:
        self.ledger: list[ScheduleEntry] = []
        self.checks = 0

    def record(
        self,
        comm: VirtualComm,
        kind: str,
        root: int | None,
        values: Sequence[Any] | None,
    ) -> None:
        self.checks += 1
        site = _call_site()
        classes: tuple[int, ...] = ()
        if values is not None and kind != "alltoall":
            classes = tuple(_nbytes_class(v) for v in values)
        self.ledger.append(ScheduleEntry(comm.name, kind, root, classes, site))
        if kind in _ROOTED and root is not None:
            if not 0 <= root < comm.size:
                raise CollectiveMismatchError(
                    f"{kind} on comm {comm.name!r} at {site}: root={root} "
                    f"is outside [0, {comm.size}) — Python indexing makes "
                    f"a negative root 'work' silently, real MPI aborts"
                )
        if kind in _ELEMENTWISE and values is not None:
            self._check_congruence(comm, kind, values, site)

    def _check_congruence(
        self,
        comm: VirtualComm,
        kind: str,
        values: Sequence[Any],
        site: str,
    ) -> None:
        sigs = [_payload_sig(v) for v in values]
        counts: dict[str, int] = {}
        for s in sigs:
            counts[s] = counts.get(s, 0) + 1
        if len(counts) <= 1:
            return
        majority = max(counts, key=lambda s: counts[s])
        divergent = [r for r, s in enumerate(sigs) if s != majority]
        detail = ", ".join(f"rank {r} holds {sigs[r]}" for r in divergent)
        raise CollectiveMismatchError(
            f"{kind} on comm {comm.name!r} at {site}: incongruent "
            f"payloads — majority of ranks hold {majority} but {detail}; "
            f"an elementwise collective over mismatched payloads "
            f"broadcasts/crashes instead of reducing"
        )


# -- SPMD emulation (one thread per rank) -------------------------------------


class _Session:
    """Shared state for one :func:`run_spmd` call."""

    def __init__(self, timeout: float) -> None:
        self.timeout = timeout
        self.cond = threading.Condition()
        self.finished: set[int] = set()  # world ranks whose fn returned
        self.failure: BaseException | None = None

    def fail(self, exc: BaseException) -> None:
        """First failure wins; wake every waiter (caller holds the lock)."""
        if self.failure is None:
            self.failure = exc
        self.cond.notify_all()


class SpmdAborted(SanitizerError):
    """Secondary error raised in ranks unwound after another rank failed."""


@dataclass
class _Slot:
    """One rendezvous: the Nth collective on a communicator."""

    kind: str
    root: int | None
    nbytes_class: int | None
    op: Callable[[Any, Any], Any] | None
    values: dict[int, Any] = field(default_factory=dict)
    sites: dict[int, str] = field(default_factory=dict)
    results: dict[int, Any] | None = None
    error: BaseException | None = None

    def describe(self, comm: "_SpmdComm") -> str:
        who = ", ".join(
            f"rank {comm.world_ranks[r]} at {self.sites[r]}"
            for r in sorted(self.values)
        )
        return f"{self.kind}(root={self.root}) entered by [{who}]"


class _SpmdComm:
    """Rendezvous state shared by all :class:`RankComm` proxies of a comm."""

    def __init__(
        self,
        session: _Session,
        size: int,
        name: str = "world",
        world_ranks: Sequence[int] | None = None,
    ) -> None:
        self.session = session
        self.size = size
        self.name = name
        self.world_ranks = (
            list(range(size)) if world_ranks is None else list(world_ranks)
        )
        self.slots: list[_Slot | None] = []
        self.p2p: dict[tuple[int, int], deque] = {}

    # All methods below are called with ``session.cond`` held.

    def _signature_mismatch(
        self, slot: _Slot, kind: str, root: int | None, nclass: int | None
    ) -> bool:
        if slot.kind != kind or slot.root != root:
            return True
        return (
            slot.nbytes_class is not None
            and nclass is not None
            and slot.nbytes_class != nclass
        )

    def enter(
        self,
        rank: int,
        seq: int,
        kind: str,
        value: Any,
        root: int | None = None,
        op: Callable[[Any, Any], Any] | None = None,
    ) -> Any:
        session = self.session
        site = _call_site()
        nclass = _nbytes_class(value) if kind in _ELEMENTWISE else None
        with session.cond:
            if session.failure is not None:
                raise SpmdAborted(str(session.failure))
            while len(self.slots) <= seq:
                self.slots.append(None)
            slot = self.slots[seq]
            if slot is None:
                slot = _Slot(kind=kind, root=root, nbytes_class=nclass, op=op)
                self.slots[seq] = slot
            elif self._signature_mismatch(slot, kind, root, nclass):
                mine = (
                    f"rank {self.world_ranks[rank]} entered "
                    f"{kind}(root={root}, payload {_payload_sig(value)}) "
                    f"at {site}"
                )
                exc = CollectiveMismatchError(
                    f"collective schedule divergence on comm {self.name!r} "
                    f"(operation #{seq}): {slot.describe(self)}; but {mine} "
                    f"— every rank must enter the same collective, with "
                    f"the same root and payload class, in the same order"
                )
                slot.error = exc
                session.fail(exc)
                raise exc
            slot.values[rank] = value
            slot.sites[rank] = site
            if len(slot.values) == self.size:
                try:
                    slot.results = self._execute(slot)
                except SanitizerError as exc:
                    slot.error = exc
                    session.fail(exc)
                    raise
                session.cond.notify_all()
            else:
                self._wait(slot, seq, rank)
            if slot.error is not None:
                raise slot.error
            assert slot.results is not None
            return slot.results[rank]

    def _wait(self, slot: _Slot, seq: int, rank: int) -> None:
        session = self.session
        deadline = time.monotonic() + session.timeout
        while (
            slot.results is None
            and slot.error is None
            and session.failure is None
        ):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = [
                    self.world_ranks[r]
                    for r in range(self.size)
                    if r not in slot.values
                ]
                gone = [r for r in missing if r in session.finished]
                gone_s = (
                    f" (rank(s) {gone} already returned without entering)"
                    if gone
                    else ""
                )
                exc = DeadlockError(
                    f"deadlock on comm {self.name!r} (operation #{seq}): "
                    f"{slot.describe(self)} and waited {session.timeout:g}s "
                    f"for rank(s) {missing}{gone_s} — a rank-conditional "
                    f"path skipped this collective"
                )
                slot.error = exc
                session.fail(exc)
                raise exc
            session.cond.wait(remaining)
        if session.failure is not None and slot.results is None:
            if slot.error is not None:
                raise slot.error
            raise SpmdAborted(str(session.failure))

    def _execute(self, slot: _Slot) -> dict[int, Any]:
        """All ranks arrived: run the collective's data movement."""
        kind = slot.kind
        vals = [slot.values[r] for r in range(self.size)]
        if kind == "barrier":
            return {r: None for r in range(self.size)}
        if kind == "bcast":
            assert slot.root is not None
            return {r: vals[slot.root] for r in range(self.size)}
        if kind in ("reduce", "allreduce"):
            self._execute_congruence(slot, vals)
            op = slot.op if slot.op is not None else np.add
            acc = vals[0]
            for v in vals[1:]:
                acc = op(acc, v)
            if kind == "reduce":
                return {
                    r: (acc if r == slot.root else None)
                    for r in range(self.size)
                }
            return {r: acc for r in range(self.size)}
        if kind == "gather":
            return {
                r: (list(vals) if r == slot.root else None)
                for r in range(self.size)
            }
        if kind == "allgather":
            return {r: list(vals) for r in range(self.size)}
        if kind == "scatter":
            assert slot.root is not None
            chunks = vals[slot.root]
            if len(chunks) != self.size:
                raise CollectiveMismatchError(
                    f"scatter on comm {self.name!r}: root rank "
                    f"{self.world_ranks[slot.root]} provided "
                    f"{len(chunks)} chunk(s) for {self.size} rank(s) "
                    f"at {slot.sites[slot.root]}"
                )
            return {r: chunks[r] for r in range(self.size)}
        if kind == "alltoall":
            return {
                r: [vals[src][r] for src in range(self.size)]
                for r in range(self.size)
            }
        if kind == "split":
            return self._execute_split(vals)
        raise SanitizerError(f"unknown collective {kind!r}")

    def _execute_congruence(self, slot: _Slot, vals: list[Any]) -> None:
        sigs = [_payload_sig(v) for v in vals]
        if len(set(sigs)) <= 1:
            return
        counts: dict[str, int] = {}
        for s in sigs:
            counts[s] = counts.get(s, 0) + 1
        majority = max(counts, key=lambda s: counts[s])
        detail = ", ".join(
            f"rank {self.world_ranks[r]} holds {sigs[r]} "
            f"(at {slot.sites[r]})"
            for r in range(self.size)
            if sigs[r] != majority
        )
        raise CollectiveMismatchError(
            f"{slot.kind} on comm {self.name!r}: incongruent payloads — "
            f"majority of ranks hold {majority} but {detail}"
        )

    def _execute_split(self, colors: list[Any]) -> dict[int, Any]:
        groups: dict[Any, list[int]] = {}
        for r, color in enumerate(colors):
            groups.setdefault(color, []).append(r)
        comms: dict[Any, _SpmdComm] = {}
        for color, members in groups.items():
            comms[color] = _SpmdComm(
                self.session,
                len(members),
                name=f"{self.name}/color{color}",
                world_ranks=[self.world_ranks[m] for m in members],
            )
        return {
            r: (comms[colors[r]], groups[colors[r]].index(r))
            for r in range(self.size)
        }

    # -- point-to-point ------------------------------------------------------

    def send(self, src: int, dst: int, value: Any) -> None:
        session = self.session
        with session.cond:
            if session.failure is not None:
                raise SpmdAborted(str(session.failure))
            if not 0 <= dst < self.size:
                exc = CollectiveMismatchError(
                    f"send on comm {self.name!r} at {_call_site()}: "
                    f"dst={dst} is outside [0, {self.size})"
                )
                session.fail(exc)
                raise exc
            self.p2p.setdefault((src, dst), deque()).append(value)
            session.cond.notify_all()

    def recv(self, dst: int, src: int) -> Any:
        session = self.session
        site = _call_site()
        deadline = time.monotonic() + session.timeout
        with session.cond:
            queue = self.p2p.setdefault((src, dst), deque())
            while not queue:
                if session.failure is not None:
                    raise SpmdAborted(str(session.failure))
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    gone = (
                        " (that rank already returned)"
                        if self.world_ranks[src] in session.finished
                        else ""
                    )
                    exc = DeadlockError(
                        f"deadlock on comm {self.name!r}: rank "
                        f"{self.world_ranks[dst]} at {site} waited "
                        f"{session.timeout:g}s for a send from rank "
                        f"{self.world_ranks[src]}{gone} — unmatched "
                        f"point-to-point pair"
                    )
                    session.fail(exc)
                    raise exc
                session.cond.wait(remaining)
            return queue.popleft()


class RankComm:
    """Per-rank communicator proxy for :func:`run_spmd` SPMD code.

    Unlike :class:`VirtualComm` (whole-communicator value lists), each
    method takes *this rank's* value and returns *this rank's* result —
    i.e. the real MPI calling convention.
    """

    def __init__(self, state: _SpmdComm, rank: int) -> None:
        self._state = state
        self.rank = rank
        self.size = state.size
        self.name = state.name
        self._seq = 0

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def barrier(self) -> None:
        self._state.enter(self.rank, self._next(), "barrier", None)

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._state.enter(
            self.rank, self._next(), "bcast", value, root=root
        )

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = np.add,
        root: int = 0,
    ) -> Any:
        return self._state.enter(
            self.rank, self._next(), "reduce", value, root=root, op=op
        )

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = np.add
    ) -> Any:
        return self._state.enter(
            self.rank, self._next(), "allreduce", value, op=op
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        return self._state.enter(
            self.rank, self._next(), "gather", value, root=root
        )

    def allgather(self, value: Any) -> list[Any]:
        return self._state.enter(self.rank, self._next(), "allgather", value)

    def scatter(self, chunks: Sequence[Any] | None, root: int = 0) -> Any:
        return self._state.enter(
            self.rank, self._next(), "scatter", chunks, root=root
        )

    def alltoall(self, row: Sequence[Any]) -> list[Any]:
        return self._state.enter(
            self.rank, self._next(), "alltoall", list(row)
        )

    def split(self, color: Any, key: int | None = None) -> "RankComm":
        state, local_rank = self._state.enter(
            self.rank, self._next(), "split", color
        )
        return RankComm(state, local_rank)

    def send(self, dst: int, value: Any) -> None:
        self._state.send(self.rank, dst, value)

    def recv(self, src: int) -> Any:
        return self._state.recv(self.rank, src)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankComm(name={self.name!r}, rank={self.rank}/{self.size})"


def run_spmd(
    fn: Callable[[RankComm, int], Any],
    size: int,
    timeout: float = 5.0,
) -> list[Any]:
    """Run ``fn(comm, rank)`` on one thread per rank under the sanitizer.

    Returns the per-rank results.  A collective-schedule divergence raises
    :class:`CollectiveMismatchError`; a rank that never reaches a
    collective the others entered turns the hang into a
    :class:`DeadlockError` after ``timeout`` seconds.  The *primary*
    diagnosis is re-raised in the calling thread (ranks unwound as
    collateral raise :class:`SpmdAborted`, which is suppressed).
    """
    if size < 1:
        raise ValueError("run_spmd needs at least one rank")
    session = _Session(timeout)
    state = _SpmdComm(session, size)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(RankComm(state, rank), rank)
        except BaseException as exc:  # noqa - re-raised in the caller
            errors[rank] = exc
            with session.cond:
                session.fail(exc)
        finally:
            with session.cond:
                session.finished.add(rank)
                session.cond.notify_all()

    threads = [
        threading.Thread(
            target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True
        )
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if session.failure is not None:
        primary = session.failure
        for exc in errors:
            if exc is not None and not isinstance(exc, SpmdAborted):
                primary = exc
                break
        raise primary
    return results
