"""Runtime sanitizers: deadlock, race, and numerics tripwires.

Three sanitizers behind one facade (DESIGN.md §13), with the same
zero-overhead contract as :class:`repro.observability.Instrumentation`:
``None`` means *off*, and off costs nothing — drivers hold the handle in
a local and guard every checkpoint with an ``is not None`` test, so the
disabled hot path executes **zero** sanitizer code (the overhead
benchmark pins ``sys.setprofile`` to prove it).

* :class:`~repro.sanitize.collective.CollectiveScheduleSanitizer` —
  collective-schedule verification on :class:`~repro.parallel.comm.
  VirtualComm` plus true SPMD emulation (:func:`~repro.sanitize.
  collective.run_spmd`) that converts rank-divergent collectives from
  silent hangs into diagnostics naming ranks and call sites.
* :class:`~repro.sanitize.race.RaceSanitizer` — write-versioning guards
  and exclusive-ownership claims over the ``ldc_workers`` fan-out.
* :class:`~repro.sanitize.numerics.NumericsSanitizer` — NaN/Inf and
  silent-dtype-demotion tripwires at SCF/LDC/multigrid checkpoints.

Enable in code (``Sanitizers.all()`` or a custom mix) or from the
environment: ``REPRO_SANITIZE=1`` (everything) or a comma list like
``REPRO_SANITIZE=collective,numerics``.  :data:`ENV_SANITIZERS` holds the
environment-derived bundle (``None`` when the variable is unset/off) —
drivers read it as a module attribute, not through a call, keeping the
disabled path call-free.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.sanitize.collective import (  # noqa: F401  (public surface)
    CollectiveMismatchError,
    CollectiveScheduleSanitizer,
    DeadlockError,
    RankComm,
    SanitizerError,
    SpmdAborted,
    run_spmd,
)
from repro.sanitize.numerics import NumericsError, NumericsSanitizer  # noqa: F401
from repro.sanitize.race import RaceError, RaceSanitizer  # noqa: F401

_NAMES = ("collective", "race", "numerics")


@dataclass
class Sanitizers:
    """The bundle a driver threads through its call tree.

    Any slot may be ``None`` — each checkpoint guards on its own slot, so
    e.g. a numerics-only run pays nothing for the race machinery.
    """

    collective: CollectiveScheduleSanitizer | None = None
    race: RaceSanitizer | None = None
    numerics: NumericsSanitizer | None = None

    @classmethod
    def all(cls, numerics_mode: str = "raise") -> "Sanitizers":
        return cls(
            collective=CollectiveScheduleSanitizer(),
            race=RaceSanitizer(),
            numerics=NumericsSanitizer(mode=numerics_mode),
        )

    @classmethod
    def from_spec(cls, spec: str) -> "Sanitizers | None":
        """Parse a ``REPRO_SANITIZE``-style spec; ``None`` when off."""
        spec = spec.strip().lower()
        if spec in ("", "0", "off", "none", "false"):
            return None
        if spec in ("1", "all", "on", "true"):
            return cls.all()
        chosen = {part.strip() for part in spec.split(",") if part.strip()}
        unknown = chosen - set(_NAMES)
        if unknown:
            raise ValueError(
                f"unknown sanitizer(s) {sorted(unknown)} in "
                f"REPRO_SANITIZE; valid names: {', '.join(_NAMES)}"
            )
        return cls(
            collective=(
                CollectiveScheduleSanitizer() if "collective" in chosen
                else None
            ),
            race=RaceSanitizer() if "race" in chosen else None,
            numerics=NumericsSanitizer() if "numerics" in chosen else None,
        )

    def wrap_comm(self, comm):
        """Attach the collective sanitizer as ``comm``'s observer."""
        if self.collective is not None:
            comm.sanitizer = self.collective
        return comm


#: Environment-derived bundle, built once at import: drivers resolve
#: ``sanitize if sanitize is not None else ENV_SANITIZERS`` — an attribute
#: read, never a call, so the disabled path stays call-free.
ENV_SANITIZERS: Sanitizers | None = Sanitizers.from_spec(
    os.environ.get("REPRO_SANITIZE", "")
)
