"""Lightweight hierarchical timers used by the SCF drivers and benchmarks."""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class WallClock:
    """Monotonic wall clock; injectable for deterministic tests."""

    def now(self) -> float:
        return time.perf_counter()


class Timer:
    """Accumulates named wall-clock sections.

    Usage::

        t = Timer()
        with t.section("scf"):
            ...
        t.total("scf")  # seconds
    """

    def __init__(self, clock: WallClock | None = None) -> None:
        self._clock = clock or WallClock()
        self._totals: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def section(self, name: str):
        start = self._clock.now()
        try:
            yield
        finally:
            self._totals[name] += self._clock.now() - start
            self._counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self._totals[name] += seconds
        self._counts[name] += 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def names(self) -> list[str]:
        return sorted(self._totals)

    def report(self) -> str:
        """Human-readable summary table sorted by descending time."""
        rows = sorted(self._totals.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k in self._totals), default=4)
        lines = [f"{'section':<{width}}  {'total[s]':>10}  {'calls':>6}"]
        for name, tot in rows:
            lines.append(f"{name:<{width}}  {tot:>10.4f}  {self._counts[name]:>6}")
        return "\n".join(lines)
