"""Lightweight hierarchical timers used by the SCF drivers and benchmarks.

.. deprecated::
    :class:`Timer` is kept as a thin adapter over
    :class:`repro.observability.tracer.SpanTracer` so existing benchmarks
    keep working unchanged.  New driver code should accept an
    :class:`repro.observability.Instrumentation` facade instead — it
    provides the same timing plus metrics, logging, and Chrome-trace
    export.  The underlying tracer is exposed as :attr:`Timer.tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class WallClock:
    """Monotonic wall clock; injectable for deterministic tests."""

    def now(self) -> float:
        return time.perf_counter()


class Timer:
    """Accumulates named wall-clock sections.

    Usage::

        t = Timer()
        with t.section("scf"):
            ...
        t.total("scf")  # seconds

    With ``hierarchical=True``, nested sections accumulate under their
    ``parent/child`` path instead of the bare name::

        t = Timer(hierarchical=True)
        with t.section("scf"):
            with t.section("eig"):
                ...
        t.names()  # ["scf", "scf/eig"]

    Sections are recorded as spans on an internal
    :class:`~repro.observability.tracer.SpanTracer` (see :attr:`tracer`),
    so a Timer's measurements can also be exported as a Chrome trace.
    """

    def __init__(
        self, clock: WallClock | None = None, hierarchical: bool = False
    ) -> None:
        from repro.observability.tracer import SpanTracer

        self._clock = clock or WallClock()
        self.hierarchical = hierarchical
        #: the underlying span tracer (chrome-trace exportable)
        self.tracer = SpanTracer(clock=self._clock)

    @contextmanager
    def section(self, name: str):
        with self.tracer.span(name):
            yield

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self.tracer.record_complete(name, seconds)

    def _key(self, span) -> str:
        return span.path if self.hierarchical else span.name

    def total(self, name: str) -> float:
        return sum(
            s.duration for s in self.tracer.spans() if self._key(s) == name
        )

    def count(self, name: str) -> int:
        return sum(1 for s in self.tracer.spans() if self._key(s) == name)

    def names(self) -> list[str]:
        return sorted({self._key(s) for s in self.tracer.spans()})

    def report(self) -> str:
        """Human-readable summary table sorted by descending time."""
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for s in self.tracer.spans():
            key = self._key(s)
            totals[key] = totals.get(key, 0.0) + s.duration
            counts[key] = counts.get(key, 0) + 1
        rows = sorted(totals.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k in totals), default=4)
        lines = [f"{'section':<{width}}  {'total[s]':>10}  {'calls':>6}"]
        for name, tot in rows:
            lines.append(f"{name:<{width}}  {tot:>10.4f}  {counts[name]:>6}")
        return "\n".join(lines)
