"""Linear-algebra helpers mirroring the paper's BLAS2 → BLAS3 transformation.

Section 3.4 of the paper rewrites the nonlocal pseudopotential application

    v_nl |ψ_n> = Σ_{ij} Σ_I |β_{i,I}> D_{ij,I} <β_{j,I}|ψ_n>      (Eq. 4)

from per-band matrix-vector products (DGEMV / BLAS2) into packed
matrix-matrix products (DGEMM / BLAS3):

    v_nl Ψ = Σ_{ij} B̃(i) D̃(i,j) B̃(j)^H Ψ                          (Eq. 5)

Both code paths are implemented here so the transformation itself can be
tested for exact agreement and benchmarked (EXP-BLAS).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


def apply_projectors_blas2(
    projectors: np.ndarray, coeffs: np.ndarray, psi: np.ndarray
) -> np.ndarray:
    """Apply ``v_nl`` band by band (the original BLAS2 formulation).

    Parameters
    ----------
    projectors:
        ``(npw, nproj)`` complex projector matrix ``B``.
    coeffs:
        ``(nproj, nproj)`` coefficient matrix ``D`` (block-diagonal per atom
        in the physical problem; any Hermitian matrix is accepted).
    psi:
        ``(npw, nband)`` wave-function matrix ``Ψ``.

    Returns
    -------
    ``(npw, nband)`` array ``v_nl Ψ`` computed with per-band matvecs.
    """
    npw, nband = psi.shape
    out = np.zeros_like(psi)
    for n in range(nband):  # deliberate per-band loop: the BLAS2 path
        overlaps = projectors.conj().T @ psi[:, n]
        out[:, n] = projectors @ (coeffs @ overlaps)
    return out


def apply_projectors_blas3(
    projectors: np.ndarray, coeffs: np.ndarray, psi: np.ndarray
) -> np.ndarray:
    """Apply ``v_nl`` to all bands at once (the paper's BLAS3 formulation)."""
    overlaps = projectors.conj().T @ psi  # (nproj, nband) — one GEMM
    return projectors @ (coeffs @ overlaps)  # two more GEMMs


def blocked_gram(psi: np.ndarray, block: int = 64, weights=None) -> np.ndarray:
    """Overlap (Gram) matrix ``S = Ψ^H Ψ`` computed in column blocks.

    Blocking mirrors the reciprocal-space decomposition used for the
    distributed overlap-matrix construction in Sec. 3.3: each block of rows
    of ``Ψ`` (a slab of reciprocal-space grid points) contributes a partial
    sum, and the partial sums are reduced.

    Parameters
    ----------
    psi:
        ``(npw, nband)`` wave-function matrix.
    block:
        Row-block size (number of plane waves per slab).
    weights:
        Optional per-row real weights (e.g. a partition-of-unity restriction).
    """
    npw, nband = psi.shape
    s = np.zeros((nband, nband), dtype=psi.dtype)
    for start in range(0, npw, block):
        slab = psi[start : start + block]
        if weights is not None:
            w = np.asarray(weights)[start : start + block]
            s += slab.conj().T @ (w[:, None] * slab)
        else:
            s += slab.conj().T @ slab
    return s


def cholesky_orthonormalize(psi: np.ndarray) -> np.ndarray:
    """Orthonormalize columns of ``psi`` via Cholesky of the overlap matrix.

    This is the parallel-friendly scheme of Sec. 3.3: build ``S = Ψ^H Ψ``,
    factor ``S = L L^H``, and return ``Ψ L^{-H}``.  Falls back to Löwdin
    orthonormalization when ``S`` is numerically rank-deficient.
    """
    s = psi.conj().T @ psi
    try:
        l = np.linalg.cholesky(s)
    except np.linalg.LinAlgError:
        return lowdin_orthonormalize(psi)
    # Ψ_new = Ψ L^{-H}; equivalently Ψ_new^H = L^{-1} Ψ^H (triangular solve).
    return scipy.linalg.solve_triangular(
        l, psi.conj().T, lower=True
    ).conj().T


def lowdin_orthonormalize(psi: np.ndarray) -> np.ndarray:
    """Symmetric (Löwdin) orthonormalization ``Ψ S^{-1/2}``.

    More expensive than Cholesky but unconditionally stable; used as the
    fallback and in tests as an independent reference.
    """
    s = psi.conj().T @ psi
    evals, evecs = np.linalg.eigh(s)
    evals = np.clip(evals, 1e-14, None)
    s_inv_half = (evecs * (1.0 / np.sqrt(evals))) @ evecs.conj().T
    return psi @ s_inv_half
