"""Shared utilities: timers, RNG helpers, and linear-algebra wrappers."""

from repro.util.timer import Timer, WallClock
from repro.util.linalg import (
    apply_projectors_blas2,
    apply_projectors_blas3,
    blocked_gram,
    cholesky_orthonormalize,
    lowdin_orthonormalize,
)

__all__ = [
    "Timer",
    "WallClock",
    "apply_projectors_blas2",
    "apply_projectors_blas3",
    "blocked_gram",
    "cholesky_orthonormalize",
    "lowdin_orthonormalize",
]
