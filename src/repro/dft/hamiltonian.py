"""The Kohn–Sham Hamiltonian: batched (all-band, BLAS3) application and a
dense matrix form for the direct reference eigensolver.

    H = -½∇² + V_loc + V_H + V_xc [+ v_bc]  + v_nl

The local parts are collapsed into one real-space effective potential
``v_eff(r)``; the nonlocal part is the packed projector form of Sec. 3.4.
``apply`` acts on the whole ``(npw, nband)`` orbital block at once — the
paper's BLAS2→BLAS3 algebraic transformation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dft.basis import PlaneWaveBasis
from repro.dft.pseudopotential import NonlocalProjectors


class Hamiltonian:
    """Fixed-potential KS Hamiltonian over a plane-wave basis."""

    def __init__(
        self,
        basis: PlaneWaveBasis,
        v_eff: np.ndarray,
        vnl: NonlocalProjectors | None = None,
    ) -> None:
        if v_eff.shape != basis.grid.shape:
            raise ValueError(
                f"v_eff shape {v_eff.shape} != grid shape {basis.grid.shape}"
            )
        self.basis = basis
        self.v_eff = np.asarray(v_eff, dtype=float)
        self.vnl = vnl
        self.kinetic = 0.5 * basis.g2  # (npw,)

    # -- application ----------------------------------------------------------

    def apply(
        self, psi: np.ndarray, fields_out: list[np.ndarray] | None = None
    ) -> np.ndarray:
        """H Ψ for a block of orbitals ``(npw, nband)`` (or a single vector).

        The kinetic term seeds a fresh output block and the local/nonlocal
        terms accumulate into it in place — no intermediate ``out + ...``
        copies of the ``(npw, nband)`` block are made.

        ``fields_out``, when given, receives the real-space orbital fields
        ``ψ_n(r)`` (appended as one ``(nband, *grid.shape)`` array, unscaled
        by the potential) — the transform is computed here anyway, so
        callers that need ``|ψ|²`` afterwards can reuse it instead of paying
        a second batched FFT (see the LDC band-density assembly).
        """
        single = psi.ndim == 1
        if single:
            psi = psi[:, None]
        out = self.kinetic[:, None] * psi
        # local potential: to grid (batched FFT), multiply, back
        fields = self.basis.to_grid(psi)
        if fields_out is not None:
            fields_out.append(fields)
            fields = fields * self.v_eff[None, :, :, :]
        else:
            fields *= self.v_eff[None, :, :, :]
        out += self.basis.from_grid(fields)
        if self.vnl is not None and self.vnl.nproj:
            out += self.vnl.apply(psi)
        return out[:, 0] if single else out

    def expectation(self, psi: np.ndarray) -> np.ndarray:
        """Per-band Rayleigh quotients ⟨ψ_n|H|ψ_n⟩ / ⟨ψ_n|ψ_n⟩."""
        hpsi = self.apply(psi)
        num = np.real(np.einsum("gn,gn->n", psi.conj(), hpsi))
        den = np.real(np.einsum("gn,gn->n", psi.conj(), psi))
        return num / den

    # -- dense form -----------------------------------------------------------

    def dense(self) -> np.ndarray:
        """The full npw×npw Hermitian matrix (reference solver; small bases)."""
        basis = self.basis
        grid = basis.grid
        npw = basis.npw
        # Local part: V(G_i - G_j) from the FFT of v_eff, indexed by the
        # wrapped Miller-index differences.
        vg = grid.fft(self.v_eff.astype(complex))
        shape = np.array(grid.shape)
        diff = basis.miller[:, None, :] - basis.miller[None, :, :]  # (npw,npw,3)
        diff = np.mod(diff, shape[None, None, :])
        flat = (
            diff[..., 0] * (shape[1] * shape[2])
            + diff[..., 1] * shape[2]
            + diff[..., 2]
        )
        h = vg.ravel()[flat]
        h[np.arange(npw), np.arange(npw)] += self.kinetic
        if self.vnl is not None and self.vnl.nproj:
            h = h + self.vnl.dense()
        return h

    # -- preconditioning -------------------------------------------------------

    def precondition(self, resid: np.ndarray, psi: np.ndarray) -> np.ndarray:
        """Teter–Payne–Allan preconditioner applied band-wise to residuals.

        The TPA kernel damps high-kinetic-energy components relative to each
        band's own kinetic energy — the standard plane-wave CG preconditioner.
        """
        single = resid.ndim == 1
        if single:
            resid = resid[:, None]
            psi = psi[:, None]
        ekin = np.real(
            np.einsum("gn,g,gn->n", psi.conj(), self.kinetic, psi)
        ) / np.maximum(np.real(np.einsum("gn,gn->n", psi.conj(), psi)), 1e-30)
        ekin = np.maximum(ekin, 1e-6)
        x = self.kinetic[:, None] / ekin[None, :]
        x2 = x * x
        x3 = x2 * x
        num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3
        out = (num / (num + 16.0 * x3 * x)) * resid
        return out[:, 0] if single else out


class BatchedHamiltonian:
    """One LDC shape-class of KS Hamiltonians applied as stacked kernels.

    Holds ``n_domains`` fixed-potential Hamiltonians that share the *same*
    plane-wave basis structure (grid shape, cutoff, G-sphere — asserted by
    ``PlaneWaveBasis.structurally_equal`` when the class is built) and the
    same projector count, so their hot operations fuse into single
    ``(n_domains, …)`` array calls: stacked FFT transforms, one batched
    GEMM for the nonlocal projections, one batched GEMM per subspace
    product.  This lifts the paper's Sec. 3.4 BLAS2→BLAS3 transformation
    one level up the LDC hierarchy — from bands-within-a-domain to
    domains-within-a-shape-class.

    Every array operation routes through the ``xp`` namespace obtained from
    :func:`repro.backend.get`, so the same kernels run on any backend that
    satisfies the array-module contract.

    Each slice ``d`` applies exactly the arithmetic of the corresponding
    serial :class:`Hamiltonian` — stacked FFTs transform each band's field
    independently and batched GEMMs dispatch per slice — which is what lets
    the batched LDC path reproduce the per-domain path to ≤1e-10.
    """

    def __init__(
        self,
        basis: PlaneWaveBasis,
        v_eff: Any,
        b: Any,
        d: Any,
        xp: Any = np,
    ) -> None:
        nd = int(v_eff.shape[0])
        if v_eff.shape[1:] != basis.grid.shape:
            raise ValueError(
                f"v_eff stack shape {v_eff.shape[1:]} != grid shape "
                f"{basis.grid.shape}"
            )
        if (b is None) != (d is None):
            raise ValueError("projector stacks b and d must be given together")
        if b is not None and (
            b.shape[0] != nd
            or b.shape[1] != basis.npw
            or d.shape != b.shape[:1] + b.shape[2:]
        ):
            raise ValueError(
                f"projector stacks b {b.shape} / d {d.shape} do not match "
                f"{nd} domains over {basis.npw} plane waves"
            )
        self.basis = basis
        self.xp = xp
        self.n_domains = nd
        #: (nd, *grid.shape) stacked effective potentials
        self.v_eff = xp.asarray(v_eff)
        #: (nd, npw, nproj) stacked projectors / (nd, nproj) couplings
        self.b = None if b is None else xp.asarray(b)
        self.d = None if d is None else xp.asarray(d)
        self.nproj = 0 if self.b is None else int(self.b.shape[2])
        self.kinetic = xp.asarray(0.5 * basis.g2)  # (npw,)

    def apply(
        self,
        psi: Any,
        fields_out: list[Any] | None = None,
        domains: list[int] | None = None,
    ) -> Any:
        """H Ψ for a stack of orbital blocks ``(len(domains), npw, nband)``.

        Mirrors :meth:`Hamiltonian.apply` slice-for-slice, including the
        ``fields_out`` capture of the unscaled real-space fields.

        ``domains`` selects a subset of the class's Hamiltonians (stack
        indices, strictly increasing) — the batched eigensolver uses it to
        keep applying only the not-yet-converged domains as the others
        retire from the lockstep iteration.
        """
        xp = self.xp
        if domains is not None and len(domains) == self.n_domains:
            domains = None  # a strictly-increasing subset of full size is all
        v_eff = self.v_eff if domains is None else self.v_eff[domains]
        out = self.kinetic[None, :, None] * psi
        fields = self.basis.to_grid_batch(psi, xp=xp)
        if fields_out is not None:
            fields_out.append(fields)
            fields = fields * v_eff[:, None]
        else:
            fields *= v_eff[:, None]
        out += self.basis.from_grid_batch(fields, xp=xp)
        if self.b is not None and self.nproj:
            b = self.b if domains is None else self.b[domains]
            d = self.d if domains is None else self.d[domains]
            overlaps = xp.matmul(xp.conjugate(b).transpose(0, 2, 1), psi)
            out += xp.matmul(b, d[:, :, None] * overlaps)
        return out

    def precondition(self, resid: Any, psi: Any) -> Any:
        """Stacked Teter–Payne–Allan preconditioner (see
        :meth:`Hamiltonian.precondition`); operates on
        ``(n_domains, npw, nband)`` residual/orbital stacks."""
        xp = self.xp
        ekin = xp.einsum(
            "dgn,g,dgn->dn", xp.conjugate(psi), self.kinetic, psi
        ).real / xp.maximum(
            xp.einsum("dgn,dgn->dn", xp.conjugate(psi), psi).real, 1e-30
        )
        ekin = xp.maximum(ekin, 1e-6)
        x = self.kinetic[None, :, None] / ekin[:, None, :]
        x2 = x * x
        x3 = x2 * x
        num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3
        return (num / (num + 16.0 * x3 * x)) * resid
