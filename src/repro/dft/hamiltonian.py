"""The Kohn–Sham Hamiltonian: batched (all-band, BLAS3) application and a
dense matrix form for the direct reference eigensolver.

    H = -½∇² + V_loc + V_H + V_xc [+ v_bc]  + v_nl

The local parts are collapsed into one real-space effective potential
``v_eff(r)``; the nonlocal part is the packed projector form of Sec. 3.4.
``apply`` acts on the whole ``(npw, nband)`` orbital block at once — the
paper's BLAS2→BLAS3 algebraic transformation.
"""

from __future__ import annotations

import numpy as np

from repro.dft.basis import PlaneWaveBasis
from repro.dft.pseudopotential import NonlocalProjectors


class Hamiltonian:
    """Fixed-potential KS Hamiltonian over a plane-wave basis."""

    def __init__(
        self,
        basis: PlaneWaveBasis,
        v_eff: np.ndarray,
        vnl: NonlocalProjectors | None = None,
    ) -> None:
        if v_eff.shape != basis.grid.shape:
            raise ValueError(
                f"v_eff shape {v_eff.shape} != grid shape {basis.grid.shape}"
            )
        self.basis = basis
        self.v_eff = np.asarray(v_eff, dtype=float)
        self.vnl = vnl
        self.kinetic = 0.5 * basis.g2  # (npw,)

    # -- application ----------------------------------------------------------

    def apply(
        self, psi: np.ndarray, fields_out: list[np.ndarray] | None = None
    ) -> np.ndarray:
        """H Ψ for a block of orbitals ``(npw, nband)`` (or a single vector).

        The kinetic term seeds a fresh output block and the local/nonlocal
        terms accumulate into it in place — no intermediate ``out + ...``
        copies of the ``(npw, nband)`` block are made.

        ``fields_out``, when given, receives the real-space orbital fields
        ``ψ_n(r)`` (appended as one ``(nband, *grid.shape)`` array, unscaled
        by the potential) — the transform is computed here anyway, so
        callers that need ``|ψ|²`` afterwards can reuse it instead of paying
        a second batched FFT (see the LDC band-density assembly).
        """
        single = psi.ndim == 1
        if single:
            psi = psi[:, None]
        out = self.kinetic[:, None] * psi
        # local potential: to grid (batched FFT), multiply, back
        fields = self.basis.to_grid(psi)
        if fields_out is not None:
            fields_out.append(fields)
            fields = fields * self.v_eff[None, :, :, :]
        else:
            fields *= self.v_eff[None, :, :, :]
        out += self.basis.from_grid(fields)
        if self.vnl is not None and self.vnl.nproj:
            out += self.vnl.apply(psi)
        return out[:, 0] if single else out

    def expectation(self, psi: np.ndarray) -> np.ndarray:
        """Per-band Rayleigh quotients ⟨ψ_n|H|ψ_n⟩ / ⟨ψ_n|ψ_n⟩."""
        hpsi = self.apply(psi)
        num = np.real(np.einsum("gn,gn->n", psi.conj(), hpsi))
        den = np.real(np.einsum("gn,gn->n", psi.conj(), psi))
        return num / den

    # -- dense form -----------------------------------------------------------

    def dense(self) -> np.ndarray:
        """The full npw×npw Hermitian matrix (reference solver; small bases)."""
        basis = self.basis
        grid = basis.grid
        npw = basis.npw
        # Local part: V(G_i - G_j) from the FFT of v_eff, indexed by the
        # wrapped Miller-index differences.
        vg = grid.fft(self.v_eff.astype(complex))
        shape = np.array(grid.shape)
        diff = basis.miller[:, None, :] - basis.miller[None, :, :]  # (npw,npw,3)
        diff = np.mod(diff, shape[None, None, :])
        flat = (
            diff[..., 0] * (shape[1] * shape[2])
            + diff[..., 1] * shape[2]
            + diff[..., 2]
        )
        h = vg.ravel()[flat]
        h[np.arange(npw), np.arange(npw)] += self.kinetic
        if self.vnl is not None and self.vnl.nproj:
            h = h + self.vnl.dense()
        return h

    # -- preconditioning -------------------------------------------------------

    def precondition(self, resid: np.ndarray, psi: np.ndarray) -> np.ndarray:
        """Teter–Payne–Allan preconditioner applied band-wise to residuals.

        The TPA kernel damps high-kinetic-energy components relative to each
        band's own kinetic energy — the standard plane-wave CG preconditioner.
        """
        single = resid.ndim == 1
        if single:
            resid = resid[:, None]
            psi = psi[:, None]
        ekin = np.real(
            np.einsum("gn,g,gn->n", psi.conj(), self.kinetic, psi)
        ) / np.maximum(np.real(np.einsum("gn,gn->n", psi.conj(), psi)), 1e-30)
        ekin = np.maximum(ekin, 1e-6)
        x = self.kinetic[:, None] / ekin[None, :]
        x2 = x * x
        x3 = x2 * x
        num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3
        out = (num / (num + 16.0 * x3 * x)) * resid
        return out[:, 0] if single else out
