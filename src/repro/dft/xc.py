"""LDA exchange-correlation: Perdew–Zunger 1981 parametrization of the
Ceperley–Alder electron-gas data (non-spin-polarized).

Returns both the energy density per electron ε_xc(ρ) and the potential
v_xc = d(ρ ε_xc)/dρ.  All quantities in Hartree atomic units.
"""

from __future__ import annotations

import numpy as np

# Slater exchange constant: ε_x = -Cx ρ^{1/3}
_CX = 0.75 * (3.0 / np.pi) ** (1.0 / 3.0)

# PZ81 correlation parameters (unpolarized)
_GAMMA = -0.1423
_BETA1 = 1.0529
_BETA2 = 0.3334
_A = 0.0311
_B = -0.048
_C = 0.0020
_D = -0.0116

#: densities below this are treated as vacuum (ε = v = 0)
RHO_FLOOR = 1e-12


def lda_exchange(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Slater exchange: returns (ε_x, v_x) arrays matching ``rho``."""
    rho = np.asarray(rho, dtype=float)
    safe = np.maximum(rho, RHO_FLOOR)
    eps = -_CX * np.cbrt(safe)
    vx = (4.0 / 3.0) * eps
    zero = rho < RHO_FLOOR
    eps = np.where(zero, 0.0, eps)
    vx = np.where(zero, 0.0, vx)
    return eps, vx


def lda_correlation(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """PZ81 correlation: returns (ε_c, v_c) arrays matching ``rho``."""
    rho = np.asarray(rho, dtype=float)
    safe = np.maximum(rho, RHO_FLOOR)
    rs = np.cbrt(3.0 / (4.0 * np.pi * safe))
    eps = np.empty_like(safe)
    vc = np.empty_like(safe)

    low = rs >= 1.0  # low density branch
    sq = np.sqrt(rs[low])
    denom = 1.0 + _BETA1 * sq + _BETA2 * rs[low]
    eps_low = _GAMMA / denom
    eps[low] = eps_low
    vc[low] = eps_low * (
        1.0 + (7.0 / 6.0) * _BETA1 * sq + (4.0 / 3.0) * _BETA2 * rs[low]
    ) / denom

    high = ~low  # high density branch
    ln = np.log(rs[high])
    eps[high] = _A * ln + _B + _C * rs[high] * ln + _D * rs[high]
    vc[high] = (
        _A * ln
        + (_B - _A / 3.0)
        + (2.0 / 3.0) * _C * rs[high] * ln
        + ((2.0 * _D - _C) / 3.0) * rs[high]
    )

    zero = rho < RHO_FLOOR
    eps = np.where(zero, 0.0, eps)
    vc = np.where(zero, 0.0, vc)
    return eps, vc


def lda_xc(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Combined LDA: returns (ε_xc, v_xc)."""
    ex, vx = lda_exchange(rho)
    ec, vc = lda_correlation(rho)
    return ex + ec, vx + vc


def xc_energy(rho: np.ndarray, dv: float) -> float:
    """E_xc = ∫ ρ ε_xc(ρ) dr with voxel volume ``dv``."""
    eps, _ = lda_xc(rho)
    return float(np.sum(rho * eps) * dv)


def xc_potential(rho: np.ndarray) -> np.ndarray:
    """v_xc(r) alone (convenience wrapper)."""
    _, v = lda_xc(rho)
    return v
