"""Plane-wave Kohn–Sham DFT substrate (the "locally fast" half of GSLF).

A self-contained, NumPy-vectorized plane-wave DFT engine:

* :mod:`repro.dft.grid` — real/reciprocal-space grids and FFT conventions.
* :mod:`repro.dft.basis` — kinetic-energy-cutoff plane-wave basis.
* :mod:`repro.dft.xc` — LDA exchange-correlation (Perdew–Zunger 1981).
* :mod:`repro.dft.hartree` — reciprocal-space Poisson solve.
* :mod:`repro.dft.ewald` — ion-ion Ewald sums (energy and forces).
* :mod:`repro.dft.pseudopotential` — Gaussian-screened local potentials and
  Kleinman–Bylander separable nonlocal projectors.
* :mod:`repro.dft.hamiltonian` — BLAS3 all-band Hamiltonian application and
  dense matrix construction.
* :mod:`repro.dft.occupations` — Fermi–Dirac occupations, Newton–Raphson μ.
* :mod:`repro.dft.mixing` — linear and Pulay density mixing.
* :mod:`repro.dft.eigensolver` — direct, band-by-band CG (BLAS2 path) and
  all-band/block CG (BLAS3 path) eigensolvers.
* :mod:`repro.dft.scf` — the conventional O(N³) SCF driver (the paper's
  verification baseline, Sec. 5.5).
* :mod:`repro.dft.forces` — Hellmann–Feynman forces.
"""

from repro.dft.grid import RealSpaceGrid
from repro.dft.basis import PlaneWaveBasis, density_from_orbitals
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.scf import SCFOptions, SCFResult, run_scf
from repro.dft.forces import hellmann_feynman_forces

__all__ = [
    "RealSpaceGrid",
    "PlaneWaveBasis",
    "density_from_orbitals",
    "Hamiltonian",
    "SCFOptions",
    "SCFResult",
    "run_scf",
    "hellmann_feynman_forces",
]
