"""Occupation smearing schemes beyond Fermi–Dirac.

Production plane-wave codes choose among several broadening schemes for the
occupation step; we provide the two standard alternatives (Gaussian and
first-order Methfessel–Paxton) behind the same interface as
:mod:`repro.dft.occupations`, so the SCF drivers and the DC chemical-
potential search can use any of them.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.dft.occupations import fermi_occupations


def gaussian_occupations(eigenvalues, mu: float, kt: float) -> np.ndarray:
    """Gaussian smearing: f = erfc((ε-μ)/kT)/… scaled to [0, 2]."""
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if kt <= 0:
        return np.where(eigenvalues <= mu, 2.0, 0.0)
    x = (eigenvalues - mu) / kt
    return erfc(x)  # erfc ∈ [0, 2]: full at -∞, empty at +∞


def methfessel_paxton_occupations(
    eigenvalues, mu: float, kt: float
) -> np.ndarray:
    """First-order Methfessel–Paxton smearing (clipped to [0, 2]).

    f(x) = erfc(x) + x e^{-x²}/√π — reduces the smearing-entropy bias at the
    cost of slightly non-monotonic occupations near μ (clipped here).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if kt <= 0:
        return np.where(eigenvalues <= mu, 2.0, 0.0)
    x = (eigenvalues - mu) / kt
    f = erfc(x) + x * np.exp(-np.clip(x * x, 0, 700)) / np.sqrt(np.pi)
    return np.clip(f, 0.0, 2.0)


SCHEMES = {
    "fermi": fermi_occupations,
    "gaussian": gaussian_occupations,
    "methfessel-paxton": methfessel_paxton_occupations,
}


def occupations(scheme: str, eigenvalues, mu: float, kt: float) -> np.ndarray:
    """Dispatch by scheme name."""
    try:
        fn = SCHEMES[scheme]
    except KeyError as exc:
        raise ValueError(
            f"unknown smearing scheme {scheme!r}; known: {sorted(SCHEMES)}"
        ) from exc
    return fn(eigenvalues, mu, kt)


def find_mu(
    scheme: str,
    eigenvalues,
    n_electrons: float,
    kt: float,
    weights=None,
    tol: float = 1e-12,
    max_iter: int = 300,
) -> float:
    """Bisection μ-search valid for any (possibly non-monotone-slope) scheme."""
    eigenvalues = np.asarray(eigenvalues, dtype=float).ravel()
    w = np.ones_like(eigenvalues) if weights is None else np.asarray(weights, float)
    capacity = 2.0 * float(w.sum())
    if not 0.0 <= n_electrons <= capacity + 1e-9:
        raise ValueError("electron count outside state capacity")

    def count(mu):
        return float(np.sum(w * occupations(scheme, eigenvalues, mu, kt)))

    lo = float(eigenvalues.min()) - 20.0 * max(kt, 1e-6) - 1.0
    hi = float(eigenvalues.max()) + 20.0 * max(kt, 1e-6) + 1.0
    for _ in range(max_iter):
        mu = 0.5 * (lo + hi)
        c = count(mu)
        if abs(c - n_electrons) < tol:
            return mu
        if c > n_electrons:
            hi = mu
        else:
            lo = mu
    return 0.5 * (lo + hi)
