"""Density mixing for the self-consistent field iteration.

Two schemes, sharing one interface (``mix(rho_in, rho_out) -> rho_next``):

* :class:`LinearMixer` — simple damping, unconditionally convergent for
  small enough mixing parameter.
* :class:`PulayMixer` — Pulay/DIIS extrapolation over a history of residuals;
  the production choice (much faster near self-consistency).

Both preserve the total electron number exactly (the residual integrates to
zero up to solver error, and we renormalize defensively).
"""

from __future__ import annotations

import numpy as np


class LinearMixer:
    """ρ_next = ρ_in + α (ρ_out - ρ_in)."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    def reset(self) -> None:  # interface parity with PulayMixer
        pass

    def mix(self, rho_in: np.ndarray, rho_out: np.ndarray) -> np.ndarray:
        return rho_in + self.alpha * (rho_out - rho_in)


class PulayMixer:
    """Pulay (DIIS) mixing over a sliding history window.

    Finds coefficients c minimizing |Σ c_i R_i|² with Σ c_i = 1, where
    ``R_i = ρ_out,i - ρ_in,i``, then returns
    ``Σ c_i (ρ_in,i + α R_i)``.
    """

    def __init__(self, alpha: float = 0.3, history: int = 6) -> None:
        if history < 2:
            raise ValueError("history must be >= 2")
        self.alpha = alpha
        self.history = history
        self._inputs: list[np.ndarray] = []
        self._residuals: list[np.ndarray] = []

    def reset(self) -> None:
        self._inputs.clear()
        self._residuals.clear()

    def mix(self, rho_in: np.ndarray, rho_out: np.ndarray) -> np.ndarray:
        resid = rho_out - rho_in
        self._inputs.append(rho_in.copy())
        self._residuals.append(resid.copy())
        if len(self._inputs) > self.history:
            self._inputs.pop(0)
            self._residuals.pop(0)
        m = len(self._residuals)
        if m == 1:
            return rho_in + self.alpha * resid

        # Solve the DIIS normal equations with the Lagrange constraint.
        b = np.empty((m + 1, m + 1))
        for i in range(m):
            for j in range(i, m):
                b[i, j] = b[j, i] = float(
                    np.vdot(self._residuals[i].ravel(), self._residuals[j].ravel()).real
                )
        b[m, :m] = 1.0
        b[:m, m] = 1.0
        b[m, m] = 0.0
        rhs = np.zeros(m + 1)
        rhs[m] = 1.0
        try:
            coeffs = np.linalg.solve(b, rhs)[:m]
        except np.linalg.LinAlgError:
            self.reset()
            return rho_in + self.alpha * resid
        if not np.all(np.isfinite(coeffs)):
            self.reset()
            return rho_in + self.alpha * resid

        rho_next = np.zeros_like(rho_in)
        for c, rin, r in zip(coeffs, self._inputs, self._residuals):
            rho_next += c * (rin + self.alpha * r)
        return rho_next


def renormalize(rho: np.ndarray, n_electrons: float, dv: float) -> np.ndarray:
    """Scale a density so it integrates exactly to ``n_electrons``."""
    total = float(np.sum(rho) * dv)
    if total <= 0:
        raise ValueError("density integrates to a non-positive number")
    return rho * (n_electrons / total)
