"""Toy pseudopotentials: Gaussian-screened local part + Kleinman–Bylander
separable nonlocal projectors.

Local part (per ion of valence ``Z`` and screening radius ``r_c``):

    v_loc(r) = -Z erf(r / (√2 r_c)) / r
    ṽ_loc(G) = -4π Z e^{-r_c² G²/2} / G²            (3-D Fourier transform)

The ``G = 0`` divergence cancels against the Hartree and Ewald monopoles for
a neutral system; what survives is the standard non-Coulombic correction

    α = ∫ (v_loc(r) + Z/r) d³r = 2π Z r_c²,

which enters the grid potential as ``V(G=0) = Σ_I α_I / Ω``.

Nonlocal part: one normalized Gaussian s-projector per atom,

    χ(r) = (π r_p²)^{-3/4} e^{-r²/(2 r_p²)},   E_nl = Σ_n f_n Σ_I D_I |<χ_I|ψ_n>|²,

applied in the packed BLAS3 form of Sec. 3.4 (Eq. 5).
"""

from __future__ import annotations

import numpy as np

from repro.constants import get_species
from repro.dft.basis import PlaneWaveBasis
from repro.dft.grid import RealSpaceGrid
from repro.systems.configuration import Configuration


def local_potential_ft(g2: np.ndarray, zval: float, rc: float) -> np.ndarray:
    """ṽ_loc(G) for one species on an array of |G|² (G=0 entries → α)."""
    out = np.empty_like(g2, dtype=float)
    nonzero = g2 > 1e-12
    out[nonzero] = (
        -4.0 * np.pi * zval * np.exp(-0.5 * rc * rc * g2[nonzero]) / g2[nonzero]
    )
    out[~nonzero] = 2.0 * np.pi * zval * rc * rc  # the α correction
    return out


def structure_factors(grid: RealSpaceGrid, config: Configuration) -> dict[str, np.ndarray]:
    """Per-species structure factors S_s(G) = Σ_{I∈s} e^{-iG·R_I} on the grid."""
    gv = grid.g_vectors().reshape(-1, 3)
    # Chunk atoms to bound the (ngrid × natoms) phase-matrix memory.
    chunk = max(1, (1 << 22) // max(gv.shape[0], 1))
    out: dict[str, np.ndarray] = {}
    for symbol in config.species_set():
        idx = [i for i, s in enumerate(config.symbols) if s == symbol]
        acc = np.zeros(gv.shape[0], dtype=complex)
        for start in range(0, len(idx), chunk):
            block = config.positions[idx[start : start + chunk]]
            acc += np.exp(-1j * gv @ block.T).sum(axis=1)
        out[symbol] = acc.reshape(grid.shape)
    return out


def local_potential(grid: RealSpaceGrid, config: Configuration) -> np.ndarray:
    """Total local pseudopotential V_loc(r) on the real grid."""
    g2 = grid.g2()
    vg = np.zeros(grid.shape, dtype=complex)
    sfs = structure_factors(grid, config)
    for symbol, sf in sfs.items():
        sp = get_species(symbol)
        vg += local_potential_ft(g2, sp.zval, sp.rc_loc) * sf
    vg /= grid.volume
    return grid.ifft(vg).real


class NonlocalProjectors:
    """Packed Kleinman–Bylander projectors for a configuration.

    Attributes
    ----------
    b:
        ``(npw, nproj)`` projector matrix B̃ (one column per projecting atom).
    d:
        ``(nproj,)`` diagonal coefficients D_I (Hartree).
    atom_indices:
        Configuration atom index of each projector column.
    """

    def __init__(self, basis: PlaneWaveBasis, config: Configuration) -> None:
        self.basis = basis
        cols: list[np.ndarray] = []
        coeffs: list[float] = []
        atom_indices: list[int] = []
        volume = basis.grid.volume
        for i, symbol in enumerate(config.symbols):
            sp = get_species(symbol)
            if sp.nl_strength == 0.0:
                continue
            rp = sp.nl_radius
            radial = (4.0 * np.pi * rp * rp) ** 0.75 * np.exp(
                -0.5 * rp * rp * basis.g2
            ) / np.sqrt(volume)
            phase = np.exp(-1j * basis.g_vectors @ config.positions[i])
            cols.append(radial * phase)
            coeffs.append(sp.nl_strength)
            atom_indices.append(i)
        if cols:
            self.b = np.column_stack(cols)
            self.d = np.asarray(coeffs, dtype=float)
        else:
            self.b = np.zeros((basis.npw, 0), dtype=complex)
            self.d = np.zeros(0, dtype=float)
        self.atom_indices = atom_indices

    @property
    def nproj(self) -> int:
        return self.b.shape[1]

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """v_nl Ψ via the BLAS3 packed form (Eq. 5)."""
        if self.nproj == 0:
            return np.zeros_like(psi)
        overlaps = self.b.conj().T @ psi
        return self.b @ (self.d[:, None] * overlaps)

    def energy(self, psi: np.ndarray, occupations: np.ndarray) -> float:
        """E_nl = Σ_n f_n Σ_p D_p |<β_p|ψ_n>|²."""
        if self.nproj == 0:
            return 0.0
        overlaps = self.b.conj().T @ psi  # (nproj, nband)
        return float(
            np.sum(np.asarray(occupations) * (self.d[:, None] * np.abs(overlaps) ** 2))
        )

    def dense(self) -> np.ndarray:
        """The dense npw×npw nonlocal matrix (for the direct eigensolver)."""
        if self.nproj == 0:
            n = self.basis.npw
            return np.zeros((n, n), dtype=complex)
        return (self.b * self.d[None, :]) @ self.b.conj().T
