"""Plane-wave basis restricted by a kinetic-energy cutoff.

Wave functions are expanded as ``ψ(r) = (1/√Ω) Σ_G c_G e^{iG·r}`` over the
plane waves with ``|G|²/2 ≤ E_cut``.  With this normalization a unit-norm
coefficient vector is a normalized orbital, and transforms to/from the real
grid are single (batched) FFTs — the "locally fast" half of the paper's GSLF
solver.

Orbitals are stored column-wise: ``psi`` has shape ``(npw, nband)``, so the
all-band operations of Sec. 3.4 are plain matrix-matrix products.

Hot-path note: :meth:`PlaneWaveBasis.to_grid` reuses a per-instance
``(nband, npoints)`` scratch buffer instead of allocating (and zeroing) a
fresh one per call — the transform runs once per eigensolver iteration per
domain, so the allocation was a measurable constant on the QMD hot path.
A consequence is that a single ``PlaneWaveBasis`` instance must not be used
by two threads concurrently; the LDC driver gives every domain its own
basis, so the per-domain fan-out of ``ldc_workers`` stays safe.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dft.grid import RealSpaceGrid


class PlaneWaveBasis:
    """The set of plane waves with kinetic energy ≤ ``ecut`` on a grid."""

    def __init__(self, grid: RealSpaceGrid, ecut: float) -> None:
        if ecut <= 0:
            raise ValueError("ecut must be positive")
        self.grid = grid
        self.ecut = float(ecut)
        g2 = grid.g2()
        mask = 0.5 * g2 <= self.ecut
        #: flat indices into the FFT grid for each basis plane wave
        self.indices = np.flatnonzero(mask.ravel())
        #: number of plane waves
        self.npw = int(self.indices.size)
        if self.npw < 2:
            raise ValueError(
                f"cutoff {ecut} yields only {self.npw} plane waves on grid "
                f"{grid.shape}; increase ecut or grid"
            )
        #: |G|² per basis function, shape (npw,)
        self.g2 = g2.ravel()[self.indices]
        #: G vectors per basis function, shape (npw, 3)
        self.g_vectors = grid.g_vectors().reshape(-1, 3)[self.indices]
        #: integer Miller indices per basis function, shape (npw, 3)
        mx, my, mz = grid.miller()
        miller = np.stack(
            np.meshgrid(mx, my, mz, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        self.miller = miller[self.indices]
        self._norm_to_grid = grid.npoints / np.sqrt(grid.volume)
        self._norm_from_grid = np.sqrt(grid.volume) / grid.npoints
        #: reusable (nband, npoints) coefficient-spread scratch; only the
        #: ``indices`` columns are ever written, so rows stay zero elsewhere
        #: and the buffer never needs re-zeroing between calls
        self._spread_buf = np.zeros((0, grid.npoints), dtype=complex)
        #: batched-transform spread scratch (see :meth:`_batch_scratch`)
        self._batch_buf: Any = None
        self._batch_buf_xp: Any = None

    # -- transforms ----------------------------------------------------------

    def _scratch(self, nband: int) -> np.ndarray:
        """The preallocated ``(nband, npoints)`` spread buffer (grown on
        demand; rows beyond previous use are zero by construction)."""
        if self._spread_buf.shape[0] < nband:
            self._spread_buf = np.zeros(
                (nband, self.grid.npoints), dtype=complex
            )
        return self._spread_buf[:nband]

    def structurally_equal(self, other: "PlaneWaveBasis") -> bool:
        """Whether two bases describe the *same* plane-wave set (same grid
        shape, cutoff, and G-sphere) — the precondition for stacking their
        orbital blocks into one batched kernel (shape-class batching)."""
        return (
            self.grid.shape == other.grid.shape
            and self.ecut == other.ecut
            and self.npw == other.npw
            and np.array_equal(self.indices, other.indices)
        )

    def to_grid(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficients → real-space orbital(s).

        ``coeffs`` is ``(npw,)`` or ``(npw, nband)``; returns an array of
        shape ``grid.shape`` or ``(nband, *grid.shape)`` (complex).
        """
        coeffs = np.asarray(coeffs)
        single = coeffs.ndim == 1
        if single:
            coeffs = coeffs[:, None]
        nband = coeffs.shape[1]
        buf = self._scratch(nband)
        buf[:, self.indices] = coeffs.T
        fields = np.fft.ifftn(
            buf.reshape((nband,) + self.grid.shape), axes=(1, 2, 3)
        ) * self._norm_to_grid
        return fields[0] if single else fields

    def from_grid(self, fields: np.ndarray) -> np.ndarray:
        """Real-space orbital(s) → coefficients (adjoint of :meth:`to_grid`)."""
        fields = np.asarray(fields, dtype=complex)
        single = fields.ndim == 3
        if single:
            fields = fields[None]
        spectra = np.fft.fftn(fields, axes=(1, 2, 3)) * self._norm_from_grid
        coeffs = spectra.reshape(fields.shape[0], -1)[:, self.indices].T
        return coeffs[:, 0] if single else coeffs

    # -- batched transforms (shape-class stacks) -----------------------------

    def _batch_scratch(self, nrows: int, xp: Any) -> Any:
        """A ``(nrows, npoints)`` spread buffer for the batched transforms.

        Kept separate from the serial :meth:`_scratch` buffer so the batched
        coordinator never aliases state a per-domain solve may still hold.
        Same invariant: only the ``indices`` columns are ever written, so the
        buffer needs no re-zeroing between calls.  Reallocated if the array
        backend changes (the buffer must live on the backend's device).
        """
        buf = self._batch_buf
        if buf is None or self._batch_buf_xp is not xp or buf.shape[0] < nrows:
            buf = xp.zeros((nrows, self.grid.npoints), dtype=complex)
            self._batch_buf = buf
            self._batch_buf_xp = xp
        return buf[:nrows]

    def to_grid_batch(self, coeffs: Any, xp: Any = np) -> Any:
        """Stacked :meth:`to_grid`: ``(nd, npw, nband)`` coefficients →
        ``(nd, nband, *grid.shape)`` real-space fields in one batched FFT.

        Every ``coeffs[d]`` slice transforms exactly as ``to_grid`` would
        (the FFT treats each band's 3-D field independently), so the batched
        path is bit-identical per domain.  ``xp`` is the array-module
        namespace from :func:`repro.backend.get`.
        """
        coeffs = xp.asarray(coeffs)
        nd, _, nband = coeffs.shape
        buf = self._batch_scratch(nd * nband, xp)
        stack = buf.reshape(nd, nband, self.grid.npoints)
        stack[:, :, self.indices] = coeffs.transpose(0, 2, 1)
        return xp.fft.ifftn(
            stack.reshape((nd, nband) + self.grid.shape), axes=(2, 3, 4)
        ) * self._norm_to_grid

    def from_grid_batch(self, fields: Any, xp: Any = np) -> Any:
        """Stacked :meth:`from_grid`: ``(nd, nband, *grid.shape)`` fields →
        ``(nd, npw, nband)`` coefficients (adjoint of :meth:`to_grid_batch`)."""
        nd, nband = fields.shape[:2]
        spectra = xp.fft.fftn(fields, axes=(2, 3, 4)) * self._norm_from_grid
        coeffs = spectra.reshape(nd, nband, -1)[:, :, self.indices]
        return coeffs.transpose(0, 2, 1)

    # -- initial guesses -----------------------------------------------------

    def random_orbitals(self, nband: int, seed: int = 0) -> np.ndarray:
        """Random orthonormal starting orbitals, low-G biased for fast CG."""
        rng = np.random.default_rng(seed)
        raw = rng.normal(size=(self.npw, nband)) + 1j * rng.normal(
            size=(self.npw, nband)
        )
        # Damp high-frequency components so the guess lives mostly in the
        # low-energy subspace — dramatically improves solver robustness.
        damp = 1.0 / (1.0 + self.g2)
        raw *= damp[:, None]
        q, _ = np.linalg.qr(raw)
        return q[:, :nband]


def density_from_orbitals(
    basis: PlaneWaveBasis, psi: np.ndarray, occupations: np.ndarray
) -> np.ndarray:
    """Electron density ``ρ(r) = Σ_n f_n |ψ_n(r)|²`` on the real grid.

    Normalization: ``∫ ρ dr = Σ_n f_n`` when the orbitals are orthonormal.
    """
    occupations = np.asarray(occupations, dtype=float)
    if psi.shape[1] != occupations.size:
        raise ValueError("one occupation per band required")
    return density_from_fields(basis.to_grid(psi), occupations)


def density_from_fields(
    fields: np.ndarray, occupations: np.ndarray
) -> np.ndarray:
    """``ρ(r) = Σ_n f_n |ψ_n(r)|²`` from precomputed real-space fields.

    The drivers obtain ``fields`` from :attr:`EigenResult.fields` (the
    eigensolver's final ``H·ψ`` transform, reused) instead of re-running
    :meth:`PlaneWaveBasis.to_grid` on the converged orbitals.
    """
    occupations = np.asarray(occupations, dtype=float)
    if fields.shape[0] != occupations.size:
        raise ValueError("one occupation per band required")
    return np.einsum("n,nijk->ijk", occupations, np.abs(fields) ** 2)
