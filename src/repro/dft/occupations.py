"""Fermi–Dirac occupations and the chemical potential μ.

μ is the single *global* scalar shared by all DC domains (Fig. 2, Eq. c):
it is determined from the total valence-electron count

    N = Σ_i w_i f((ε_i - μ)/k_B T),      f(x) = 2/(1 + e^x)   (spin factor 2)

by Newton–Raphson with a bisection safeguard — exactly the paper's recipe.
The weights ``w_i`` are 1 for a conventional calculation and the
partition-of-unity band weights ``∫ p_α |ψ_n^α|²`` for DC/LDC assemblies.
"""

from __future__ import annotations

import numpy as np

#: Occupations below this are clamped to zero (and 2-this to 2).
_CLIP = 1e-30


def fermi_occupations(
    eigenvalues: np.ndarray, mu: float, kt: float
) -> np.ndarray:
    """Spin-degenerate Fermi–Dirac occupations f_n ∈ [0, 2]."""
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if kt <= 0:
        return np.where(eigenvalues <= mu, 2.0, 0.0)
    x = np.clip((eigenvalues - mu) / kt, -500.0, 500.0)
    return 2.0 / (1.0 + np.exp(x))


def occupation_derivative(
    eigenvalues: np.ndarray, mu: float, kt: float
) -> np.ndarray:
    """∂f/∂μ (positive)."""
    if kt <= 0:
        return np.zeros_like(np.asarray(eigenvalues, dtype=float))
    x = (np.asarray(eigenvalues, dtype=float) - mu) / kt
    # overflow-safe: e^x/(1+e^x)² = e^{-|x|}/(1+e^{-|x|})²
    ax = np.minimum(np.abs(x), 500.0)
    em = np.exp(-ax)
    return 2.0 * em / (kt * (1.0 + em) ** 2)


def find_chemical_potential(
    eigenvalues: np.ndarray,
    n_electrons: float,
    kt: float,
    weights: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Solve Σ w_i f(ε_i; μ) = N for μ (Newton–Raphson + bisection fallback).

    Parameters
    ----------
    eigenvalues:
        Flat array of (possibly domain-concatenated) KS eigenvalues.
    n_electrons:
        Target electron count N.
    kt:
        Smearing temperature in Hartree.  ``kt = 0`` falls back to filling
        the lowest states (degenerate-safe midpoint μ).
    weights:
        Optional per-eigenvalue weights w_i ≥ 0 (DC band weights).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float).ravel()
    if eigenvalues.size == 0:
        raise ValueError("no eigenvalues supplied")
    w = np.ones_like(eigenvalues) if weights is None else np.asarray(weights, float).ravel()
    if w.shape != eigenvalues.shape:
        raise ValueError("weights must match eigenvalues")
    capacity = 2.0 * float(np.sum(w))
    if not 0.0 <= n_electrons <= capacity + 1e-9:
        raise ValueError(
            f"cannot place {n_electrons} electrons in states holding {capacity}"
        )

    if kt <= 0:
        return _zero_temperature_mu(eigenvalues, w, n_electrons)

    def count(mu: float) -> float:
        return float(np.sum(w * fermi_occupations(eigenvalues, mu, kt)))

    lo = float(eigenvalues.min()) - 20.0 * kt - 1.0
    hi = float(eigenvalues.max()) + 20.0 * kt + 1.0
    mu = 0.5 * (lo + hi)
    for _ in range(max_iter):
        c = count(mu)
        err = c - n_electrons
        if abs(err) < tol:
            return mu
        if err > 0:
            hi = min(hi, mu)
        else:
            lo = max(lo, mu)
        deriv = float(np.sum(w * occupation_derivative(eigenvalues, mu, kt)))
        if deriv > _CLIP:
            step = mu - err / deriv
            mu = step if lo < step < hi else 0.5 * (lo + hi)
        else:
            mu = 0.5 * (lo + hi)
    return mu


def _zero_temperature_mu(
    eigenvalues: np.ndarray, weights: np.ndarray, n_electrons: float
) -> float:
    order = np.argsort(eigenvalues)
    cum = np.cumsum(2.0 * weights[order])
    idx = int(np.searchsorted(cum, n_electrons - 1e-12))
    idx = min(idx, len(order) - 1)
    e_homo = eigenvalues[order[idx]]
    if idx + 1 < len(order):
        return 0.5 * (e_homo + eigenvalues[order[idx + 1]])
    return e_homo + 1e-6


def smearing_entropy(
    eigenvalues: np.ndarray, mu: float, kt: float, weights: np.ndarray | None = None
) -> float:
    """Electronic entropy S (in units of k_B·Hartree⁻¹ aggregate: returns
    the -TS free-energy correction term's S such that F = E - kt*S)."""
    if kt <= 0:
        return 0.0
    f = fermi_occupations(eigenvalues, mu, kt) / 2.0  # per-spin filling
    f = np.clip(f, 1e-15, 1.0 - 1e-15)
    s = -2.0 * (f * np.log(f) + (1.0 - f) * np.log(1.0 - f))
    if weights is not None:
        s = s * np.asarray(weights, dtype=float)
    return float(np.sum(s))
