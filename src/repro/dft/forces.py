"""Hellmann–Feynman forces for the plane-wave engine.

Three contributions:

* **Local**:  F_I = Σ_G i G ρ̃*(G) ṽ_I(G) e^{-iG·R_I}   (real part),
  from E_loc = Ω Σ_G ρ̃*(G) Ṽ_loc(G).
* **Nonlocal**: derivative of the Kleinman–Bylander projector overlaps.
* **Ewald**: ion-ion forces from :mod:`repro.dft.ewald`.

Validated against central finite differences of the SCF total energy
(the Hellmann–Feynman theorem holds at self-consistency).
"""

from __future__ import annotations

import numpy as np

from repro.constants import get_species
from repro.dft.basis import PlaneWaveBasis
from repro.dft.ewald import ewald
from repro.dft.grid import RealSpaceGrid
from repro.dft.pseudopotential import NonlocalProjectors, local_potential_ft
from repro.systems.configuration import Configuration


def local_forces(
    grid: RealSpaceGrid, config: Configuration, rho: np.ndarray
) -> np.ndarray:
    """Forces from the local pseudopotential, one row per atom."""
    rho_g = grid.fft(rho).ravel()  # density convention: ρ̃(G)
    gv = grid.g_vectors().reshape(-1, 3)
    g2 = grid.g2().ravel()
    forces = np.zeros((config.natoms, 3), dtype=float)
    # Per-species radial factors are shared; loop over atoms for phases.
    radial_cache: dict[str, np.ndarray] = {}
    for i, symbol in enumerate(config.symbols):
        sp = get_species(symbol)
        if symbol not in radial_cache:
            radial_cache[symbol] = local_potential_ft(g2, sp.zval, sp.rc_loc)
        vg = radial_cache[symbol]
        phase = np.exp(-1j * gv @ config.positions[i])
        # F = Re Σ_G iG ρ̃*(G) ṽ(G) e^{-iG·R}
        integrand = 1j * np.conj(rho_g) * vg * phase
        forces[i] = np.real(gv.T @ integrand)
    return forces


def nonlocal_forces(
    basis: PlaneWaveBasis,
    config: Configuration,
    nonlocal_: NonlocalProjectors,
    psi: np.ndarray,
    occupations: np.ndarray,
) -> np.ndarray:
    """Forces from the Kleinman–Bylander projectors."""
    forces = np.zeros((config.natoms, 3), dtype=float)
    if nonlocal_.nproj == 0:
        return forces
    b = nonlocal_.b  # (npw, nproj)
    overlaps = b.conj().T @ psi  # (nproj, nband): <β_p|ψ_n>
    # d<β|ψ>/dR = Σ_G iG b*_G e^{iG·R} ψ_G = iG-weighted version of overlap
    gv = basis.g_vectors  # (npw, 3)
    occ = np.asarray(occupations, dtype=float)
    for col, atom in enumerate(nonlocal_.atom_indices):
        d = nonlocal_.d[col]
        bcol = b[:, col]
        grad = (1j * gv * bcol.conj()[:, None]).T @ psi  # (3, nband)
        # E = Σ_n f D |o_n|²; dE/dR = 2 D Σ f Re[o* do/dR]
        dE = 2.0 * d * np.real(
            np.sum(occ[None, :] * np.conj(overlaps[col])[None, :] * grad, axis=1)
        )
        forces[atom] -= dE
    return forces


def hellmann_feynman_forces(
    config: Configuration,
    basis: PlaneWaveBasis,
    rho: np.ndarray,
    psi: np.ndarray,
    occupations: np.ndarray,
    nonlocal_: NonlocalProjectors | None = None,
) -> np.ndarray:
    """Total HF forces: local + nonlocal + Ewald.  Shape ``(natom, 3)``."""
    grid = basis.grid
    f = local_forces(grid, config, rho)
    if nonlocal_ is None:
        nonlocal_ = NonlocalProjectors(basis, config)
    f += nonlocal_forces(basis, config, nonlocal_, psi, occupations)
    _, f_ewald = ewald(config.wrapped_positions(), config.zvals, config.cell)
    f += f_ewald
    return f


def forces_from_scf(config: Configuration, scf_result) -> np.ndarray:
    """Convenience: forces straight from an :class:`~repro.dft.scf.SCFResult`."""
    nonlocal_ = NonlocalProjectors(scf_result.basis, config)
    return hellmann_feynman_forces(
        config,
        scf_result.basis,
        scf_result.density,
        scf_result.orbitals,
        scf_result.occupations,
        nonlocal_,
    )
