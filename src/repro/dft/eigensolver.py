"""Iterative eigensolvers for the domain Kohn–Sham problems.

Three interchangeable solvers, all returning ``(eigenvalues, orbitals)``
with orbitals column-orthonormal and eigenvalues ascending:

* :func:`solve_direct` — dense diagonalization of the full plane-wave
  Hamiltonian.  Exact reference; viable for the small domain bases this
  package uses in tests.
* :func:`solve_band_by_band` — the *original* (pre-optimization) scheme the
  paper describes in Sec. 3.4: bands optimized one at a time by
  preconditioned conjugate gradients (matrix-vector / BLAS2 structure).
* :func:`solve_all_band` — the paper's production scheme: all bands
  advanced together (locally optimal block preconditioned CG), so every
  inner operation is a matrix-matrix product (BLAS3 structure).

Both iterative solvers use the Teter–Payne–Allan preconditioner provided by
the :class:`~repro.dft.hamiltonian.Hamiltonian`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft.hamiltonian import BatchedHamiltonian, Hamiltonian
from repro.util.linalg import cholesky_orthonormalize


@dataclass
class EigenResult:
    """Solver output: eigenvalues, orbitals, and convergence diagnostics.

    ``fields`` (present when a solver was called with ``want_fields=True``)
    holds the real-space orbitals ``ψ_n(r)`` of the returned block, shape
    ``(nband, *grid.shape)`` — reused from the final ``Hamiltonian.apply``
    (a cheap subspace rotation of already-computed fields) where possible,
    so downstream density assembly skips a redundant batched FFT.
    """

    eigenvalues: np.ndarray
    orbitals: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    fields: np.ndarray | None = None


def solve_direct(
    ham: Hamiltonian, nband: int, instrumentation=None,
    want_fields: bool = False,
) -> EigenResult:
    """Dense-diagonalization reference solver."""
    if nband > ham.basis.npw:
        raise ValueError(
            f"requested {nband} bands from a {ham.basis.npw}-plane-wave basis"
        )
    h = ham.dense()
    evals, evecs = np.linalg.eigh(h)
    orbitals = np.ascontiguousarray(evecs[:, :nband])
    result = EigenResult(
        eigenvalues=evals[:nband].copy(),
        orbitals=orbitals,
        iterations=1,
        residual_norm=0.0,
        converged=True,
        fields=ham.basis.to_grid(orbitals) if want_fields else None,
    )
    if instrumentation is not None:
        record_solve(instrumentation, "direct", ham.basis.npw, result)
    return result


def record_solve(ins, solver: str, npw: int, result: EigenResult) -> None:
    """Telemetry for one eigensolve (shared by all three solvers).

    Recorded once per solve — never inside the CG inner loop — so enabling
    instrumentation does not perturb the BLAS2/BLAS3 hot paths it measures.
    Public so the LDC parallel fan-out can record a worker thread's solve
    from the coordinating thread after the join (phase-safe telemetry).
    """
    ins.counter("eigensolver.solves", solver=solver).inc()
    ins.counter("eigensolver.iterations", solver=solver).inc(result.iterations)
    ins.histogram("eigensolver.iterations_per_solve", solver=solver).observe(
        result.iterations
    )
    ins.histogram("eigensolver.residual", solver=solver).observe(
        result.residual_norm
    )
    if not result.converged:
        ins.counter("eigensolver.unconverged", solver=solver).inc()
    ins.log.debug(
        "eigensolve done",
        extra={
            "solver": solver,
            "npw": npw,
            "nband": result.orbitals.shape[1],
            "iterations": result.iterations,
            "residual": result.residual_norm,
        },
    )


# ---------------------------------------------------------------------------
# All-band solver (BLAS3 path)
# ---------------------------------------------------------------------------

def solve_all_band(
    ham: Hamiltonian,
    psi0: np.ndarray,
    max_iter: int = 60,
    tol: float = 1e-8,
    instrumentation=None,
    want_fields: bool = False,
) -> EigenResult:
    """Locally optimal block preconditioned CG over all bands at once.

    Subspace per iteration: current block X, preconditioned residuals W,
    and the previous search directions P (classic LOBPCG three-term basis).
    The Rayleigh–Ritz solves and orthonormalizations are the Cholesky-based
    scheme of Sec. 3.3.
    """
    result = _solve_all_band(ham, psi0, max_iter, tol, want_fields)
    if instrumentation is not None:
        record_solve(instrumentation, "all_band", ham.basis.npw, result)
    return result


def _rotated_fields(
    ham: Hamiltonian, x_rot: np.ndarray, fx: np.ndarray | None, u: np.ndarray
) -> np.ndarray:
    """Real-space fields of ``x_rot = x @ u``.

    When ``fx`` (the fields of pre-rotation ``x``, captured from the final
    ``ham.apply``) is available, a subspace rotation replaces the batched
    FFT: ``to_grid(x @ u)[k] = Σ_m u[m, k] · fx[m]``.  Otherwise fall back
    to one transform — never more than the old post-solve re-transform cost.
    """
    if fx is not None:
        return np.tensordot(u, fx, axes=(0, 0))
    return ham.basis.to_grid(x_rot)


def _solve_all_band(
    ham: Hamiltonian,
    psi0: np.ndarray,
    max_iter: int,
    tol: float,
    want_fields: bool = False,
) -> EigenResult:
    x = cholesky_orthonormalize(np.asarray(psi0, dtype=complex))
    nband = x.shape[1]
    cap: list[np.ndarray] | None = [] if want_fields else None
    hx = ham.apply(x, fields_out=cap)
    fx = cap.pop() if cap else None  # fields of the current X block
    p = None
    resid_norm = np.inf
    it = 0
    for it in range(1, max_iter + 1):
        # Rayleigh–Ritz within the current block.
        hsub = x.conj().T @ hx
        hsub = 0.5 * (hsub + hsub.conj().T)
        eps, u = np.linalg.eigh(hsub)
        x_rot = x @ u
        hx_rot = hx @ u
        r = hx_rot - x_rot * eps[None, :]
        resid_norm = float(np.max(np.linalg.norm(r, axis=0)))
        if resid_norm < tol:
            fields = (
                _rotated_fields(ham, x_rot, fx, u) if want_fields else None
            )
            return EigenResult(eps.copy(), x_rot, it, resid_norm, True,
                               fields=fields)
        x, hx = x_rot, hx_rot

        w = ham.precondition(r, x)
        # Project W against X and orthonormalize internally.
        w = w - x @ (x.conj().T @ w)
        w = _safe_orthonormalize(w)
        blocks = [x, w]
        hblocks = [hx, ham.apply(w)]
        if p is not None:
            p_proj = p - x @ (x.conj().T @ p) - w @ (w.conj().T @ p)
            norms = np.linalg.norm(p_proj, axis=0)
            keep = norms > 1e-10
            if np.any(keep):
                p_keep = _safe_orthonormalize(p_proj[:, keep])
                blocks.append(p_keep)
                hblocks.append(ham.apply(p_keep))
        s = np.hstack(blocks)
        hs = np.hstack(hblocks)
        t = s.conj().T @ hs
        t = 0.5 * (t + t.conj().T)
        evals, evecs = np.linalg.eigh(t)
        c = evecs[:, :nband]
        x_new = s @ c
        hx_new = hs @ c
        # New implicit search direction: the part of x_new outside old X.
        c_tail = c[nband:, :]
        s_tail = s[:, nband:]
        p = s_tail @ c_tail
        x = cholesky_orthonormalize(x_new)
        # Re-apply H only if orthonormalization changed X materially.
        if np.allclose(x, x_new, atol=1e-12):
            hx = hx_new
            fx = None  # fields of the new X were never computed
        else:
            cap = [] if want_fields else None
            hx = ham.apply(x, fields_out=cap)
            fx = cap.pop() if cap else None
    # Final clean Rayleigh–Ritz to return well-ordered pairs.
    hsub = x.conj().T @ hx
    hsub = 0.5 * (hsub + hsub.conj().T)
    eps, u = np.linalg.eigh(hsub)
    x_rot = x @ u
    fields = _rotated_fields(ham, x_rot, fx, u) if want_fields else None
    return EigenResult(eps.copy(), x_rot, it, resid_norm, resid_norm < tol,
                       fields=fields)


def _safe_orthonormalize(block: np.ndarray) -> np.ndarray:
    """QR-orthonormalize a block, dropping numerically null columns."""
    if block.shape[1] == 0:
        return block
    norms = np.linalg.norm(block, axis=0)
    keep = norms > 1e-12
    block = block[:, keep] / norms[keep][None, :]
    if block.shape[1] == 0:
        return block
    q, r = np.linalg.qr(block)
    diag = np.abs(np.diag(r))
    good = diag > 1e-10
    return q[:, good]


# ---------------------------------------------------------------------------
# Domain-batched all-band solver (shape-class stacks)
# ---------------------------------------------------------------------------

def solve_all_band_batched(
    bham: BatchedHamiltonian,
    psi0,
    max_iter: int = 60,
    tol: float = 1e-8,
    want_fields: bool = False,
) -> list[EigenResult]:
    """Lockstep LOBPCG over a stack of same-shape domain KS problems.

    ``bham`` holds one LDC shape-class (see
    :class:`~repro.dft.hamiltonian.BatchedHamiltonian`); ``psi0`` is the
    ``(n_domains, npw, nband)`` stack of starting blocks.  Returns one
    :class:`EigenResult` per domain, in stack order.

    All unconverged domains advance together so the heavy kernels run as
    single batched array calls: the Rayleigh–Ritz subspace products and the
    ``(n, nband, nband)`` ``eigh`` stack, the residual/TPA-preconditioner
    updates, and every Hamiltonian application (stacked FFTs + one batched
    nonlocal GEMM; the W and P blocks of an iteration share one padded
    apply).  The small variable-shape steps — column-dropping
    orthonormalization, the mixed-subspace ``t`` diagonalisation, the
    re-apply decision — reuse the serial code per domain.  Zero-padded
    columns pass through H as zeros and every batched kernel acts on stack
    slices independently, so each domain sees exactly the arithmetic of
    :func:`solve_all_band` and retires from the stack at its own
    convergence iteration.
    """
    xp = bham.xp
    basis = bham.basis
    nd = bham.n_domains
    psi0 = xp.asarray(psi0, dtype=complex)
    if psi0.shape[:2] != (nd, basis.npw):
        raise ValueError(
            f"psi0 stack {psi0.shape} does not match {nd} domains over "
            f"{basis.npw} plane waves"
        )
    nband = int(psi0.shape[2])
    results: list[EigenResult | None] = [None] * nd

    x = xp.stack([cholesky_orthonormalize(psi0[i]) for i in range(nd)])
    active = list(range(nd))
    cap: list | None = [] if want_fields else None
    hx = bham.apply(x, fields_out=cap)
    # Per-slot lists ride along with the active stack and are compacted
    # together with it whenever a domain retires.
    fx: list = list(cap.pop()) if cap else [None] * nd
    p: list = [None] * nd
    last_resid: list[float] = [float("inf")] * nd
    it = 0
    for it in range(1, max_iter + 1):
        # Rayleigh–Ritz within each current block (batched).
        hsub = xp.matmul(xp.conjugate(x).transpose(0, 2, 1), hx)
        hsub = 0.5 * (hsub + xp.conjugate(hsub).transpose(0, 2, 1))
        eps, u = xp.linalg.eigh(hsub)
        x_rot = xp.matmul(x, u)
        hx_rot = xp.matmul(hx, u)
        r = hx_rot - x_rot * eps[:, None, :]
        # Convergence is judged per domain with the serial expression so the
        # returned residual (and the decision itself) matches bit for bit.
        keep: list[int] = []
        for slot in range(len(active)):
            resid = float(np.max(np.linalg.norm(np.asarray(r[slot]), axis=0)))
            last_resid[slot] = resid
            if resid < tol:
                xr = np.asarray(x_rot[slot]).copy()
                fields = None
                if want_fields:
                    fields = (
                        np.tensordot(np.asarray(u[slot]), fx[slot],
                                     axes=(0, 0))
                        if fx[slot] is not None
                        else basis.to_grid(xr)
                    )
                results[active[slot]] = EigenResult(
                    np.asarray(eps[slot]).copy(), xr, it, resid, True,
                    fields=fields,
                )
            else:
                keep.append(slot)
        if len(keep) != len(active):
            if not keep:
                return results  # type: ignore[return-value]
            active = [active[s] for s in keep]
            fx = [fx[s] for s in keep]
            p = [p[s] for s in keep]
            last_resid = [last_resid[s] for s in keep]
            x_rot = x_rot[keep]
            hx_rot = hx_rot[keep]
            r = r[keep]
        x, hx = x_rot, hx_rot

        w = bham.precondition(r, x)
        # Project W against X (batched) and orthonormalize per domain.
        w = w - xp.matmul(x, xp.matmul(xp.conjugate(x).transpose(0, 2, 1), w))
        w_blocks: list = []
        p_blocks: list = []
        for slot in range(len(active)):
            wi = _safe_orthonormalize(np.asarray(w[slot]))
            w_blocks.append(wi)
            pk = None
            pi = p[slot]
            if pi is not None:
                xi = np.asarray(x[slot])
                p_proj = pi - xi @ (xi.conj().T @ pi) - wi @ (wi.conj().T @ pi)
                norms = np.linalg.norm(p_proj, axis=0)
                sel = norms > 1e-10
                if np.any(sel):
                    pk = _safe_orthonormalize(p_proj[:, sel])
            p_blocks.append(pk)
        # One padded batched apply covers every W and surviving P block:
        # zero columns pass through H as zeros and each real column is
        # transformed independently, so the slices match the serial narrow
        # applies exactly.  The pad is sized to this iteration's widest
        # blocks (not a fixed 2·nband) — on the first sweeps P is empty and
        # the stacked FFT halves in width.
        wmax = max(wi.shape[1] for wi in w_blocks)
        pmax = max((pk.shape[1] for pk in p_blocks if pk is not None),
                   default=0)
        pad = xp.zeros((len(active), basis.npw, wmax + pmax), dtype=complex)
        for slot, (wi, pk) in enumerate(zip(w_blocks, p_blocks)):
            pad[slot, :, : wi.shape[1]] = wi
            if pk is not None:
                pad[slot, :, wmax: wmax + pk.shape[1]] = pk
        hpad = bham.apply(pad, domains=active)
        reapply: list[int] = []
        x_next: list = []
        hx_next: list = []
        for slot in range(len(active)):
            xi = np.asarray(x[slot])
            hxi = np.asarray(hx[slot])
            wi = w_blocks[slot]
            pk = p_blocks[slot]
            blocks = [xi, wi]
            hblocks = [hxi, np.asarray(hpad[slot, :, : wi.shape[1]])]
            if pk is not None:
                blocks.append(pk)
                hblocks.append(
                    np.asarray(hpad[slot, :, wmax: wmax + pk.shape[1]])
                )
            s = np.hstack(blocks)
            hs = np.hstack(hblocks)
            t = s.conj().T @ hs
            t = 0.5 * (t + t.conj().T)
            evals, evecs = np.linalg.eigh(t)
            c = evecs[:, :nband]
            x_new = s @ c
            hx_new = hs @ c
            # New implicit search direction: the part of x_new outside old X.
            c_tail = c[nband:, :]
            s_tail = s[:, nband:]
            p[slot] = s_tail @ c_tail
            xi_new = cholesky_orthonormalize(x_new)
            x_next.append(xi_new)
            # Re-apply H only if orthonormalization changed X materially.
            if np.allclose(xi_new, x_new, atol=1e-12):
                hx_next.append(hx_new)
                fx[slot] = None  # fields of the new X were never computed
            else:
                reapply.append(slot)
                hx_next.append(None)
        x = xp.stack(x_next)
        if reapply:
            cap = [] if want_fields else None
            h_re = bham.apply(
                x[reapply],
                fields_out=cap,
                domains=[active[s] for s in reapply],
            )
            fre = cap.pop() if cap else None
            for j, slot in enumerate(reapply):
                hx_next[slot] = np.asarray(h_re[j])
                fx[slot] = np.asarray(fre[j]) if fre is not None else None
        hx = xp.stack(hx_next)
    # Final clean Rayleigh–Ritz for the domains that ran out of iterations.
    hsub = xp.matmul(xp.conjugate(x).transpose(0, 2, 1), hx)
    hsub = 0.5 * (hsub + xp.conjugate(hsub).transpose(0, 2, 1))
    eps, u = xp.linalg.eigh(hsub)
    x_rot = xp.matmul(x, u)
    for slot in range(len(active)):
        xr = np.asarray(x_rot[slot]).copy()
        fields = None
        if want_fields:
            fields = (
                np.tensordot(np.asarray(u[slot]), fx[slot], axes=(0, 0))
                if fx[slot] is not None
                else basis.to_grid(xr)
            )
        resid = last_resid[slot]
        results[active[slot]] = EigenResult(
            np.asarray(eps[slot]).copy(), xr, it, resid, resid < tol,
            fields=fields,
        )
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Band-by-band solver (BLAS2 path)
# ---------------------------------------------------------------------------

def solve_band_by_band(
    ham: Hamiltonian,
    psi0: np.ndarray,
    max_iter: int = 80,
    tol: float = 1e-8,
    cg_per_band: int = 5,
    outer_sweeps: int = 12,
    instrumentation=None,
    want_fields: bool = False,
) -> EigenResult:
    """Sequential per-band preconditioned CG (the original BLAS2 scheme).

    Bands are optimized in ascending order, each constrained orthogonal to
    the bands below it, with ``cg_per_band`` CG steps per sweep and
    ``outer_sweeps`` sweeps with Rayleigh–Ritz rotations between them.
    """
    result = _solve_band_by_band(
        ham, psi0, tol, cg_per_band, outer_sweeps, want_fields
    )
    if instrumentation is not None:
        record_solve(instrumentation, "band_by_band", ham.basis.npw, result)
    return result


def _solve_band_by_band(
    ham: Hamiltonian,
    psi0: np.ndarray,
    tol: float,
    cg_per_band: int,
    outer_sweeps: int,
    want_fields: bool = False,
) -> EigenResult:
    x = cholesky_orthonormalize(np.asarray(psi0, dtype=complex))
    nband = x.shape[1]
    resid_norm = np.inf
    total_iter = 0
    for sweep in range(outer_sweeps):
        for n in range(nband):
            psi = x[:, n].copy()
            lower = x[:, :n]
            d_prev = None
            g_dot_prev = None
            for _ in range(cg_per_band):
                total_iter += 1
                psi = _project_out(psi, lower)
                psi /= np.linalg.norm(psi)
                hpsi = ham.apply(psi)
                eps = float(np.real(np.vdot(psi, hpsi)))
                r = hpsi - eps * psi
                r = _project_out(r, lower)
                r -= psi * np.vdot(psi, r)
                if np.linalg.norm(r) < tol:
                    break
                pr = ham.precondition(r, psi)
                pr = _project_out(pr, lower)
                pr -= psi * np.vdot(psi, pr)
                g_dot = float(np.real(np.vdot(pr, r)))
                if d_prev is None or g_dot_prev in (None, 0.0):
                    d = -pr
                else:
                    beta = g_dot / g_dot_prev
                    d = -pr + beta * d_prev
                d = _project_out(d, lower)
                d -= psi * np.vdot(psi, d)
                dnorm = np.linalg.norm(d)
                if dnorm < 1e-14:
                    break
                d /= dnorm
                # Exact 2×2 Rayleigh–Ritz on span{psi, d}.
                hd = ham.apply(d)
                a = eps
                b = float(np.real(np.vdot(d, hd)))
                cmix = complex(np.vdot(psi, hd))
                hmat = np.array([[a, cmix], [np.conj(cmix), b]])
                w2, v2 = np.linalg.eigh(hmat)
                coeff = v2[:, 0]
                psi = coeff[0] * psi + coeff[1] * d
                psi /= np.linalg.norm(psi)
                d_prev = d
                g_dot_prev = g_dot
            x[:, n] = psi
        # Subspace rotation after each sweep.
        x = cholesky_orthonormalize(x)
        cap: list[np.ndarray] | None = [] if want_fields else None
        hx = ham.apply(x, fields_out=cap)
        fx = cap.pop() if cap else None
        hsub = x.conj().T @ hx
        hsub = 0.5 * (hsub + hsub.conj().T)
        eps_all, u = np.linalg.eigh(hsub)
        x = x @ u
        hx = hx @ u
        r = hx - x * eps_all[None, :]
        resid_norm = float(np.max(np.linalg.norm(r, axis=0)))
        if resid_norm < tol:
            fields = np.tensordot(u, fx, axes=(0, 0)) if want_fields else None
            return EigenResult(eps_all.copy(), x, total_iter, resid_norm, True,
                               fields=fields)
    fields = np.tensordot(u, fx, axes=(0, 0)) if want_fields else None
    return EigenResult(eps_all.copy(), x, total_iter, resid_norm,
                       resid_norm < tol, fields=fields)


def _project_out(vec: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Remove the components of ``vec`` along the columns of ``block``."""
    if block.shape[1] == 0:
        return vec
    return vec - block @ (block.conj().T @ vec)
