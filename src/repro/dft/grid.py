"""Real-space grids, reciprocal vectors, and FFT conventions.

Conventions used across the whole package (orthorhombic cell, lengths
``L = (L0, L1, L2)``, grid shape ``n = (n0, n1, n2)``):

* Real-space fields ``f(r)`` are arrays of shape ``n``; grid point
  ``(i, j, k)`` sits at ``(i L0/n0, j L1/n1, k L2/n2)``.
* Reciprocal vectors ``G`` have components ``2π m_i / L_i`` with integer
  Miller indices ``m_i`` in FFT (wrap-around) order.
* Fourier coefficients of a field use the *density convention*
  ``f̃(G) = (1/Ω) ∫ f(r) e^{-iG·r} dr  =  fftn(f)/N_grid``,
  so ``f(r) = Σ_G f̃(G) e^{iG·r}`` and Parseval reads
  ``∫ f* g dr = Ω Σ_G f̃* g̃``.
"""

from __future__ import annotations

import numpy as np


class RealSpaceGrid:
    """A periodic orthorhombic real-space grid with FFT helpers."""

    def __init__(self, lengths, shape) -> None:
        self.lengths = np.asarray(lengths, dtype=float).reshape(3)
        self.shape = tuple(int(s) for s in np.asarray(shape).reshape(3))
        if np.any(self.lengths <= 0):
            raise ValueError(f"grid lengths must be positive, got {self.lengths}")
        if any(s < 2 for s in self.shape):
            raise ValueError(f"grid shape must be >= 2 per axis, got {self.shape}")
        self.volume = float(np.prod(self.lengths))
        self.npoints = int(np.prod(self.shape))
        #: volume element of one grid voxel
        self.dv = self.volume / self.npoints
        #: grid spacing per axis
        self.spacing = self.lengths / np.array(self.shape, dtype=float)
        self._g_cache: dict[str, np.ndarray] = {}

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_cutoff(cls, lengths, ecut: float, factor: float = 2.0) -> "RealSpaceGrid":
        """Grid dense enough to represent plane waves up to ``ecut``.

        ``factor = 2`` gives the exact-density grid (covers ``2 G_max``);
        smaller factors alias high-frequency density components, which is an
        acceptable economy for toy cutoffs.
        """
        lengths = np.asarray(lengths, dtype=float).reshape(3)
        gmax = np.sqrt(2.0 * ecut)
        shape = []
        for length in lengths:
            # Cover |G| up to factor·G_max per axis: π n / L ≥ factor·G_max.
            n = max(4, int(np.ceil(factor * gmax * length / np.pi)) + 1)
            shape.append(_next_fast_size(n))
        return cls(lengths, shape)

    # -- coordinates ---------------------------------------------------------

    def axes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """1-D coordinate arrays per axis."""
        return tuple(
            np.arange(n) * (length / n)
            for n, length in zip(self.shape, self.lengths)
        )

    def points(self) -> np.ndarray:
        """``(*shape, 3)`` array of grid-point coordinates."""
        x, y, z = self.axes()
        out = np.empty(self.shape + (3,), dtype=float)
        out[..., 0] = x[:, None, None]
        out[..., 1] = y[None, :, None]
        out[..., 2] = z[None, None, :]
        return out

    def min_image_distance(self, center) -> np.ndarray:
        """Minimum-image distance of every grid point from ``center``."""
        center = np.asarray(center, dtype=float).reshape(3)
        dist2 = np.zeros(self.shape, dtype=float)
        for axis, (coords, length) in enumerate(zip(self.axes(), self.lengths)):
            d = coords - center[axis]
            d -= length * np.round(d / length)
            shape = [1, 1, 1]
            shape[axis] = -1
            dist2 = dist2 + (d.reshape(shape)) ** 2
        return np.sqrt(dist2)

    # -- reciprocal space ----------------------------------------------------

    def miller(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Integer Miller indices per axis in FFT order."""
        return tuple(
            np.fft.fftfreq(n, d=1.0 / n).astype(int) for n in self.shape
        )

    def g_components(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """1-D arrays of G components (2π m / L) per axis in FFT order."""
        return tuple(
            2.0 * np.pi * m / length
            for m, length in zip(self.miller(), self.lengths)
        )

    def g_vectors(self) -> np.ndarray:
        """``(*shape, 3)`` array of G vectors."""
        if "gvec" not in self._g_cache:
            gx, gy, gz = self.g_components()
            out = np.empty(self.shape + (3,), dtype=float)
            out[..., 0] = gx[:, None, None]
            out[..., 1] = gy[None, :, None]
            out[..., 2] = gz[None, None, :]
            self._g_cache["gvec"] = out
        return self._g_cache["gvec"]

    def g2(self) -> np.ndarray:
        """``|G|²`` on the full FFT grid."""
        if "g2" not in self._g_cache:
            gx, gy, gz = self.g_components()
            self._g_cache["g2"] = (
                gx[:, None, None] ** 2
                + gy[None, :, None] ** 2
                + gz[None, None, :] ** 2
            )
        return self._g_cache["g2"]

    # -- transforms ----------------------------------------------------------

    def fft(self, field: np.ndarray) -> np.ndarray:
        """Real field → Fourier coefficients in the density convention."""
        return np.fft.fftn(field) / self.npoints

    def ifft(self, coeffs: np.ndarray) -> np.ndarray:
        """Fourier coefficients (density convention) → real-space field."""
        return np.fft.ifftn(coeffs * self.npoints)

    def integrate(self, field: np.ndarray) -> float:
        """∫ field dr over the cell."""
        return float(np.sum(field) * self.dv)

    # -- misc ----------------------------------------------------------------

    def compatible_with(self, other: "RealSpaceGrid") -> bool:
        return self.shape == other.shape and np.allclose(self.lengths, other.lengths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RealSpaceGrid(lengths={self.lengths.tolist()}, shape={self.shape})"


def _next_fast_size(n: int) -> int:
    """Smallest 2,3,5-smooth integer >= n (FFT-friendly sizes)."""
    while True:
        m = n
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        if m == 1:
            return n
        n += 1
