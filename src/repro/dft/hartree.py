"""Hartree (electrostatic) potential of the electron density.

Two interchangeable solvers exist in this package:

* this module — the reciprocal-space solve ``V_H(G) = 4π ρ̃(G)/G²`` used by
  the conventional O(N³) code path (one FFT pair, exact on the grid);
* :mod:`repro.multigrid.poisson` — the real-space multigrid solve used by
  the globally-scalable half of the GSLF solver (Sec. 3.2).

The ``G = 0`` component is set to zero: for a charge-neutral system the
divergent monopole terms of the Hartree, local-pseudopotential, and ion-ion
energies cancel (handled by the Ewald neutralizing background and the
pseudopotential α·Z correction).
"""

from __future__ import annotations

import numpy as np

from repro.dft.grid import RealSpaceGrid


def hartree_potential(grid: RealSpaceGrid, rho: np.ndarray) -> np.ndarray:
    """Solve ∇²V_H = -4πρ on the periodic grid; returns a real field."""
    rho_g = grid.fft(rho)
    g2 = grid.g2()
    vg = np.zeros_like(rho_g)
    nonzero = g2 > 0
    vg[nonzero] = 4.0 * np.pi * rho_g[nonzero] / g2[nonzero]
    return grid.ifft(vg).real


def hartree_energy(grid: RealSpaceGrid, rho: np.ndarray, vh: np.ndarray | None = None) -> float:
    """E_H = (1/2) ∫ ρ V_H dr."""
    if vh is None:
        vh = hartree_potential(grid, rho)
    return 0.5 * grid.integrate(rho * vh)
