"""Ewald summation for the ion-ion interaction (energy and forces).

Point charges ``q_I`` (the valence charges of the pseudo-ions) in a periodic
orthorhombic cell with a uniform neutralizing background.  The standard
split:

    E = E_real + E_recip + E_self + E_background

    E_real  = ½ Σ'_{I,J,images} q_I q_J erfc(η r)/r
    E_recip = (2π/Ω) Σ_{G≠0} e^{-G²/4η²}/G² |S(G)|²,   S(G) = Σ_I q_I e^{iG·R_I}
    E_self  = -(η/√π) Σ_I q_I²
    E_bg    = -(π/2Ωη²) (Σ_I q_I)²

Cutoffs are chosen from a requested tolerance; results are η-independent to
that tolerance (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc


def _choose_eta(cell: np.ndarray, natoms: int) -> float:
    """Balance real/reciprocal work: η ≈ √π (N/Ω²)^{1/6} (standard heuristic)."""
    volume = float(np.prod(cell))
    return float(np.sqrt(np.pi) * (max(natoms, 1) / volume**2) ** (1.0 / 6.0))


def _real_space_images(cell: np.ndarray, rcut: float) -> np.ndarray:
    """Integer lattice translations with any component within ``rcut``."""
    nmax = np.ceil(rcut / cell).astype(int)
    rng = [np.arange(-n, n + 1) for n in nmax]
    shifts = np.array(
        [(i, j, k) for i in rng[0] for j in rng[1] for k in rng[2]], dtype=float
    )
    return shifts * cell


def _recip_vectors(cell: np.ndarray, gcut: float) -> np.ndarray:
    """Nonzero reciprocal vectors with |G| <= gcut."""
    b = 2.0 * np.pi / cell
    nmax = np.ceil(gcut / b).astype(int)
    rng = [np.arange(-n, n + 1) for n in nmax]
    ms = np.array(
        [(i, j, k) for i in rng[0] for j in rng[1] for k in rng[2]], dtype=float
    )
    gs = ms * b
    g2 = np.sum(gs**2, axis=1)
    keep = (g2 > 1e-12) & (g2 <= gcut**2)
    return gs[keep]


@dataclass(frozen=True)
class EwaldStructure:
    """Geometry-only Ewald setup, reusable across MD steps of a fixed cell.

    The splitting parameter, truncation radii, real-space image shifts, and
    reciprocal vectors depend only on the cell and the atom *count* — not the
    positions — so a QMD trajectory can build this once per cell and pass it
    to :func:`ewald` on every step, skipping the image/G-vector enumeration.
    Held by :class:`repro.core.workspace.LDCWorkspace` (no module-level
    cache; the structure is threaded explicitly).
    """

    cell: np.ndarray
    natoms: int
    eta: float
    shifts: np.ndarray
    gs: np.ndarray

    @classmethod
    def build(
        cls,
        cell: np.ndarray,
        natoms: int,
        eta: float | None = None,
        tolerance: float = 1e-10,
    ) -> EwaldStructure:
        cell = np.asarray(cell, dtype=float).reshape(3)
        if eta is None:
            eta = _choose_eta(cell, natoms)
        x = np.sqrt(max(-np.log(tolerance), 1.0))
        rcut = (x + 1.0) / eta
        gcut = 2.0 * eta * (x + 1.0)
        return cls(
            cell=cell,
            natoms=int(natoms),
            eta=float(eta),
            shifts=_real_space_images(cell, rcut),
            gs=_recip_vectors(cell, gcut),
        )

    def matches(self, cell: np.ndarray, natoms: int) -> bool:
        cell = np.asarray(cell, dtype=float).reshape(3)
        return self.natoms == int(natoms) and bool(
            np.array_equal(self.cell, cell)
        )


def ewald(
    positions: np.ndarray,
    charges: np.ndarray,
    cell: np.ndarray,
    eta: float | None = None,
    tolerance: float = 1e-10,
    compute_forces: bool = True,
    structure: EwaldStructure | None = None,
) -> tuple[float, np.ndarray | None]:
    """Ewald energy (Hartree) and forces (Hartree/Bohr) for point charges.

    Parameters
    ----------
    positions:
        ``(natom, 3)`` Cartesian positions in Bohr.
    charges:
        ``(natom,)`` charges in units of e.
    cell:
        Length-3 orthorhombic cell.
    eta:
        Splitting parameter; auto-chosen when omitted.
    tolerance:
        Truncation tolerance for both sums.
    compute_forces:
        Skip the force accumulation when ``False``.
    structure:
        Precomputed :class:`EwaldStructure` for this (cell, atom count);
        skips the image-shift and G-vector enumeration.  Must match the
        given cell and atom count (checked).

    Returns
    -------
    (energy, forces) — forces is ``None`` if not requested.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    charges = np.asarray(charges, dtype=float)
    cell = np.asarray(cell, dtype=float).reshape(3)
    n = len(positions)
    if charges.shape != (n,):
        raise ValueError("one charge per atom required")
    if structure is not None:
        if not structure.matches(cell, n):
            raise ValueError(
                "EwaldStructure was built for a different cell or atom count"
            )
        eta = structure.eta
    elif eta is None:
        eta = _choose_eta(cell, n)

    # Truncation radii from erfc(η r) ~ tol and exp(-G²/4η²) ~ tol.
    x = np.sqrt(max(-np.log(tolerance), 1.0))
    rcut = (x + 1.0) / eta
    gcut = 2.0 * eta * (x + 1.0)

    volume = float(np.prod(cell))
    qtot = float(np.sum(charges))

    energy = 0.0
    forces = np.zeros((n, 3), dtype=float) if compute_forces else None

    # ---- real-space sum (vectorized over pairs, looped over images) -------
    shifts = (
        structure.shifts if structure is not None
        else _real_space_images(cell, rcut)
    )
    diff = positions[:, None, :] - positions[None, :, :]  # (n, n, 3)
    qq = charges[:, None] * charges[None, :]
    for shift in shifts:
        d = diff + shift
        r2 = np.sum(d * d, axis=-1)
        if np.allclose(shift, 0.0):
            np.fill_diagonal(r2, np.inf)  # exclude self-interaction in home cell
        mask = r2 <= rcut * rcut
        if not mask.any():
            continue
        r = np.sqrt(r2[mask])
        e = erfc(eta * r) / r
        energy += 0.5 * float(np.sum(qq[mask] * e))
        if compute_forces:
            # dE/dr of ½ q q erfc(ηr)/r, force on atom I from pair (I,J)
            coef = qq[mask] * (
                erfc(eta * r) / r2[mask]
                + 2.0 * eta / np.sqrt(np.pi) * np.exp(-(eta * r) ** 2) / r
            ) / r
            fvec = d[mask] * coef[:, None]
            idx_i, idx_j = np.nonzero(mask)
            np.add.at(forces, idx_i, fvec)

    # ---- reciprocal-space sum ---------------------------------------------
    gs = structure.gs if structure is not None else _recip_vectors(cell, gcut)
    if len(gs):
        g2 = np.sum(gs * gs, axis=1)
        phase = gs @ positions.T  # (ng, n)
        sg = (charges[None, :] * np.exp(1j * phase)).sum(axis=1)  # (ng,)
        weight = np.exp(-g2 / (4.0 * eta * eta)) / g2
        energy += (2.0 * np.pi / volume) * float(np.sum(weight * np.abs(sg) ** 2))
        if compute_forces:
            # F_I = +(4π/Ω) q_I Σ_G w(G) G Im[e^{iG·R_I} S*(G)]
            imag_part = np.imag(np.exp(1j * phase) * np.conj(sg)[:, None])  # (ng, n)
            fcontrib = (4.0 * np.pi / volume) * np.einsum(
                "g,gx,gn->nx", weight, gs, imag_part
            )
            forces += charges[:, None] * fcontrib

    # ---- self and background terms -----------------------------------------
    energy -= eta / np.sqrt(np.pi) * float(np.sum(charges**2))
    energy -= np.pi / (2.0 * volume * eta * eta) * qtot * qtot

    return energy, forces


def ewald_energy(positions, charges, cell, **kwargs) -> float:
    """Energy-only convenience wrapper."""
    e, _ = ewald(positions, charges, cell, compute_forces=False, **kwargs)
    return e
