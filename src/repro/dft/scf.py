"""The conventional O(N³) plane-wave SCF driver — the paper's baseline.

This is the "conventional plane-wave DFT code" of Sec. 5.5 used to verify
LDC-DFT: one global plane-wave basis, all orbitals explicit, density mixed
to self-consistency.  Its cost scales as O(N³) through orthonormalization
and dense subspace operations, which is exactly the bottleneck LDC-DFT
removes.

Total free energy:

    E = Σ_n f_n ε_n - ∫ρ(V_H + v_xc) dr + E_H[ρ] + E_xc[ρ] + E_Ewald - kT·S
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.dft.basis import PlaneWaveBasis, density_from_fields
from repro.dft.eigensolver import (
    EigenResult,
    solve_all_band,
    solve_band_by_band,
    solve_direct,
)
from repro.dft.ewald import ewald_energy
from repro.dft.grid import RealSpaceGrid
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.hartree import hartree_energy, hartree_potential
from repro.dft.mixing import LinearMixer, PulayMixer, renormalize
from repro.dft.occupations import (
    fermi_occupations,
    find_chemical_potential,
    smearing_entropy,
)
from repro.dft.pseudopotential import NonlocalProjectors, local_potential
from repro.dft.xc import lda_xc
from repro.sanitize import ENV_SANITIZERS, Sanitizers
from repro.systems.configuration import Configuration

if TYPE_CHECKING:
    from repro.observability.instrumentation import Instrumentation


@dataclass
class SCFOptions:
    """Knobs for the SCF loop."""

    ecut: float = 6.0
    #: extra empty bands beyond ⌈N_e/2⌉
    extra_bands: int = 4
    #: electronic temperature (Hartree); the paper uses modest smearing
    kt: float = 0.01
    #: density-convergence threshold on ∫|Δρ| dr / N_e
    tol: float = 1e-6
    max_iter: int = 60
    mixer: str = "pulay"  # "pulay" | "linear"
    mix_alpha: float = 0.4
    #: eigensolver: "direct" | "all_band" | "band_by_band"
    eigensolver: str = "all_band"
    eig_tol: float = 1e-7
    eig_max_iter: int = 40
    #: grid oversampling factor (2.0 = exact density grid)
    grid_factor: float = 2.0
    #: occupation smearing scheme: "fermi" | "gaussian" | "methfessel-paxton"
    smearing: str = "fermi"
    seed: int = 7


@dataclass
class SCFResult:
    """Converged (or best-effort) SCF state."""

    energy: float
    band_energy: float
    hartree: float
    xc: float
    ewald: float
    entropy_term: float
    eigenvalues: np.ndarray
    occupations: np.ndarray
    mu: float
    density: np.ndarray
    orbitals: np.ndarray
    basis: PlaneWaveBasis
    grid: RealSpaceGrid
    converged: bool
    iterations: int
    history: list[float] = field(default_factory=list)
    density_residuals: list[float] = field(default_factory=list)
    #: total eigensolver iterations summed over every solve of the run
    #: (including the final consistent pass) — the per-step cost number
    #: the warm-start/extrapolation benches gate on
    eig_iterations: int = 0


def initial_density(grid: RealSpaceGrid, config: Configuration) -> np.ndarray:
    """Superposition of atomic Gaussian charges (width = covalent-ish rc)."""
    from repro.constants import get_species

    rho = np.zeros(grid.shape)
    for i, symbol in enumerate(config.symbols):
        sp = get_species(symbol)
        width = max(sp.rc_loc, 0.4) * 1.5
        dist = grid.min_image_distance(config.positions[i])
        rho += sp.zval * np.exp(-0.5 * (dist / width) ** 2) / (
            (2.0 * np.pi) ** 1.5 * width**3
        )
    return renormalize(rho, config.n_electrons(), grid.dv)


def build_hamiltonian(
    basis: PlaneWaveBasis,
    config: Configuration,
    rho: np.ndarray,
    v_loc: np.ndarray,
    vnl: NonlocalProjectors,
    v_extra: np.ndarray | None = None,
) -> tuple[Hamiltonian, np.ndarray, np.ndarray]:
    """Assemble H for a given density; returns (H, V_H, v_xc)."""
    grid = basis.grid
    vh = hartree_potential(grid, rho)
    _, vxc = lda_xc(rho)
    v_eff = v_loc + vh + vxc
    if v_extra is not None:
        v_eff = v_eff + v_extra
    return Hamiltonian(basis, v_eff, vnl), vh, vxc


def _occupy(
    eigs: np.ndarray, n_electrons: float, opts: SCFOptions
) -> tuple[float, np.ndarray]:
    """Chemical potential + occupations under the selected smearing."""
    if opts.smearing == "fermi":
        mu = find_chemical_potential(eigs, n_electrons, opts.kt)
        return mu, fermi_occupations(eigs, mu, opts.kt)
    from repro.dft.smearing import find_mu, occupations

    mu = find_mu(opts.smearing, eigs, n_electrons, opts.kt)
    return mu, occupations(opts.smearing, eigs, mu, opts.kt)


def _solve(
    ham: Hamiltonian,
    psi: np.ndarray,
    opts: SCFOptions,
    instrumentation: Instrumentation | None = None,
) -> EigenResult:
    # want_fields=True: the returned real-space fields feed the density
    # build directly, skipping a redundant to_grid of the converged block.
    if opts.eigensolver == "direct":
        return solve_direct(
            ham, psi.shape[1], instrumentation=instrumentation,
            want_fields=True,
        )
    if opts.eigensolver == "all_band":
        return solve_all_band(
            ham, psi, max_iter=opts.eig_max_iter, tol=opts.eig_tol,
            instrumentation=instrumentation, want_fields=True,
        )
    if opts.eigensolver == "band_by_band":
        return solve_band_by_band(
            ham, psi, tol=opts.eig_tol, instrumentation=instrumentation,
            want_fields=True,
        )
    raise ValueError(f"unknown eigensolver {opts.eigensolver!r}")


def run_scf(
    config: Configuration,
    options: SCFOptions | None = None,
    v_extra: np.ndarray | None = None,
    rho0: np.ndarray | None = None,
    grid: RealSpaceGrid | None = None,
    instrumentation: Instrumentation | None = None,
    psi0: np.ndarray | None = None,
    sanitize: "Sanitizers | None" = None,
    warm_cell: np.ndarray | None = None,
) -> SCFResult:
    """Run the conventional SCF loop to self-consistency.

    Parameters
    ----------
    config:
        The atomic configuration (periodic cell).
    options:
        :class:`SCFOptions`; defaults are sized for toy systems.
    v_extra:
        Optional extra external potential on the grid (used by LDC domain
        solves to inject the boundary potential; exposed here for tests).
    rho0:
        Optional initial density (e.g. from the previous MD step).  A
        stale-shaped array (grid changed since it was produced) is ignored
        — cold start, not a crash.
    grid:
        Optional explicit grid (must match ``v_extra``/``rho0``).
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation`; records
        ``scf.*`` spans and per-iteration residual/energy/μ series.  The
        default ``None`` executes no telemetry code at all.
    psi0:
        Optional starting orbitals ``(npw, nband)`` — e.g. the previous MD
        step's converged block (the QMD orbital warm start).  Ignored when
        the shape does not match the basis/band count of this call.
    sanitize:
        Optional :class:`~repro.sanitize.Sanitizers` bundle; the numerics
        slot checks density/eigenvalue checkpoints each iteration.  The
        default ``None`` defers to ``REPRO_SANITIZE`` and, when unset,
        executes zero sanitizer code.
    warm_cell:
        The cell ``rho0``/``psi0`` were converged in.  When given and
        different from ``config.cell``, both warm starts are dropped
        (deterministic cold start) — the same guard every engine used to
        implement privately, hoisted here so *all* callers get it.  A
        cell change usually also changes the grid/basis shape, but not
        always (e.g. a pure rescale): matching shapes over a different
        cell are exactly the stale warm start this catches.
    """
    opts = options or SCFOptions()
    san = sanitize if sanitize is not None else ENV_SANITIZERS
    if warm_cell is not None and not np.array_equal(
        np.asarray(warm_cell, dtype=float).reshape(-1),
        np.asarray(config.cell, dtype=float).reshape(-1),
    ):
        rho0 = None  # density lives on the old cell's grid
        psi0 = None  # orbitals live on the old cell's basis
    if instrumentation is None:
        return _run_scf(config, opts, v_extra, rho0, grid, None, psi0, san)
    if instrumentation.recorder is not None:
        instrumentation.recorder.record_invocation(
            "scf.run", opts, natoms=len(config.symbols)
        )
    with instrumentation.span(
        "scf.run", category="scf", natoms=len(config.symbols),
        eigensolver=opts.eigensolver, mixer=opts.mixer,
    ) as span:
        try:
            result = _run_scf(
                config, opts, v_extra, rho0, grid, instrumentation, psi0, san
            )
        except Exception as exc:
            if instrumentation.recorder is not None:
                instrumentation.recorder.record_failure(exc)
            raise
        span.attrs.update(
            converged=result.converged, iterations=result.iterations
        )
        instrumentation.log.info(
            "scf finished",
            extra={
                "engine": "pw",
                "converged": result.converged,
                "iterations": result.iterations,
                "energy": result.energy,
            },
        )
    return result


def _run_scf(
    config: Configuration,
    opts: SCFOptions,
    v_extra: np.ndarray | None,
    rho0: np.ndarray | None,
    grid: RealSpaceGrid | None,
    ins: Instrumentation | None,
    psi0: np.ndarray | None = None,
    san: "Sanitizers | None" = None,
) -> SCFResult:
    """SCF implementation; ``ins``/``san`` are the facades or None."""
    hm = None if ins is None else ins.health
    if grid is None:
        grid = RealSpaceGrid.for_cutoff(config.cell, opts.ecut, opts.grid_factor)
    basis = PlaneWaveBasis(grid, opts.ecut)
    n_electrons = config.n_electrons()
    nband = int(np.ceil(n_electrons / 2.0)) + opts.extra_bands
    nband = min(nband, basis.npw)

    v_loc = local_potential(grid, config)
    nonlocal_ = NonlocalProjectors(basis, config)
    e_ewald = ewald_energy(
        config.wrapped_positions(), config.zvals, config.cell
    )

    if rho0 is not None and rho0.shape != grid.shape:
        rho0 = None  # stale-shaped warm start (grid changed) → cold start
    rho = initial_density(grid, config) if rho0 is None else rho0.copy()
    rho = renormalize(rho, n_electrons, grid.dv)
    if san is not None and san.numerics is not None:
        san.numerics.check(
            "rho0", rho, where="scf.init", expect_dtype=np.float64
        )
    if psi0 is not None and psi0.shape == (basis.npw, nband):
        psi = psi0  # orbital warm start (previous MD step's converged block)
    else:
        psi = basis.random_orbitals(nband, seed=opts.seed)

    mixer: PulayMixer | LinearMixer
    if opts.mixer == "pulay":
        mixer = PulayMixer(alpha=opts.mix_alpha)
    elif opts.mixer == "linear":
        mixer = LinearMixer(alpha=opts.mix_alpha)
    else:
        raise ValueError(f"unknown mixer {opts.mixer!r}")

    history: list[float] = []
    residuals: list[float] = []
    converged = False
    energy = np.nan
    mu = 0.0
    occs = np.zeros(nband)
    eigs = np.zeros(nband)
    vh = np.zeros(grid.shape)
    it = 0
    eig_total = 0

    for it in range(1, opts.max_iter + 1):
        if ins is not None:
            t_iter = ins.tracer.now()
        ham, vh, vxc = build_hamiltonian(basis, config, rho, v_loc, nonlocal_, v_extra)
        if ins is None:
            eig = _solve(ham, psi, opts)
        else:
            with ins.span("scf.eigensolve", category="scf", iteration=it) as sp:
                eig = _solve(ham, psi, opts, ins)
                # solve sizes feed the per-kernel FLOP attribution
                # (repro.observability.costattr) at report time
                sp.attrs.update(
                    npw=basis.npw, nband=nband,
                    grid_points=int(np.prod(grid.shape)),
                    nproj=len(nonlocal_.d), cg_iterations=eig.iterations,
                )
        psi = eig.orbitals
        eigs = eig.eigenvalues
        eig_total += int(eig.iterations)
        mu, occs = _occupy(eigs, n_electrons, opts)
        rho_out = density_from_fields(eig.fields, occs)
        rho_out = renormalize(rho_out, n_electrons, grid.dv)
        if san is not None and san.numerics is not None:
            san.numerics.check(
                "eigenvalues", eigs, where=f"scf.iteration[{it}]"
            )
            san.numerics.check(
                "rho_new", rho_out, where=f"scf.iteration[{it}]",
                expect_dtype=np.float64,
            )

        resid = grid.integrate(np.abs(rho_out - rho)) / max(n_electrons, 1.0)
        residuals.append(resid)

        energy = _total_energy(
            grid, eigs, occs, rho_out, vh, vxc, e_ewald, mu, opts.kt, v_extra
        )
        history.append(energy)

        if ins is not None:
            ins.counter("scf.iterations", engine="pw").inc()
            ins.series("scf.residual", engine="pw").append(resid)
            ins.series("scf.energy", engine="pw").append(energy)
            ins.series("scf.mu", engine="pw").append(mu)
            ins.tracer.record_complete(
                "scf.iteration", ins.tracer.now() - t_iter, category="scf",
                iteration=it, residual=resid, energy=energy,
            )
            ins.log.debug(
                "scf iteration",
                extra={"engine": "pw", "iteration": it,
                       "residual": resid, "energy": energy, "mu": mu},
            )
        if hm is not None:
            hm.observe(
                "scf.residual", engine="pw", iteration=it, residual=resid
            )

        if resid < opts.tol:
            rho = rho_out
            converged = True
            break
        rho = renormalize(
            np.clip(mixer.mix(rho, rho_out), 0.0, None), n_electrons, grid.dv
        )

    # Energy evaluated self-consistently at the final density.
    ham, vh, vxc = build_hamiltonian(basis, config, rho, v_loc, nonlocal_, v_extra)
    eig = _solve(ham, psi, opts, ins)
    psi = eig.orbitals
    eigs = eig.eigenvalues
    eig_total += int(eig.iterations)
    mu, occs = _occupy(eigs, n_electrons, opts)
    rho_final = renormalize(
        density_from_fields(eig.fields, occs), n_electrons, grid.dv
    )
    energy = _total_energy(
        grid, eigs, occs, rho_final, vh, vxc, e_ewald, mu, opts.kt, v_extra
    )

    if hm is not None:
        hm.observe(
            "scf.density", engine="pw",
            total_charge=grid.integrate(rho_final), n_electrons=n_electrons,
        )
        hm.observe(
            "solver.convergence", solver="scf[pw]", converged=converged,
            iterations=it, final=True,
            residual=residuals[-1] if residuals else None,
        )

    e_h = hartree_energy(grid, rho_final, vh)
    from repro.dft.xc import xc_energy

    return SCFResult(
        energy=energy,
        band_energy=float(np.sum(occs * eigs)),
        hartree=e_h,
        xc=xc_energy(rho_final, grid.dv),
        ewald=e_ewald,
        entropy_term=-opts.kt * smearing_entropy(eigs, mu, opts.kt),
        eigenvalues=eigs,
        occupations=occs,
        mu=mu,
        density=rho_final,
        orbitals=psi,
        basis=basis,
        grid=grid,
        converged=converged,
        iterations=it,
        history=history,
        density_residuals=residuals,
        eig_iterations=eig_total,
    )


def _total_energy(
    grid: RealSpaceGrid,
    eigs: np.ndarray,
    occs: np.ndarray,
    rho: np.ndarray,
    vh: np.ndarray,
    vxc: np.ndarray,
    e_ewald: float,
    mu: float,
    kt: float,
    v_extra: np.ndarray | None,
) -> float:
    """Harris-style total energy from band energies and double counting.

    Note: ``vh``/``vxc`` correspond to the *input* density of the last solve;
    at self-consistency input and output coincide and the expression is the
    standard KS total energy.
    """
    from repro.dft.xc import xc_energy

    e_band = float(np.sum(occs * eigs))
    double_count = grid.integrate(rho * (vh + vxc))
    e_h = hartree_energy(grid, rho, vh)
    e_xc = xc_energy(rho, grid.dv)
    entropy = -kt * smearing_entropy(eigs, mu, kt)
    extra = 0.0
    if v_extra is not None:
        # v_extra is an external potential: keep its interaction energy but
        # it is already inside the band energy; no double counting needed.
        extra = 0.0
    return e_band - double_count + e_h + e_xc + e_ewald + entropy + extra
