"""The static-analysis engine: file contexts, checker registry, suppression.

The engine is a deliberately small AST-visitor framework tuned to *this*
codebase's physics and SPMD idioms (DESIGN.md §9/§13).  A :class:`Checker`
inspects one :class:`FileContext` (source + AST + comment map) and yields
:class:`Finding` records; the engine walks a file tree, runs every
registered checker, and applies per-line suppression comments of the form::

    rho[mask] = 0.0  # repro: noqa[RP002] boundary mask is the contract

``# repro: noqa`` with no rule list suppresses every rule on that line.
Suppressed findings are retained (marked ``suppressed=True``) so reporters
can audit them; only *unsuppressed* findings fail the run.

Checkers register themselves with :func:`register`; the registry maps rule
ids (``RP001``...) to checker classes, and :func:`run_paths` is the one
entry point both the CLI (``python -m repro.analysis``) and the tier-1
self-check test use.

Two scopes of checker exist since the interprocedural upgrade:

* ``scope = "file"`` (the default) — sees one :class:`FileContext`;
* ``scope = "project"`` (:class:`ProjectChecker`) — runs once over a
  :class:`~repro.analysis.project.ProjectIndex` of function summaries
  spanning every analysed file, so rules like RP005 follow collectives
  across helper-function boundaries.

``run_paths`` additionally supports an **incremental cache** (per-file
findings + summaries keyed by content hash; the cheap project pass always
re-runs from cached summaries) and a ``jobs=`` thread fan-out, so the CI
analysis job stays fast as the tree and rule count grow.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import pathlib
import re
import tokenize
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: Matches the suppression comment — ``repro: noqa`` after a hash, with an
#: optional ``[RP001,RP005]`` rule list (trailing text allowed as a
#: human-readable justification).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Rule id used for files the engine itself cannot parse.
PARSE_ERROR_RULE = "RP000"


@dataclass(frozen=True)
class Finding:
    """One defect reported by a checker."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{mark}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
        }


@dataclass
class FileContext:
    """Everything a checker may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: line number → set of suppressed rule ids ("*" means all rules)
    noqa: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree, noqa=_noqa_map(source))

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        rules = self.noqa.get(line, set())
        suppressed = "*" in rules or rule in rules
        return Finding(
            rule=rule, message=message, path=self.path,
            line=line, col=col, suppressed=suppressed,
        )


def _noqa_map(source: str) -> dict[int, set[str]]:
    """Parse suppression comments via tokenize (robust to strings)."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            rules = m.group("rules")
            names = (
                {"*"}
                if rules is None
                else {r.strip().upper() for r in rules.split(",") if r.strip()}
            )
            out.setdefault(tok.start[0], set()).update(names)
    except tokenize.TokenizeError:  # pragma: no cover - parse error path
        pass
    return out


class Checker:
    """Base class for one rule.  Subclasses set ``rule``/``name`` and
    implement :meth:`check` yielding findings for one file."""

    #: rule id, e.g. ``"RP001"``
    rule: str = "RP???"
    #: short kebab-case rule name for ``--list-rules``
    name: str = "unnamed"
    #: one-line description shown by ``--list-rules``
    description: str = ""
    #: ``"file"`` (per-:class:`FileContext`) or ``"project"``
    #: (once over the whole :class:`ProjectIndex`)
    scope: str = "file"
    #: path substrings this checker skips (implementation modules whose
    #: internals are the thing the rule protects call-sites *from*)
    exempt_paths: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        norm = ctx.path.replace("\\", "/")
        return not any(part in norm for part in self.exempt_paths)

    def applies_to_path(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return not any(part in norm for part in self.exempt_paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectChecker(Checker):
    """A whole-project rule: sees the call-graph index, not one file.

    Subclasses implement :meth:`check_project`; :meth:`finding` applies the
    per-line suppression map the index carries for each file.
    """

    scope = "project"

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def finding(
        self, index, path: str, line: int, col: int, message: str
    ) -> Finding:
        rules = index.noqa.get(path, {}).get(line, set())
        suppressed = "*" in rules or self.rule in rules
        return Finding(
            rule=self.rule, message=message, path=path,
            line=line, col=col, suppressed=suppressed,
        )

    def check_project(self, index) -> Iterator[Finding]:
        raise NotImplementedError


#: rule id → checker class; populated by :func:`register` at import time.
CHECKERS: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.rule in CHECKERS:
        raise ValueError(f"duplicate checker rule {cls.rule}")
    CHECKERS[cls.rule] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Instantiate every registered checker (importing the suite first)."""
    # Import for side effect: checker modules self-register on import.
    import repro.analysis.checkers  # noqa: F401

    return [CHECKERS[rule]() for rule in sorted(CHECKERS)]


def iter_python_files(paths: Sequence[str | pathlib.Path]) -> Iterator[pathlib.Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py")
                if not any(part.startswith(".") for part in f.parts)
            )
        elif p.suffix == ".py":
            yield p


def _split_scopes(
    checkers: Iterable[Checker],
) -> tuple[list[Checker], list[ProjectChecker]]:
    file_scope: list[Checker] = []
    project_scope: list[ProjectChecker] = []
    for c in checkers:
        if c.scope == "project":
            project_scope.append(c)  # type: ignore[arg-type]
        else:
            file_scope.append(c)
    return file_scope, project_scope


@dataclass
class FileResult:
    """Per-file analysis product: what the incremental cache stores."""

    path: str
    findings: list[Finding]
    summaries: list  # list[FunctionSummary]
    noqa: dict[int, set[str]]
    from_cache: bool = False


def _analyse_one(
    path: str,
    source: str | None,
    file_checkers: list[Checker],
    need_summaries: bool,
) -> FileResult:
    """Parse + file-scope checks + (optionally) function summaries."""
    from repro.analysis.project import summarize_file

    if source is None:
        source = pathlib.Path(path).read_text()
    try:
        ctx = FileContext.from_source(path, source)
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE_ERROR_RULE,
            message=f"could not parse: {exc.msg}",
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
        )
        return FileResult(path, [finding], [], {})
    findings: list[Finding] = []
    for checker in file_checkers:
        if checker.applies_to(ctx):
            findings.extend(checker.check(ctx))
    summaries = summarize_file(ctx) if need_summaries else []
    return FileResult(path, findings, summaries, ctx.noqa)


def _run_project_checkers(
    project_checkers: list[ProjectChecker], results: list[FileResult]
) -> list[Finding]:
    from repro.analysis.project import build_index

    if not project_checkers:
        return []
    index = build_index(
        (r.path, r.summaries, r.noqa) for r in results
    )
    findings: list[Finding] = []
    for checker in project_checkers:
        findings.extend(
            f for f in checker.check_project(index)
            if checker.applies_to_path(f.path)
        )
    return findings


def check_file(
    path: str | pathlib.Path,
    checkers: Iterable[Checker] | None = None,
    source: str | None = None,
) -> list[Finding]:
    """Run checkers over one file; parse failures become RP000 findings.

    Project-scope checkers see a single-file project — interprocedural
    reasoning still applies *within* the file.
    """
    path = str(path)
    suite = list(checkers) if checkers is not None else all_checkers()
    file_checkers, project_checkers = _split_scopes(suite)
    result = _analyse_one(path, source, file_checkers, bool(project_checkers))
    findings = list(result.findings)
    findings.extend(_run_project_checkers(project_checkers, [result]))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# -- incremental cache ---------------------------------------------------------

#: bump when the cache payload layout itself changes
CACHE_LAYOUT = 1

_suite_signature_cache: str | None = None


def suite_signature() -> str:
    """Hash of the analyser's own source: any change invalidates the cache.

    Covers the engine, the project layer, and every checker module, so a
    rule tweak can never serve stale findings from a content-hash hit.
    """
    global _suite_signature_cache
    if _suite_signature_cache is None:
        h = hashlib.sha256()
        pkg = pathlib.Path(__file__).parent
        for f in sorted(pkg.rglob("*.py")):
            h.update(f.name.encode())
            h.update(f.read_bytes())
        _suite_signature_cache = h.hexdigest()[:16]
    return _suite_signature_cache


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()[:16]


class AnalysisCache:
    """Per-file result cache keyed by content hash + suite signature.

    Stores file-scope findings, function summaries, and the suppression
    map — everything :func:`run_paths` needs to skip the parse entirely on
    a hit.  Project-scope findings are *never* cached (they depend on the
    whole tree); they recompute cheaply from the cached summaries.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        if self.path.exists():
            try:
                doc = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                doc = {}
            if (
                doc.get("layout") == CACHE_LAYOUT
                and doc.get("suite") == suite_signature()
            ):
                self._entries = doc.get("files", {})

    def get(self, path: str, content_hash: str) -> FileResult | None:
        from repro.analysis.project import FunctionSummary

        entry = self._entries.get(path)
        if entry is None or entry.get("hash") != content_hash:
            self.misses += 1
            return None
        self.hits += 1
        return FileResult(
            path=path,
            findings=[
                Finding(**{**d, "suppressed": bool(d["suppressed"])})
                for d in entry["findings"]
            ],
            summaries=[
                FunctionSummary.from_dict(d) for d in entry["summaries"]
            ],
            noqa={
                int(line): set(rules)
                for line, rules in entry["noqa"].items()
            },
            from_cache=True,
        )

    def put(self, result: FileResult, content_hash: str) -> None:
        self._entries[result.path] = {
            "hash": content_hash,
            "findings": [f.to_dict() for f in result.findings],
            "summaries": [s.to_dict() for s in result.summaries],
            "noqa": {
                str(line): sorted(rules)
                for line, rules in result.noqa.items()
            },
        }

    def save(self) -> None:
        payload = {
            "layout": CACHE_LAYOUT,
            "suite": suite_signature(),
            "files": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)


@dataclass
class RunResult:
    """Everything one :func:`run_paths` pass produced.

    ``findings`` is the combined, sorted stream (file + project scope);
    ``noqa_by_file`` feeds the stale-suppression audit; ``cache_hits`` /
    ``cache_misses`` report incremental-mode effectiveness.
    """

    findings: list[Finding]
    noqa_by_file: dict[str, dict[int, set[str]]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0


def run_paths(
    paths: Sequence[str | pathlib.Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    jobs: int = 1,
    cache: str | pathlib.Path | AnalysisCache | None = None,
) -> list[Finding]:
    """Analyse every python file under ``paths`` with the full suite.

    ``select``/``ignore`` filter by rule id; suppression comments are
    applied per line.  Returns *all* findings (suppressed ones flagged).
    ``jobs`` fans the per-file parse+check work over a thread pool;
    ``cache`` (a path or :class:`AnalysisCache`) enables incremental mode.
    """
    return run_paths_full(
        paths, select=select, ignore=ignore, jobs=jobs, cache=cache
    ).findings


def run_paths_full(
    paths: Sequence[str | pathlib.Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    jobs: int = 1,
    cache: str | pathlib.Path | AnalysisCache | None = None,
) -> RunResult:
    """Like :func:`run_paths` but returns the full :class:`RunResult`."""
    checkers = all_checkers()
    if select:
        wanted = {r.upper() for r in select}
        checkers = [c for c in checkers if c.rule in wanted]
    if ignore:
        dropped = {r.upper() for r in ignore}
        checkers = [c for c in checkers if c.rule not in dropped]
    file_checkers, project_checkers = _split_scopes(checkers)

    if cache is not None and not isinstance(cache, AnalysisCache):
        cache = AnalysisCache(cache)

    def analyse(path: pathlib.Path) -> FileResult:
        source = path.read_text()
        if cache is not None:
            digest = _content_hash(source)
            hit = cache.get(str(path), digest)
            if hit is not None:
                return hit
            result = _analyse_one(str(path), source, file_checkers, True)
            cache.put(result, digest)
            return result
        # Summaries are only needed when a project checker will run.
        return _analyse_one(
            str(path), source, file_checkers, bool(project_checkers)
        )

    files = list(iter_python_files(paths))
    if jobs > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(analyse, files))
    else:
        results = [analyse(p) for p in files]
    if cache is not None:
        cache.save()

    findings: list[Finding] = []
    for r in results:
        findings.extend(r.findings)
    findings.extend(_run_project_checkers(project_checkers, results))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return RunResult(
        findings=findings,
        noqa_by_file={r.path: r.noqa for r in results},
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )


def unsuppressed(findings: Iterable[Finding]) -> list[Finding]:
    return [f for f in findings if not f.suppressed]


# -- stale-suppression audit ---------------------------------------------------


@dataclass(frozen=True)
class UnusedNoqa:
    """A ``# repro: noqa[...]`` entry that no longer suppresses anything."""

    path: str
    line: int
    #: the stale rule ids, or ``("*",)`` for a blanket noqa with no finding
    rules: tuple[str, ...]

    def format(self) -> str:
        spec = "" if self.rules == ("*",) else f"[{','.join(self.rules)}]"
        return (
            f"{self.path}:{self.line}: unused suppression "
            f"`# repro: noqa{spec}` — no finding on this line"
        )


def unused_suppressions(
    findings: Iterable[Finding],
    noqa_by_file: dict[str, dict[int, set[str]]],
) -> list[UnusedNoqa]:
    """Suppression comments that suppress nothing (per rule id).

    A blanket ``noqa`` is stale when *no* rule fires on its line; a
    rule-scoped ``noqa[RP00x,...]`` reports each listed rule that no
    finding on that line carries.  Findings include suppressed ones — that
    is exactly what a live suppression produces.
    """
    fired: dict[tuple[str, int], set[str]] = {}
    for f in findings:
        fired.setdefault((f.path, f.line), set()).add(f.rule)
    out: list[UnusedNoqa] = []
    for path, lines in sorted(noqa_by_file.items()):
        for line, rules in sorted(lines.items()):
            present = fired.get((path, line), set())
            if "*" in rules:
                if not present:
                    out.append(UnusedNoqa(path, line, ("*",)))
                continue
            stale = tuple(sorted(r for r in rules if r not in present))
            if stale:
                out.append(UnusedNoqa(path, line, stale))
    return out
