"""The static-analysis engine: file contexts, checker registry, suppression.

The engine is a deliberately small AST-visitor framework tuned to *this*
codebase's physics and SPMD idioms (DESIGN.md §9).  A :class:`Checker`
inspects one :class:`FileContext` (source + AST + comment map) and yields
:class:`Finding` records; the engine walks a file tree, runs every
registered checker, and applies per-line suppression comments of the form::

    rho[mask] = 0.0  # repro: noqa[RP002] boundary mask is the contract

``# repro: noqa`` with no rule list suppresses every rule on that line.
Suppressed findings are retained (marked ``suppressed=True``) so reporters
can audit them; only *unsuppressed* findings fail the run.

Checkers register themselves with :func:`register`; the registry maps rule
ids (``RP001``...) to checker classes, and :func:`run_paths` is the one
entry point both the CLI (``python -m repro.analysis``) and the tier-1
self-check test use.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: ``# repro: noqa`` or ``# repro: noqa[RP001,RP005]`` (trailing text allowed
#: as a human-readable justification).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Rule id used for files the engine itself cannot parse.
PARSE_ERROR_RULE = "RP000"


@dataclass(frozen=True)
class Finding:
    """One defect reported by a checker."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{mark}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
        }


@dataclass
class FileContext:
    """Everything a checker may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: line number → set of suppressed rule ids ("*" means all rules)
    noqa: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree, noqa=_noqa_map(source))

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        rules = self.noqa.get(line, set())
        suppressed = "*" in rules or rule in rules
        return Finding(
            rule=rule, message=message, path=self.path,
            line=line, col=col, suppressed=suppressed,
        )


def _noqa_map(source: str) -> dict[int, set[str]]:
    """Parse suppression comments via tokenize (robust to strings)."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            rules = m.group("rules")
            names = (
                {"*"}
                if rules is None
                else {r.strip().upper() for r in rules.split(",") if r.strip()}
            )
            out.setdefault(tok.start[0], set()).update(names)
    except tokenize.TokenizeError:  # pragma: no cover - parse error path
        pass
    return out


class Checker:
    """Base class for one rule.  Subclasses set ``rule``/``name`` and
    implement :meth:`check` yielding findings for one file."""

    #: rule id, e.g. ``"RP001"``
    rule: str = "RP???"
    #: short kebab-case rule name for ``--list-rules``
    name: str = "unnamed"
    #: one-line description shown by ``--list-rules``
    description: str = ""
    #: path substrings this checker skips (implementation modules whose
    #: internals are the thing the rule protects call-sites *from*)
    exempt_paths: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        norm = ctx.path.replace("\\", "/")
        return not any(part in norm for part in self.exempt_paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


#: rule id → checker class; populated by :func:`register` at import time.
CHECKERS: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.rule in CHECKERS:
        raise ValueError(f"duplicate checker rule {cls.rule}")
    CHECKERS[cls.rule] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Instantiate every registered checker (importing the suite first)."""
    # Import for side effect: checker modules self-register on import.
    import repro.analysis.checkers  # noqa: F401

    return [CHECKERS[rule]() for rule in sorted(CHECKERS)]


def iter_python_files(paths: Sequence[str | pathlib.Path]) -> Iterator[pathlib.Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py")
                if not any(part.startswith(".") for part in f.parts)
            )
        elif p.suffix == ".py":
            yield p


def check_file(
    path: str | pathlib.Path,
    checkers: Iterable[Checker] | None = None,
    source: str | None = None,
) -> list[Finding]:
    """Run checkers over one file; parse failures become RP000 findings."""
    path = str(path)
    if source is None:
        source = pathlib.Path(path).read_text()
    try:
        ctx = FileContext.from_source(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                message=f"could not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
            )
        ]
    findings: list[Finding] = []
    for checker in checkers if checkers is not None else all_checkers():
        if checker.applies_to(ctx):
            findings.extend(checker.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def run_paths(
    paths: Sequence[str | pathlib.Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Analyse every python file under ``paths`` with the full suite.

    ``select``/``ignore`` filter by rule id; suppression comments are
    applied per line.  Returns *all* findings (suppressed ones flagged).
    """
    checkers = all_checkers()
    if select:
        wanted = {r.upper() for r in select}
        checkers = [c for c in checkers if c.rule in wanted]
    if ignore:
        dropped = {r.upper() for r in ignore}
        checkers = [c for c in checkers if c.rule not in dropped]
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, checkers))
    return findings


def unsuppressed(findings: Iterable[Finding]) -> list[Finding]:
    return [f for f in findings if not f.suppressed]
