"""RP001 — silent dtype upcast in numpy hot paths.

Two patterns the BLAS3 discipline of Sec. 3.4 forbids:

* **Ambiguous allocation in a mixed real/complex function.**  A function
  that manipulates complex data (a ``1j`` literal, ``complex128``/
  ``complex64``, ``conj``) but allocates arrays with ``np.zeros``/``ones``/
  ``empty``/``full`` *without* an explicit ``dtype=`` invites a silent
  float64→complex128 upcast the first time the real buffer meets a complex
  operand — doubling memory traffic in the hot path and hiding phase
  information in an accidental cast.
* **Integer-dtype accumulator fed float updates.**  An array allocated with
  an integer dtype that is later the target of an augmented assignment with
  a float-producing right-hand side (a float literal or a true division)
  either truncates silently or raises a casting error deep in a run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import (
    base_name,
    dotted_name,
    function_defs,
)
from repro.analysis.engine import Checker, FileContext, Finding, register

_ALLOCATORS = {"zeros", "ones", "empty", "full"}
_COMPLEX_ATTRS = {"complex128", "complex64", "conj", "conjugate"}
_INT_DTYPES = {"int", "int8", "int16", "int32", "int64", "intp", "uint8",
               "uint16", "uint32", "uint64"}


def _is_complex_marker(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, complex):
        return True
    if isinstance(node, ast.Attribute) and node.attr in _COMPLEX_ATTRS:
        return True
    if isinstance(node, ast.Name) and node.id == "complex":
        return True
    return False


def _alloc_call(node: ast.AST) -> ast.Call | None:
    """Return the call node if this is ``np.zeros(...)``-style allocation."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    parts = name.split(".")
    if len(parts) == 2 and parts[0] in ("np", "numpy") and parts[1] in _ALLOCATORS:
        return node
    return None


def _dtype_kwarg(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


def _dtype_is_integer(value: ast.expr) -> bool:
    name = dotted_name(value)
    return name.split(".")[-1] in _INT_DTYPES


def _float_producing(expr: ast.expr) -> bool:
    """True if the expression obviously produces floats (literal or /)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
    return False


@register
class DtypeUpcastChecker(Checker):
    rule = "RP001"
    name = "silent-dtype-upcast"
    description = (
        "numpy allocation without dtype= in a function handling complex "
        "data, or an integer-dtype accumulator fed float updates"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in function_defs(ctx.tree):
            has_complex = any(_is_complex_marker(n) for n in ast.walk(fn))
            int_arrays: dict[str, int] = {}
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    call = _alloc_call(node.value)
                    target = node.targets[0]
                    if call is not None and isinstance(target, ast.Name):
                        dtype = _dtype_kwarg(call)
                        if dtype is not None and _dtype_is_integer(dtype):
                            int_arrays[target.id] = node.lineno
                call = _alloc_call(node)
                if (
                    call is not None
                    and has_complex
                    and _dtype_kwarg(call) is None
                ):
                    yield ctx.finding(
                        call, self.rule,
                        f"array allocation without explicit dtype= in "
                        f"function {fn.name!r} that handles complex data; "
                        f"a float64 buffer here silently upcasts to "
                        f"complex128 on first complex operand",
                    )
            for node in ast.walk(fn):
                if not isinstance(node, ast.AugAssign):
                    continue
                tgt = base_name(node.target)
                if tgt in int_arrays and _float_producing(node.value):
                    yield ctx.finding(
                        node, self.rule,
                        f"integer-dtype array {tgt!r} (allocated at line "
                        f"{int_arrays[tgt]}) receives a float-valued "
                        f"augmented update; the accumulation truncates or "
                        f"raises a casting error",
                    )
