"""RP004 — raw numeric literals where ``repro.constants`` symbols exist.

Everything in :mod:`repro` runs in Hartree atomic units and converts at the
edges through named constants (``HARTREE_TO_EV``, ``BOHR_TO_ANGSTROM``,
...).  A hand-typed ``27.2114`` or ``0.529177e-10`` duplicates those values
with private precision: two call sites drift, and a reviewer cannot tell a
physics constant from a tuning parameter.  The checker matches float
literals against the constants table *across powers of ten* (so the Bohr
radius in metres still maps to ``BOHR_TO_ANGSTROM * 1e-10``) with a tight
relative tolerance, and reports which symbol to use.

``repro/constants.py`` itself is exempt — it is the registry.
"""

from __future__ import annotations

import ast
import math
from typing import Iterator

from repro.analysis.engine import Checker, FileContext, Finding, register

#: symbol name → value.  Kept as literals (not imported from
#: ``repro.constants``) so the checker works on any source tree and a
#: drifted table is itself caught by the self-check test.
KNOWN_CONSTANTS: dict[str, float] = {
    "HARTREE_TO_EV": 27.211386245988,
    "BOHR_TO_ANGSTROM": 0.529177210903,
    "ATU_TO_FS": 2.4188843265857e-2,
    "KELVIN_TO_HARTREE": 3.1668115634556e-6,
    "KB_EV": 8.617333262e-5,
    "AVOGADRO": 6.02214076e23,
}

_RTOL = 1e-5
_DECADES = range(-30, 31)


def match_constant(value: float) -> tuple[str, int] | None:
    """Return ``(symbol, decade)`` if ``value ≈ constant * 10**decade``."""
    if not isinstance(value, float) or value <= 0 or not math.isfinite(value):
        return None
    for symbol, const in KNOWN_CONSTANTS.items():
        ratio = value / const
        # extreme literals (e.g. 1e-300 guards) can underflow the ratio to
        # zero — no decade can match, so skip rather than crash log10
        if ratio <= 0 or not math.isfinite(ratio):
            continue
        decade = round(math.log10(ratio))
        if decade not in _DECADES:
            continue
        if abs(ratio / (10.0 ** decade) - 1.0) < _RTOL:
            return symbol, decade
    return None


@register
class UnitsChecker(Checker):
    rule = "RP004"
    name = "raw-unit-literal"
    description = (
        "numeric literal duplicates a repro.constants symbol (possibly "
        "scaled by a power of ten)"
    )
    exempt_paths = ("repro/constants.py", "analysis/checkers/units.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            if not isinstance(node.value, float):
                continue
            hit = match_constant(node.value)
            if hit is None:
                continue
            symbol, decade = hit
            scale = "" if decade == 0 else f" * 1e{decade}"
            yield ctx.finding(
                node, self.rule,
                f"raw literal {node.value!r} duplicates "
                f"repro.constants.{symbol}{scale}; use the named constant",
            )
