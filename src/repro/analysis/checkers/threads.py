"""RP007 — thread-shared mutable state written from worker fan-outs.

The ``ldc_workers`` thread pool (DESIGN.md §11) keeps the per-domain KS
solves bit-identical to serial execution by one discipline: a worker owns
*only its fan-out item*; everything shared — engine attributes,
:class:`~repro.core.workspace.LDCWorkspace` buffers, closed-over arrays,
the instrumentation registry — is read-only until the coordinating thread
folds results **after the join**.  A single ``self.counter += 1`` or
``shared[idx] = ...`` inside a worker reintroduces the data race the
design removed, and numpy's GIL-released kernels make it a *real* race,
not a theoretical one.

RP007 finds the functions handed to an executor fan-out
(``executor.map(fn, ...)``, ``pool.submit(fn, ...)``,
``Thread(target=fn)``) and flags every write whose base object the worker
does not own:

* assignments / augmented assignments to closed-over or module-level
  names (including via ``nonlocal``/``global``),
* attribute and subscript stores through such names,
* mutating method calls (``append``, ``update``, ``add``, ...) on them.

Parameters are exempt: the fan-out item *is* the worker's unit of work
(exactly how ``_domain_pass`` mutates only its own ``DomainState``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import base_name, call_method_name
from repro.analysis.engine import Checker, FileContext, Finding, register

_SUBMIT_METHODS = {"map", "submit"}
_EXECUTOR_MARKERS = ("executor", "pool", "worker")
_EXECUTOR_TYPES = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Executor"}
_MUTATORS = {
    "append", "extend", "add", "update", "insert", "setdefault", "pop",
    "remove", "discard", "clear", "sort", "reverse", "popitem",
}


def _executor_aliases(tree: ast.AST) -> set[str]:
    """Names bound to executor/pool objects anywhere under ``tree``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets, value = [node.optional_vars], node.context_expr
        if value is None:
            continue
        if isinstance(value, ast.Call):
            callee = value.func
            name = (
                callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None
            )
            if name in _EXECUTOR_TYPES:
                for tgt in targets:
                    if isinstance(tgt, ast.Name):
                        aliases.add(tgt.id)
    return aliases


def _is_executor_receiver(call: ast.Call, aliases: set[str]) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    root = base_name(call.func.value)
    if root is None:
        return False
    return root in aliases or any(m in root.lower() for m in _EXECUTOR_MARKERS)


def _worker_refs(tree: ast.AST) -> dict[str, ast.AST]:
    """Worker name → submission call node, for every fan-out in the file."""
    aliases = _executor_aliases(tree)
    out: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn_ref: ast.expr | None = None
        if (
            call_method_name(node) in _SUBMIT_METHODS
            and _is_executor_receiver(node, aliases)
            and node.args
        ):
            fn_ref = node.args[0]
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "Thread"
        ):
            for kw in node.keywords:
                if kw.arg == "target":
                    fn_ref = kw.value
        if isinstance(fn_ref, ast.Name):
            out.setdefault(fn_ref.id, node)
    return out


def _bound_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the worker owns: parameters + everything it binds locally."""
    args = fn.args
    bound = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    declared_shared: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            declared_shared.update(node.names)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                for sub in ast.walk(tgt):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                bound.add(node.name)
    # nonlocal/global declarations *unbind*: writes to them are shared even
    # though an assignment statement exists in the body
    return bound - declared_shared


@register
class ThreadSharedStateChecker(Checker):
    rule = "RP007"
    name = "thread-shared-state"
    description = (
        "worker function handed to a thread-pool fan-out writes state it "
        "does not own (closed-over/module-level objects) — a data race; "
        "fold results on the coordinating thread after the join"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        workers = _worker_refs(ctx.tree)
        if not workers:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in workers
            ):
                yield from self._check_worker(ctx, node)

    def _check_worker(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        bound = _bound_names(fn)

        def shared(name: str | None) -> bool:
            return name is not None and name not in bound

        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn:
                    continue  # nested defs are separate fan-out units
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    name = self._written_shared_base(tgt, bound)
                    if name is not None:
                        yield self._finding(ctx, fn, node, name, tgt)
            elif isinstance(node, ast.Call):
                meth = call_method_name(node)
                if meth in _MUTATORS and isinstance(node.func, ast.Attribute):
                    root = base_name(node.func.value)
                    if shared(root):
                        yield ctx.finding(
                            node, self.rule,
                            f"worker {fn.name!r} calls mutating method "
                            f".{meth}() on shared object {root!r} from a "
                            f"thread-pool fan-out — concurrent mutation "
                            f"races; collect per-item results and fold "
                            f"after the join",
                        )

    def _written_shared_base(
        self, target: ast.expr, bound: set[str]
    ) -> str | None:
        """Base name of a store target the worker does not own, or None."""
        if isinstance(target, ast.Name):
            return target.id if target.id not in bound else None
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = base_name(target)
            if root is not None and root not in bound:
                return root
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                hit = self._written_shared_base(elt, bound)
                if hit is not None:
                    return hit
        return None

    def _finding(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        name: str,
        target: ast.expr,
    ) -> Finding:
        kind = (
            "attribute" if isinstance(target, ast.Attribute)
            else "element" if isinstance(target, ast.Subscript)
            else "name"
        )
        return ctx.finding(
            node, self.rule,
            f"worker {fn.name!r} writes shared {kind} through {name!r} "
            f"from a thread-pool fan-out without post-join discipline — "
            f"a data race under ldc_workers-style parallelism",
        )
