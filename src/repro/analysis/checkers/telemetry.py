"""RP006 — ``Instrumentation`` hygiene at call sites.

The observability contract (DESIGN.md §8, §10) is: spans are context
managers, metric instruments come from the registry, and health invariants
are registered on a monitor with thresholds from a config object.

* **Span without ``with``.**  ``ins.span("x")`` as a bare expression (or
  any use outside a ``with`` item / ``return`` passthrough) opens a span
  that is never closed — the trace nests every subsequent event under it.
* **Instrument constructed off-registry.**  Building ``Counter``/``Gauge``/
  ``Histogram``/``Series`` directly bypasses the
  :class:`~repro.observability.metrics.MetricsRegistry`, so the sample
  never appears in snapshots; call ``ins.counter(...)``/
  ``registry.gauge(...)`` instead.
* **Invariant constructed without registration.**  An ``*Invariant(...)``
  built outside ``HealthMonitor(invariants=[...])`` / ``monitor.add(...)``
  (or a factory ``return``) never sees a sample — the check silently does
  not run.
* **Hard-coded health threshold.**  A numeric-literal keyword at an
  ``*Invariant(...)`` call site scatters WARN/FAIL bands through driver
  code; thresholds belong in one
  :class:`~repro.observability.health.HealthThresholds` object.
* **Hard-coded controller/predictor threshold.**  A numeric-literal
  keyword at a ``*Controller``/``*Predictor``/``*Extrapolator`` call site
  (classes from the advisor/extrapolate modules) scatters tuning
  constants through driver code; they belong in the matching options
  object (e.g. :class:`~repro.core.advisor.BufferControllerOptions`) —
  ``*Options(...)`` constructions are the sanctioned home and are not
  flagged.
* **Direct virtual-clock mutation.**  Writing ``tracker.clocks[...] = ...``
  (or ``+=``) bypasses the charge methods, so the event log, the attached
  :class:`~repro.observability.comms.CommProfiler`, and the accounting
  identity (compute + wait + transfer == clocks) all silently diverge from
  the clocks; advance time via ``charge_compute``/``charge_collective``/
  ``charge_p2p``.
* **Unprofiled virtual machine in an instrumented path.**  A function that
  threads ``instrumentation`` and builds a ``CostTracker``/``VirtualComm``
  without a ``profiler=`` (or a later ``.profiler`` attach /
  ``attach_comm_profiler`` call) runs the simulated machine invisibly to
  the communication observatory — ``--comm`` and the divergence invariant
  see nothing.
* **Direct telemetry-artifact write.**  An ``open(..., "w")`` /
  ``json.dump`` / ``.write_text`` targeting a path under ``telemetry/``
  or a well-known artifact name (``trace.json``, ``manifest.json``,
  ``blackbox.jsonl``, ...) outside the RunRecorder/sink layer produces
  files with no run identity, no manifest entry, and no content hash —
  the run ledger can neither verify nor diff them.  Write artifacts via
  ``Instrumentation.write_artifacts`` / ``RunRecorder.add_artifact`` and
  resolve locations through ``repro.observability.telemetry_root()``.

The ``repro/observability`` package itself is exempt, as is
``repro/parallel`` — they *implement* the contract this rule holds call
sites to (the charge methods are where the clocks legitimately move).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import call_method_name, dotted_name
from repro.analysis.engine import Checker, FileContext, Finding, register

_INSTRUMENT_CLASSES = {"Counter", "Gauge", "Histogram", "Series"}


@register
class TelemetryHygieneChecker(Checker):
    rule = "RP006"
    name = "telemetry-hygiene"
    description = (
        "span opened outside a with-statement, a metrics instrument "
        "constructed off-registry, an Invariant built without being "
        "registered on a HealthMonitor, a health threshold hard-coded "
        "at an Invariant call site, a controller/predictor threshold "
        "hard-coded at a Controller/Predictor/Extrapolator call site, "
        "a CostTracker clock mutated outside "
        "the charge methods, a CostTracker/VirtualComm built without "
        "a profiler in an instrumented code path, or a telemetry "
        "artifact written directly instead of through the "
        "RunRecorder/sink layer"
    )
    exempt_paths = ("repro/observability/", "repro/parallel/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed_spans = self._allowed_span_calls(ctx.tree)
        invariant_classes = self._invariant_classes(ctx.tree)
        controller_classes = self._controller_classes(ctx.tree)
        registered = self._registered_invariant_calls(ctx.tree)
        yield from self._check_clock_mutation(ctx)
        yield from self._check_unprofiled_vm(ctx)
        yield from self._check_direct_telemetry_writes(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                call_method_name(node) == "span"
                and node not in allowed_spans
            ):
                yield ctx.finding(
                    node, self.rule,
                    "span() used outside a with-statement; the span is "
                    "never closed and the trace nests everything after it "
                    "(use `with ins.span(...):`)",
                )
            func_name = dotted_name(node.func)
            if (
                func_name in _INSTRUMENT_CLASSES
                and self._imported_from_metrics(ctx.tree, func_name)
            ):
                yield ctx.finding(
                    node, self.rule,
                    f"{func_name} constructed directly; instruments built "
                    f"off-registry never appear in metric snapshots — use "
                    f"the registry/Instrumentation factory methods",
                )
            if func_name in invariant_classes:
                if node not in registered:
                    yield ctx.finding(
                        node, self.rule,
                        f"{func_name} constructed but never registered; an "
                        f"invariant outside HealthMonitor(invariants=[...])"
                        f" / monitor.add(...) never sees a sample",
                    )
                for kw in node.keywords:
                    if kw.arg is not None and _is_numeric_literal(kw.value):
                        yield ctx.finding(
                            kw.value, self.rule,
                            f"health threshold {kw.arg}= hard-coded at the "
                            f"{func_name} call site; WARN/FAIL bands belong "
                            f"in one HealthThresholds config object",
                        )
            if func_name in controller_classes:
                for kw in node.keywords:
                    if kw.arg is not None and _is_numeric_literal(kw.value):
                        yield ctx.finding(
                            kw.value, self.rule,
                            f"controller threshold {kw.arg}= hard-coded at "
                            f"the {func_name} call site; tuning constants "
                            f"belong in the matching options object (e.g. "
                            f"BufferControllerOptions)",
                        )

    # -- telemetry-artifact writes -------------------------------------------

    def _check_direct_telemetry_writes(
        self, ctx: FileContext
    ) -> Iterator[Finding]:
        """Flag write-mode file operations aimed at telemetry paths."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _telemetry_write_target(node)
            if target is not None:
                yield ctx.finding(
                    node, self.rule,
                    f"telemetry artifact {target!r} written directly; the "
                    f"file gets no run identity, manifest entry, or content "
                    f"hash — write it via Instrumentation.write_artifacts/"
                    f"RunRecorder.add_artifact and resolve the location "
                    f"through repro.observability.telemetry_root()",
                )

    # -- virtual-machine observability ---------------------------------------

    def _check_clock_mutation(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag writes to ``<expr>.clocks`` / ``<expr>.clocks[...]``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if _is_clocks_target(target):
                    yield ctx.finding(
                        target, self.rule,
                        "virtual clocks mutated directly; the event log and "
                        "any attached CommProfiler no longer account for "
                        "this time — advance clocks via charge_compute/"
                        "charge_collective/charge_p2p",
                    )

    def _check_unprofiled_vm(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``CostTracker``/``VirtualComm`` built without a profiler in
        a function that threads ``instrumentation``."""
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._references_instrumentation(fn):
                continue
            attaches = self._has_profiler_attach(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                ctor = dotted_name(node.func)
                if ctor not in ("CostTracker", "VirtualComm"):
                    continue
                if any(kw.arg == "profiler" for kw in node.keywords):
                    continue
                if attaches:
                    continue
                yield ctx.finding(
                    node, self.rule,
                    f"{ctor} built without a profiler in an instrumented "
                    f"path; the communication observatory sees none of its "
                    f"events — pass profiler=, assign .profiler, or call "
                    f"attach_comm_profiler",
                )

    @staticmethod
    def _references_instrumentation(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.arg) and node.arg == "instrumentation":
                return True
            if isinstance(node, ast.Name) and node.id == "instrumentation":
                return True
        return False

    @staticmethod
    def _has_profiler_attach(fn: ast.AST) -> bool:
        """True when the function attaches a profiler some other way:
        ``x.profiler = ...`` or an ``attach_comm_profiler(...)`` call."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Attribute) and t.attr == "profiler"
                for t in node.targets
            ):
                return True
            if isinstance(node, ast.Call) and (
                call_method_name(node) == "attach_comm_profiler"
                or dotted_name(node.func) == "attach_comm_profiler"
            ):
                return True
        return False

    @staticmethod
    def _allowed_span_calls(tree: ast.Module) -> set[ast.Call]:
        """Span calls that are with-items or return passthroughs."""
        allowed: set[ast.Call] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        allowed.add(item.context_expr)
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                allowed.add(node.value)
        return allowed

    @staticmethod
    def _imported_from_metrics(tree: ast.Module, name: str) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("metrics")
                or node.module.endswith("observability")
            ):
                if any((a.asname or a.name) == name for a in node.names):
                    return True
        return False

    @staticmethod
    def _invariant_classes(tree: ast.Module) -> set[str]:
        """Invariant classes visible in this file: names imported from the
        health/observability modules plus local ``Invariant`` subclasses."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("health")
                or node.module.endswith("observability")
            ):
                for a in node.names:
                    local = a.asname or a.name
                    if a.name.endswith("Invariant"):
                        names.add(local)
            elif isinstance(node, ast.ClassDef):
                bases = {dotted_name(b) for b in node.bases}
                if any(b and b.endswith("Invariant") for b in bases):
                    names.add(node.name)
        return names

    @staticmethod
    def _controller_classes(tree: ast.Module) -> set[str]:
        """Runtime-controller classes visible in this file: names imported
        from the advisor/extrapolate modules ending in ``Controller``,
        ``Predictor``, or ``Extrapolator``.  The matching ``*Options``
        classes deliberately do not match — constructing one *is* the
        sanctioned place for numeric thresholds."""
        names: set[str] = set()
        suffixes = ("Controller", "Predictor", "Extrapolator")
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("advisor")
                or node.module.endswith("extrapolate")
            ):
                for a in node.names:
                    local = a.asname or a.name
                    if a.name.endswith(suffixes):
                        names.add(local)
        return names

    @staticmethod
    def _registered_invariant_calls(tree: ast.Module) -> set[ast.Call]:
        """Invariant constructions in a sanctioned registration position:
        an argument of ``HealthMonitor(...)`` or ``.add(...)`` (directly or
        inside a list/tuple literal), or part of a factory ``return``."""
        allowed: set[ast.Call] = set()

        def collect(value: ast.expr) -> None:
            if isinstance(value, ast.Call):
                allowed.add(value)
            elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                for elt in value.elts:
                    collect(elt)

        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and (
                dotted_name(node.func) == "HealthMonitor"
                or call_method_name(node) == "add"
            ):
                for arg in node.args:
                    collect(arg)
                for kw in node.keywords:
                    collect(kw.value)
            elif isinstance(node, ast.Return) and node.value is not None:
                collect(node.value)
        return allowed


#: well-known artifact basenames the run ledger owns
_ARTIFACT_NAMES = (
    "trace.json", "metrics.json", "metrics.csv", "health.json",
    "comm.json", "manifest.json", "blackbox.jsonl", "profile.json",
)


def _string_literals(node: ast.expr) -> Iterator[str]:
    """Every string constant anywhere inside an argument expression
    (covers f-strings, ``Path(...) / "x"``, ``os.path.join`` chains)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def _is_telemetry_path_expr(node: ast.expr) -> str | None:
    """The matched telemetry-ish string literal inside ``node``, if any."""
    for text in _string_literals(node):
        if "telemetry/" in text or text.startswith("telemetry"):
            return text
        if text.endswith(_ARTIFACT_NAMES):
            return text
    return None


def _telemetry_write_target(node: ast.Call) -> str | None:
    """The offending path when ``node`` writes a telemetry artifact.

    Covered shapes: ``open(path, "w"/"a"/...)``, ``json.dump(obj, fh)``
    where the dump call's subtree names the path (rare but explicit), and
    ``<path-expr>.write_text/write_bytes(...)``.  Read-mode ``open`` is
    exempt — consuming artifacts is exactly what the ledger is for.
    """
    func = dotted_name(node.func)
    method = call_method_name(node)
    if func == "open" and node.args:
        mode = ""
        if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
            mode = str(node.args[1].value)
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if not any(c in mode for c in "wax+"):
            return None
        return _is_telemetry_path_expr(node.args[0])
    if func == "json.dump" or (func is None and method == "dump"):
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            target = _is_telemetry_path_expr(arg)
            if target is not None:
                return target
        return None
    if method in ("write_text", "write_bytes") and isinstance(
        node.func, ast.Attribute
    ):
        return _is_telemetry_path_expr(node.func.value)
    return None


def _is_clocks_target(node: ast.expr) -> bool:
    """``<expr>.clocks`` or ``<expr>.clocks[...]`` as an assignment target
    (``self.clocks = ...`` inside the tracker itself is path-exempt)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Attribute) and node.attr == "clocks"


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool)
