"""RP006 — ``Instrumentation`` hygiene at call sites.

The observability contract (DESIGN.md §8) is: spans are context managers,
and metric instruments come from the registry.

* **Span without ``with``.**  ``ins.span("x")`` as a bare expression (or
  any use outside a ``with`` item / ``return`` passthrough) opens a span
  that is never closed — the trace nests every subsequent event under it.
* **Instrument constructed off-registry.**  Building ``Counter``/``Gauge``/
  ``Histogram``/``Series`` directly bypasses the
  :class:`~repro.observability.metrics.MetricsRegistry`, so the sample
  never appears in snapshots; call ``ins.counter(...)``/
  ``registry.gauge(...)`` instead.

The ``repro/observability`` package itself is exempt: it *implements* the
contract this rule holds call sites to.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import call_method_name, dotted_name
from repro.analysis.engine import Checker, FileContext, Finding, register

_INSTRUMENT_CLASSES = {"Counter", "Gauge", "Histogram", "Series"}


@register
class TelemetryHygieneChecker(Checker):
    rule = "RP006"
    name = "telemetry-hygiene"
    description = (
        "span opened outside a with-statement, or a metrics instrument "
        "constructed directly instead of through the registry"
    )
    exempt_paths = ("repro/observability/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed_spans = self._allowed_span_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                call_method_name(node) == "span"
                and node not in allowed_spans
            ):
                yield ctx.finding(
                    node, self.rule,
                    "span() used outside a with-statement; the span is "
                    "never closed and the trace nests everything after it "
                    "(use `with ins.span(...):`)",
                )
            func_name = dotted_name(node.func)
            if (
                func_name in _INSTRUMENT_CLASSES
                and self._imported_from_metrics(ctx.tree, func_name)
            ):
                yield ctx.finding(
                    node, self.rule,
                    f"{func_name} constructed directly; instruments built "
                    f"off-registry never appear in metric snapshots — use "
                    f"the registry/Instrumentation factory methods",
                )

    @staticmethod
    def _allowed_span_calls(tree: ast.Module) -> set[ast.Call]:
        """Span calls that are with-items or return passthroughs."""
        allowed: set[ast.Call] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        allowed.add(item.context_expr)
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                allowed.add(node.value)
        return allowed

    @staticmethod
    def _imported_from_metrics(tree: ast.Module, name: str) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("metrics")
                or node.module.endswith("observability")
            ):
                if any((a.asname or a.name) == name for a in node.names):
                    return True
        return False
