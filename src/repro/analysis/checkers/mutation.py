"""RP002 — in-place mutation of function-argument arrays without a contract.

A function that writes into an array it received (``param[...] = x``,
``param += x``, ``param.sort()``) changes its caller's data.  That is fine
when it is the *contract* — an ``out=`` style parameter, or a function whose
docstring says it works in place — and a silent aliasing bug otherwise
(the LDC density assembly and mixers pass large arrays around; an
undocumented write corrupts a caller's state across SCF iterations).

The contract escapes, in order of precedence:

* the parameter name signals mutability (``out``, ``buf``/``buffer``,
  ``inout``, or an ``..._out`` suffix);
* the function docstring documents the mutation (contains "in place",
  "in-place", "mutates", "updates", or "overwrites").

Augmented assignment to a *bare name* (``n += 1``) is only a caller-visible
mutation for mutable objects; parameters annotated with immutable scalar
types (``int``, ``float``, ...) are rebinding locally and are skipped —
one concrete payoff of the gradual-typing effort.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import (
    base_name,
    call_method_name,
    docstring_of,
    function_defs,
    param_names,
)
from repro.analysis.engine import Checker, FileContext, Finding, register

_MUTATING_METHODS = {
    "sort", "fill", "resize", "partition", "append", "extend", "insert",
    "clear", "update", "remove", "setdefault", "popitem",
}
_CONTRACT_WORDS = ("in place", "in-place", "inplace", "mutates", "updates",
                   "overwrites")
_CONTRACT_PARAM_MARKERS = ("out", "buf", "buffer", "inout")
_SCALAR_ANNOTATIONS = {"int", "float", "complex", "bool", "str", "bytes",
                       "None"}


def _scalar_annotated(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters whose annotation is built only from immutable scalars."""
    out: set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if a.annotation is None:
            continue
        names = {
            n.id for n in ast.walk(a.annotation) if isinstance(n, ast.Name)
        } | {
            n.attr for n in ast.walk(a.annotation) if isinstance(n, ast.Attribute)
        }
        if names and names <= _SCALAR_ANNOTATIONS:
            out.add(a.arg)
    return out


def _param_has_contract(name: str) -> bool:
    low = name.lower()
    return (
        low in _CONTRACT_PARAM_MARKERS
        or low.endswith("_out")
        or low.startswith("out_")
        or "buffer" in low
    )


@register
class ArgumentMutationChecker(Checker):
    rule = "RP002"
    name = "argument-mutation"
    description = (
        "function mutates an argument (subscript store, augmented "
        "assignment, or mutating method) without an out=/in-place contract"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in function_defs(ctx.tree):
            if any(w in docstring_of(fn).lower() for w in _CONTRACT_WORDS):
                continue
            params = {
                p for p in param_names(fn) if not _param_has_contract(p)
            }
            if not params:
                continue
            # a parameter rebound locally (param = ...) is no longer the
            # caller's object; stop tracking it from the whole function
            rebound = {
                t.id
                for node in ast.walk(fn)
                if isinstance(node, ast.Assign)
                for t in node.targets
                if isinstance(t, ast.Name)
            }
            tracked = params - rebound
            if not tracked:
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                    continue
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and base_name(target) in tracked
                        ):
                            yield self._finding(ctx, node, base_name(target), fn)
                elif isinstance(node, ast.AugAssign):
                    tgt = node.target
                    if (
                        isinstance(tgt, ast.Name)
                        and tgt.id in tracked
                        and tgt.id not in _scalar_annotated(fn)
                    ):
                        yield self._finding(ctx, node, tgt.id, fn)
                    elif isinstance(tgt, ast.Subscript) and base_name(tgt) in tracked:
                        yield self._finding(ctx, node, base_name(tgt), fn)
                elif isinstance(node, ast.Call):
                    meth = call_method_name(node)
                    if meth in _MUTATING_METHODS and isinstance(
                        node.func, ast.Attribute
                    ) and isinstance(node.func.value, ast.Name):
                        recv = node.func.value.id
                        if recv in tracked:
                            yield self._finding(ctx, node, recv, fn)

    def _finding(self, ctx: FileContext, node: ast.AST, name: str | None, fn) -> Finding:
        return ctx.finding(
            node, self.rule,
            f"function {fn.name!r} mutates argument {name!r} in place "
            f"without an out=/inplace contract (rename the parameter or "
            f"document the mutation in the docstring)",
        )
