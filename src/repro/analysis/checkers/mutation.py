"""RP002 — in-place mutation of function-argument arrays without a contract.

A function that writes into an array it received (``param[...] = x``,
``param += x``, ``param.sort()``) changes its caller's data.  That is fine
when it is the *contract* — an ``out=`` style parameter, or a function whose
docstring says it works in place — and a silent aliasing bug otherwise
(the LDC density assembly and mixers pass large arrays around; an
undocumented write corrupts a caller's state across SCF iterations).

The contract escapes, in order of precedence:

* the parameter name signals mutability (``out``, ``buf``/``buffer``,
  ``inout``, or an ``..._out`` suffix);
* the function docstring documents the mutation (contains "in place",
  "in-place", "mutates", "updates", "overwrites", or "accumulates" — the
  last being the convention in-place accumulators like
  ``Hamiltonian.apply`` use).

Augmented assignment to a *bare name* (``n += 1``) is only a caller-visible
mutation for mutable objects; parameters annotated with immutable scalar
types (``int``, ``float``, ...) are rebinding locally and are skipped —
one concrete payoff of the gradual-typing effort.

Writes through a *view alias* are tracked too: ``v = param[:n]`` (or
``param.T`` / ``param.view()`` / ``param.reshape(...)``) shares memory with
the caller's array, so ``v[...] = x`` or ``v += x`` is the same silent
aliasing bug with one extra level of indirection — exactly the shape of the
in-place accumulation idioms on the QMD hot path.  Only names bound once in
the function are treated as aliases (a later rebinding would detach them).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import (
    base_name,
    call_method_name,
    docstring_of,
    function_defs,
    param_names,
)
from repro.analysis.engine import Checker, FileContext, Finding, register

_MUTATING_METHODS = {
    "sort", "fill", "resize", "partition", "append", "extend", "insert",
    "clear", "update", "remove", "setdefault", "popitem",
}
_CONTRACT_WORDS = ("in place", "in-place", "inplace", "mutates", "updates",
                   "overwrites", "accumulates")
_CONTRACT_PARAM_MARKERS = ("out", "buf", "buffer", "inout")
_SCALAR_ANNOTATIONS = {"int", "float", "complex", "bool", "str", "bytes",
                       "None"}
#: numpy methods whose result shares memory with the receiver
_VIEW_METHODS = {"view", "reshape", "ravel", "transpose", "swapaxes"}


def _view_source(expr: ast.expr) -> str | None:
    """The base name when ``expr`` is a view of that name's array.

    Recognized shapes: ``name[...]`` (basic slicing), ``name.T``, and
    ``name.view()`` / ``name.reshape(...)`` / other ``_VIEW_METHODS`` calls.
    Fancy-index subscripts can copy, but a linter cannot tell statically —
    treating them as views errs on the side of surfacing the alias.
    """
    if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
        return expr.value.id
    if (
        isinstance(expr, ast.Attribute)
        and expr.attr == "T"
        and isinstance(expr.value, ast.Name)
    ):
        return expr.value.id
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _VIEW_METHODS
        and isinstance(expr.func.value, ast.Name)
    ):
        return expr.func.value.id
    return None


def _view_aliases(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, tracked: set[str]
) -> dict[str, str]:
    """Map alias name → tracked parameter it is a view of.

    Only names bound exactly once in the function qualify — a second
    binding could detach the name from the view, and tracking it past that
    point would be a false positive.
    """
    counts: dict[str, int] = {}
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.For)):
            # AugAssign is deliberately not counted: `v += x` on an array
            # mutates the same object, it does not detach the view
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name):
                counts[t.id] = counts.get(t.id, 0) + 1
    aliases: dict[str, str] = {}
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or counts.get(target.id) != 1:
            continue
        src = _view_source(node.value)
        if src is not None and src in tracked:
            aliases[target.id] = src
    return aliases


def _scalar_annotated(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters whose annotation is built only from immutable scalars."""
    out: set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if a.annotation is None:
            continue
        names = {
            n.id for n in ast.walk(a.annotation) if isinstance(n, ast.Name)
        } | {
            n.attr for n in ast.walk(a.annotation) if isinstance(n, ast.Attribute)
        }
        if names and names <= _SCALAR_ANNOTATIONS:
            out.add(a.arg)
    return out


def _param_has_contract(name: str) -> bool:
    low = name.lower()
    return (
        low in _CONTRACT_PARAM_MARKERS
        or low.endswith("_out")
        or low.startswith("out_")
        or "buffer" in low
    )


@register
class ArgumentMutationChecker(Checker):
    rule = "RP002"
    name = "argument-mutation"
    description = (
        "function mutates an argument (subscript store, augmented "
        "assignment, or mutating method) without an out=/in-place contract"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in function_defs(ctx.tree):
            if any(w in docstring_of(fn).lower() for w in _CONTRACT_WORDS):
                continue
            params = {
                p for p in param_names(fn) if not _param_has_contract(p)
            }
            if not params:
                continue
            # a parameter rebound locally (param = ...) is no longer the
            # caller's object; stop tracking it from the whole function
            rebound = {
                t.id
                for node in ast.walk(fn)
                if isinstance(node, ast.Assign)
                for t in node.targets
                if isinstance(t, ast.Name)
            }
            tracked = params - rebound
            if not tracked:
                continue
            # watch maps every mutable name to the argument it reaches:
            # the parameters themselves, plus single-assignment view
            # aliases of them (v = param[:n] etc.) — writing through the
            # view writes the caller's memory just the same
            watch = {name: name for name in tracked}
            watch.update(_view_aliases(fn, tracked))
            for node in ast.walk(fn):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                    continue
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and base_name(target) in watch
                        ):
                            yield self._finding(
                                ctx, node, base_name(target), fn, watch
                            )
                elif isinstance(node, ast.AugAssign):
                    tgt = node.target
                    if isinstance(tgt, ast.Name) and tgt.id in watch and (
                        # the scalar-annotation rebinding exemption applies
                        # to parameters; a view alias is always an array
                        tgt.id not in tracked
                        or tgt.id not in _scalar_annotated(fn)
                    ):
                        yield self._finding(ctx, node, tgt.id, fn, watch)
                    elif isinstance(tgt, ast.Subscript) and base_name(tgt) in watch:
                        yield self._finding(
                            ctx, node, base_name(tgt), fn, watch
                        )
                elif isinstance(node, ast.Call):
                    meth = call_method_name(node)
                    if meth in _MUTATING_METHODS and isinstance(
                        node.func, ast.Attribute
                    ) and isinstance(node.func.value, ast.Name):
                        recv = node.func.value.id
                        if recv in watch:
                            yield self._finding(ctx, node, recv, fn, watch)

    def _finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        name: str | None,
        fn,
        watch: dict[str, str] | None = None,
    ) -> Finding:
        param = watch.get(name, name) if watch and name else name
        via = (
            f" through view alias {name!r}"
            if param is not None and param != name
            else ""
        )
        return ctx.finding(
            node, self.rule,
            f"function {fn.name!r} mutates argument {param!r}{via} in place "
            f"without an out=/inplace contract (rename the parameter or "
            f"document the mutation in the docstring)",
        )
