"""Shared AST helpers for the checker suite."""

from __future__ import annotations

import ast
from typing import Iterator


def function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Positional/keyword parameter names, excluding self/cls."""
    args = fn.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    ]
    return names


def base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript chain (``a.b[0].c`` → a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_method_name(call: ast.Call) -> str | None:
    """For ``recv.meth(...)`` return ``meth``; None for plain calls."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def dotted_name(node: ast.expr) -> str:
    """Render ``np.fft.ifftn`` style dotted names (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def names_in(node: ast.AST) -> set[str]:
    """All identifier names appearing anywhere under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def docstring_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    return ast.get_docstring(fn) or ""
