"""RP005 — SPMD collective mismatch / deadlock detection for VirtualComm code.

In SPMD code every rank must reach every collective: an
``allreduce``/``bcast``/``split`` that only one branch of a
rank-conditional executes deadlocks real MPI (and silently desynchronises
the :class:`~repro.parallel.comm.VirtualComm` cost model).  The paper's
``MPI_COMM_SPLIT``-per-domain pattern (Sec. 3.3) makes this the dominant
hang class at scale.

Two patterns:

* **Rank-conditional collectives.**  For each ``if`` whose test depends on
  a rank-like value (an identifier containing ``rank`` or ``root``), the
  sets of collective operations invoked in the two branches must match.
  Nested rank-conditionals are checked independently at every level.
* **Unmatched point-to-point pairs.**  Within one function, ``.send(...)``
  and ``.recv(...)`` calls on comm-like receivers must balance.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import (
    base_name,
    call_method_name,
    function_defs,
    names_in,
)
from repro.analysis.engine import Checker, FileContext, Finding, register

COLLECTIVES = {
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "split",
}
_RANK_MARKERS = ("rank", "root")


def _is_comm_receiver(call: ast.Call) -> bool:
    """Heuristic: the receiver's root name looks like a communicator."""
    if not isinstance(call.func, ast.Attribute):
        return False
    root = base_name(call.func.value)
    return root is not None and "comm" in root.lower()


def _collective_calls(node: ast.AST) -> set[str]:
    """Names of collective operations invoked anywhere under ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            meth = call_method_name(sub)
            if meth in COLLECTIVES and _is_comm_receiver(sub):
                out.add(meth)
    return out


def _rank_dependent(test: ast.expr) -> bool:
    return any(
        any(marker in name.lower() for marker in _RANK_MARKERS)
        for name in names_in(test)
    )


@register
class CollectiveMismatchChecker(Checker):
    rule = "RP005"
    name = "collective-mismatch"
    description = (
        "rank-conditional branch reaches a collective the other branch "
        "skips, or unmatched send/recv pairs — an SPMD deadlock"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in function_defs(ctx.tree):
            yield from self._check_conditionals(ctx, fn)
            yield from self._check_point_to_point(ctx, fn)

    def _check_conditionals(self, ctx: FileContext, fn) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.If) or not _rank_dependent(node.test):
                continue
            in_body = _collective_calls(ast.Module(body=node.body, type_ignores=[]))
            in_else = _collective_calls(ast.Module(body=node.orelse, type_ignores=[]))
            only_body = in_body - in_else
            only_else = in_else - in_body
            for side, ops in (("true", only_body), ("false", only_else)):
                if not ops:
                    continue
                ops_s = ", ".join(sorted(ops))
                yield ctx.finding(
                    node, self.rule,
                    f"rank-conditional in {fn.name!r}: the {side} branch "
                    f"calls collective(s) {{{ops_s}}} the other branch "
                    f"never reaches — ranks taking different branches "
                    f"deadlock",
                )

    def _check_point_to_point(self, ctx: FileContext, fn) -> Iterator[Finding]:
        sends = recvs = 0
        first: ast.AST | None = None
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            meth = call_method_name(node)
            if meth in ("send", "recv") and _is_comm_receiver(node):
                first = first or node
                if meth == "send":
                    sends += 1
                else:
                    recvs += 1
        if first is not None and sends != recvs:
            yield ctx.finding(
                first, self.rule,
                f"unmatched point-to-point pairs in {fn.name!r}: "
                f"{sends} send(s) vs {recvs} recv(s) on comm-like "
                f"receivers — a lone send/recv blocks forever",
            )
