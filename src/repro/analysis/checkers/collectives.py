"""RP005 — SPMD collective mismatch / deadlock detection for VirtualComm code.

In SPMD code every rank must reach every collective: an
``allreduce``/``bcast``/``split`` that only one branch of a
rank-conditional executes deadlocks real MPI (and silently desynchronises
the :class:`~repro.parallel.comm.VirtualComm` cost model).  The paper's
``MPI_COMM_SPLIT``-per-domain pattern (Sec. 3.3) makes this the dominant
hang class at scale.

Since the interprocedural upgrade (DESIGN.md §13) RP005 is a
*project-scope* rule working from :class:`~repro.analysis.project.
FunctionSummary` records and the :class:`~repro.analysis.project.
ProjectIndex` call graph, with alias-aware comm tracking (parameters,
``self.comm`` attributes, ``split()``-derived sub-communicators):

* **Rank-conditional collectives.**  For each ``if`` whose test depends on
  a rank-like value, the *transitively reachable* collective sets of the
  two branches must match — a collective hidden two helpers deep is found.
* **Unmatched point-to-point pairs.**  ``send``/``recv`` counts on
  comm-like receivers must balance over a function's whole call tree.
  Only call-graph *roots* (functions no analysed function calls) are
  reported — a lone ``send`` helper is legitimate when its caller pairs it
  with a ``recv`` helper; the imbalance, if real, surfaces at the root.

``CollectiveMismatchChecker(interprocedural=False)`` restores the PR 2
per-function behaviour; the regression test encodes the cross-function
fixture that mode provably misses.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding, ProjectChecker, register
from repro.analysis.project import FunctionSummary, ProjectIndex

COLLECTIVES = {
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "split",
}


@register
class CollectiveMismatchChecker(ProjectChecker):
    rule = "RP005"
    name = "collective-mismatch"
    description = (
        "rank-conditional branch reaches a collective (directly or through "
        "helpers) the other branch skips, or unmatched send/recv pairs over "
        "a call tree — an SPMD deadlock"
    )

    def __init__(self, interprocedural: bool = True) -> None:
        #: False restores the PR 2 per-function-body analysis (used by the
        #: regression test proving what that mode misses)
        self.interprocedural = interprocedural

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for summary in index.summaries:
            yield from self._check_rank_sites(index, summary)
            yield from self._check_point_to_point(index, summary)

    # -- rank-conditional collectives ---------------------------------------

    def _branch_effects(
        self,
        index: ProjectIndex,
        summary: FunctionSummary,
        direct: list[str],
        calls: list[str],
    ) -> tuple[set[str], dict[str, set[str]]]:
        """(reachable collectives, collective → contributing helpers)."""
        ops = set(direct)
        via: dict[str, set[str]] = {}
        if self.interprocedural:
            via = index.collectives_via_calls(summary, calls)
            ops |= set(via)
        return ops, via

    def _check_rank_sites(
        self, index: ProjectIndex, summary: FunctionSummary
    ) -> Iterator[Finding]:
        for site in summary.rank_sites:
            in_body, via_body = self._branch_effects(
                index, summary, site.true_direct, site.true_calls
            )
            in_else, via_else = self._branch_effects(
                index, summary, site.false_direct, site.false_calls
            )
            for side, ops, via in (
                ("true", in_body - in_else, via_body),
                ("false", in_else - in_body, via_else),
            ):
                if not ops:
                    continue
                ops_s = ", ".join(sorted(ops))
                helpers = sorted(
                    {h for op in ops for h in via.get(op, ())}
                )
                via_s = (
                    f" (reached through helper(s) "
                    f"{', '.join(repr(h) for h in helpers)})"
                    if helpers
                    else ""
                )
                yield self.finding(
                    index, summary.path, site.line, site.col,
                    f"rank-conditional in {summary.name!r}: the {side} "
                    f"branch calls collective(s) {{{ops_s}}}{via_s} the "
                    f"other branch never reaches — ranks taking different "
                    f"branches deadlock",
                )

    # -- point-to-point balance ---------------------------------------------

    def _check_point_to_point(
        self, index: ProjectIndex, summary: FunctionSummary
    ) -> Iterator[Finding]:
        if self.interprocedural:
            sends, recvs = index.effective_p2p(summary)
            if sends == recvs or (sends + recvs) == 0:
                return
            # Report at call-graph roots only: a lone-send helper is fine
            # when a caller pairs it; the *root* shows the real imbalance.
            if index.callers_of(summary) > 0:
                return
            scope = (
                "over its call tree"
                if (sends, recvs) != (summary.sends, summary.recvs)
                else "on comm-like receivers"
            )
        else:
            sends, recvs = summary.sends, summary.recvs
            if sends == recvs or (sends + recvs) == 0:
                return
            scope = "on comm-like receivers"
        line = summary.p2p_line or summary.line
        col = summary.p2p_col if summary.p2p_line else summary.col
        yield self.finding(
            index, summary.path, line, col,
            f"unmatched point-to-point pairs in {summary.name!r}: "
            f"{sends} send(s) vs {recvs} recv(s) {scope} — a lone "
            f"send/recv blocks forever",
        )
