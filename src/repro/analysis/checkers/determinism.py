"""RP008 — nondeterminism hazards on SPMD paths.

A metascalable QMD run is only debuggable if every rank computes the same
answer from the same inputs.  Two Python-level habits quietly break that:

* **Unordered iteration feeding an accumulation.**  ``for x in {…}`` (or
  over ``set(...)``/a set-comprehension) has arbitrary iteration order —
  Python randomises ``str`` hashing per process, so two ranks can sum the
  same floats in different orders and ``allreduce`` then *propagates* the
  divergence instead of catching it.  Sort first (``sorted(...)``).
* **Unseeded / global RNG.**  ``np.random.default_rng()`` without a seed,
  the legacy ``np.random.*`` module-global generator, and stdlib
  ``random.*`` calls all draw from per-process state that diverges across
  ranks and across reruns, defeating bitwise reproducibility (the repo's
  ``default_rng(seed)`` discipline exists for exactly this reason).

RP008 flags both patterns per file.  The accumulation test is
conservative: a set-iteration is only reported when the loop body
visibly accumulates (augmented assignment, ``.append``/``.add``/
``.update``, or a collective call), or when a set expression is passed
straight into ``sum``/``min``/``max``-style reducers with float risk.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import call_method_name
from repro.analysis.engine import Checker, FileContext, Finding, register

COLLECTIVES = {
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "split",
}
_ACCUMULATOR_METHODS = {"append", "add", "update", "extend"}
_REDUCERS = {"sum"}
_RNG_LEGACY_MODULES = {"random"}  # stdlib `random.x(...)`


def _is_set_expr(node: ast.expr, set_aliases: set[str]) -> bool:
    """True when ``node`` evaluates to a set/frozenset (conservatively)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name):
        return node.id in set_aliases
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # set algebra keeps set-ness: s.union(t), s.intersection(t), ...
        if node.func.attr in {
            "union", "intersection", "difference", "symmetric_difference"
        }:
            return _is_set_expr(node.func.value, set_aliases)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_aliases) and _is_set_expr(
            node.right, set_aliases
        )
    return False


def _set_aliases(fn: ast.AST) -> set[str]:
    """Names assigned from set expressions inside ``fn`` (fixed point)."""
    aliases: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_set_expr(
                node.value, aliases
            ):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id not in aliases:
                        aliases.add(tgt.id)
                        changed = True
    return aliases


def _body_accumulates(body: list[ast.stmt]) -> bool:
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, ast.AugAssign):
            return True
        if isinstance(node, ast.Call):
            meth = call_method_name(node)
            if meth in _ACCUMULATOR_METHODS or meth in COLLECTIVES:
                return True
    return False


def _numpy_random_attr(node: ast.expr) -> str | None:
    """``np.random.<fn>`` / ``numpy.random.<fn>`` → ``<fn>``, else None."""
    if not isinstance(node, ast.Attribute):
        return None
    mid = node.value
    if (
        isinstance(mid, ast.Attribute)
        and mid.attr == "random"
        and isinstance(mid.value, ast.Name)
        and mid.value.id in {"np", "numpy"}
    ):
        return node.attr
    return None


@register
class DeterminismChecker(Checker):
    rule = "RP008"
    name = "spmd-nondeterminism"
    description = (
        "nondeterminism hazard on an SPMD path: iteration over an "
        "unordered set feeding an accumulation/reduction, or unseeded / "
        "module-global RNG — ranks silently diverge"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        uses_stdlib_random = any(
            isinstance(node, ast.Import)
            and any(a.name in _RNG_LEGACY_MODULES for a in node.names)
            for node in ast.walk(ctx.tree)
        )
        set_aliases = _set_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(
                node.iter, set_aliases
            ):
                if _body_accumulates(node.body):
                    yield ctx.finding(
                        node, self.rule,
                        "iteration over an unordered set feeds an "
                        "accumulation — iteration order is arbitrary, so "
                        "floating-point sums (and anything entering a "
                        "collective) differ across ranks/reruns; iterate "
                        "over sorted(...) instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, node, set_aliases, uses_stdlib_random
                )

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        set_aliases: set[str],
        uses_stdlib_random: bool,
    ) -> Iterator[Finding]:
        func = call.func
        # sum({...}) — reduction straight off an unordered iterable
        if (
            isinstance(func, ast.Name)
            and func.id in _REDUCERS
            and call.args
            and _is_set_expr(call.args[0], set_aliases)
        ):
            yield ctx.finding(
                call, self.rule,
                "reduction over an unordered set — summation order is "
                "arbitrary, so the floating-point result differs across "
                "ranks/reruns; reduce over sorted(...) instead",
            )
            return
        # np.random.default_rng() with no seed argument
        np_attr = _numpy_random_attr(func)
        if np_attr is not None:
            if np_attr == "default_rng":
                if not call.args and not call.keywords:
                    yield ctx.finding(
                        call, self.rule,
                        "np.random.default_rng() without a seed draws "
                        "OS entropy — every rank and rerun gets a "
                        "different stream; pass an explicit seed",
                    )
            elif np_attr != "Generator":
                yield ctx.finding(
                    call, self.rule,
                    f"np.random.{np_attr}() uses the module-global RNG — "
                    f"shared mutable state whose draw order depends on "
                    f"call interleaving across ranks/threads; use a "
                    f"seeded np.random.default_rng(seed) instance",
                )
        # stdlib random.x(...) on the process-global generator
        elif (
            uses_stdlib_random
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            yield ctx.finding(
                call, self.rule,
                f"random.{func.attr}() uses the process-global stdlib "
                f"RNG — unseeded, shared state that diverges across "
                f"ranks; use a seeded np.random.default_rng(seed)",
            )
