"""RP009 — direct numpy calls inside backend-routed modules.

Modules that import :mod:`repro.backend` have opted into the pluggable
array-module contract: every array operation must go through the namespace
``backend.get()`` returns (``xp``), so that swapping in CuPy/torch touches
configuration, not code.  A stray ``np.matmul(...)`` in such a module works
silently under the NumPy backend, then crashes — or worse, bounces arrays
through host memory — the day a device backend is selected.  The checker
flags *calls* into a runtime-imported numpy namespace and runtime
``from numpy import ...`` statements; bare attribute reads (``np.pi``,
``np.float64``) and ``if TYPE_CHECKING:`` imports used for annotations
stay legal.

``repro/backend`` itself is exempt — it is the shim's implementation and
must touch numpy to register it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Checker, FileContext, Finding, register


def _type_checking_nodes(tree: ast.Module) -> set[ast.AST]:
    """All statements nested under an ``if TYPE_CHECKING:`` guard."""
    guarded: set[ast.AST] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id if isinstance(test, ast.Name)
            else test.attr if isinstance(test, ast.Attribute)
            else None
        )
        if name == "TYPE_CHECKING":
            for child in node.body:
                guarded.update(ast.walk(child))
    return guarded


def _numpy_aliases(tree: ast.Module, guarded: set[ast.AST]) -> set[str]:
    """Names bound to the numpy module by runtime imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if node in guarded or not isinstance(node, ast.Import):
            continue
        for alias in node.names:
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def _imports_backend(tree: ast.Module, guarded: set[ast.AST]) -> bool:
    for node in ast.walk(tree):
        if node in guarded:
            continue
        if isinstance(node, ast.Import):
            if any(a.name.startswith("repro.backend") for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod.startswith("repro.backend"):
                return True
            if mod == "repro" and any(
                a.name == "backend" for a in node.names
            ):
                return True
    return False


def _root_name(expr: ast.expr) -> str | None:
    """The leftmost name of a dotted attribute chain (``np`` in
    ``np.linalg.eigh``)."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


@register
class BackendNeutralityChecker(Checker):
    rule = "RP009"
    name = "backend-neutrality"
    description = (
        "direct numpy call in a module that imports repro.backend; route "
        "it through the backend namespace (xp = backend.get())"
    )
    exempt_paths = ("repro/backend/", "analysis/checkers/backend.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        guarded = _type_checking_nodes(ctx.tree)
        if not _imports_backend(ctx.tree, guarded):
            return
        aliases = _numpy_aliases(ctx.tree, guarded)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node not in guarded:
                mod = node.module or ""
                if mod == "numpy" or mod.startswith("numpy."):
                    yield ctx.finding(
                        node, self.rule,
                        f"runtime 'from {mod} import ...' in a "
                        "backend-routed module; use the repro.backend "
                        "namespace (xp = backend.get()) instead",
                    )
                continue
            if not isinstance(node, ast.Call) or not aliases:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            root = _root_name(func)
            if root in aliases:
                dotted = ast.unparse(func)
                yield ctx.finding(
                    node, self.rule,
                    f"direct numpy call '{dotted}(...)' in a "
                    "backend-routed module; route it through "
                    "xp = repro.backend.get() so device backends "
                    "can substitute",
                )
