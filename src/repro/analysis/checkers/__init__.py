"""The checker suite: importing this package registers every rule.

Rule catalog (details in each module and DESIGN.md §9, §13):

========  ========================  ==========================================
Rule      Name                      Catches
========  ========================  ==========================================
RP001     silent-dtype-upcast       ambiguous allocations in complex-handling
                                    functions; int accumulators fed floats
RP002     argument-mutation         in-place writes to arguments without an
                                    out=/in-place contract
RP003     shared-mutable-state      mutable default args; lowercase
                                    module-level mutable literals
RP004     raw-unit-literal          hand-typed copies of repro.constants
                                    values (any power of ten)
RP005     collective-mismatch       rank-conditional collectives and
                                    unmatched send/recv across helper
                                    boundaries (interprocedural) —
                                    SPMD deadlocks
RP006     telemetry-hygiene         spans outside ``with``; instruments
                                    built off-registry
RP007     thread-shared-state       thread-pool workers writing closed-over
                                    or module-level state — data races under
                                    the ldc_workers fan-out
RP008     spmd-nondeterminism       accumulation over unordered sets;
                                    unseeded / module-global RNG — ranks
                                    silently diverge
RP009     backend-neutrality        direct numpy calls (or runtime
                                    ``from numpy import``) in modules that
                                    import ``repro.backend`` — breaks the
                                    pluggable array-module seam
========  ========================  ==========================================
"""

from repro.analysis.checkers import (  # noqa: F401  (import = registration)
    backend,
    collectives,
    determinism,
    dtype,
    mutation,
    state,
    telemetry,
    threads,
    units,
)
