"""RP003 — mutable default arguments and module-level mutable state.

* A mutable default (``def f(x=[])``, ``={}``, ``=set()``, or a call to
  ``list``/``dict``/``set``/``np.zeros``...) is evaluated once at import and
  shared across calls — the classic accumulating-default bug.
* Module-level *lowercase* names bound to mutable literals are shared
  mutable state: every import site sees (and can corrupt) the same object,
  which breaks the functional SPMD model the simulator relies on.
  UPPER_CASE registries (``SPECIES``, ``SCHEMES``) and dunder lists
  (``__all__``) are treated as constants-by-convention and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._util import dotted_name, function_defs
from repro.analysis.engine import Checker, FileContext, Finding, register

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque",
                         "defaultdict", "Counter", "OrderedDict"}
_MUTABLE_NP = {"zeros", "ones", "empty", "full", "array", "arange"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        parts = name.split(".")
        if parts[-1] in _MUTABLE_CONSTRUCTORS and len(parts) <= 2:
            return True
        if (
            len(parts) == 2
            and parts[0] in ("np", "numpy")
            and parts[1] in _MUTABLE_NP
        ):
            return True
    return False


@register
class MutableStateChecker(Checker):
    rule = "RP003"
    name = "shared-mutable-state"
    description = (
        "mutable default argument, or lowercase module-level name bound "
        "to a mutable literal (shared import-time state)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in function_defs(ctx.tree):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield ctx.finding(
                        default, self.rule,
                        f"mutable default argument in {fn.name!r}; the "
                        f"object is created once at import and shared "
                        f"across calls — default to None and construct "
                        f"inside the body",
                    )
        for node in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") or name.isupper() or name.upper() == name:
                    continue  # dunders and UPPER_CASE registries: constants
                yield ctx.finding(
                    node, self.rule,
                    f"module-level mutable state {name!r}: every importer "
                    f"shares this object; make it UPPER_CASE (constant by "
                    f"convention), wrap in a factory, or move into a class",
                )
