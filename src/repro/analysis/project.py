"""Interprocedural layer of the static analyser: summaries + call graph.

PR 2's checkers saw one function body at a time, which is exactly the
blind spot SPMD bugs hide in: a rank-conditional branch that calls a
*helper* whose body performs the collective looks clean to a per-function
walk, yet deadlocks every bit as hard as a direct ``comm.bcast`` (the
DGDFT-at-millions-of-cores failure mode).  This module gives the engine a
whole-project view without giving up the cheap per-file walks:

* :func:`summarize_file` compresses each function into a
  :class:`FunctionSummary` — the collectives it invokes *directly* on
  comm-like handles, its send/recv counts, the names it calls, and every
  rank-conditional site with the per-branch collective/call sets.
  Summaries are plain data (JSON-serializable), so the incremental cache
  stores them per file keyed by content hash.
* :class:`ProjectIndex` links summaries into a call graph and answers the
  interprocedural questions — *"which collectives can this function reach,
  transitively?"* — via memoized fixed-point traversal with cycle guards.

Comm-likeness is alias-aware: a handle is comm-like if its name contains
``comm``, its annotation mentions ``Comm``, it was assigned from another
comm-like expression, from a ``.split(...)`` result (the paper's
``MPI_COMM_SPLIT``-per-domain pattern), from an indexed split result, or
from a ``self.comm``-style attribute.  Name resolution for calls is
deliberately conservative: same-module match first, then a *unique*
project-wide match by bare name; ambiguous or external names do not
propagate (a linter must not invent findings it cannot justify).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.checkers._util import call_method_name, names_in

if TYPE_CHECKING:
    from repro.analysis.engine import FileContext

#: Collective operations on communicator-like receivers (mirrors
#: :class:`repro.parallel.comm.VirtualComm`'s surface).
COLLECTIVES = {
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "split",
}
_RANK_MARKERS = ("rank", "root")


@dataclass
class RankSite:
    """One rank-conditional ``if`` inside a function.

    ``*_direct`` hold collectives invoked directly in each branch's subtree;
    ``*_calls`` the (bare) names of functions called there, which the
    project pass resolves to pull in *their* collectives.
    """

    line: int
    col: int
    true_direct: list[str] = field(default_factory=list)
    true_calls: list[str] = field(default_factory=list)
    false_direct: list[str] = field(default_factory=list)
    false_calls: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "line": self.line, "col": self.col,
            "true_direct": self.true_direct, "true_calls": self.true_calls,
            "false_direct": self.false_direct, "false_calls": self.false_calls,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RankSite":
        return cls(
            line=d["line"], col=d["col"],
            true_direct=list(d["true_direct"]),
            true_calls=list(d["true_calls"]),
            false_direct=list(d["false_direct"]),
            false_calls=list(d["false_calls"]),
        )


@dataclass
class FunctionSummary:
    """Everything the interprocedural pass needs to know about one function."""

    path: str
    module: str
    qualname: str
    name: str
    line: int
    col: int
    #: collectives invoked directly on comm-like receivers
    collectives: list[str] = field(default_factory=list)
    #: direct point-to-point counts on comm-like receivers
    sends: int = 0
    recvs: int = 0
    #: line/col of the first direct send/recv (finding anchor)
    p2p_line: int = 0
    p2p_col: int = 0
    #: bare names of every function this one calls (multiplicity kept —
    #: a helper called twice contributes its sends/recvs twice)
    callees: list[str] = field(default_factory=list)
    rank_sites: list[RankSite] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "path": self.path, "module": self.module,
            "qualname": self.qualname, "name": self.name,
            "line": self.line, "col": self.col,
            "collectives": self.collectives,
            "sends": self.sends, "recvs": self.recvs,
            "p2p_line": self.p2p_line, "p2p_col": self.p2p_col,
            "callees": self.callees,
            "rank_sites": [s.to_dict() for s in self.rank_sites],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        return cls(
            path=d["path"], module=d["module"], qualname=d["qualname"],
            name=d["name"], line=d["line"], col=d["col"],
            collectives=list(d["collectives"]),
            sends=d["sends"], recvs=d["recvs"],
            p2p_line=d["p2p_line"], p2p_col=d["p2p_col"],
            callees=list(d["callees"]),
            rank_sites=[RankSite.from_dict(s) for s in d["rank_sites"]],
        )


# -- comm-alias tracking -------------------------------------------------------


def _annotation_is_comm(node: ast.expr | None) -> bool:
    if node is None:
        return False
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "comm" in text.lower()


def comm_aliases(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound to communicator handles inside ``fn`` (fixed point).

    Seeds: parameters whose name contains ``comm`` or whose annotation
    mentions ``Comm``.  Propagates through plain assignment, ``split()``
    results, and subscripts of comm-like values.
    """
    aliases: set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if "comm" in a.arg.lower() or _annotation_is_comm(a.annotation):
            aliases.add(a.arg)
    # Fixed point over assignments: `sub = comm.split(...)[r]` etc.
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _expr_is_comm(value, aliases):
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name) and tgt.id not in aliases:
                    aliases.add(tgt.id)
                    changed = True
    return aliases


def _expr_is_comm(node: ast.expr, aliases: set[str]) -> bool:
    """Whether an expression evaluates to a communicator handle."""
    if isinstance(node, ast.Name):
        return node.id in aliases or "comm" in node.id.lower()
    if isinstance(node, ast.Attribute):
        # `self.comm`, `engine.domain_comm`, or an attribute *of* a comm
        return "comm" in node.attr.lower() or _expr_is_comm(node.value, aliases)
    if isinstance(node, ast.Subscript):
        # `subcomms[r]` where subcomms came from split()
        return _expr_is_comm(node.value, aliases)
    if isinstance(node, ast.Call):
        # `comm.split(...)` returns sub-communicators
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "split"
            and _expr_is_comm(node.func.value, aliases)
        ):
            return True
    return False


def is_comm_receiver(call: ast.Call, aliases: set[str]) -> bool:
    """Whether ``call``'s receiver is a communicator handle."""
    if not isinstance(call.func, ast.Attribute):
        return False
    return _expr_is_comm(call.func.value, aliases)


# -- summary extraction --------------------------------------------------------


def _callee_name(call: ast.Call) -> str | None:
    """Bare name a call resolves by (``helper`` / ``self._helper`` → both
    keyed by the final segment)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        # method-ish calls resolve by the attribute name; collective names
        # are never treated as callees (they are the payload, not the graph)
        return func.attr
    return None


def _rank_dependent(test: ast.expr) -> bool:
    return any(
        any(marker in name.lower() for marker in _RANK_MARKERS)
        for name in names_in(test)
    )


def _scan_subtree(
    nodes: Iterable[ast.stmt], aliases: set[str]
) -> tuple[list[str], list[str]]:
    """(direct collectives, callee names) anywhere under ``nodes``."""
    collectives: list[str] = []
    callees: list[str] = []
    for root in nodes:
        for sub in ast.walk(root):
            if not isinstance(sub, ast.Call):
                continue
            meth = call_method_name(sub)
            if is_comm_receiver(sub, aliases):
                # comm-method calls (collectives *and* send/recv) are
                # payload, never call-graph edges
                if meth in COLLECTIVES and meth not in collectives:
                    collectives.append(meth)
                continue
            name = _callee_name(sub)
            if name is not None:
                callees.append(name)
    return collectives, callees


def _function_qualnames(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(qualname, node) for every function, with class/function nesting."""

    def visit(node: ast.AST, prefix: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def module_name(path: str) -> str:
    """Dotted module name from a path (best effort; stem fallback)."""
    norm = path.replace("\\", "/")
    for marker in ("/src/", "src/"):
        idx = norm.find(marker)
        if idx >= 0:
            rel = norm[idx + len(marker):]
            break
    else:
        rel = norm
    rel = rel[:-3] if rel.endswith(".py") else rel
    return rel.strip("/").replace("/", ".")


def summarize_file(ctx: "FileContext") -> list[FunctionSummary]:
    """Compress every function in ``ctx`` into summaries (cacheable)."""
    mod = module_name(ctx.path)
    out: list[FunctionSummary] = []
    for qualname, fn in _function_qualnames(ctx.tree):
        aliases = comm_aliases(fn)
        summary = FunctionSummary(
            path=ctx.path, module=mod, qualname=qualname, name=fn.name,
            line=fn.lineno, col=fn.col_offset,
        )
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                meth = call_method_name(node)
                if is_comm_receiver(node, aliases):
                    if meth in COLLECTIVES and meth not in summary.collectives:
                        summary.collectives.append(meth)
                    elif meth in ("send", "recv"):
                        if summary.sends + summary.recvs == 0:
                            summary.p2p_line = node.lineno
                            summary.p2p_col = node.col_offset
                        if meth == "send":
                            summary.sends += 1
                        else:
                            summary.recvs += 1
                    continue
                name = _callee_name(node)
                if name is not None:
                    summary.callees.append(name)
            elif isinstance(node, ast.If) and _rank_dependent(node.test):
                t_coll, t_calls = _scan_subtree(node.body, aliases)
                f_coll, f_calls = _scan_subtree(node.orelse, aliases)
                summary.rank_sites.append(
                    RankSite(
                        line=node.lineno, col=node.col_offset,
                        true_direct=t_coll, true_calls=t_calls,
                        false_direct=f_coll, false_calls=f_calls,
                    )
                )
        out.append(summary)
    return out


# -- the project index ---------------------------------------------------------


class ProjectIndex:
    """Call-graph view over every summarized function in the analysed tree.

    Resolution policy (conservative by design): a callee name resolves to
    the unique function with that bare name in the *same file*, else to the
    unique function with that bare name anywhere in the project; ambiguous
    and unknown names resolve to nothing.
    """

    def __init__(self) -> None:
        self.summaries: list[FunctionSummary] = []
        #: path → {line → suppressed rule set} (suppression for findings
        #: anchored by project-scope checkers)
        self.noqa: dict[str, dict[int, set[str]]] = {}
        self._by_name: dict[str, list[FunctionSummary]] = {}
        self._by_path_name: dict[tuple[str, str], list[FunctionSummary]] = {}
        self._eff_collectives: dict[int, set[str]] = {}
        self._eff_p2p: dict[int, tuple[int, int]] = {}
        self._callers: dict[int, int] | None = None

    def add_file(
        self,
        path: str,
        summaries: Iterable[FunctionSummary],
        noqa: dict[int, set[str]] | None = None,
    ) -> None:
        for s in summaries:
            self.summaries.append(s)
            self._by_name.setdefault(s.name, []).append(s)
            self._by_path_name.setdefault((s.path, s.name), []).append(s)
        self.noqa[path] = dict(noqa or {})

    # -- resolution ----------------------------------------------------------

    def resolve(
        self, caller: FunctionSummary, callee_name: str
    ) -> FunctionSummary | None:
        local = self._by_path_name.get((caller.path, callee_name), [])
        if len(local) == 1:
            return local[0]
        if local:
            return None  # ambiguous within the file
        everywhere = self._by_name.get(callee_name, [])
        if len(everywhere) == 1:
            return everywhere[0]
        return None

    def callers_of(self, summary: FunctionSummary) -> int:
        """How many resolved call edges point at ``summary``."""
        if self._callers is None:
            counts: dict[int, int] = {}
            for s in self.summaries:
                # rank-site call lists are a *view* into s.callees (the
                # summary walk covers If subtrees too) — don't re-add them
                for name in s.callees:
                    target = self.resolve(s, name)
                    if target is not None and target is not s:
                        counts[id(target)] = counts.get(id(target), 0) + 1
            self._callers = counts
        return self._callers.get(id(summary), 0)

    # -- interprocedural effects --------------------------------------------

    def effective_collectives(
        self, summary: FunctionSummary, _visiting: set[int] | None = None
    ) -> set[str]:
        """Collectives ``summary`` can reach, transitively through callees."""
        key = id(summary)
        if key in self._eff_collectives:
            return self._eff_collectives[key]
        visiting = _visiting if _visiting is not None else set()
        if key in visiting:
            return set(summary.collectives)  # cycle: direct only
        visiting.add(key)
        out = set(summary.collectives)
        for name in summary.callees:
            target = self.resolve(summary, name)
            if target is not None:
                out |= self.effective_collectives(target, visiting)
        visiting.discard(key)
        self._eff_collectives[key] = out
        return out

    def collectives_via_calls(
        self, caller: FunctionSummary, call_names: Iterable[str]
    ) -> dict[str, set[str]]:
        """collective → helper names contributing it (for diagnostics)."""
        out: dict[str, set[str]] = {}
        for name in call_names:
            target = self.resolve(caller, name)
            if target is None:
                continue
            for op in self.effective_collectives(target):
                out.setdefault(op, set()).add(name)
        return out

    def effective_p2p(
        self, summary: FunctionSummary, _visiting: set[int] | None = None
    ) -> tuple[int, int]:
        """(sends, recvs) reachable from ``summary``, with call multiplicity."""
        key = id(summary)
        if key in self._eff_p2p:
            return self._eff_p2p[key]
        visiting = _visiting if _visiting is not None else set()
        if key in visiting:
            return (summary.sends, summary.recvs)  # cycle: direct only
        visiting.add(key)
        sends, recvs = summary.sends, summary.recvs
        # summary.callees already includes calls inside rank-conditional
        # branches (the walk covers If subtrees); adding site.*_calls here
        # would double-count them
        for name in summary.callees:
            target = self.resolve(summary, name)
            if target is not None:
                s, r = self.effective_p2p(target, visiting)
                sends += s
                recvs += r
        visiting.discard(key)
        self._eff_p2p[key] = (sends, recvs)
        return sends, recvs


def build_index(
    entries: Iterable[tuple[str, list[FunctionSummary], dict[int, set[str]]]],
) -> ProjectIndex:
    """Assemble a :class:`ProjectIndex` from per-file (path, summaries, noqa)."""
    index = ProjectIndex()
    for path, summaries, noqa in entries:
        index.add_file(path, summaries, noqa)
    return index
