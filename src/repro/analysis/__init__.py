"""Physics-aware static analysis for the repro codebase (DESIGN.md §9).

A small AST-visitor framework plus six codebase-specific rules (RP001–
RP006) covering the defect classes that silently corrupt large QMD runs:
dtype upcasts in BLAS3 hot paths, undocumented in-place argument mutation,
shared mutable state, hand-typed physical constants, SPMD collective
mismatches, and telemetry misuse.

Run it as ``python -m repro.analysis src/`` (CI does) or from code::

    from repro.analysis import run_paths, unsuppressed
    findings = run_paths(["src/repro"])
    assert not unsuppressed(findings)

Per-line suppression: ``# repro: noqa[RP002] <why>``.
"""

from repro.analysis.engine import (
    CHECKERS,
    Checker,
    FileContext,
    Finding,
    all_checkers,
    check_file,
    iter_python_files,
    register,
    run_paths,
    unsuppressed,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "CHECKERS",
    "Checker",
    "FileContext",
    "Finding",
    "all_checkers",
    "check_file",
    "iter_python_files",
    "register",
    "render_json",
    "render_text",
    "run_paths",
    "unsuppressed",
]
