"""CLI: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or suppressed-only), 1 unsuppressed findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import (
    AnalysisCache,
    all_checkers,
    run_paths_full,
    unsuppressed,
    unused_suppressions,
)
from repro.analysis.reporters import render_json, render_text


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Physics-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="analyse files with N worker threads (default: 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="per-file result cache keyed by content hash; invalidated "
        "automatically when any analysis source changes",
    )
    parser.add_argument(
        "--unused-noqa", action="store_true",
        help="also report stale '# repro: noqa[...]' suppressions (they "
        "count toward the exit code)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.rule}  {checker.name}: {checker.description}")
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    cache = AnalysisCache(args.cache) if args.cache else None
    run = run_paths_full(
        args.paths,
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else None,
        jobs=args.jobs,
        cache=cache,
    )
    if cache is not None:
        cache.save()
    findings = run.findings
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
    stale = (
        unused_suppressions(findings, run.noqa_by_file)
        if args.unused_noqa
        else []
    )
    for item in stale:
        print(item.format())
    return 1 if (unsuppressed(findings) or stale) else 0


if __name__ == "__main__":
    sys.exit(main())
