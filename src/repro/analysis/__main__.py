"""CLI: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or suppressed-only), 1 unsuppressed findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import all_checkers, run_paths, unsuppressed
from repro.analysis.reporters import render_json, render_text


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Physics-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.rule}  {checker.name}: {checker.description}")
        return 0

    findings = run_paths(
        args.paths,
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else None,
    )
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
    return 1 if unsuppressed(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
