"""Render analysis findings as text or JSON.

The JSON document is what the CI job consumes::

    {
      "findings": [...unsuppressed...],
      "suppressed": [...],
      "counts": {"RP004": 2, ...},
      "ok": false
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.analysis.engine import Finding, unsuppressed


def render_text(findings: Iterable[Finding], show_suppressed: bool = False) -> str:
    findings = list(findings)
    active = unsuppressed(findings)
    shown = findings if show_suppressed else active
    lines = [f.format() for f in shown]
    n_sup = len(findings) - len(active)
    summary = (
        f"{len(active)} finding(s), {n_sup} suppressed"
        if findings
        else "clean: no findings"
    )
    return "\n".join(lines + [summary])


def render_json(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    active = unsuppressed(findings)
    counts = Counter(f.rule for f in active)
    doc = {
        "findings": [f.to_dict() for f in active],
        "suppressed": [f.to_dict() for f in findings if f.suppressed],
        "counts": dict(sorted(counts.items())),
        "ok": not active,
    }
    return json.dumps(doc, indent=1)
