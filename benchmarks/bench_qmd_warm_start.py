"""EXP-QMD-WARM — QMD time-to-solution: workspace reuse + orbital warm starts.

The paper's headline metric is QMD throughput — atoms × SCF iterations per
second (Sec. 5.2/6).  Between MD steps the cell is fixed and atoms move a
fraction of a Bohr, so each domain's converged state is an excellent seed
for the next solve.  This bench replays a short deterministic LiAl
trajectory twice:

* **cold** — every step is an independent ``run_ldc`` (fresh grids, random
  orbital starts, superposition density), the pre-workspace behaviour;
* **warm** — one :class:`LDCWorkspace` carries the step-invariant
  structures and each domain's converged (ψ, v_bc, ρ_α) across steps, with
  ``rho0`` chaining the global density — exactly what ``LDCEngine`` does
  inside ``QMDDriver``.

Gated claim: the warm start cuts total eigensolver iterations over the
post-first steps by ≥ 30% while solving the same physics (per-step energies
match to < 1e-6 Ha).  Iteration counts are deterministic (seeded starts,
fixed trajectory) and host-independent; wall times are ledgered only.
"""

import time

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions, LDCWorkspace, run_ldc
from repro.observability import Instrumentation
from repro.systems.lialloy import lial_nanoparticle

#: MD-step displacement amplitude (Bohr) — ~0.01 Å, a light-atom QMD step.
_STEP_AMPLITUDE = 0.02
_N_STEPS = 3

_OPTS = dict(
    ecut=3.0, domains=(2, 1, 1), buffer=2.0, tol=1e-5, max_iter=40,
    kt=0.02, extra_bands=4,
)


def _trajectory() -> list:
    """A deterministic 3-frame Li₂Al₂ trajectory (seeded random walk)."""
    rng = np.random.default_rng(7)
    frames = []
    pos = None
    for _ in range(_N_STEPS):
        cfg = lial_nanoparticle(2, cell=[14.0, 14.0, 14.0])
        if pos is not None:
            cfg.positions = pos.copy()
        frames.append(cfg)
        pos = cfg.positions + _STEP_AMPLITUDE * rng.standard_normal(
            cfg.positions.shape
        )
    return frames


def _replay(frames, warm: bool):
    """Run the trajectory; returns per-step (eig_iters, scf_iters, energy)
    plus the wall time and the workspace (None for the cold arm)."""
    ws = LDCWorkspace() if warm else None
    rho = None
    rows = []
    t0 = time.perf_counter()
    for cfg in frames:
        ins = Instrumentation()
        r = run_ldc(
            cfg, LDCOptions(**_OPTS), workspace=ws,
            rho0=rho if warm else None, instrumentation=ins,
        )
        assert r.converged
        if warm:
            rho = r.density
        eig = ins.metrics.get("eigensolver.iterations", solver="all_band")
        scf = ins.metrics.get("scf.iterations", engine="ldc")
        rows.append((int(eig.value), int(scf.value), r.energy))
    return rows, time.perf_counter() - t0, ws


def test_workspace_warm_start_throughput(benchmark):
    frames = _trajectory()

    def replay_both():
        cold = _replay(frames, warm=False)
        warm = _replay(frames, warm=True)
        return cold, warm

    (cold_rows, t_cold, _), (warm_rows, t_warm, ws) = benchmark.pedantic(
        replay_both, rounds=1, iterations=1
    )

    # step 0 is cold in both arms; the warm start acts from step 1 on
    cold_eig = sum(r[0] for r in cold_rows[1:])
    warm_eig = sum(r[0] for r in warm_rows[1:])
    cold_scf = sum(r[1] for r in cold_rows[1:])
    warm_scf = sum(r[1] for r in warm_rows[1:])
    reduction = 100.0 * (1.0 - warm_eig / cold_eig)
    energy_dev = max(
        abs(c[2] - w[2]) for c, w in zip(cold_rows, warm_rows)
    )

    lines = [fmt_row("step", "cold eig", "warm eig", "cold scf", "warm scf",
                     widths=[4, 9, 9, 9, 9])]
    for k, (c, w) in enumerate(zip(cold_rows, warm_rows)):
        lines.append(fmt_row(k, c[0], w[0], c[1], w[1],
                             widths=[4, 9, 9, 9, 9]))
    lines += [
        "",
        f"eigensolver iterations (steps 1..{_N_STEPS - 1}): "
        f"cold={cold_eig} warm={warm_eig} ({reduction:.1f}% fewer)",
        f"wall: cold={t_cold:.2f}s warm={t_warm:.2f}s",
    ]
    records = [
        {"metric": "cold_eig_iters", "value": float(cold_eig)},
        {"metric": "warm_eig_iters", "value": float(warm_eig)},
        {"metric": "cold_scf_iters", "value": float(cold_scf)},
        {"metric": "warm_scf_iters", "value": float(warm_scf)},
        {"metric": "eig_reduction_pct", "value": float(reduction)},
        {"metric": "warm_domains_per_step", "value": float(ws.warm_domains)},
        {"metric": "max_energy_dev_ha", "value": float(energy_dev)},
        {"metric": "t_cold_s", "value": float(t_cold)},
        {"metric": "t_warm_s", "value": float(t_warm)},
    ]
    report(
        "qmd_warm_start",
        "QMD hot path — workspace reuse and orbital warm starts (LiAl)",
        lines, records=records, schema=SCHEMAS["qmd_warm_start"],
    )

    # the tentpole acceptance claim, asserted at bench time as well as
    # gated against the committed baseline by repro.observability.regress
    assert reduction >= 30.0, (cold_rows, warm_rows)
    assert energy_dev < 1e-6
    assert ws.warm_domains == 2 and ws.cold_domains == 0
