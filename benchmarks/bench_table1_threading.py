"""EXP-T1 — Table 1: FLOP/s vs hardware threads per core on Blue Gene/Q.

Paper (512-atom SiC, 64 MPI ranks):

    nodes |  1 thr       2 thr       4 thr
      4   | 236 (28.8%)  343 (41.9%)  445 (54.3%)
      8   | 433 (26.4%)  563 (34.4%)  746 (45.6%)
     16   | 806 (24.6%) 1017 (31.0%) 1535 (46.8%)
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.perfmodel.threading import flops_table

PAPER = {
    (4, 1): (236, 28.8), (4, 2): (343, 41.9), (4, 4): (445, 54.3),
    (8, 1): (433, 26.4), (8, 2): (563, 34.4), (8, 4): (746, 45.6),
    (16, 1): (806, 24.6), (16, 2): (1017, 31.0), (16, 4): (1535, 46.8),
}


def test_table1_threading(benchmark):
    rows = benchmark(flops_table)
    by_key = {(r.nodes, r.threads_per_core): r for r in rows}
    lines = [fmt_row("nodes", "thr/core", "model GF/s", "model %",
                     "paper GF/s", "paper %")]
    records = []
    for key, (p_gf, p_pct) in PAPER.items():
        r = by_key[key]
        lines.append(fmt_row(key[0], key[1], r.gflops, r.percent_peak, p_gf, p_pct))
        records.append(
            {"nodes": key[0], "threads_per_core": key[1],
             "model_gflops": r.gflops, "model_percent_peak": r.percent_peak,
             "paper_gflops": p_gf, "paper_percent_peak": p_pct}
        )
    report("table1_threading", "Table 1 — FLOP/s vs threads", lines,
           records=records, schema=SCHEMAS["table1_threading"])

    # shape claims
    for nodes in (4, 8, 16):
        assert (
            by_key[(nodes, 1)].gflops
            < by_key[(nodes, 2)].gflops
            < by_key[(nodes, 4)].gflops
        )
    for t in (1, 2, 4):
        assert by_key[(4, t)].percent_peak > by_key[(16, t)].percent_peak
    # magnitude: within ~20% of every paper cell
    for key, (p_gf, _) in PAPER.items():
        assert abs(by_key[key].gflops - p_gf) / p_gf < 0.25
