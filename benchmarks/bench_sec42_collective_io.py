"""EXP-IO — Sec. 4.2: collective file I/O with aggregation groups.

Paper: optimal I/O group of 192 MPI processes; for a 12-hour production run
on 786,432 cores the read/write times are 9.1 s / 99 s — 0.02% / 0.23% of
the execution time.
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.parallel.collective_io import CollectiveIOModel

RANKS = 786_432
SNAPSHOT = 0.5e12  # bytes of production state
RUN_SECONDS = 12 * 3600.0


def sweep_group_sizes():
    model = CollectiveIOModel()
    sizes = [1, 4, 16, 48, 96, 192, 384, 1024, 8192, RANKS]
    times = {g: model.io_time(SNAPSHOT, RANKS, g, write=True) for g in sizes}
    opt_g, opt_t = model.optimal_group_size(SNAPSHOT, RANKS)
    t_read = model.io_time(SNAPSHOT, RANKS, opt_g, write=False)
    return model, times, opt_g, opt_t, t_read


def test_collective_io(benchmark):
    model, times, opt_g, opt_t, t_read = benchmark(sweep_group_sizes)
    lines = [fmt_row("group size", "write time [s]")]
    for g, t in times.items():
        marker = "  <-- optimum region" if g == opt_g else ""
        lines.append(fmt_row(g, t) + marker)
    lines += [
        "",
        f"optimal group: {opt_g} processes (paper: 192)",
        f"write {opt_t:.1f} s = {100 * opt_t / RUN_SECONDS:.3f}% of a 12 h run "
        "(paper: 99 s = 0.23%)",
        f"read  {t_read:.1f} s = {100 * t_read / RUN_SECONDS:.3f}% "
        "(paper: 9.1 s = 0.02%)",
    ]
    records = [
        {"metric": "optimal_group_size", "value": float(opt_g)},
        {"metric": "write_time_s", "value": float(opt_t)},
        {"metric": "read_time_s", "value": float(t_read)},
        {"metric": "write_percent_of_run",
         "value": float(100 * opt_t / RUN_SECONDS)},
    ]
    report("sec42_collective_io", "Sec. 4.2 — collective I/O", lines,
           records=records, schema=SCHEMAS["sec42_collective_io"])

    # optimum is an interior group size, in the paper's neighborhood
    assert 48 <= opt_g <= 1024
    assert times[1] > opt_t
    assert times[RANKS] > opt_t
    # I/O stays a sub-percent fraction of the production run
    assert opt_t / RUN_SECONDS < 0.01
    assert t_read < opt_t
