"""EXP-SCF-ASPC — SCF work per MD step: ASPC extrapolation vs. warm start.

PR 4's warm start reuses each domain's *last* converged state; this bench
gates the next rung — the time-reversible ASPC predictor
(:mod:`repro.md.extrapolate`) extrapolating both the per-domain orbitals
and the global density over a depth-3 history window.  A smooth
(constant-velocity) LiAl drift trajectory is replayed through
:class:`~repro.md.qmd.LDCEngine` in two arms:

* **warm** — ``history_depth=1``: the PR 4 last-state warm start;
* **aspc** — ``history_depth=3``: ASPC-predicted seeds (gauge-aligned,
  Löwdin-orthonormalized ψ; nonnegative-clipped ρ).

The extrapolated density is the big lever: the density-mixing loop starts
near the step's fixed point and converges in roughly half the SCF passes,
each of which costs a full sweep of eigensolver iterations.

Gated claims: the ASPC arm cuts post-first-step eigensolver iterations a
further ≥ 15% below the warm arm while solving the same physics (per-step
energies match < 1e-6 Ha), and the threaded (``ldc_workers``) and
shape-class-batched domain paths reproduce the serial ASPC arm's energies
to ≤ 1e-10 with identical iteration counts (the predictor seeds flow
through ``DomainState.psi`` identically on all three paths).  Iteration
counts are deterministic; wall times are ledgered only.
"""

import time

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions
from repro.md.qmd import LDCEngine, QMDOptions
from repro.observability import Instrumentation
from repro.systems.lialloy import lial_nanoparticle

#: per-step drift (Bohr) along a fixed random direction — a smooth
#: trajectory segment, the regime ASPC extrapolation targets
_STEP_AMPLITUDE = 0.04
_N_STEPS = 6

_OPTS = dict(
    ecut=3.0, domains=(2, 1, 1), buffer=2.0, tol=1e-5, max_iter=40,
    kt=0.02, extra_bands=4,
)


def _trajectory() -> list:
    """A deterministic 6-frame Li₂Al₂ constant-velocity drift."""
    base = lial_nanoparticle(2, cell=[14.0, 14.0, 14.0])
    rng = np.random.default_rng(7)
    direction = rng.standard_normal(base.positions.shape)
    direction /= np.linalg.norm(direction)
    frames = []
    for k in range(_N_STEPS):
        cfg = lial_nanoparticle(2, cell=[14.0, 14.0, 14.0])
        cfg.positions = base.positions + k * _STEP_AMPLITUDE * direction
        frames.append(cfg)
    return frames


def _replay(frames, depth: int, **extra_opts):
    """Drive the trajectory through one LDCEngine; returns per-step
    (eig_iters, scf_passes, energy), the wall time, and the engine."""
    ins = Instrumentation()
    engine = LDCEngine(
        LDCOptions(**_OPTS, **extra_opts),
        instrumentation=ins,
        qmd_options=QMDOptions(history_depth=depth, adaptive_buffer=False),
    )
    rows = []
    t0 = time.perf_counter()
    for cfg in frames:
        _, energy, scf_passes = engine.forces(cfg)
        eig = ins.metrics.get("qmd.eig_iterations", engine="ldc").values[-1]
        rows.append((int(eig), int(scf_passes), energy))
    return rows, time.perf_counter() - t0, engine


def test_scf_extrapolation_throughput(benchmark):
    frames = _trajectory()

    def replay_all():
        warm = _replay(frames, depth=1)
        aspc = _replay(frames, depth=3)
        threaded = _replay(frames, depth=3, ldc_workers=2)
        batched = _replay(frames, depth=3, batch_domains=True)
        return warm, aspc, threaded, batched

    (
        (warm_rows, t_warm, _),
        (aspc_rows, t_aspc, engine),
        (thr_rows, _, _),
        (bat_rows, _, _),
    ) = benchmark.pedantic(replay_all, rounds=1, iterations=1)

    # step 0 is cold in every arm; the predictors act from step 1 on
    warm_eig = sum(r[0] for r in warm_rows[1:])
    aspc_eig = sum(r[0] for r in aspc_rows[1:])
    warm_scf = sum(r[1] for r in warm_rows[1:])
    aspc_scf = sum(r[1] for r in aspc_rows[1:])
    further = 100.0 * (1.0 - aspc_eig / warm_eig)
    energy_dev = max(
        abs(w[2] - a[2]) for w, a in zip(warm_rows, aspc_rows)
    )
    thr_dev = max(abs(t[2] - a[2]) for t, a in zip(thr_rows, aspc_rows))
    bat_dev = max(abs(b[2] - a[2]) for b, a in zip(bat_rows, aspc_rows))
    thr_eig_dev = sum(abs(t[0] - a[0]) for t, a in zip(thr_rows, aspc_rows))
    bat_eig_dev = sum(abs(b[0] - a[0]) for b, a in zip(bat_rows, aspc_rows))
    residual = engine.workspace.predictor_residual

    lines = [fmt_row("step", "warm eig", "aspc eig", "warm scf", "aspc scf",
                     widths=[4, 9, 9, 9, 9])]
    for k, (w, a) in enumerate(zip(warm_rows, aspc_rows)):
        lines.append(fmt_row(k, w[0], a[0], w[1], a[1],
                             widths=[4, 9, 9, 9, 9]))
    lines += [
        "",
        f"eigensolver iterations (steps 1..{_N_STEPS - 1}): "
        f"warm={warm_eig} aspc={aspc_eig} ({further:.1f}% further cut)",
        f"parity vs serial aspc: threaded dev={thr_dev:.2e} Ha, "
        f"batched dev={bat_dev:.2e} Ha",
        f"wall: warm={t_warm:.2f}s aspc={t_aspc:.2f}s",
    ]
    records = [
        {"metric": "warm_eig_iters", "value": float(warm_eig)},
        {"metric": "aspc_eig_iters", "value": float(aspc_eig)},
        {"metric": "warm_scf_passes", "value": float(warm_scf)},
        {"metric": "aspc_scf_passes", "value": float(aspc_scf)},
        {"metric": "further_reduction_pct", "value": float(further)},
        {"metric": "max_energy_dev_ha", "value": float(energy_dev)},
        {"metric": "parity_threaded_dev_ha", "value": float(thr_dev)},
        {"metric": "parity_batched_dev_ha", "value": float(bat_dev)},
        {"metric": "parity_eig_iters_dev",
         "value": float(thr_eig_dev + bat_eig_dev)},
        {"metric": "predictor_residual", "value": float(residual)},
        {"metric": "t_warm_s", "value": float(t_warm)},
        {"metric": "t_aspc_s", "value": float(t_aspc)},
    ]
    report(
        "scf_extrapolation",
        "SCF work per MD step — ASPC extrapolation vs. warm start (LiAl)",
        lines, records=records, schema=SCHEMAS["scf_extrapolation"],
    )

    # the tentpole acceptance claims, asserted at bench time as well as
    # gated against the committed baseline by repro.observability.regress
    assert further >= 15.0, (warm_rows, aspc_rows)
    assert energy_dev < 1e-6
    assert thr_dev <= 1e-10 and bat_dev <= 1e-10
    assert thr_eig_dev == 0 and bat_eig_dev == 0
    assert engine.workspace.warm_domains == 2
    assert engine.workspace.cold_domains == 0
