"""EXP-VV — Sec. 5.5: verification and validation.

Paper protocol: the same system is run with O(N) LDC-DFT and the
conventional O(N³) plane-wave code, and the quantity of interest must be
identical.  Here: total energy / chemical potential / forces on the toy H₂
system, plus the KMC quantity-of-interest (number of H₂ produced) under a
fixed seed for the Li30Al30 system.
"""

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions, run_ldc
from repro.dft.forces import forces_from_scf
from repro.dft.scf import SCFOptions, run_scf
from repro.reactive.kmc import KMCOptions, run_kmc
from repro.systems import dimer, lial_nanoparticle


def run_verification():
    h2 = dimer("H", "H", 1.5, 12.0)
    scf = run_scf(h2, SCFOptions(ecut=6.0, tol=1e-7))
    ldc = run_ldc(
        h2,
        LDCOptions(ecut=6.0, domains=(2, 1, 1), buffer=2.5, tol=1e-6),
        compute_forces=True,
    )
    f_ref = forces_from_scf(h2, scf)

    particle = lial_nanoparticle(30)
    kmc_a = run_kmc(particle, KMCOptions(temperature=600.0, max_time=1e-8, seed=42))
    kmc_b = run_kmc(particle, KMCOptions(temperature=600.0, max_time=1e-8, seed=42))
    return scf, ldc, f_ref, kmc_a, kmc_b


def test_sec55_verification(benchmark):
    scf, ldc, f_ref, kmc_a, kmc_b = benchmark.pedantic(
        run_verification, rounds=1, iterations=1
    )
    de = abs(ldc.energy - scf.energy)
    dmu = abs(ldc.mu - scf.mu)
    df = np.abs(ldc.forces - f_ref).max()
    lines = [
        fmt_row("quantity", "O(N^3)", "LDC", "|diff|", widths=[16, 14, 14, 12]),
        fmt_row("energy [Ha]", scf.energy, ldc.energy, de, widths=[16, 14, 14, 12]),
        fmt_row("mu [Ha]", scf.mu, ldc.mu, dmu, widths=[16, 14, 14, 12]),
        fmt_row("max force diff", "-", "-", df, widths=[16, 14, 14, 12]),
        "",
        f"KMC quantity of interest (H2 count, seed 42): "
        f"{kmc_a.total_h2} == {kmc_b.total_h2} "
        f"(paper: identical H2 count between the two codes)",
    ]
    records = [
        {"metric": "scf_energy_ha", "value": float(scf.energy)},
        {"metric": "ldc_energy_ha", "value": float(ldc.energy)},
        {"metric": "abs_de_ha", "value": float(de)},
        {"metric": "abs_dmu_ha", "value": float(dmu)},
        {"metric": "max_force_diff", "value": float(df)},
        {"metric": "kmc_h2_count", "value": float(kmc_a.total_h2)},
    ]
    report("sec55_verification", "Sec. 5.5 — verification", lines,
           records=records, schema=SCHEMAS["sec55_verification"])

    assert de < 2e-3          # the DC approximation at this buffer
    # mu sits mid-gap and shifts with the domain LUMO on a 2-electron toy
    assert dmu < 0.15
    assert df < 5e-3
    assert kmc_a.total_h2 == kmc_b.total_h2  # deterministic reproducibility
