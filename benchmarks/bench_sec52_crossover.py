"""EXP-XOVER — Sec. 5.2: LDC/DC speedup factors and the O(N)↔O(N³) crossover.

Paper numbers (CdSe, l = 11.416 a.u.):
  * speedup at the 5·10⁻³ a.u. tolerance (b: 4.72 → 3.57): 2.03 (ν=2), 2.89 (ν=3)
  * speedup table vs tolerance: 2.59/4.18 (1e-2), 2.03/2.89 (5e-3), 1.42/1.69 (1e-3)
  * crossover: L = 8b → 125 atoms; ×1.5 buffer → 422 atoms
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core.complexity import (
    crossover_length,
    crossover_natoms,
    optimal_core_length,
    speedup_factor,
    total_cost,
)

#: (tolerance, b_dc, b_ldc) read from the paper's Fig. 7 discussion
TOLERANCE_TABLE = [
    (1e-2, 5.40, 3.00, 2.59, 4.18),
    (5e-3, 4.72, 3.57, 2.03, 2.89),
    (1e-3, 4.73 * 1.13, 4.20, 1.42, 1.69),  # buffers back-solved from the ratios
]

CDSE_DENSITY = 512 / 45.664**3
L_CDSE = 11.416


def compute_all():
    out = {}
    out["speedups"] = [
        (tol, speedup_factor(L_CDSE, b_dc, b_ldc, 2.0),
         speedup_factor(L_CDSE, b_dc, b_ldc, 3.0))
        for tol, b_dc, b_ldc, _, _ in TOLERANCE_TABLE
    ]
    out["crossover"] = crossover_natoms(3.57, CDSE_DENSITY, 2.0)
    out["crossover_strict"] = crossover_natoms(3.57 * 1.5, CDSE_DENSITY, 2.0)
    return out


def test_crossover_and_speedups(benchmark):
    res = benchmark(compute_all)
    lines = [fmt_row("tolerance", "S(nu=2)", "S(nu=3)", "paper2", "paper3")]
    for (tol, s2, s3), (_, _, _, p2, p3) in zip(res["speedups"], TOLERANCE_TABLE):
        lines.append(fmt_row(tol, s2, s3, p2, p3))
    lines.append("")
    lines.append(f"crossover (b = 3.57): {res['crossover']:.0f} atoms (paper: 125)")
    lines.append(
        f"crossover (1.5x buffer): {res['crossover_strict']:.0f} atoms (paper: 422)"
    )
    lines.append(f"l* = 2b check: l*(b=3.57, nu=2) = "
                 f"{optimal_core_length(3.57, 2.0):.2f} = {2 * 3.57:.2f}")
    records = []
    for tol, s2, s3 in res["speedups"]:
        records.append({"metric": f"speedup_nu2@{tol:.0e}", "value": s2})
        records.append({"metric": f"speedup_nu3@{tol:.0e}", "value": s3})
    records.append({"metric": "crossover_atoms", "value": res["crossover"]})
    records.append(
        {"metric": "crossover_strict_atoms", "value": res["crossover_strict"]}
    )
    report("sec52_crossover", "Sec. 5.2 — speedups & crossover", lines,
           records=records, schema=SCHEMAS["sec52_crossover"])

    # the 5e-3 row is the paper's worked example
    _, s2, s3 = res["speedups"][1]
    assert abs(s2 - 2.03) < 0.05
    assert abs(s3 - 2.89) < 0.1
    assert abs(res["crossover"] - 125) < 10
    assert abs(res["crossover_strict"] - 422) < 30
    # crossover length relation L = 8b for nu = 2
    assert abs(crossover_length(3.0, 2.0) - 24.0) < 1e-9
    # and T(l*) is indeed the minimum
    b = 3.57
    l_star = optimal_core_length(b, 2.0)
    assert total_cost(l_star, 45.664, b) <= total_cost(1.2 * l_star, 45.664, b)
