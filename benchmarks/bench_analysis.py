"""BENCH-ANALYSIS — self-lint throughput of the repro.analysis framework.

Times a full `python -m repro.analysis src/` pass (all eight RP checkers,
including the interprocedural project pass, over the whole package) and
reports per-file / per-KLOC throughput.  The self-lint
is part of tier-1, so this pins how much wall-clock the gate costs.
"""

import time

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.analysis import all_checkers, iter_python_files, run_paths, unsuppressed

SRC = "src"


def run_self_lint():
    findings = run_paths([SRC])
    files = list(iter_python_files([SRC]))
    nlines = 0
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            nlines += sum(1 for _ in fh)
    return findings, len(files), nlines


def test_self_lint_throughput(benchmark):
    (findings, nfiles, nlines) = benchmark.pedantic(
        run_self_lint, rounds=3, warmup_rounds=1
    )
    elapsed = benchmark.stats.stats.mean
    open_findings = unsuppressed(findings)
    nrules = len(all_checkers())

    per_file_ms = 1e3 * elapsed / max(nfiles, 1)
    kloc_per_s = (nlines / 1e3) / elapsed if elapsed > 0 else float("inf")

    lines = [
        fmt_row("files", "KLOC", "rules", "time [s]", "ms/file", "KLOC/s"),
        fmt_row(
            nfiles, nlines / 1e3, nrules, elapsed, per_file_ms, kloc_per_s
        ),
        "",
        f"findings: {len(open_findings)} unsuppressed, "
        f"{len(findings) - len(open_findings)} suppressed",
    ]
    report(
        "analysis",
        "repro.analysis — full self-lint of src/",
        lines,
        records=[
            {
                "files": nfiles,
                "lines": nlines,
                "rules": nrules,
                "seconds": elapsed,
                "ms_per_file": per_file_ms,
                "kloc_per_s": kloc_per_s,
                "unsuppressed_findings": len(open_findings),
            }
        ],
        schema=SCHEMAS["analysis"],
    )

    # The gate must stay clean and cheap: tier-1 runs it on every push.
    assert not open_findings
    assert nrules == 8
    assert elapsed < 30.0


def main():
    t0 = time.perf_counter()
    findings, nfiles, nlines = run_self_lint()
    elapsed = time.perf_counter() - t0
    print(
        f"{nfiles} files / {nlines} lines in {elapsed:.3f} s "
        f"({len(unsuppressed(findings))} unsuppressed findings)"
    )


if __name__ == "__main__":
    main()
