"""Shared helpers for the benchmark suite: paper-style table reporting.

Every bench prints the rows the paper's table/figure reports and appends
them to ``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves a complete paper-vs-measured record behind.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, title: str, lines: list[str]) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    block = [f"=== {title} ==="] + lines + [""]
    text = "\n".join(block)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def fmt_row(*cols, widths=None) -> str:
    widths = widths or [12] * len(cols)
    out = []
    for c, w in zip(cols, widths):
        if isinstance(c, float):
            out.append(f"{c:>{w}.4g}")
        else:
            out.append(f"{str(c):>{w}}")
    return " ".join(out)
