"""Shared helpers for the benchmark suite: paper-style table reporting.

Every bench prints the rows the paper's table/figure reports and appends
them to ``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves a complete paper-vs-measured record behind.

Alongside each text file, :func:`report` writes a machine-readable
``benchmarks/results/BENCH_<name>.json`` payload::

    {"schema_version": 2, "bench": "<name>", "title": "...",
     "meta": {...provenance...}, "schema": {...declared record shape...},
     "lines": [...], "records": [...]}

``records`` carries one dict per measured row and ``schema`` its declared
shape from ``benchmarks/_schemas.py`` — validated here at report time, so a
bench emitting malformed rows fails immediately.  The payloads are the
input to the regression gate::

    python -m repro.observability.regress --baselines benchmarks/baselines

``meta`` records provenance (git SHA, timestamp, python/numpy versions) so
a ledger entry can always be traced back to the code that produced it.

Each :func:`report` call additionally lands a *run-ledger* entry: a
``telemetry/runs/<run_id>/`` directory (component ``bench:<name>``)
holding copies of both artifacts plus a schema'd manifest with content
hashes and the records' headline numbers flattened into manifest metrics —
the input to ``python -m repro.observability.runlog diff/drift`` and
``regress --runs``.  Set ``REPRO_TELEMETRY_DIR`` to move the ledger root.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess

from repro.observability.regress import SCHEMA_VERSION, RecordSchema

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_META: dict | None = None


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_meta() -> dict:
    """Provenance block shared by every payload of one suite run."""
    global _META
    if _META is None:
        import numpy

        _META = {
            "git_sha": _git_sha(),
            "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
        }
    return _META


def report(
    name: str,
    title: str,
    lines: list[str],
    records: list[dict] | None = None,
    schema: RecordSchema | None = None,
) -> None:
    """Print a result block and persist it under benchmarks/results/.

    Writes both ``<name>.txt`` (the human-readable block, unchanged) and
    ``BENCH_<name>.json`` (the machine-readable ledger entry).  When a
    ``schema`` is given the records are validated against it — a violation
    raises, failing the benchmark — and the schema rides along in the
    payload for ``repro.observability.regress``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    block = [f"=== {title} ==="] + lines + [""]
    text = "\n".join(block)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if schema is not None:
        problems = schema.validate(records or [])
        if problems:
            raise ValueError(
                f"bench {name!r}: records violate schema:\n  "
                + "\n  ".join(problems)
            )
    payload = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "title": title,
        "meta": run_meta(),
        "schema": schema.to_dict() if schema is not None else None,
        "lines": list(lines),
        "records": records or [],
    }
    txt_path = RESULTS_DIR / f"{name}.txt"
    json_path = RESULTS_DIR / f"BENCH_{name}.json"
    json_path.write_text(json.dumps(payload, indent=1) + "\n")
    _ledger_entry(name, txt_path, json_path, records or [], schema)


def _ledger_entry(
    name: str,
    txt_path: pathlib.Path,
    json_path: pathlib.Path,
    records: list[dict],
    schema: RecordSchema | None,
) -> None:
    """Land this report as a run-ledger entry under telemetry/runs/."""
    from repro.observability.runlog import RunRecorder, flatten_records

    rec = RunRecorder(component=f"bench:{name}")
    rec.add_artifact(txt_path)
    rec.add_artifact(json_path)
    rec.add_metrics(flatten_records(records, schema))
    rec.finish()


def fmt_row(*cols, widths=None) -> str:
    widths = widths or [12] * len(cols)
    out = []
    for c, w in zip(cols, widths):
        if isinstance(c, float):
            out.append(f"{c:>{w}.4g}")
        else:
            out.append(f"{str(c):>{w}}")
    return " ".join(out)
