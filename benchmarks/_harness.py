"""Shared helpers for the benchmark suite: paper-style table reporting.

Every bench prints the rows the paper's table/figure reports and appends
them to ``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves a complete paper-vs-measured record behind.

Alongside each text file, :func:`report` now also writes a machine-readable
``benchmarks/results/BENCH_<name>.json`` record::

    {"bench": "<name>", "title": "...", "lines": [...], "records": [...]}

Pass ``records=[{...}, ...]`` (one dict per measured row) to make the JSON
useful for downstream tooling; without it the text lines are still carried
over so every benchmark is machine-readable at least at line granularity.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(
    name: str,
    title: str,
    lines: list[str],
    records: list[dict] | None = None,
) -> None:
    """Print a result block and persist it under benchmarks/results/.

    Writes both ``<name>.txt`` (the human-readable block, unchanged) and
    ``BENCH_<name>.json`` (a machine-readable record; ``records`` carries
    one dict per measured row when the benchmark provides them).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    block = [f"=== {title} ==="] + lines + [""]
    text = "\n".join(block)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "bench": name,
        "title": title,
        "lines": list(lines),
        "records": records or [],
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )


def fmt_row(*cols, widths=None) -> str:
    widths = widths or [12] * len(cols)
    out = []
    for c, w in zip(cols, widths):
        if isinstance(c, float):
            out.append(f"{c:>{w}.4g}")
        else:
            out.append(f"{str(c):>{w}}")
    return " ".join(out)
