"""EXP-T2 — Table 2: FLOP/s on Mira racks (weak-scaled SiC, 4 threads/core).

Paper:
    1 rack  (16,384 cores):   113.23 TFLOP/s  (53.99 %)
    2 racks (32,768 cores):   226.32 TFLOP/s  (53.96 %)
    48 racks (786,432 cores): 5,081.0 TFLOP/s (50.46 %)
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.perfmodel.threading import rack_table

PAPER = {1: (113.23, 53.99), 2: (226.32, 53.96), 48: (5081.0, 50.46)}


def test_table2_rack_flops(benchmark):
    rows = benchmark(rack_table)
    lines = [fmt_row("racks", "cores", "model TF/s", "model %",
                     "paper TF/s", "paper %")]
    records = []
    for racks, row in zip((1, 2, 48), rows):
        p_tf, p_pct = PAPER[racks]
        lines.append(
            fmt_row(racks, row.nodes * 16, row.gflops / 1e3,
                    row.percent_peak, p_tf, p_pct)
        )
        records.append(
            {"racks": racks, "cores": row.nodes * 16,
             "model_tflops": row.gflops / 1e3,
             "model_percent_peak": row.percent_peak,
             "paper_tflops": p_tf, "paper_percent_peak": p_pct}
        )
    report("table2_rack_flops", "Table 2 — FLOP/s on Mira", lines,
           records=records, schema=SCHEMAS["table2_rack_flops"])

    for racks, row in zip((1, 2, 48), rows):
        p_tf, p_pct = PAPER[racks]
        assert abs(row.gflops / 1e3 - p_tf) / p_tf < 0.05
        assert abs(row.percent_peak - p_pct) < 2.0
    # the paper's headline: 5.08 PFLOP/s, 50.5% of peak at the full machine
    assert rows[-1].gflops / 1e6 > 4.8
