"""EXP-F6 — Fig. 6: strong scaling on the 77,889-atom LiAl-water system.

Paper: speedup 12.85 (efficiency 0.803) going from 49,152 to 786,432 cores.
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.perfmodel.scaling import StrongScalingModel

CORE_COUNTS = [49_152, 98_304, 196_608, 393_216, 786_432]


def run_strong_scaling():
    model = StrongScalingModel()
    return model, model.curve(CORE_COUNTS)


def test_fig6_strong_scaling(benchmark):
    model, points = benchmark(run_strong_scaling)
    lines = [fmt_row("cores", "t/step[s]", "speedup", "efficiency")]
    records = []
    for p in points:
        lines.append(
            fmt_row(p.cores, p.wall_clock, model.speedup(p.cores), p.efficiency)
        )
        records.append(
            {"cores": p.cores, "wall_clock_s": p.wall_clock,
             "speedup": model.speedup(p.cores), "efficiency": p.efficiency}
        )
    s = model.speedup(786_432)
    lines.append("")
    lines.append("paper:    speedup 12.85 (efficiency 0.803) at 16x cores")
    lines.append(f"measured: speedup {s:.2f} (efficiency {s / 16:.3f}) at 16x cores")
    report("fig6_strong_scaling", "Fig. 6 — strong scaling", lines,
           records=records, schema=SCHEMAS["fig6_strong_scaling"])
    assert abs(s - 12.85) < 0.8
    # wall-clock must decrease monotonically with cores
    times = [p.wall_clock for p in points]
    assert all(b < a for a, b in zip(times, times[1:]))
