"""EXP-F9A — Fig. 9(a): H₂ production rate vs inverse temperature.

Paper: Li₃₀Al₃₀ in water at 300/600/1500 K; Arrhenius fit gives an
activation barrier of 0.068 eV and a rate of 1.04·10⁹ s⁻¹ per LiAl pair at
300 K — orders of magnitude above pure Al.
"""

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.reactive.analysis import arrhenius_fit, rate_with_error
from repro.reactive.kmc import KMCOptions, run_kmc
from repro.reactive.sites import site_census
from repro.systems import lial_nanoparticle

TEMPERATURES = [300.0, 600.0, 1500.0]
REPLICAS = 5


def run_temperature_sweep():
    particle = lial_nanoparticle(30)
    census = site_census(particle)
    rates, errors = [], []
    for t in TEMPERATURES:
        runs = [
            run_kmc(
                particle,
                KMCOptions(temperature=t, max_time=2e-8, seed=s),
                census,
            )
            for s in range(REPLICAS)
        ]
        mean, err = rate_with_error(runs)
        rates.append(mean)
        errors.append(err)
    return census, np.array(rates), np.array(errors)


def test_fig9a_arrhenius(benchmark):
    census, rates, errors = benchmark.pedantic(
        run_temperature_sweep, rounds=1, iterations=1
    )
    fit = arrhenius_fit(TEMPERATURES, rates)
    k300_pair = fit.rate(300.0) / census.n_pairs

    lines = [fmt_row("T[K]", "1000/T", "rate/pair [1/s]", "stderr")]
    for t, r, e in zip(TEMPERATURES, rates, errors):
        lines.append(
            fmt_row(t, 1000.0 / t, r / census.n_pairs, e / census.n_pairs)
        )
    lines += [
        "",
        f"Arrhenius fit: E_a = {fit.activation_ev * 1e3:.1f} meV "
        f"(paper: 68 meV), R^2 = {fit.r_squared:.4f}",
        f"k(300 K) per pair = {k300_pair:.2e} /s (paper: 1.04e9 /s)",
    ]
    records = [
        {"metric": f"rate_per_pair_{t:.0f}K", "value": float(r / census.n_pairs)}
        for t, r in zip(TEMPERATURES, rates)
    ] + [
        {"metric": "activation_mev", "value": float(fit.activation_ev * 1e3)},
        {"metric": "r_squared", "value": float(fit.r_squared)},
        {"metric": "k300_per_pair", "value": float(k300_pair)},
    ]
    report("fig9a_arrhenius", "Fig. 9(a) — Arrhenius kinetics", lines,
           records=records, schema=SCHEMAS["fig9a_arrhenius"])

    assert abs(fit.activation_ev - 0.068) < 0.025
    assert fit.r_squared > 0.95
    # order-of-magnitude agreement of the absolute 300 K rate
    assert 1e8 < k300_pair < 1e10
    # rates increase with temperature (the figure's visual content)
    assert rates[0] < rates[1] < rates[2]
