"""EXP-BLAS — Sec. 3.4: the BLAS2 → BLAS3 algebraic transformation.

Paper: rewriting the nonlocal-projector application (Eq. 4 → Eq. 5) and the
band-by-band CG into all-band matrix-matrix form "drastically increases the
floating-point performance".  The bench measures the real speedup of the
two code paths on this host (identical results are asserted in the unit
tests; here we time them).
"""

import time

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.util.linalg import apply_projectors_blas2, apply_projectors_blas3

NPW, NPROJ, NBAND = 4096, 96, 128


def _problem():
    rng = np.random.default_rng(0)
    b = rng.normal(size=(NPW, NPROJ)) + 1j * rng.normal(size=(NPW, NPROJ))
    d = np.diag(rng.random(NPROJ))
    psi = rng.normal(size=(NPW, NBAND)) + 1j * rng.normal(size=(NPW, NBAND))
    return b, d, psi


def _time(fn, *args, repeats=3):
    fn(*args)  # warm-up
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn(*args)
    return (time.perf_counter() - t0) / repeats


def test_blas3_transformation(benchmark):
    b, d, psi = _problem()
    benchmark(lambda: apply_projectors_blas3(b, d, psi))
    t_blas2 = _time(apply_projectors_blas2, b, d, psi)
    t_blas3 = _time(apply_projectors_blas3, b, d, psi)
    speedup = t_blas2 / t_blas3
    # exactness of the transformation
    out2 = apply_projectors_blas2(b, d, psi)
    out3 = apply_projectors_blas3(b, d, psi)
    max_diff = float(np.abs(out2 - out3).max())

    gflops = 2 * (8.0 * NPW * NPROJ * NBAND) / t_blas3 / 1e9
    lines = [
        fmt_row("path", "time [s]", widths=[28, 12]),
        fmt_row("BLAS2 (band-by-band)", t_blas2, widths=[28, 12]),
        fmt_row("BLAS3 (all-band, Eq. 5)", t_blas3, widths=[28, 12]),
        "",
        f"speedup: {speedup:.1f}x  (achieved {gflops:.1f} GFLOP/s in BLAS3)",
        f"max |difference| between paths: {max_diff:.2e} (must be roundoff)",
    ]
    records = [
        {"metric": "t_blas2_s", "value": t_blas2},
        {"metric": "t_blas3_s", "value": t_blas3},
        {"metric": "gflops_blas3", "value": gflops},
        {"metric": "speedup", "value": speedup},
        {"metric": "max_path_difference", "value": max_diff},
    ]
    report("sec34_blas3", "Sec. 3.4 — BLAS2 vs BLAS3", lines,
           records=records, schema=SCHEMAS["sec34_blas3"])

    assert max_diff < 1e-9
    assert speedup > 2.0  # the transformation must pay off substantially
