"""EXP-PROD — Sec. 6: the production-campaign accounting.

Paper: 16,661 atoms (43,708 electrons) for 21,140 time steps = 129,208 SCF
iterations at Δt = 0.242 fs (≈ 5.1 ps of dynamics), run in ~12-hour
sessions on all 786,432 cores; "we are not aware of any QMD simulation for
such long time".
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.perfmodel.campaign import (
    PAPER_PRODUCTION,
    PAPER_VERIFICATION,
    plan_campaign,
)


def test_production_accounting(benchmark):
    plan = benchmark(lambda: plan_campaign(PAPER_PRODUCTION))
    spec = plan.spec
    lines = [
        fmt_row("quantity", "value", widths=[40, 16]),
        fmt_row("atoms", spec.natoms, widths=[40, 16]),
        fmt_row("QMD steps", spec.nsteps, widths=[40, 16]),
        fmt_row("SCF iterations", spec.scf_iterations, widths=[40, 16]),
        fmt_row("SCF per step", spec.scf_per_step, widths=[40, 16]),
        fmt_row("simulated time [ps]", spec.simulated_ps, widths=[40, 16]),
        fmt_row("predicted s/SCF @786,432 cores", plan.seconds_per_scf,
                widths=[40, 16]),
        fmt_row("predicted campaign [hours]", plan.total_hours, widths=[40, 16]),
        fmt_row("12-hour sessions", plan.sessions_12h, widths=[40, 16]),
        fmt_row("checkpoint write per session [s]",
                plan.io_seconds_per_session, widths=[40, 16]),
        "",
        "paper: 21,140 steps x 0.242 fs = 5.12 ps; 6.11 SCF/step; ~12 h sessions",
    ]
    records = [
        {"metric": "atoms", "value": float(spec.natoms)},
        {"metric": "qmd_steps", "value": float(spec.nsteps)},
        {"metric": "scf_iterations", "value": float(spec.scf_iterations)},
        {"metric": "scf_per_step", "value": float(spec.scf_per_step)},
        {"metric": "simulated_ps", "value": float(spec.simulated_ps)},
        {"metric": "seconds_per_scf", "value": float(plan.seconds_per_scf)},
        {"metric": "campaign_hours", "value": float(plan.total_hours)},
        {"metric": "sessions_12h", "value": float(plan.sessions_12h)},
        {"metric": "io_seconds_per_session",
         "value": float(plan.io_seconds_per_session)},
    ]
    report("sec6_production", "Sec. 6 — production campaign", lines,
           records=records, schema=SCHEMAS["sec6_production"])

    # bookkeeping identities from the paper's own numbers
    assert spec.simulated_ps ==.242 * 21_140 / 1000
    assert abs(spec.scf_per_step - 6.11) < 0.02
    # the campaign must be feasible: hours, not years, and multiple sessions
    assert 1.0 < plan.total_hours < 2000.0
    assert plan.sessions_12h > 1.0
    # I/O per session stays negligible vs 12 h
    assert plan.io_seconds_per_session < 0.01 * 12 * 3600


def test_verification_campaign_smaller(benchmark):
    plan_small = benchmark(lambda: plan_campaign(PAPER_VERIFICATION))
    plan_big = plan_campaign(PAPER_PRODUCTION)
    assert plan_small.seconds_per_scf < plan_big.seconds_per_scf
