"""Declared record schemas for every benchmark in the suite.

Each benchmark passes ``records=`` rows plus its schema from this module to
``_harness.report``; the harness validates the rows *at report time* (a
schema violation fails the bench) and embeds the schema in the
``BENCH_<name>.json`` payload so ``python -m repro.observability.regress``
can gate fresh results against ``benchmarks/baselines/`` without importing
any benchmark code.

Two shapes are used:

* **tabular** — keyed rows mirroring the paper table/figure (e.g. Table 1
  keyed by ``(nodes, threads_per_core)``);
* **metric** — ``{"metric": name, "value": x}`` rows for benches whose
  output is a handful of headline scalars, with per-metric tolerance bands
  via :attr:`RecordSchema.overrides`.

Band policy: deterministic model/physics outputs get tight bands (drift
either way is a real change); error norms and iteration counts gate only
on *increase* (``direction="lower"``); efficiencies/speedups gate only on
*decrease* (``"higher"``); host-dependent timings are ``compare=False`` —
ledgered, never gated.
"""

from __future__ import annotations

from repro.observability.regress import FieldSpec, RecordSchema, metric_value


def _metric_schema(bench: str, metrics: dict[str, dict]) -> RecordSchema:
    """Metric-style schema: one band declaration per headline scalar."""
    return RecordSchema(
        bench=bench,
        fields=metric_value(),
        key=("metric",),
        overrides={m: {"value": kw} for m, kw in metrics.items()},
    )


_EXACT = {"direction": "both", "rel_tol": 0.0, "abs_tol": 0.0}
_MODEL = {"direction": "both", "rel_tol": 0.01}  # deterministic perf model
_TIMING = {"compare": False}  # host wall-clock: ledger only


SCHEMAS: dict[str, RecordSchema] = {
    # -- paper tables (deterministic machine models) ------------------------
    "table1_threading": RecordSchema(
        bench="table1_threading",
        key=("nodes", "threads_per_core"),
        fields=[
            FieldSpec("nodes", kind="int", compare=False),
            FieldSpec("threads_per_core", kind="int", compare=False),
            FieldSpec("model_gflops", **_MODEL),
            FieldSpec("model_percent_peak", **_MODEL),
            FieldSpec("paper_gflops", **_EXACT),
            FieldSpec("paper_percent_peak", **_EXACT),
        ],
    ),
    "table2_rack_flops": RecordSchema(
        bench="table2_rack_flops",
        key=("racks",),
        fields=[
            FieldSpec("racks", kind="int", compare=False),
            FieldSpec("cores", kind="int", **_EXACT),
            FieldSpec("model_tflops", **_MODEL),
            FieldSpec("model_percent_peak", **_MODEL),
            FieldSpec("paper_tflops", **_EXACT),
            FieldSpec("paper_percent_peak", **_EXACT),
        ],
    ),
    # -- scaling figures ----------------------------------------------------
    "fig5_weak_scaling": RecordSchema(
        bench="fig5_weak_scaling",
        key=("cores",),
        fields=[
            FieldSpec("cores", kind="int", compare=False),
            FieldSpec("natoms", kind="int", **_EXACT),
            FieldSpec("wall_clock_s", **_MODEL),
            FieldSpec("efficiency", direction="higher", rel_tol=0.005,
                      abs_tol=1e-3),
        ],
    ),
    "fig6_strong_scaling": RecordSchema(
        bench="fig6_strong_scaling",
        key=("cores",),
        fields=[
            FieldSpec("cores", kind="int", compare=False),
            FieldSpec("wall_clock_s", **_MODEL),
            FieldSpec("speedup", direction="higher", rel_tol=0.01),
            FieldSpec("efficiency", direction="higher", rel_tol=0.01),
        ],
    ),
    # -- LDC physics sweeps (deterministic solves) --------------------------
    "fig7_buffer_convergence": RecordSchema(
        bench="fig7_buffer_convergence",
        key=("mode", "buffer"),
        fields=[
            FieldSpec("mode", kind="str", compare=False),
            FieldSpec("buffer", compare=False),
            FieldSpec("energy_ha", direction="both", rel_tol=0.0,
                      abs_tol=1e-5),
            FieldSpec("abs_de_per_atom", direction="lower", rel_tol=0.25,
                      abs_tol=1e-6),
            FieldSpec("rho_err", direction="lower", rel_tol=0.25,
                      abs_tol=1e-8),
        ],
    ),
    # -- reactive kinetics (seeded KMC, deterministic) ----------------------
    "fig9a_arrhenius": _metric_schema(
        "fig9a_arrhenius",
        {
            "rate_per_pair_300K": {"direction": "both", "rel_tol": 0.1},
            "rate_per_pair_600K": {"direction": "both", "rel_tol": 0.1},
            "rate_per_pair_1500K": {"direction": "both", "rel_tol": 0.1},
            "activation_mev": {"direction": "both", "abs_tol": 5.0,
                               "rel_tol": 0.0},
            "r_squared": {"direction": "higher", "abs_tol": 0.02,
                          "rel_tol": 0.0},
            "k300_per_pair": {"direction": "both", "rel_tol": 0.2},
        },
    ),
    "fig9b_size_scaling": RecordSchema(
        bench="fig9b_size_scaling",
        key=("pairs",),
        fields=[
            FieldSpec("pairs", kind="int", compare=False),
            FieldSpec("n_surface", kind="int", **_EXACT),
            FieldSpec("rate", direction="both", rel_tol=0.1),
            FieldSpec("rate_per_surface", direction="both", rel_tol=0.1),
            FieldSpec("stderr_per_surface", compare=False),
        ],
    ),
    # -- kernel/transformation benches --------------------------------------
    "sec34_blas3": _metric_schema(
        "sec34_blas3",
        {
            "t_blas2_s": _TIMING,
            "t_blas3_s": _TIMING,
            "gflops_blas3": _TIMING,
            # the transformation must keep paying off on any host
            "speedup": {"direction": "higher", "rel_tol": 0.75},
            "max_path_difference": {"direction": "lower", "rel_tol": 0.0,
                                    "abs_tol": 1e-9},
        },
    ),
    "sec42_collective_io": _metric_schema(
        "sec42_collective_io",
        {
            "optimal_group_size": _EXACT,
            "write_time_s": _MODEL,
            "read_time_s": _MODEL,
            "write_percent_of_run": {"direction": "lower", "rel_tol": 0.0,
                                     "abs_tol": 0.01},
        },
    ),
    # -- Sec. 5.2 analytics --------------------------------------------------
    "sec52_crossover": _metric_schema(
        "sec52_crossover",
        {
            "speedup_nu2@1e-02": {"direction": "both", "rel_tol": 0.001},
            "speedup_nu3@1e-02": {"direction": "both", "rel_tol": 0.001},
            "speedup_nu2@5e-03": {"direction": "both", "rel_tol": 0.001},
            "speedup_nu3@5e-03": {"direction": "both", "rel_tol": 0.001},
            "speedup_nu2@1e-03": {"direction": "both", "rel_tol": 0.001},
            "speedup_nu3@1e-03": {"direction": "both", "rel_tol": 0.001},
            "crossover_atoms": {"direction": "both", "rel_tol": 0.01},
            "crossover_strict_atoms": {"direction": "both", "rel_tol": 0.01},
        },
    ),
    "sec52_time_to_solution": _metric_schema(
        "sec52_time_to_solution",
        {
            "paper_headline_atom_iter_per_s": _EXACT,
            "model_projection_atom_iter_per_s": _MODEL,
            "prototype_atom_iter_per_s": _TIMING,
            "prototype_scf_iterations": {"direction": "lower",
                                         "rel_tol": 0.0, "abs_tol": 2.0},
            "speedup_vs_hasegawa2011": _MODEL,
            "speedup_vs_oseikuffuor2014": _MODEL,
        },
    ),
    "sec54_portability": _metric_schema(
        "sec54_portability",
        {
            "model_gflops": _MODEL,
            "model_percent_peak": {"direction": "both", "rel_tol": 0.0,
                                   "abs_tol": 0.5},
            "host_dgemm_gflops": _TIMING,
        },
    ),
    # -- verification & production accounting --------------------------------
    "sec55_verification": _metric_schema(
        "sec55_verification",
        {
            "scf_energy_ha": {"direction": "both", "rel_tol": 0.0,
                              "abs_tol": 1e-6},
            "ldc_energy_ha": {"direction": "both", "rel_tol": 0.0,
                              "abs_tol": 1e-5},
            "abs_de_ha": {"direction": "lower", "rel_tol": 0.25,
                          "abs_tol": 1e-5},
            "abs_dmu_ha": {"direction": "lower", "rel_tol": 0.25,
                           "abs_tol": 1e-3},
            "max_force_diff": {"direction": "lower", "rel_tol": 0.25,
                               "abs_tol": 1e-4},
            "kmc_h2_count": _EXACT,
        },
    ),
    "sec6_production": _metric_schema(
        "sec6_production",
        {
            "atoms": _EXACT,
            "qmd_steps": _EXACT,
            "scf_iterations": _EXACT,
            "scf_per_step": {"direction": "both", "rel_tol": 0.0,
                             "abs_tol": 0.01},
            "simulated_ps": _EXACT,
            "seconds_per_scf": _MODEL,
            "campaign_hours": _MODEL,
            "sessions_12h": _MODEL,
            "io_seconds_per_session": _MODEL,
        },
    ),
    # -- ablations ------------------------------------------------------------
    "ablation_poisson": _metric_schema(
        "ablation_poisson",
        {
            "t_fft_s": _TIMING,
            "t_mg_s": _TIMING,
            "fd_vs_spectral_max_dev": {"direction": "lower", "rel_tol": 0.25},
            "cold_cycles": {"direction": "lower", "rel_tol": 0.0,
                            "abs_tol": 1.0},
            "warm_cycles": {"direction": "lower", "rel_tol": 0.0,
                            "abs_tol": 1.0},
        },
    ),
    "ablation_eigensolvers": _metric_schema(
        "ablation_eigensolvers",
        {
            "t_direct_s": _TIMING,
            "t_all_band_s": _TIMING,
            "t_band_by_band_s": _TIMING,
            "err_all_band": {"direction": "lower", "rel_tol": 1.0,
                             "abs_tol": 1e-8},
            "err_band_by_band": {"direction": "lower", "rel_tol": 1.0,
                                 "abs_tol": 1e-7},
        },
    ),
    "ablation_xi": RecordSchema(
        bench="ablation_xi",
        key=("variant",),
        fields=[
            FieldSpec("variant", kind="str", compare=False),
            FieldSpec("abs_de_per_atom", direction="lower", rel_tol=0.25,
                      abs_tol=1e-6),
            FieldSpec("iterations", kind="int", direction="lower",
                      rel_tol=0.0, abs_tol=2.0),
            FieldSpec("converged", kind="int", **_EXACT),
        ],
    ),
    "ablation_mixers": RecordSchema(
        bench="ablation_mixers",
        key=("mixer",),
        fields=[
            FieldSpec("mixer", kind="str", compare=False),
            FieldSpec("iterations", kind="int", direction="lower",
                      rel_tol=0.0, abs_tol=1.0),
            FieldSpec("energy_ha", direction="both", rel_tol=0.0,
                      abs_tol=1e-6),
        ],
    ),
    "ablation_support": RecordSchema(
        bench="ablation_support",
        key=("support",),
        fields=[
            FieldSpec("support", kind="str", compare=False),
            FieldSpec("energy_ha", direction="both", rel_tol=0.0,
                      abs_tol=1e-5),
            FieldSpec("iterations", kind="int", direction="lower",
                      rel_tol=0.0, abs_tol=2.0),
        ],
    ),
    # -- QMD hot path: workspace + orbital warm starts ------------------------
    "qmd_warm_start": _metric_schema(
        "qmd_warm_start",
        {
            # deterministic solves: iteration counts gate on increase
            "cold_eig_iters": {"direction": "lower", "rel_tol": 0.1},
            "warm_eig_iters": {"direction": "lower", "rel_tol": 0.1},
            "cold_scf_iters": {"direction": "lower", "rel_tol": 0.0,
                               "abs_tol": 2.0},
            "warm_scf_iters": {"direction": "lower", "rel_tol": 0.0,
                               "abs_tol": 2.0},
            # the headline claim: the warm start must keep paying off
            "eig_reduction_pct": {"direction": "higher", "rel_tol": 0.0,
                                  "abs_tol": 5.0},
            "warm_domains_per_step": _EXACT,
            # warm and cold trajectories solve the same physics
            "max_energy_dev_ha": {"direction": "lower", "rel_tol": 0.25,
                                  "abs_tol": 1e-6},
            "t_cold_s": _TIMING,
            "t_warm_s": _TIMING,
        },
    ),
    "scf_extrapolation": _metric_schema(
        "scf_extrapolation",
        {
            # deterministic solves: iteration counts gate on increase
            "warm_eig_iters": {"direction": "lower", "rel_tol": 0.1},
            "aspc_eig_iters": {"direction": "lower", "rel_tol": 0.1},
            "warm_scf_passes": {"direction": "lower", "rel_tol": 0.0,
                                "abs_tol": 2.0},
            "aspc_scf_passes": {"direction": "lower", "rel_tol": 0.0,
                                "abs_tol": 2.0},
            # the headline claim: ASPC must keep beating the warm start
            "further_reduction_pct": {"direction": "higher", "rel_tol": 0.0,
                                      "abs_tol": 5.0},
            # both arms solve the same physics, and every domain path
            # reproduces the serial ASPC arm
            "max_energy_dev_ha": {"direction": "lower", "rel_tol": 0.25,
                                  "abs_tol": 1e-6},
            "parity_threaded_dev_ha": {"direction": "lower", "rel_tol": 0.0,
                                       "abs_tol": 1e-10},
            "parity_batched_dev_ha": {"direction": "lower", "rel_tol": 0.0,
                                      "abs_tol": 1e-10},
            "parity_eig_iters_dev": _EXACT,
            # predictor quality: gauge-invariant ψ residual on the last step
            "predictor_residual": {"direction": "lower", "rel_tol": 0.5,
                                   "abs_tol": 1e-4},
            "t_warm_s": _TIMING,
            "t_aspc_s": _TIMING,
        },
    ),
    "domain_batching": _metric_schema(
        "domain_batching",
        {
            # the headline claim: shape-class batching must keep winning
            # wall-clock; host noise gets a band, regressions below 1x gate
            "speedup": {"direction": "higher", "rel_tol": 0.0,
                        "abs_tol": 0.15},
            # both arms solve the same physics ...
            "max_energy_dev_ha": {"direction": "lower", "rel_tol": 0.0,
                                  "abs_tol": 1e-10},
            # ... in the same (deterministic, seeded) iteration counts
            "perdomain_eig_iters": {"direction": "lower", "rel_tol": 0.1},
            "batched_eig_iters": {"direction": "lower", "rel_tol": 0.1},
            "n_shape_classes": _EXACT,
            # deterministic span-attributed FLOPs (perfmodel estimate)
            "batched_solve_gflop": _MODEL,
            # warm passes must never allocate in the scratch pool
            "warm_pool_allocations": _EXACT,
            "t_perdomain_s": _TIMING,
            "t_batched_s": _TIMING,
        },
    ),
    # -- communication observatory --------------------------------------------
    "comm_observatory": RecordSchema(
        bench="comm_observatory",
        key=("cores",),
        fields=[
            FieldSpec("cores", kind="int", compare=False),
            # measured (event-log) counterpart of the Fig. 5 efficiency:
            # deterministic replay, gate on decrease like the model curve
            FieldSpec("efficiency_measured", direction="higher",
                      rel_tol=0.005, abs_tol=1e-3),
            FieldSpec("wait_fraction", direction="both", rel_tol=0.01,
                      abs_tol=1e-6),
            FieldSpec("critical_comm_fraction", direction="both",
                      rel_tol=0.01, abs_tol=1e-6),
            # profiler totals must equal the virtual clocks (identity)
            FieldSpec("reconcile_rel_err", direction="lower", rel_tol=0.0,
                      abs_tol=1e-9),
        ],
    ),
    "comm_observatory_overhead": _metric_schema(
        "comm_observatory_overhead",
        {
            # the zero-overhead contract, pinned as a count: an unprofiled
            # charge loop must execute no observability code at all
            "observability_calls_unprofiled": _EXACT,
            "events_charged": _EXACT,
            # host wall-clock: ledgered for the record, never gated
            "t_unprofiled_s": _TIMING,
            "t_profiled_s": _TIMING,
            "overhead_pct": _TIMING,
        },
    ),
    "sanitize_overhead": _metric_schema(
        "sanitize_overhead",
        {
            # the facade contract, pinned as a count: a sanitizer-disabled
            # LDC/SCF run must execute no repro.sanitize code at all
            "sanitizer_calls_disabled": _EXACT,
            # ...while the enabled run really does check (1.0 = active)
            "enabled_path_active": _EXACT,
            # checkpoints only ever get added; a drop means one was lost
            "numerics_checks": {"direction": "higher", "rel_tol": 0.0,
                                "abs_tol": 0.0},
            # host wall-clock: ledgered for the record, never gated
            "t_disabled_s": _TIMING,
            "t_enabled_s": _TIMING,
            "overhead_pct": _TIMING,
        },
    ),
    "runlog_overhead": _metric_schema(
        "runlog_overhead",
        {
            # the facade contract, pinned as a count: a recorder-less QMD
            # run must execute no runlog/flightrec/profiler code at all
            "runlog_calls_disabled": _EXACT,
            # ...while the enabled run really ledgers (1.0 = manifest
            # written, hashes verified, invocation recorded)
            "enabled_ledger_ok": _EXACT,
            "manifest_artifacts": {"direction": "higher", "rel_tol": 0.0,
                                   "abs_tol": 0.0},
            "flight_events_enabled": {"direction": "higher",
                                      "rel_tol": 0.25},
            # host wall-clock: ledgered for the record, never gated
            "t_disabled_s": _TIMING,
            "t_enabled_s": _TIMING,
            "overhead_pct": _TIMING,
        },
    ),
    # -- self-lint throughput -------------------------------------------------
    "analysis": RecordSchema(
        bench="analysis",
        key=(),
        fields=[
            # the package grows; sizes are ledgered, not gated
            FieldSpec("files", kind="int", compare=False),
            FieldSpec("lines", kind="int", compare=False),
            FieldSpec("rules", kind="int", direction="higher", rel_tol=0.0,
                      abs_tol=0.0),
            FieldSpec("seconds", **_TIMING),
            FieldSpec("ms_per_file", **_TIMING),
            FieldSpec("kloc_per_s", **_TIMING),
            FieldSpec("unsuppressed_findings", kind="int",
                      direction="lower", rel_tol=0.0, abs_tol=0.0),
        ],
    ),
}
