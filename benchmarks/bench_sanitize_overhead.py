"""BENCH-SANITIZE-OVERHEAD — the runtime sanitizers' zero-overhead contract.

The sanitize facade promises what the Instrumentation facade promises
(DESIGN.md §13): disabled means *zero* sanitizer code on the hot path —
every checkpoint sits behind an ``is not None`` guard on a local.  This
bench pins the contract the same way ``comm_observatory_overhead`` does:

* ``sanitizer_calls_disabled`` — Python calls entering ``repro/sanitize``
  modules during a sanitizer-disabled LDC + SCF solve, counted with
  ``sys.setprofile`` and gated **exactly at zero**;
* ``enabled_path_active`` — the same counter's sign for an enabled run
  (1.0), proving the probe would catch a regression;
* ``numerics_checks`` — checkpoints crossed by the enabled run (gated
  against decrease: losing a checkpoint is a coverage regression);
* disabled/enabled wall-clock and the overhead percentage, ledgered for
  the record but never gated (host-dependent).
"""

import os
import sys
import time

from _harness import fmt_row, report
from _schemas import SCHEMAS

import repro.core.ldc as ldc_mod
import repro.dft.scf as scf_mod
from repro.core.ldc import LDCOptions, run_ldc
from repro.dft.scf import SCFOptions, run_scf
from repro.sanitize import NumericsSanitizer, RaceSanitizer, Sanitizers
from repro.systems import dimer

LDC_OPTS = LDCOptions(
    ecut=4.0, tol=1e-4, max_iter=4, domains=(2, 1, 1), ldc_workers=2
)
SCF_OPTS = SCFOptions(ecut=4.0, tol=1e-4, max_iter=4)

_NEEDLE = os.sep + "sanitize" + os.sep


def solve_both(sanitize=None):
    cfg = dimer("H", "H", 1.5, 12.0)
    run_ldc(cfg, LDC_OPTS, sanitize=sanitize)
    run_scf(cfg, SCF_OPTS, sanitize=sanitize)


def count_sanitize_calls(sanitize=None):
    counts = {"sanitize": 0}

    def hook(frame, event, arg):
        if event == "call" and _NEEDLE in frame.f_code.co_filename:
            counts["sanitize"] += 1

    sys.setprofile(hook)
    try:
        solve_both(sanitize)
    finally:
        sys.setprofile(None)
    return counts["sanitize"]


def test_sanitize_overhead():
    # neutralise any REPRO_SANITIZE the environment exported — the drivers
    # bound ENV_SANITIZERS by name at import, so patch their modules
    saved = ldc_mod.ENV_SANITIZERS, scf_mod.ENV_SANITIZERS
    ldc_mod.ENV_SANITIZERS = scf_mod.ENV_SANITIZERS = None
    try:
        calls_disabled = count_sanitize_calls()
        enabled = Sanitizers(
            race=RaceSanitizer(), numerics=NumericsSanitizer()
        )
        calls_enabled = count_sanitize_calls(enabled)

        # wall-clock without the profiling hook (ledger only)
        t0 = time.perf_counter()
        solve_both()
        t_disabled = time.perf_counter() - t0
        t0 = time.perf_counter()
        solve_both(
            Sanitizers(race=RaceSanitizer(), numerics=NumericsSanitizer())
        )
        t_enabled = time.perf_counter() - t0
    finally:
        ldc_mod.ENV_SANITIZERS, scf_mod.ENV_SANITIZERS = saved

    overhead_pct = (
        100.0 * (t_enabled / t_disabled - 1.0) if t_disabled > 0 else 0.0
    )
    lines = [
        fmt_row("calls(off)", "calls(on)", "checks", "t_off[s]",
                "t_on[s]", "ovh[%]"),
        fmt_row(calls_disabled, calls_enabled, enabled.numerics.checks,
                t_disabled, t_enabled, overhead_pct),
    ]
    records = [
        {"metric": "sanitizer_calls_disabled", "value": float(calls_disabled)},
        {"metric": "enabled_path_active",
         "value": 1.0 if calls_enabled > 0 else 0.0},
        {"metric": "numerics_checks", "value": float(enabled.numerics.checks)},
        {"metric": "t_disabled_s", "value": t_disabled},
        {"metric": "t_enabled_s", "value": t_enabled},
        {"metric": "overhead_pct", "value": overhead_pct},
    ]
    report(
        "sanitize_overhead",
        "runtime sanitizers — zero-overhead contract",
        lines, records=records, schema=SCHEMAS["sanitize_overhead"],
    )
    assert calls_disabled == 0
    assert calls_enabled > 0
    assert enabled.numerics.checks > 0
    assert enabled.race.guarded > 0  # the ldc_workers fan-out was guarded


def main():
    saved = ldc_mod.ENV_SANITIZERS, scf_mod.ENV_SANITIZERS
    ldc_mod.ENV_SANITIZERS = scf_mod.ENV_SANITIZERS = None
    try:
        off = count_sanitize_calls()
        on = count_sanitize_calls(Sanitizers.all())
    finally:
        ldc_mod.ENV_SANITIZERS, scf_mod.ENV_SANITIZERS = saved
    print(f"sanitize calls: disabled={off} enabled={on}")


if __name__ == "__main__":
    main()
