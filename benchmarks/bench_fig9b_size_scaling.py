"""EXP-F9B — Fig. 9(b): surface-normalized H₂ rate vs particle size.

Paper: Li₃₀Al₃₀, Li₁₃₅Al₁₃₅, Li₄₄₁Al₄₄₁ in water at 1,500 K; the rate per
surface atom is constant within error bars — the nanostructural design
scales to industrially relevant particle sizes.
"""

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.reactive.analysis import rate_with_error
from repro.reactive.kmc import KMCOptions, run_kmc
from repro.reactive.sites import site_census
from repro.systems import lial_nanoparticle

#: particle sizes (pairs); the paper's 441-pair particle included for scale
SIZES = [30, 135, 441]
REPLICAS = 4


def run_size_sweep():
    rows = []
    for n in SIZES:
        particle = lial_nanoparticle(n)
        census = site_census(particle)
        runs = [
            run_kmc(
                particle,
                KMCOptions(temperature=1500.0, max_time=4e-9, seed=s),
                census,
            )
            for s in range(REPLICAS)
        ]
        mean, err = rate_with_error(runs)
        rows.append((n, census, mean, err))
    return rows


def test_fig9b_size_scaling(benchmark):
    rows = benchmark.pedantic(run_size_sweep, rounds=1, iterations=1)
    lines = [fmt_row("pairs", "N_surf", "rate [1/s]", "rate/N_surf", "stderr/N_surf")]
    normalized = []
    records = []
    for n, census, mean, err in rows:
        norm = mean / census.n_surface
        normalized.append((norm, err / census.n_surface))
        lines.append(fmt_row(n, census.n_surface, mean, norm, err / census.n_surface))
        records.append(
            {"pairs": n, "n_surface": int(census.n_surface),
             "rate": float(mean), "rate_per_surface": float(norm),
             "stderr_per_surface": float(err / census.n_surface)}
        )
    values = np.array([v for v, _ in normalized])
    spread = values.max() / values.min()
    lines += [
        "",
        f"max/min of rate/N_surf over sizes: {spread:.2f} "
        "(paper: constant within error bars)",
    ]
    report("fig9b_size_scaling", "Fig. 9(b) — size-independence", lines,
           records=records, schema=SCHEMAS["fig9b_size_scaling"])

    # the figure's claim: normalized rate constant across sizes (within ~2x
    # here, since the smallest particle has large stochastic error bars)
    assert spread < 2.0
    # raw rate must grow with particle size
    raw = [mean for _, _, mean, _ in rows]
    assert raw[0] < raw[1] < raw[2]
