"""EXP-BATCH — domain-batched BLAS3 kernels vs the per-domain LDC path.

The paper's Sec. 3.4 converts band-by-band BLAS2 work into blocked BLAS3
kernels; ``repro.core.batched`` lifts the same transformation across the
LDC hierarchy, stacking same-shape domains into ``(n_domains, …)`` kernels
(batched FFT applies, one batched nonlocal GEMM, stacked subspace
``eigh``) routed through the ``repro.backend`` array-module shim.  This
bench replays the deterministic LiAl QMD trajectory of the warm-start
bench with a 4-domain decomposition, twice:

* **per-domain** — PR 4's path: each active domain solved on its own
  (``batch_domains=False``, pinned so the CI batched matrix leg cannot
  flip this arm);
* **batched** — the same trajectory with ``batch_domains=True``: one
  shape-class stack per SCF pass.

Gated claims: the batched arm wins wall-clock (speedup > 1), solves the
same physics (per-step energies match to ≤ 1e-10 Ha — in practice 1e-14),
runs the *identical* eigensolver iterations (the lockstep stack retires
each domain at its serial iteration), and performs **zero** scratch-pool
array allocations once warm — asserted both via the workspace allocation
counter and a tracemalloc trace of the pool's ``np.empty`` call sites.
Per-shape-class FLOPs come from the ``ldc.batched_solve`` span attribution
(``repro.observability.costattr``).  Wall times are ledgered only;
speedup gates on decrease with a noise band.
"""

import inspect
import linecache
import time
import tracemalloc

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions, LDCWorkspace, run_ldc
from repro.core import workspace as workspace_mod
from repro.observability import Instrumentation
from repro.observability.costattr import estimate_event_flops
from repro.systems.lialloy import lial_nanoparticle

_STEP_AMPLITUDE = 0.02
_N_STEPS = 3
_REPS = 2

_OPTS = dict(
    ecut=3.0, domains=(2, 2, 1), buffer=2.0, tol=1e-5, max_iter=40,
    kt=0.02, extra_bands=4,
)


def _trajectory() -> list:
    """A deterministic 3-frame Li₄Al₄ trajectory (seeded random walk)."""
    rng = np.random.default_rng(7)
    frames = []
    pos = None
    for _ in range(_N_STEPS):
        cfg = lial_nanoparticle(4, cell=[13.0, 13.0, 9.0])
        if pos is not None:
            cfg.positions = pos.copy()
        frames.append(cfg)
        pos = cfg.positions + _STEP_AMPLITUDE * rng.standard_normal(
            cfg.positions.shape
        )
    return frames


def _replay(frames, batched: bool):
    """Run the warm trajectory; returns per-step (eig_iters, energy), CPU
    seconds, the workspace, and the batched arm's solve spans."""
    opts = LDCOptions(**_OPTS, batch_domains=batched)
    ws = LDCWorkspace()
    rho = None
    rows = []
    spans = []
    t0 = time.process_time()
    for cfg in frames:
        ins = Instrumentation()
        r = run_ldc(
            cfg, opts, workspace=ws, rho0=rho, instrumentation=ins,
        )
        assert r.converged
        rho = r.density
        eig = ins.metrics.get("eigensolver.iterations", solver="all_band")
        rows.append((int(eig.value), r.energy))
        spans.extend(
            s for s in ins.tracer.spans() if s.name == "ldc.batched_solve"
        )
    return rows, time.process_time() - t0, ws, spans


def _pool_empty_linenos() -> list[int]:
    """Line numbers of the scratch pool's ``np.empty`` allocation sites."""
    src, start = inspect.getsourcelines(workspace_mod.DomainScratch.get)
    return [start + i for i, line in enumerate(src) if "np.empty" in line]


def _warm_pass_pool_allocations(frames, ws: LDCWorkspace) -> int:
    """tracemalloc blocks allocated by the pool during one warm re-solve."""
    opts = LDCOptions(**_OPTS, batch_domains=True)
    pool_lines = _pool_empty_linenos()
    wsfile = workspace_mod.__file__
    tracemalloc.start()
    try:
        run_ldc(frames[-1], opts, workspace=ws)
        snap = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    count = 0
    for stat in snap.statistics("lineno"):
        frame = stat.traceback[0]
        if frame.filename == wsfile and frame.lineno in pool_lines:
            count += stat.count
    # sanity: the call sites we filtered on actually exist in the source
    assert pool_lines and all(
        "np.empty" in linecache.getline(wsfile, n) for n in pool_lines
    )
    return count


def test_domain_batching_throughput(benchmark):
    frames = _trajectory()

    def replay_both():
        per_domain = min(
            (_replay(frames, batched=False) for _ in range(_REPS)),
            key=lambda r: r[1],
        )
        batch = min(
            (_replay(frames, batched=True) for _ in range(_REPS)),
            key=lambda r: r[1],
        )
        return per_domain, batch

    (pd_rows, t_pd, _, _), (b_rows, t_b, ws, spans) = benchmark.pedantic(
        replay_both, rounds=1, iterations=1
    )

    speedup = t_pd / t_b
    energy_dev = max(abs(p[1] - b[1]) for p, b in zip(pd_rows, b_rows))
    pd_eig = sum(r[0] for r in pd_rows)
    b_eig = sum(r[0] for r in b_rows)

    # per-shape-class FLOP attribution from the batched solve spans
    by_class: dict = {}
    for s in spans:
        key = (s.attrs["npw"], s.attrs["nband"], s.attrs["nproj"])
        flop = estimate_event_flops("ldc.batched_solve", s.attrs) or 0.0
        agg = by_class.setdefault(key, [0, 0.0])
        agg[0] += 1
        agg[1] += flop
    total_gflop = sum(f for _, f in by_class.values()) / 1e9

    # scratch reuse: once shapes are warm, re-solving must not grow the
    # pool (counter) nor allocate in the pool at all (tracemalloc)
    allocs_before = ws.scratch_allocations()
    pool_allocs = _warm_pass_pool_allocations(frames, ws)
    alloc_delta = ws.scratch_allocations() - allocs_before

    lines = [fmt_row("step", "pd eig", "batch eig", "energy dev",
                     widths=[4, 9, 9, 12])]
    for k, (pdr, br) in enumerate(zip(pd_rows, b_rows)):
        lines.append(fmt_row(k, pdr[0], br[0], abs(pdr[1] - br[1]),
                             widths=[4, 9, 9, 12]))
    lines += [
        "",
        f"wall (CPU): per-domain={t_pd:.2f}s batched={t_b:.2f}s "
        f"-> {speedup:.2f}x",
        f"shape classes: {len(by_class)}  attributed "
        f"{total_gflop:.2f} GFLOP over {len(spans)} batched solves",
        f"warm-pass pool allocations: {pool_allocs} "
        f"(counter delta {alloc_delta})",
    ]
    records = [
        {"metric": "speedup", "value": float(speedup)},
        {"metric": "max_energy_dev_ha", "value": float(energy_dev)},
        {"metric": "perdomain_eig_iters", "value": float(pd_eig)},
        {"metric": "batched_eig_iters", "value": float(b_eig)},
        {"metric": "n_shape_classes", "value": float(len(by_class))},
        {"metric": "batched_solve_gflop", "value": float(total_gflop)},
        {"metric": "warm_pool_allocations", "value": float(pool_allocs)},
        {"metric": "t_perdomain_s", "value": float(t_pd)},
        {"metric": "t_batched_s", "value": float(t_b)},
    ]
    report(
        "domain_batching",
        "Domain-batched BLAS3 kernels vs per-domain LDC solves (LiAl)",
        lines, records=records, schema=SCHEMAS["domain_batching"],
    )

    # the tentpole acceptance claims, asserted at bench time as well as
    # gated against the committed baseline by repro.observability.regress
    assert speedup > 1.0, (t_pd, t_b)
    assert energy_dev <= 1e-10
    assert b_eig == pd_eig, "lockstep stack must match serial iterations"
    assert alloc_delta == 0 and pool_allocs == 0
