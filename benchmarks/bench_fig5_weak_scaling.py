"""EXP-F5 — Fig. 5: weak scaling of LDC-DFT on the virtual Blue Gene/Q.

Paper: wall-clock per QMD step nearly flat for 64·P-atom SiC on P = 16 …
786,432 cores; parallel efficiency 0.984 at the full machine.
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.perfmodel.scaling import WeakScalingModel

CORE_COUNTS = [16, 64, 256, 1024, 4096, 16_384, 65_536, 262_144, 786_432]


def run_weak_scaling():
    model = WeakScalingModel()
    return model.curve(CORE_COUNTS)


def test_fig5_weak_scaling(benchmark):
    points = benchmark(run_weak_scaling)
    lines = [fmt_row("cores", "atoms", "t/step[s]", "efficiency")]
    records = []
    for p in points:
        lines.append(fmt_row(p.cores, p.natoms, p.wall_clock, p.efficiency))
        records.append(
            {"cores": p.cores, "natoms": p.natoms,
             "wall_clock_s": p.wall_clock, "efficiency": p.efficiency}
        )
    full = points[-1]
    lines.append("")
    lines.append(f"paper:    efficiency 0.984 @ 786,432 cores, 50,331,648 atoms")
    lines.append(f"measured: efficiency {full.efficiency:.3f} @ {full.cores:,} cores, "
                 f"{full.natoms:,} atoms")
    report("fig5_weak_scaling", "Fig. 5 — weak scaling", lines,
           records=records, schema=SCHEMAS["fig5_weak_scaling"])
    assert abs(full.efficiency - 0.984) < 0.01
    assert full.natoms == 50_331_648
    # near-flat wall-clock is the figure's visual claim
    times = [p.wall_clock for p in points]
    assert max(times) / min(times) < 1.05
