"""BENCH-OBS — communication & scaling observatory.

Two ledgers for the comm-profiling subsystem:

* ``comm_observatory`` — the Fig. 5 weak-scaling ladder replayed through a
  16-lane virtual machine with a deterministic per-rank skew, profiled by
  :class:`CommProfiler`.  Pins the *measured* (event-log) parallel
  efficiency, wait fraction, and critical-path communication fraction per
  ladder point, plus the accounting identity (``reconcile_rel_err``) that
  makes the ``--comm`` report agree with ``CostTracker.elapsed()``.
* ``comm_observatory_overhead`` — the zero-overhead contract: an
  unprofiled charge loop must execute *no* observability code (counted via
  ``sys.setprofile`` and pinned exactly at zero), with the host wall-clock
  of profiled vs unprofiled loops ledgered for the record.
"""

import sys
import time

import numpy as np

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.observability.comms import CommProfiler
from repro.observability.critpath import measured_efficiency
from repro.parallel.trace import CostTracker
from repro.perfmodel.scaling import WeakScalingModel

CORE_COUNTS = [16, 64, 256, 1024, 4096, 16_384, 65_536, 262_144, 786_432]
NRANKS = 16       # VM lanes replaying each ladder point
STEPS = 3         # QMD steps per replay
SKEW = 0.05       # deterministic per-rank imbalance on the domain solves

HALO_BYTES = 64 * 1024.0
TREE_BYTES = 8 * 1024.0


def replay_point(breakdown):
    """Replay one ladder point's modeled phase breakdown on the VM.

    Domain solves get a fixed ±2.5% linear skew across ranks (so waits are
    non-zero but fully deterministic); halo, tree, and the software
    overhead term are synchronizing all-rank charges — only the domain
    solve counts as *useful* compute, which is what lets the measured
    efficiency decay along the ladder exactly like the Fig. 5 model.
    """
    prof = CommProfiler(NRANKS)
    tracker = CostTracker(NRANKS, profiler=prof)
    factors = 1.0 + SKEW * (np.arange(NRANKS) / (NRANKS - 1) - 0.5)
    for _ in range(STEPS):
        with tracker.phase("domain"):
            for rank in range(NRANKS):
                tracker.charge_compute(
                    [rank], breakdown["domain"] * float(factors[rank]),
                    label="ldc solve",
                )
        with tracker.phase("halo"):
            tracker.charge_collective(
                None, breakdown["halo"], nbytes=HALO_BYTES, label="halo",
            )
        with tracker.phase("tree"):
            tracker.charge_collective(
                None, breakdown["tree"], nbytes=TREE_BYTES, label="gather",
            )
        with tracker.phase("software"):
            tracker.charge_collective(
                None, breakdown["software"], label="overhead",
            )
    return prof, tracker


def run_ladder():
    model = WeakScalingModel()
    out = []
    for cores in CORE_COUNTS:
        point = model.point(cores)
        prof, tracker = replay_point(point.breakdown)
        out.append((cores, point, prof, tracker))
    return out


def test_comm_observatory_ladder(benchmark):
    ladder = benchmark(run_ladder)
    lines = [fmt_row("cores", "eff(model)", "eff(meas)", "wait_frac",
                     "comm_frac", "reconcile")]
    records = []
    for cores, point, prof, tracker in ladder:
        eff = measured_efficiency(tracker, profiler=prof)
        rec = {
            "cores": cores,
            "efficiency_measured": float(eff["efficiency"]),
            "wait_fraction": float(prof.wait_fraction()),
            "critical_comm_fraction": float(eff["critical_comm_fraction"]),
            "reconcile_rel_err": float(prof.reconcile(tracker)),
        }
        records.append(rec)
        lines.append(fmt_row(
            cores, point.efficiency, rec["efficiency_measured"],
            rec["wait_fraction"], rec["critical_comm_fraction"],
            rec["reconcile_rel_err"],
        ))
        # the accounting identity: compute + wait + transfer == clocks
        assert rec["reconcile_rel_err"] < 1e-12
        # the skew makes the last lane the laggard of every domain phase
        assert prof.by_phase()["domain"]["laggard"] == NRANKS - 1
        assert 0.0 < rec["efficiency_measured"] <= 1.0
    # communication (and the waits it induces) grows with the tree fan-in,
    # so the measured efficiency decays monotonically along the ladder
    effs = [r["efficiency_measured"] for r in records]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    report(
        "comm_observatory",
        "communication observatory — measured weak-scaling ladder",
        lines, records=records, schema=SCHEMAS["comm_observatory"],
    )


def _charge_loop(tracker, n):
    for i in range(n):
        tracker.charge_compute([i % NRANKS], 1e-3, label="work")


def test_comm_observatory_overhead():
    n = 2000

    # count observability frames entered by an *unprofiled* loop
    counts = {"observability": 0}

    def hook(frame, event, arg):
        if event == "call" and "observability" in frame.f_code.co_filename:
            counts["observability"] += 1

    bare = CostTracker(NRANKS)
    sys.setprofile(hook)
    try:
        _charge_loop(bare, n)
    finally:
        sys.setprofile(None)

    # time both loops without the hook (host wall-clock, ledger only)
    t0 = time.perf_counter()
    _charge_loop(CostTracker(NRANKS), n)
    t_unprofiled = time.perf_counter() - t0

    profiled = CostTracker(NRANKS, profiler=CommProfiler(NRANKS))
    t0 = time.perf_counter()
    _charge_loop(profiled, n)
    t_profiled = time.perf_counter() - t0

    overhead_pct = 100.0 * (t_profiled / t_unprofiled - 1.0) \
        if t_unprofiled > 0 else 0.0
    lines = [
        fmt_row("events", "obs calls", "t_bare[s]", "t_prof[s]", "ovh[%]"),
        fmt_row(n, counts["observability"], t_unprofiled, t_profiled,
                overhead_pct),
    ]
    records = [
        {"metric": "observability_calls_unprofiled",
         "value": float(counts["observability"])},
        {"metric": "events_charged", "value": float(n)},
        {"metric": "t_unprofiled_s", "value": t_unprofiled},
        {"metric": "t_profiled_s", "value": t_profiled},
        {"metric": "overhead_pct", "value": overhead_pct},
    ]
    report(
        "comm_observatory_overhead",
        "communication observatory — zero-overhead contract",
        lines, records=records,
        schema=SCHEMAS["comm_observatory_overhead"],
    )
    assert counts["observability"] == 0
    # the profiled tracker really did profile: every charge was recorded
    assert profiled.profiler.calls_total == n
    assert profiled.profiler.bytes_total == 0.0  # compute moves no bytes
