"""EXP-ABL-GSLF — ablation of the GSLF solver choices (Sec. 3.2).

* global Poisson: FFT vs real-space multigrid (accuracy + cycles);
* multigrid warm-starting (the QMD O(1)-cycles trick);
* eigensolver: dense-direct vs all-band (BLAS3) vs band-by-band (BLAS2).
"""

import time

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.dft.basis import PlaneWaveBasis
from repro.dft.eigensolver import solve_all_band, solve_band_by_band, solve_direct
from repro.dft.grid import RealSpaceGrid
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.hartree import hartree_potential
from repro.dft.pseudopotential import NonlocalProjectors, local_potential
from repro.multigrid.poisson import MultigridPoisson
from repro.systems import dimer


def test_poisson_solvers(benchmark):
    grid = RealSpaceGrid([12.0, 12.0, 12.0], [32, 32, 32])
    r = grid.min_image_distance(grid.lengths / 2)
    rho = np.exp(-0.5 * (r / 1.2) ** 2)

    t0 = time.perf_counter()
    v_fft = hartree_potential(grid, rho)
    t_fft = time.perf_counter() - t0

    mg = MultigridPoisson(grid)
    t0 = time.perf_counter()
    v_mg = benchmark(lambda: mg.solve(rho, tol=1e-8))
    t_mg = time.perf_counter() - t0
    cold_cycles = mg.last_stats.cycles
    mg.solve(rho * 1.02, v0=v_mg, tol=1e-8)
    warm_cycles = mg.last_stats.cycles

    diff = np.abs((v_mg - v_mg.mean()) - (v_fft - v_fft.mean())).max()
    scale = np.abs(v_fft).max()
    lines = [
        fmt_row("solver", "time [s]", "note", widths=[12, 10, 34]),
        fmt_row("FFT", t_fft, "spectral, exact on grid", widths=[12, 10, 34]),
        fmt_row("multigrid", t_mg, f"{cold_cycles} V-cycles cold", widths=[12, 10, 34]),
        "",
        f"FD-vs-spectral max deviation: {diff:.2e} ({100 * diff / scale:.2f}% of max V)",
        f"warm-started cycles: {warm_cycles} (cold: {cold_cycles})",
    ]
    records = [
        {"metric": "t_fft_s", "value": float(t_fft)},
        {"metric": "t_mg_s", "value": float(t_mg)},
        {"metric": "fd_vs_spectral_max_dev", "value": float(diff)},
        {"metric": "cold_cycles", "value": float(cold_cycles)},
        {"metric": "warm_cycles", "value": float(warm_cycles)},
    ]
    report("ablation_poisson", "Ablation — GSLF Poisson solvers", lines,
           records=records, schema=SCHEMAS["ablation_poisson"])
    assert diff < 0.05 * scale
    assert warm_cycles <= cold_cycles


def test_eigensolver_ablation(benchmark):
    grid = RealSpaceGrid([10.0, 10.0, 10.0], [20, 20, 20])
    cfg = dimer("Si", "C", 3.3, 10.0)
    basis = PlaneWaveBasis(grid, ecut=6.0)
    ham = Hamiltonian(
        basis, local_potential(grid, cfg), NonlocalProjectors(basis, cfg)
    )
    nband = 6
    psi0 = basis.random_orbitals(nband, seed=11)

    t0 = time.perf_counter()
    ref = solve_direct(ham, nband)
    t_direct = time.perf_counter() - t0

    res_all = benchmark(
        lambda: solve_all_band(ham, psi0.copy(), max_iter=200, tol=1e-8)
    )
    t0 = time.perf_counter()
    solve_all_band(ham, psi0.copy(), max_iter=200, tol=1e-8)
    t_all = time.perf_counter() - t0

    t0 = time.perf_counter()
    res_bbb = solve_band_by_band(ham, psi0.copy(), tol=1e-8, outer_sweeps=30)
    t_bbb = time.perf_counter() - t0

    lines = [
        fmt_row("solver", "time [s]", "max |eig err|", widths=[22, 10, 14]),
        fmt_row("dense direct", t_direct, 0.0, widths=[22, 10, 14]),
        fmt_row("all-band CG (BLAS3)", t_all,
                float(np.abs(res_all.eigenvalues - ref.eigenvalues).max()),
                widths=[22, 10, 14]),
        fmt_row("band-by-band (BLAS2)", t_bbb,
                float(np.abs(res_bbb.eigenvalues - ref.eigenvalues).max()),
                widths=[22, 10, 14]),
    ]
    err_all = float(np.abs(res_all.eigenvalues - ref.eigenvalues).max())
    err_bbb = float(np.abs(res_bbb.eigenvalues - ref.eigenvalues).max())
    records = [
        {"metric": "t_direct_s", "value": float(t_direct)},
        {"metric": "t_all_band_s", "value": float(t_all)},
        {"metric": "t_band_by_band_s", "value": float(t_bbb)},
        {"metric": "err_all_band", "value": err_all},
        {"metric": "err_band_by_band", "value": err_bbb},
    ]
    report("ablation_eigensolvers", "Ablation — eigensolvers", lines,
           records=records, schema=SCHEMAS["ablation_eigensolvers"])
    assert np.abs(res_all.eigenvalues - ref.eigenvalues).max() < 1e-5
    assert np.abs(res_bbb.eigenvalues - ref.eigenvalues).max() < 1e-4
