"""EXP-F7 — Fig. 7: energy convergence vs the buffer thickness b.

Paper: on 512-atom amorphous CdSe (l = 11.416 a.u.) the potential energy
converges with b; LDC-DFT converges faster than classic DC-DFT (b for the
5·10⁻³ a.u. tolerance drops 4.73 → 3.57 a.u.).

Reproduction scale: a 16-atom amorphous CdSe system (ecut 3 Ha toy basis).
Both the total-energy error and the density error ∫|Δρ|/N_e against the
O(N³) reference are reported; the density error shows the clean exponential
decay (quantum nearsightedness, Eq. 1) while the energy error reaches a
per-domain basis-incommensurability noise floor (documented in
EXPERIMENTS.md §EXP-F7).
"""

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions, run_ldc
from repro.core.complexity import fit_decay_constant

BUFFERS = [0.6, 1.2, 1.8, 2.4]


def run_sweep(cfg, mode):
    rows = []
    for b in BUFFERS:
        r = run_ldc(
            cfg,
            LDCOptions(
                ecut=3.0, domains=(2, 1, 1), buffer=b, mode=mode,
                tol=1e-6, max_iter=40, kt=0.02, extra_bands=8,
            ),
        )
        rows.append(r)
    return rows


def test_fig7_buffer_convergence(benchmark, cdse16_amorphous, cdse16_reference):
    cfg = cdse16_amorphous
    ref = cdse16_reference

    def sweep_both():
        return {mode: run_sweep(cfg, mode) for mode in ("dc", "ldc")}

    results = benchmark.pedantic(sweep_both, rounds=1, iterations=1)

    lines = [fmt_row("mode", "b[Bohr]", "E[Ha]", "|dE|/atom", "rho_err")]
    errors = {}
    records = []
    for mode in ("dc", "ldc"):
        errs, rho_errs = [], []
        for b, r in zip(BUFFERS, results[mode]):
            e_err = abs(r.energy - ref.energy) / len(cfg)
            rho_err = (
                r.grid.integrate(np.abs(r.density - ref.density))
                / cfg.n_electrons()
                if r.grid.shape == ref.grid.shape
                else np.nan
            )
            errs.append(e_err)
            rho_errs.append(rho_err)
            lines.append(fmt_row(mode, b, r.energy, e_err, rho_err))
            records.append(
                {"mode": mode, "buffer": b, "energy_ha": float(r.energy),
                 "abs_de_per_atom": float(e_err), "rho_err": float(rho_err)}
            )
        errors[mode] = (np.array(errs), np.array(rho_errs))

    # Exponential decay of the density error (Eq. 1's λ)
    for mode in ("dc", "ldc"):
        _, rho_errs = errors[mode]
        if np.all(np.isfinite(rho_errs)):
            lam, amp = fit_decay_constant(np.array(BUFFERS), rho_errs)
            lines.append(f"{mode}: density error ~ {amp:.3f} exp(-b/{lam:.2f} Bohr)")

    lines.append("")
    lines.append("paper: energy converges within 1e-3 a.u./atom above b = 4 (their")
    lines.append("       basis); here the same trend appears at toy cutoffs, with the")
    lines.append("       density error decaying exponentially per Eq. 1")
    report("fig7_buffer_convergence", "Fig. 7 — buffer convergence", lines,
           records=records, schema=SCHEMAS["fig7_buffer_convergence"])

    # Figure's claims at reproduction scale:
    for mode in ("dc", "ldc"):
        e_errs, rho_errs = errors[mode]
        assert e_errs[-1] < e_errs[0]          # thicker buffer is more accurate
        assert rho_errs[-1] < 0.5 * rho_errs[0]  # density error decays strongly
        assert e_errs[-1] < 5e-3                 # meets the paper's tolerance band
