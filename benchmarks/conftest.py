"""Benchmark fixtures shared across the per-figure/table benches."""

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))


@pytest.fixture(scope="session")
def cdse16_amorphous():
    """The amorphous CdSe workload of Fig. 7 (downscaled to 16 atoms)."""
    from repro.systems import amorphous_cdse

    return amorphous_cdse((2, 1, 1), displacement=0.3, seed=3)


@pytest.fixture(scope="session")
def cdse16_reference(cdse16_amorphous):
    """Session-cached O(N³) reference for the LDC physics benches."""
    from repro.dft.scf import SCFOptions, run_scf

    return run_scf(
        cdse16_amorphous,
        SCFOptions(ecut=3.0, tol=1e-7, extra_bands=8, kt=0.02, eig_tol=1e-8),
    )
