"""EXP-PORT — Sec. 5.4: performance portability to the Xeon E5-2665 node.

Paper: 217.6 GFLOP/s = 55% of the (turbo) peak on one dual-socket node for
a 64-atom SiC job split into 8 domains.

The bench evaluates the machine-model prediction *and* measures the real
double-precision GEMM throughput of this host's BLAS as the modern analogue
of the portability experiment (the LDC kernels are GEMM/FFT-bound).
"""

import time

import numpy as np
from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.parallel.machine import XEON_E5_2665
from repro.perfmodel.threading import xeon_portability_estimate


def measure_host_gemm(n: int = 1024, repeats: int = 5) -> float:
    """Measured GEMM GFLOP/s on the present host."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    a @ b  # warm-up
    t0 = time.perf_counter()
    for _ in range(repeats):
        a @ b
    dt = time.perf_counter() - t0
    return 2.0 * n**3 * repeats / dt / 1e9


def test_portability(benchmark):
    host_gflops = benchmark(measure_host_gemm)
    row = xeon_portability_estimate(XEON_E5_2665)
    lines = [
        fmt_row("quantity", "value", widths=[46, 14]),
        fmt_row("paper: dual Xeon E5-2665 measured", "217.6 GF/s (55%)",
                widths=[46, 14]),
        fmt_row("model: dual Xeon E5-2665 estimate",
                f"{row.gflops:.1f} GF/s ({row.percent_peak:.0f}%)", widths=[46, 14]),
        fmt_row("this host: measured DGEMM", f"{host_gflops:.1f} GF/s",
                widths=[46, 14]),
    ]
    records = [
        {"metric": "model_gflops", "value": float(row.gflops)},
        {"metric": "model_percent_peak", "value": float(row.percent_peak)},
        {"metric": "host_dgemm_gflops", "value": float(host_gflops)},
    ]
    report("sec54_portability", "Sec. 5.4 — performance portability", lines,
           records=records, schema=SCHEMAS["sec54_portability"])

    # the model must land near the paper's 55%-of-peak measurement
    assert abs(row.percent_peak - 55.0) < 6.0
    assert abs(row.gflops - 217.6) / 217.6 < 0.12
    assert host_gflops > 1.0  # any real BLAS beats 1 GF/s
