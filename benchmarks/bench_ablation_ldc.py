"""EXP-ABL-LDC — ablations of the LDC design choices.

* the boundary potential ξ (Eq. 2) and its region/damping;
* Pulay vs linear density mixing;
* sharp vs smooth partition of unity.

The ξ sweep documents an honest finding of this reproduction: with the
artifact-free restricted global potential (``vion="global"``), the domain
error is wave-function confinement, which a local boundary *potential*
cannot remove — DC and LDC perform at parity here (EXPERIMENTS.md §EXP-F7).
"""

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions, run_ldc
from repro.systems import dimer


def test_xi_sweep(benchmark, cdse16_amorphous, cdse16_reference):
    cfg = cdse16_amorphous
    ref = cdse16_reference

    def sweep():
        out = {}
        base = dict(
            ecut=3.0, domains=(2, 1, 1), buffer=1.2, tol=1e-6,
            max_iter=40, kt=0.02, extra_bands=8,
        )
        out["dc"] = run_ldc(cfg, LDCOptions(mode="dc", **base))
        for xi in (0.333, 0.1):
            out[f"ldc xi={xi}"] = run_ldc(
                cfg, LDCOptions(mode="ldc", xi=xi, **base)
            )
        out["ldc full-region"] = run_ldc(
            cfg, LDCOptions(mode="ldc", xi=0.333, vbc_region="full", **base)
        )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [fmt_row("variant", "|dE|/atom", "iters", widths=[20, 12, 6])]
    records = []
    for name, r in results.items():
        err = abs(r.energy - ref.energy) / len(cfg)
        lines.append(fmt_row(name, err, r.iterations, widths=[20, 12, 6]))
        records.append(
            {"variant": name, "abs_de_per_atom": float(err),
             "iterations": int(r.iterations), "converged": int(r.converged)}
        )
    lines.append("")
    lines.append("finding: DC ≈ LDC with the artifact-free global potential;")
    lines.append("the paper's LDC gain targets domain-local potential errors")
    report("ablation_xi", "Ablation — boundary potential ξ", lines,
           records=records, schema=SCHEMAS["ablation_xi"])

    for r in results.values():
        assert r.converged
    errs = [abs(r.energy - ref.energy) / len(cfg) for r in results.values()]
    # every variant sits within the paper's Fig.-7 tolerance band at this
    # buffer; the ordering between them is inside the basis-noise floor
    assert max(errs) < 5e-3


def test_mixer_ablation(benchmark):
    h2 = dimer("H", "H", 1.5, 12.0)

    def run_both():
        base = dict(ecut=5.0, domains=(2, 1, 1), buffer=2.0, tol=1e-6, max_iter=60)
        r_p = run_ldc(h2, LDCOptions(mixer="pulay", **base))
        r_l = run_ldc(h2, LDCOptions(mixer="linear", mix_alpha=0.3, **base))
        return r_p, r_l

    r_p, r_l = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        fmt_row("mixer", "iters", "energy", widths=[8, 6, 14]),
        fmt_row("pulay", r_p.iterations, r_p.energy, widths=[8, 6, 14]),
        fmt_row("linear", r_l.iterations, r_l.energy, widths=[8, 6, 14]),
    ]
    records = [
        {"mixer": "pulay", "iterations": int(r_p.iterations),
         "energy_ha": float(r_p.energy)},
        {"mixer": "linear", "iterations": int(r_l.iterations),
         "energy_ha": float(r_l.energy)},
    ]
    report("ablation_mixers", "Ablation — density mixing", lines,
           records=records, schema=SCHEMAS["ablation_mixers"])
    assert r_p.converged and r_l.converged
    assert r_p.iterations <= r_l.iterations
    assert abs(r_p.energy - r_l.energy) < 1e-4


def test_support_ablation(benchmark):
    h2 = dimer("H", "H", 1.5, 12.0)

    def run_both():
        base = dict(ecut=5.0, domains=(2, 1, 1), buffer=2.0, tol=1e-5)
        return (
            run_ldc(h2, LDCOptions(support="sharp", **base)),
            run_ldc(h2, LDCOptions(support="smooth", **base)),
        )

    r_sharp, r_smooth = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        fmt_row("support", "energy", "iters", widths=[8, 14, 6]),
        fmt_row("sharp", r_sharp.energy, r_sharp.iterations, widths=[8, 14, 6]),
        fmt_row("smooth", r_smooth.energy, r_smooth.iterations, widths=[8, 14, 6]),
    ]
    records = [
        {"support": "sharp", "energy_ha": float(r_sharp.energy),
         "iterations": int(r_sharp.iterations)},
        {"support": "smooth", "energy_ha": float(r_smooth.energy),
         "iterations": int(r_smooth.iterations)},
    ]
    report("ablation_support", "Ablation — partition of unity", lines,
           records=records, schema=SCHEMAS["ablation_support"])
    assert abs(r_sharp.energy - r_smooth.energy) < 5e-3
