"""BENCH-RUNLOG-OVERHEAD — the run ledger's zero-overhead contract.

The runlog subsystem rides the Instrumentation facade and inherits its
promise (DESIGN.md §15): no recorder means *zero* ledger code on the hot
path — every recorder/flight-recorder/profiler touch point sits behind an
``is not None`` guard.  This bench pins the contract the way
``sanitize_overhead`` does:

* ``runlog_calls_disabled`` — Python calls entering the runlog, flight
  recorder, or profiler modules during a recorder-less (but otherwise
  fully instrumented) QMD run, counted with ``sys.setprofile`` and gated
  **exactly at zero**;
* ``enabled_ledger_ok`` — 1.0 when the recorder-enabled twin of the same
  run produced a schema-valid manifest whose content hashes verify and
  whose invocation log names ``qmd.run`` (proving the probe measures a
  live ledger, not a stub);
* ``manifest_artifacts`` / ``flight_events_enabled`` — ledger/ring
  coverage of the enabled run, gated against decrease;
* disabled/enabled wall-clock and the overhead percentage, ledgered for
  the record but never gated (host-dependent).
"""

import os
import sys
import tempfile
import time

import numpy as np

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.md.integrator import initialize_velocities
from repro.md.qmd import QMDDriver
from repro.observability import Instrumentation
from repro.observability.runlog import RunRecorder, verify_run
from repro.reactive.potential import ReactiveForceField
from repro.systems import water_molecule

_NEEDLES = (
    os.sep + "runlog.py",
    os.sep + "flightrec.py",
    os.sep + "profiler.py",
)

NSTEPS = 40


class ReactiveEngine:
    """Cheap surrogate force engine (one 'SCF iteration' per step)."""

    def __init__(self) -> None:
        self.ff = ReactiveForceField()

    def forces(self, config):
        e, f = self.ff.energy_forces(config)
        return f, e, 1


def _config():
    cfg = water_molecule(center=(10.0, 10.0, 10.0))
    initialize_velocities(cfg, 300.0, seed=7)
    return cfg


def run_qmd(instrumentation):
    driver = QMDDriver(
        ReactiveEngine(), timestep=4.0, instrumentation=instrumentation
    )
    driver.run(_config(), NSTEPS)
    return driver


def count_runlog_calls(instrumentation):
    counts = {"runlog": 0}

    def hook(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.endswith(_NEEDLES):
            counts["runlog"] += 1

    sys.setprofile(hook)
    try:
        run_qmd(instrumentation)
    finally:
        sys.setprofile(None)
    return counts["runlog"]


def test_runlog_overhead():
    # disabled = a *fully instrumented* run with no recorder attached:
    # the facade is live but must execute zero runlog code
    calls_disabled = count_runlog_calls(Instrumentation())

    with tempfile.TemporaryDirectory() as td:
        rec = RunRecorder(component="bench-probe", root=td)
        calls_enabled = count_runlog_calls(Instrumentation(recorder=rec))
        flight_events = rec.flight.seen
        manifest = rec.finish()
        problems = verify_run(rec.dir)
        invoked = [e["component"] for e in manifest["invocations"]]
        ledger_ok = (
            not problems
            and manifest["status"] == "ok"
            and "qmd.run" in invoked
        )
        n_artifacts = len(manifest["artifacts"])

    # wall-clock without the profiling hook (ledger only)
    t0 = time.perf_counter()
    run_qmd(Instrumentation())
    t_disabled = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as td:
        rec = RunRecorder(component="bench-probe", root=td)
        t0 = time.perf_counter()
        run_qmd(Instrumentation(recorder=rec))
        t_enabled = time.perf_counter() - t0
        rec.finish()

    overhead_pct = (
        100.0 * (t_enabled / t_disabled - 1.0) if t_disabled > 0 else 0.0
    )
    lines = [
        fmt_row("calls(off)", "calls(on)", "artifacts", "ring",
                "t_off[s]", "t_on[s]", "ovh[%]"),
        fmt_row(calls_disabled, calls_enabled, n_artifacts, flight_events,
                t_disabled, t_enabled, overhead_pct),
    ]
    records = [
        {"metric": "runlog_calls_disabled", "value": float(calls_disabled)},
        {"metric": "enabled_ledger_ok", "value": 1.0 if ledger_ok else 0.0},
        {"metric": "manifest_artifacts", "value": float(n_artifacts)},
        {"metric": "flight_events_enabled", "value": float(flight_events)},
        {"metric": "t_disabled_s", "value": t_disabled},
        {"metric": "t_enabled_s", "value": t_enabled},
        {"metric": "overhead_pct", "value": overhead_pct},
    ]
    report(
        "runlog_overhead",
        "run ledger — zero-overhead contract",
        lines, records=records, schema=SCHEMAS["runlog_overhead"],
    )
    assert calls_disabled == 0
    assert calls_enabled > 0
    assert ledger_ok
    assert flight_events > 0
    assert np.isfinite(t_enabled)


def main():
    off = count_runlog_calls(Instrumentation())
    with tempfile.TemporaryDirectory() as td:
        rec = RunRecorder(component="bench-probe", root=td)
        on = count_runlog_calls(Instrumentation(recorder=rec))
        rec.finish()
    print(f"runlog calls: disabled={off} enabled={on}")


if __name__ == "__main__":
    main()
