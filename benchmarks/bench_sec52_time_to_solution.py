"""EXP-TTS — Sec. 5.2 & Sec. 2: the time-to-solution metric.

Paper: one SCF iteration of the 50,331,648-atom SiC system on 786,432 cores
took 441 s → 114,000 atom·iteration/s — 5,800× and 62× over the two prior
state-of-the-art calculations.

The bench evaluates the model-projected headline plus a *real measured*
atom·iteration/s of this package's LDC prototype on the present machine
(the honest prototype-scale number).
"""

import time

from _harness import fmt_row, report
from _schemas import SCHEMAS

from repro.core import LDCOptions, run_ldc
from repro.perfmodel.metrics import (
    PRIOR_ART,
    atom_iterations_per_second,
    speedup_over,
)
from repro.perfmodel.scaling import WeakScalingModel


def measure_prototype(cfg):
    opts = LDCOptions(
        ecut=3.0, domains=(2, 1, 1), buffer=1.8, tol=1e-6, max_iter=40,
        kt=0.02, extra_bands=8,
    )
    t0 = time.perf_counter()
    r = run_ldc(cfg, opts)
    dt = time.perf_counter() - t0
    return atom_iterations_per_second(len(cfg), r.iterations, dt), r


def test_time_to_solution(benchmark, cdse16_amorphous):
    metric_proto, r = benchmark.pedantic(
        lambda: measure_prototype(cdse16_amorphous), rounds=1, iterations=1
    )

    # model-projected full-machine number
    weak = WeakScalingModel()
    p = weak.point(786_432)
    per_scf = p.wall_clock / weak.scf_per_step
    metric_model = atom_iterations_per_second(p.natoms, 1, per_scf)

    headline = PRIOR_ART["this_paper"].atom_iterations_per_second
    lines = [
        fmt_row("source", "atom*it/s", widths=[42, 14]),
        fmt_row("paper headline (measured on Mira)", headline, widths=[42, 14]),
        fmt_row("virtual-machine model projection", metric_model, widths=[42, 14]),
        fmt_row("NumPy prototype on this host (16 atoms)", metric_proto, widths=[42, 14]),
        "",
        f"speedups of the headline over prior art:",
        f"  vs {PRIOR_ART['hasegawa2011'].label}: "
        f"{speedup_over(headline, PRIOR_ART['hasegawa2011']):,.0f}x (paper: 5,800x)",
        f"  vs {PRIOR_ART['oseikuffuor2014'].label}: "
        f"{speedup_over(headline, PRIOR_ART['oseikuffuor2014']):,.0f}x (paper: 62x)",
    ]
    records = [
        {"metric": "paper_headline_atom_iter_per_s", "value": float(headline)},
        {"metric": "model_projection_atom_iter_per_s",
         "value": float(metric_model)},
        {"metric": "prototype_atom_iter_per_s", "value": float(metric_proto)},
        {"metric": "prototype_scf_iterations", "value": float(r.iterations)},
        {"metric": "speedup_vs_hasegawa2011",
         "value": float(speedup_over(headline, PRIOR_ART["hasegawa2011"]))},
        {"metric": "speedup_vs_oseikuffuor2014",
         "value": float(speedup_over(headline, PRIOR_ART["oseikuffuor2014"]))},
    ]
    report("sec52_time_to_solution", "Sec. 5.2 — time-to-solution", lines,
           records=records, schema=SCHEMAS["sec52_time_to_solution"])

    assert abs(headline - 114_000) / 114_000 < 0.01
    # the model projection should land within 3x of the paper's measurement
    assert 0.33 < metric_model / headline < 3.0
    assert metric_proto > 0
    assert r.converged
