"""LDC-DFT on the virtual parallel machine (Sec. 3.3 + Figs. 5-6 pipeline).

Runs a *real* LDC-DFT calculation while charging every phase to simulated
Blue Gene/Q ranks, then sweeps the simulated rank count to produce a
miniature strong-scaling curve of the actual executed computation, and
demonstrates the BSD redistribution kernels over the functional simulated
MPI.

Run:  python examples/virtual_machine.py
"""

import numpy as np

from repro.core import LDCOptions, run_parallel_ldc
from repro.parallel import BSDLayout, VirtualComm
from repro.parallel.decomposition import band_to_space, space_to_band
from repro.systems import dimer

system = dimer("H", "H", 1.5, 12.0)
opts = LDCOptions(ecut=5.0, domains=(2, 1, 1), buffer=2.0, tol=1e-5)

print("=== LDC-DFT executed against the virtual Blue Gene/Q ===")
print(f"{'ranks':>6} {'predicted t [s]':>15} {'imbalance':>10} {'energy [Ha]':>13}")
base = None
for ranks in (2, 4, 8, 16):
    run = run_parallel_ldc(system, opts, total_ranks=ranks)
    base = base or run.predicted_seconds
    print(f"{ranks:>6} {run.predicted_seconds:>15.4f} "
          f"{run.imbalance:>10.3f} {run.result.energy:>13.6f}")

print("\nper-phase breakdown at 16 ranks:")
run = run_parallel_ldc(system, opts, total_ranks=16)
for phase, seconds in run.breakdown.items():
    print(f"  {phase:>9s}: {seconds:.5f} s")

# -- BSD redistribution over the functional simulated MPI ---------------------
print("\n=== band <-> space redistribution (Sec. 3.3) over simulated MPI ===")
size = 4
comm = VirtualComm(size)
layout = BSDLayout(size, ndomains=1)
rng = np.random.default_rng(0)
npw, nband = 64, 8
psi = rng.normal(size=(npw, nband)) + 1j * rng.normal(size=(npw, nband))

band_blocks = [psi[:, layout.band_slice(r, nband)] for r in range(size)]
slabs = band_to_space(comm, band_blocks, layout)
back = space_to_band(comm, slabs, layout)
roundtrip_err = np.abs(np.hstack(back) - psi).max()
print(f"band->space->band round trip over {size} simulated ranks: "
      f"max error {roundtrip_err:.2e}")

# per-domain communicators via MPI_COMM_SPLIT
world = VirtualComm(8)
colors = [r // 4 for r in range(8)]
subs = world.split(colors)
print(f"MPI_COMM_SPLIT: world of 8 -> domain communicators of sizes "
      f"{sorted({c.size for c in subs})} (one per DC domain)")
