"""Reactive MD of a LiAl nanoparticle in water, with trajectory analytics
and compressed I/O — the production-pipeline pieces of Secs. 4.2 and 6 at
example scale.

Run:  python examples/reactive_md.py
"""

import numpy as np

from repro.compression.codec import compress_frame, decompress_frame
from repro.md.integrator import initialize_velocities
from repro.md.qmd import QMDDriver
from repro.md.thermostat import LangevinThermostat
from repro.reactive.bonds import molecule_census
from repro.reactive.potential import ReactiveForceField
from repro.systems import lial_in_water

# -- build Li8Al8 + 40 waters ---------------------------------------------------
system = lial_in_water(8, n_water=40, seed=0)
print(f"system: {system.counts()}  ({system.natoms} atoms)")
initialize_velocities(system, 1500.0, seed=1)  # the paper's hot production T

ff = ReactiveForceField()


class Engine:
    def forces(self, config):
        e, f = ff.energy_forces(config)
        return f, e, 1


driver = QMDDriver(
    Engine(),
    timestep=4.0,  # ~0.1 fs
    thermostat=LangevinThermostat(1500.0, friction=0.02, timestep=4.0, seed=2),
    record_positions=True,
)

print("\nrunning 150 reactive MD steps at 1500 K...")
frames = driver.run(system, 150)

# -- trajectory analytics ----------------------------------------------------------
print(f"{'step':>5} {'T [K]':>7} {'E_pot [Ha]':>12} {'waters':>7} {'OH-':>4} {'H2':>3}")
for f in frames[::30]:
    snap = system.copy()
    snap.positions = f.positions
    census = molecule_census(snap)
    print(f"{f.step:>5} {f.temperature:>7.0f} {f.potential_energy:>12.4f} "
          f"{census.water:>7} {census.hydroxide:>4} {census.h2:>3}")

final = molecule_census(system)
print(f"\nfinal census: {final}")

# -- compressed trajectory I/O (Sec. 4.2) --------------------------------------------
raw_bytes = 0
packed_bytes = 0
for f in frames[::10]:
    frame = compress_frame(f.positions, system.cell, bits=12)
    raw_bytes += f.positions.nbytes
    packed_bytes += frame.nbytes
    rec = decompress_frame(frame)
    err = np.abs(np.mod(rec - f.positions + system.cell / 2, system.cell)
                 - system.cell / 2).max()
    assert err <= system.cell.max() / 2**13 + 1e-9
print(f"\ntrajectory compression: {raw_bytes} B → {packed_bytes} B "
      f"({raw_bytes / packed_bytes:.2f}x, lossless to "
      f"{system.cell.max() / 2**13:.3f} Bohr)")
