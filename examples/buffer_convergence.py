"""Buffer-thickness convergence (Fig. 7) at example scale.

Sweeps the localization parameter b on a 16-atom amorphous CdSe system (the
paper's Fig.-7 material, downscaled), comparing classic DC-DFT and LDC-DFT
against the O(N³) reference; fits the exponential decay constant λ of Eq. 1
on the density error; and evaluates the complexity model's speedup
implications.  Finishes with the automatic parameter advisor (Sec. 3.1's
"optimization of DC computational parameters").

Run:  python examples/buffer_convergence.py   (takes a few minutes)
"""

import numpy as np

from repro.core import LDCOptions, run_ldc
from repro.core.advisor import recommend_parameters
from repro.core.complexity import (
    crossover_natoms,
    fit_decay_constant,
    speedup_factor,
)
from repro.dft.scf import SCFOptions, run_scf
from repro.systems import amorphous_cdse

system = amorphous_cdse((2, 1, 1), displacement=0.3, seed=3)

print("computing O(N^3) reference...")
ref = run_scf(
    system, SCFOptions(ecut=3.0, tol=1e-7, extra_bands=8, kt=0.02, eig_tol=1e-8)
)
print(f"reference energy: {ref.energy:+.6f} Ha\n")

buffers = [0.6, 1.2, 1.8, 2.4]
e_errors: dict[str, list[float]] = {"dc": [], "ldc": []}
rho_errors: dict[str, list[float]] = {"dc": [], "ldc": []}
print(f"{'mode':>4} {'b [Bohr]':>9} {'|ΔE|/atom':>10} {'∫|Δρ|/N':>9} {'iters':>6}")
for mode in ("dc", "ldc"):
    for b in buffers:
        r = run_ldc(
            system,
            LDCOptions(
                ecut=3.0, domains=(2, 1, 1), buffer=b, mode=mode,
                tol=1e-6, max_iter=40, kt=0.02, extra_bands=8,
            ),
        )
        e_err = abs(r.energy - ref.energy) / len(system)
        rho_err = (
            r.grid.integrate(np.abs(r.density - ref.density))
            / system.n_electrons()
        )
        e_errors[mode].append(e_err)
        rho_errors[mode].append(rho_err)
        print(f"{mode:>4} {b:>9.1f} {e_err:>10.2e} {rho_err:>9.4f} {r.iterations:>6}")

# -- Eq. 1: fit the decay constant on the (clean) density error -----------------
for mode in ("dc", "ldc"):
    lam, amp = fit_decay_constant(np.array(buffers), np.array(rho_errors[mode]))
    print(f"\n{mode.upper()}: density error ≈ {amp:.3f} · exp(-b/{lam:.2f} Bohr)")

# -- the automatic parameter advisor ----------------------------------------------
rec = recommend_parameters(
    np.array(buffers), np.array(rho_errors["dc"]), tolerance=5e-3,
    number_density=len(system) / system.volume,
)
print(f"\nadvisor (target ∫|Δρ|/N ≤ 5e-3): {rec.summary()}")

# -- what the paper's buffer numbers imply (Sec. 5.2) --------------------------------
print("\ncomplexity-model implications at the paper's CdSe buffers:")
print(f"  LDC/DC speedup (ν=2): {speedup_factor(11.416, 4.72, 3.57, 2.0):.2f}")
print(f"  LDC/DC speedup (ν=3): {speedup_factor(11.416, 4.72, 3.57, 3.0):.2f}")
density = 512 / 45.664**3
print(f"  O(N)↔O(N³) crossover: {crossover_natoms(3.57, density):.0f} atoms")
