"""Quickstart: solve a small system with O(N) LDC-DFT and verify it against
the conventional O(N³) plane-wave code (the Sec. 5.5 verification protocol).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LDCOptions, run_ldc
from repro.dft.scf import SCFOptions, run_scf
from repro.systems import dimer

# -- a toy H2 molecule in a periodic box -------------------------------------
molecule = dimer("H", "H", separation=1.5, cell_edge=12.0)
print(f"System: H2, {molecule.natoms} atoms, {molecule.n_electrons():.0f} electrons")

# -- conventional O(N^3) reference --------------------------------------------
scf = run_scf(molecule, SCFOptions(ecut=6.0, tol=1e-7))
print(f"O(N^3) reference : E = {scf.energy:+.6f} Ha "
      f"({scf.iterations} SCF iterations, converged={scf.converged})")

# -- LDC-DFT: 2 domains along x, 2.5 Bohr buffer -------------------------------
ldc = run_ldc(
    molecule,
    LDCOptions(ecut=6.0, domains=(2, 1, 1), buffer=2.5, mode="ldc", tol=1e-6),
    compute_forces=True,
)
print(f"LDC-DFT (O(N))   : E = {ldc.energy:+.6f} Ha "
      f"({ldc.iterations} SCF iterations, {ldc.n_domains} domains)")
print(f"agreement        : {abs(ldc.energy - scf.energy) * 1e3:.3f} mHa")
print(f"chemical potential μ = {ldc.mu:+.4f} Ha")
print("forces (Ha/Bohr):")
print(np.array_str(ldc.forces, precision=5, suppress_small=True))

# -- per-component energy breakdown --------------------------------------------
print("\nenergy components (Ha):")
for name, value in ldc.components.items():
    print(f"  {name:>15s} : {value:+.6f}")
