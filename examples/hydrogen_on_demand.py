"""Hydrogen-on-demand (Sec. 6): Li_nAl_n nanoparticles splitting water.

Reproduces the science-application pipeline at laptop scale:

1. carve a LiAl nanoparticle and census its surface Lewis acid-base pairs;
2. run the kinetic Monte Carlo reaction engine at 300/600/1500 K;
3. fit the Arrhenius law (Fig. 9(a): E_a ≈ 0.068 eV);
4. compare against a pure-Al particle (orders of magnitude slower);
5. show the Li-dissolution → pH-rise → oxide-inhibition yield mechanism;
6. run a short NVE water trajectory under the physics health monitors and
   show every invariant reporting green.

Run:  python examples/hydrogen_on_demand.py
"""

from repro.md.integrator import initialize_velocities
from repro.md.qmd import QMDDriver
from repro.observability import HealthMonitor, Instrumentation
from repro.reactive.analysis import arrhenius_fit, rate_with_error
from repro.reactive.kmc import KMCOptions, run_kmc
from repro.reactive.potential import ReactiveForceField
from repro.reactive.sites import site_census
from repro.systems import lial_nanoparticle, water_molecule

PAIRS = 30  # the paper's smallest particle: Li30Al30

particle = lial_nanoparticle(PAIRS)
census = site_census(particle)
print(f"Li{PAIRS}Al{PAIRS} particle: {census.n_metal} metal atoms, "
      f"{census.n_surface} at the surface, "
      f"{census.n_pairs} Lewis acid-base (Li,Al) pairs")

# -- Fig. 9(a): Arrhenius ---------------------------------------------------
temperatures = [300.0, 600.0, 1500.0]
rates = []
print("\ntemperature sweep (5 KMC replicas each):")
for t in temperatures:
    runs = [
        run_kmc(particle, KMCOptions(temperature=t, max_time=2e-8, seed=s), census)
        for s in range(5)
    ]
    mean, err = rate_with_error(runs)
    rates.append(mean)
    per_pair = mean / census.n_pairs
    print(f"  T = {t:6.0f} K : {per_pair:.3e} ± {err / census.n_pairs:.1e} "
          f"H2 /s /pair")

fit = arrhenius_fit(temperatures, rates)
print(f"\nArrhenius fit: E_a = {fit.activation_ev * 1e3:.1f} meV "
      f"(paper: 68 meV), prefactor = {fit.prefactor:.2e} /s, "
      f"R² = {fit.r_squared:.4f}")
print(f"extrapolated k(300 K) per pair = "
      f"{fit.rate(300.0) / census.n_pairs:.2e} /s  (paper: 1.04e9 /s)")

# -- pure Al baseline ----------------------------------------------------------
print("\npure-Al baseline at 300 K (ref. 47):")
lial = run_kmc(particle, KMCOptions(temperature=300.0, max_time=2e-8, seed=0), census)
pure = run_kmc(particle, KMCOptions(temperature=300.0, max_time=2e-8, seed=0,
                                    pure_al=True))
print(f"  LiAl    : {lial.total_h2} H2 produced in {lial.final_time:.1e} s")
print(f"  pure Al : {pure.total_h2} H2 produced in {pure.final_time:.1e} s")

# -- yield mechanism --------------------------------------------------------------
long_run = run_kmc(
    particle, KMCOptions(temperature=600.0, max_time=3e-7, seed=1), census
)
print(f"\nyield mechanism over a longer 600 K run:")
print(f"  H2 produced        : {long_run.total_h2}")
print(f"  Li dissolved       : {long_run.dissolved_li} "
      f"(pH {long_run.ph_history[0]:.2f} → {long_run.ph_history[-1]:.2f})")
print(f"  passivated sites   : {long_run.passivated_sites} / {long_run.n_sites}")
print(f"  event counts       : {long_run.events}")


# -- health monitors on a nominal trajectory --------------------------------
class _ReactiveEngine:
    """QMD engine interface over the reactive force field."""

    def __init__(self):
        self.ff = ReactiveForceField()

    def forces(self, config):
        e, f = self.ff.energy_forces(config)
        return f, e, 1


print("\nhealth monitors on a nominal NVE water trajectory (60 steps):")
water = water_molecule(center=(10.0, 10.0, 10.0))
initialize_velocities(water, 200.0, seed=1)
monitor = HealthMonitor()
driver = QMDDriver(_ReactiveEngine(), timestep=4.0,
                   instrumentation=Instrumentation(health=monitor))
driver.run(water, 60)
print(monitor.render_summary())
status = "all invariants green" if monitor.all_green() else "NOT GREEN"
print(f"  -> {status}")
