"""Instrumented QMD run: one ledger entry, one trace, one breakdown.

Demonstrates the observability subsystem end-to-end on a tiny LDC-QMD
trajectory (the acceptance flow of the telemetry + run-ledger PRs):

1. thread one ``Instrumentation`` facade — with an attached
   ``RunRecorder`` — through the QMD driver, the LDC engine, the
   multigrid Poisson solver, and the eigensolvers;
2. additionally execute the solve on the virtual Blue Gene/Q so the
   simulated-rank timeline lands in the *same* Chrome trace (pid 2), and
   sample the run with the profiler so statistical frames land on pid 4;
3. finish the run: ``telemetry/runs/<run_id>/`` now holds ``trace.json``,
   ``metrics.{json,csv}``, ``profile.json``, and a schema'd
   ``manifest.json`` whose content hashes verify.

Open the run's ``trace.json`` in chrome://tracing or
https://ui.perfetto.dev to see measured spans, predicted rank activity,
and profiler samples side by side; then inspect the ledger::

    python -m repro.observability.runlog list
    python -m repro.observability.runlog show <run_id>
    python -m repro.observability.report <run_id> --profile

Run:  PYTHONPATH=src python examples/telemetry_qmd.py
"""

from repro.core.ldc import LDCOptions
from repro.core.parallel_ldc import run_parallel_ldc
from repro.md.integrator import initialize_velocities
from repro.md.qmd import LDCEngine, QMDDriver
from repro.observability import Instrumentation
from repro.observability.report import phase_breakdown, render_breakdown
from repro.observability.runlog import RunRecorder, verify_run
from repro.systems import dimer


def main() -> None:
    config = dimer("H", "H", 1.5, 12.0)
    initialize_velocities(config, 300.0, seed=0)
    opts = LDCOptions(
        ecut=4.0, domains=(2, 1, 1), buffer=1.5, tol=1e-4, max_iter=10,
        poisson="multigrid",
    )

    recorder = RunRecorder(component="example:telemetry_qmd", profile=True)
    ins = Instrumentation(recorder=recorder)

    # A short instrumented QMD trajectory (warm-started LDC solves).
    driver = QMDDriver(LDCEngine(opts), timestep=5.0, instrumentation=ins)
    driver.run(config, nsteps=2)

    # The same physics on the virtual machine: simulated-rank timeline
    # merges into the same trace under its own pid.
    run_parallel_ldc(config, opts, total_ranks=8, instrumentation=ins)

    manifest = recorder.finish()
    problems = verify_run(recorder.dir)
    print(f"run ledger entry: {recorder.dir}")
    print(f"artifacts: {', '.join(sorted(manifest['artifacts']))}")
    print(f"hashes verify: {'yes' if not problems else problems}\n")

    events = ins.to_chrome_trace()["traceEvents"]
    print("== measured spans (pid 1) ==")
    print(render_breakdown(phase_breakdown(events, pid=1), top=8))
    print("\n== simulated ranks (pid 2) ==")
    print(render_breakdown(phase_breakdown(events, pid=2)))

    resid = ins.metrics.get("scf.residual", engine="ldc")
    print(f"\nper-iteration SCF residuals ({len(resid.values)} iterations):")
    print("  " + "  ".join(f"{r:.2e}" for r in resid.values[:8]) + " ...")


if __name__ == "__main__":
    main()
