"""Divide-Conquer-Recombine (Sec. 7): global frontier orbitals and DOS from
domain-local LDC solutions.

The DC phase gives globally informed local orbitals; the recombine phase
uses them as compact bases to synthesize global properties — here the
global HOMO/LUMO spectrum (compared against the O(N³) reference) and the
density of states.

Run:  python examples/dcr_frontier.py
"""

import numpy as np

from repro.core import LDCOptions, run_ldc
from repro.core.dcr import density_of_states, recombine_frontier
from repro.dft.scf import SCFOptions, run_scf
from repro.systems import dimer

system = dimer("H", "H", 1.5, 12.0)

print("divide/conquer: LDC-DFT with 2 domains...")
ldc = run_ldc(
    system,
    LDCOptions(ecut=6.0, domains=(2, 1, 1), buffer=2.5, tol=1e-6, extra_bands=4),
)

print("recombine: global frontier orbitals from domain fragments...")
frontier = recombine_frontier(system, ldc, n_frontier=3)

reference = run_scf(system, SCFOptions(ecut=6.0, tol=1e-7, extra_bands=4))

print(f"\n{'state':>6} {'DCR [Ha]':>10} {'O(N^3) [Ha]':>12}")
for k in range(min(4, len(frontier.energies))):
    print(f"{k:>6} {frontier.energies[k]:>10.4f} {reference.eigenvalues[k]:>12.4f}")
print(f"\nHOMO: {frontier.homo:+.4f} (reference {reference.eigenvalues[0]:+.4f})")
print(f"gap : {frontier.gap:.4f} Ha from {frontier.n_fragments} fragments")

energies, dos = density_of_states(ldc, broadening=0.02)
occupied = energies <= ldc.mu
print(f"\nDOS: {np.trapezoid(dos[occupied], energies[occupied]):.2f} states "
      f"below mu (mu = {ldc.mu:+.4f} Ha); "
      f"{np.trapezoid(dos, energies):.2f} states total")
