"""Weak/strong scaling study on the virtual Blue Gene/Q (Figs. 5-6, Sec. 5.2).

Prints the same series the paper's figures plot: wall-clock per QMD step vs
core count, parallel efficiencies, the FLOP/s tables, and the
time-to-solution comparison against prior state of the art.

Run:  python examples/scaling_study.py
"""

from repro.perfmodel.metrics import (
    PRIOR_ART,
    atom_iterations_per_second,
    speedup_over,
)
from repro.perfmodel.scaling import StrongScalingModel, WeakScalingModel
from repro.perfmodel.threading import flops_table, rack_table

# -- Fig. 5: weak scaling ------------------------------------------------------
print("=== Fig. 5 — weak scaling (64 atoms/core SiC) ===")
weak = WeakScalingModel()
print(f"{'cores':>8} {'atoms':>12} {'t/step [s]':>11} {'efficiency':>10}")
for cores in (16, 128, 1024, 8192, 65_536, 262_144, 786_432):
    p = weak.point(cores)
    print(f"{p.cores:>8} {p.natoms:>12} {p.wall_clock:>11.1f} {p.efficiency:>10.3f}")

# -- Fig. 6: strong scaling ------------------------------------------------------
print("\n=== Fig. 6 — strong scaling (77,889-atom LiAl-water) ===")
strong = StrongScalingModel()
print(f"{'cores':>8} {'t/step [s]':>11} {'speedup':>8} {'efficiency':>10}")
for cores in (49_152, 98_304, 196_608, 393_216, 786_432):
    p = strong.point(cores)
    print(f"{p.cores:>8} {p.wall_clock:>11.2f} "
          f"{strong.speedup(cores):>8.2f} {p.efficiency:>10.3f}")

# -- Table 1 ----------------------------------------------------------------------
print("\n=== Table 1 — GFLOP/s vs threads/core (512-atom SiC, 64 ranks) ===")
print(f"{'nodes':>6} | " + " | ".join(f"{t} thr/core" for t in (1, 2, 4)))
rows = flops_table()
for nodes in (4, 8, 16):
    cells = [r for r in rows if r.nodes == nodes]
    print(f"{nodes:>6} | " + " | ".join(
        f"{c.gflops:6.0f} ({c.percent_peak:4.1f}%)" for c in cells))

# -- Table 2 -----------------------------------------------------------------------
print("\n=== Table 2 — FLOP/s on Mira racks ===")
for r, row in zip((1, 2, 48), rack_table()):
    print(f"{r:>3} racks ({row.nodes * 16:>7} cores): "
          f"{row.gflops / 1e3:8.1f} TFLOP/s  ({row.percent_peak:.2f}% of peak)")

# -- Sec. 2 / 5.2: time-to-solution ---------------------------------------------------
print("\n=== time-to-solution (atom·iteration/s) ===")
mine = atom_iterations_per_second(50_331_648, 1, 441.0)
print(f"this reproduction of the paper's headline run: {mine:,.0f}")
for key in ("hasegawa2011", "oseikuffuor2014"):
    ref = PRIOR_ART[key]
    print(f"  vs {ref.label}: {speedup_over(mine, ref):,.0f}x")
