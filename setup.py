"""Legacy shim so editable installs work offline with older setuptools."""

from setuptools import setup

setup()
